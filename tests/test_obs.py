"""The telemetry plane (`repro.obs`).

Four layers, in test-speed order:

* **the plane**: disarmed hooks are no-ops, spans nest per thread,
  buffers cap and count drops, enabling is idempotent and OR-ing.
* **the registry**: counter/gauge/histogram semantics, log2 bucket
  boundaries, Prometheus rendering, cross-process absorb.
* **export**: JSONL round-trip is lossless (property-tested), the
  parent/child forest reassembles identically, and the Perfetto
  document validates with the shard-lane layout.
* **integration**: spans cross the pool boundary from spawned shard
  workers (also under an injected ``shard.worker`` crash), and tracing
  never changes a coloring — byte-identical on vs off.
"""

import io
import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.config import ColoringConfig
from repro.faults import FaultPlan, FaultRule, plan as fplan
from repro.graphs.families import make_graph
from repro.obs.registry import NUM_BUCKETS, bucket_bounds, bucket_index
from repro.shard.engine import ShardedColoring
from repro.simulator.metrics import RoundMetrics


@pytest.fixture(autouse=True)
def always_disarmed():
    """No test may leak an armed plane (or fault plan) into the suite."""
    obs.disable()
    fplan.disarm()
    yield
    obs.disable()
    fplan.disarm()


# ----------------------------------------------------------------------
# Layer 1: the plane
# ----------------------------------------------------------------------
class TestPlane:
    def test_disarmed_hooks_are_noops(self):
        assert not obs.enabled()
        with obs.span("x", a=1):
            pass
        assert obs.start_span("x") is None
        obs.end_span(None)
        obs.count("c")
        obs.gauge_set("g", 1.0)
        obs.observe("h", 2.0)
        assert obs.drain_spans() == []
        assert obs.adopt_spans([{"name": "x"}]) == 0
        assert obs.registry() is None
        assert obs.render_metrics() == ""

    def test_span_nesting_parent_links(self):
        obs.enable()
        with obs.span("outer"):
            with obs.span("inner", shard=2):
                pass
            with obs.span("sibling"):
                pass
        spans = {s["name"]: s for s in obs.drain_spans()}
        assert spans["outer"]["parent"] == 0
        assert spans["inner"]["parent"] == spans["outer"]["id"]
        assert spans["sibling"]["parent"] == spans["outer"]["id"]
        assert spans["inner"]["attrs"] == {"shard": 2}
        assert all(s["dur"] >= 0 for s in spans.values())

    def test_unscoped_pairs_interleave(self):
        """start/end pairs may close out of order (RoundMetrics phase
        segments do under time_phase pause/resume) without corrupting
        the stack."""
        obs.enable()
        a = obs.start_span("a")
        b = obs.start_span("b")
        obs.end_span(a)  # out of order
        with obs.span("c"):
            pass
        obs.end_span(b)
        spans = {s["name"]: s for s in obs.drain_spans()}
        assert spans["b"]["parent"] == spans["a"]["id"]
        assert spans["c"]["parent"] == spans["b"]["id"]

    def test_buffer_cap_counts_drops(self):
        obs.enable(trace_buffer=2)
        for i in range(5):
            with obs.span(f"s{i}"):
                pass
        spans = obs.drain_spans()
        assert len(spans) == 2
        assert "repro_obs_spans_dropped_total 3" in obs.render_metrics()

    def test_enable_is_idempotent_and_ors(self):
        state = obs.enable(tracing=False, metrics=True)
        obs.count("kept_total")
        assert obs.enable(tracing=True, metrics=False) is state
        assert obs.tracing_enabled() and obs.metrics_enabled()
        assert "kept_total 1" in obs.render_metrics()

    def test_enable_from_config(self):
        cfg = ColoringConfig.practical()
        assert not obs.enable_from_config(cfg)
        assert not obs.enabled()
        assert obs.enable_from_config(
            ColoringConfig.practical(obs_trace=True, obs_trace_buffer=9)
        )
        assert obs.tracing_enabled()

    def test_adopt_spans_merges(self):
        obs.enable()
        with obs.span("local"):
            pass
        foreign = [{"name": "remote", "ts": 1, "dur": 2, "pid": 999,
                    "tid": 1, "id": 77, "parent": 0, "attrs": {}}]
        assert obs.adopt_spans(foreign) == 1
        names = {s["name"] for s in obs.drain_spans()}
        assert names == {"local", "remote"}


# ----------------------------------------------------------------------
# Layer 2: the registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_bucket_boundaries(self):
        """log2 buckets: bucket i holds (2^(i-1), 2^i], bucket 0 holds
        everything ≤ 1, the last bucket absorbs the overflow tail."""
        assert bucket_index(0) == 0
        assert bucket_index(-5.0) == 0
        assert bucket_index(1.0) == 0
        assert bucket_index(1.5) == 1
        assert bucket_index(2.0) == 1
        assert bucket_index(2.0001) == 2
        assert bucket_index(4.0) == 2
        assert bucket_index(2.0**30) == 30
        assert bucket_index(2.0**31) == NUM_BUCKETS - 1
        assert bucket_index(float("inf")) == NUM_BUCKETS - 1
        bounds = bucket_bounds()
        assert len(bounds) == NUM_BUCKETS
        assert bounds[0] == 1.0 and bounds[-1] == float("inf")

    @given(st.floats(min_value=0.0, max_value=2.0**40, allow_nan=False))
    def test_bucket_index_consistent_with_bounds(self, value):
        idx = bucket_index(value)
        bounds = bucket_bounds()
        assert value <= bounds[idx]
        if idx > 0:
            assert value > bounds[idx - 1]

    def test_counter_gauge_histogram(self):
        obs.enable()
        reg = obs.registry()
        reg.counter("jobs_total", kind="a").inc()
        reg.counter("jobs_total", kind="a").inc(4)
        reg.counter("jobs_total", kind="b").inc()
        g = reg.gauge("depth")
        g.set(3.0)
        g.set(9.0)
        g.set(5.0)
        assert g.value == 5.0 and g.high_water == 9.0
        reg.histogram("lat_us").observe(1.0)
        reg.histogram("lat_us").observe(3.0)
        snap = reg.snapshot()
        assert snap["jobs_total"]["series"][0]["value"] == 5
        assert snap["lat_us"]["series"][0]["count"] == 2
        text = reg.render()
        assert '# TYPE jobs_total counter' in text
        assert 'jobs_total{kind="a"} 5' in text
        assert 'lat_us_count 2' in text
        assert 'lat_us_sum 4' in text

    def test_kind_mismatch_raises(self):
        obs.enable()
        reg = obs.registry()
        reg.counter("x_total")
        with pytest.raises(TypeError):
            reg.gauge("x_total")

    def test_absorb(self):
        obs.enable()
        a = obs.registry()
        a.counter("c_total").inc(2)
        a.gauge("g").set(1.0)
        a.histogram("h").observe(4.0)
        from repro.obs.registry import MetricsRegistry

        b = MetricsRegistry()
        b.counter("c_total").inc(3)
        b.gauge("g").set(7.0)
        b.histogram("h").observe(4.0)
        a.absorb(b)
        assert a.counter("c_total").value == 5
        assert a.gauge("g").value == 7.0
        assert a.histogram("h").count == 2

    def test_prometheus_escaping(self):
        obs.enable()
        obs.count("odd_total", label='he said "hi"\\\n')
        text = obs.render_metrics()
        assert 'he said \\"hi\\"\\\\\\n' in text


# ----------------------------------------------------------------------
# Layer 3: export
# ----------------------------------------------------------------------
def _tree_shape(roots):
    """The comparable skeleton of a span forest."""
    return [
        (r["name"], r["id"], r["parent"], _tree_shape(r["children"]))
        for r in roots
    ]


@st.composite
def span_forests(draw):
    """Random well-formed span lists: ids 1..n, parent links acyclic
    (each span's parent has a smaller id or is 0)."""
    n = draw(st.integers(min_value=1, max_value=12))
    spans = []
    for sid in range(1, n + 1):
        parent = draw(st.integers(min_value=0, max_value=sid - 1))
        spans.append(
            {
                "name": draw(st.sampled_from(["a", "b", "c", "reconcile"])),
                "ts": draw(st.integers(min_value=0, max_value=10**9)),
                "dur": draw(st.integers(min_value=0, max_value=10**6)),
                "pid": draw(st.integers(min_value=1, max_value=4)),
                "tid": draw(st.integers(min_value=1, max_value=4)),
                "id": sid,
                "parent": parent,
                "attrs": draw(
                    st.dictionaries(
                        st.sampled_from(["shard", "sweep", "k"]),
                        st.integers(min_value=0, max_value=8),
                        max_size=2,
                    )
                ),
            }
        )
    return spans


class TestExport:
    @settings(max_examples=60, deadline=None)
    @given(span_forests())
    def test_jsonl_round_trip_identical_tree(self, spans):
        fp = io.StringIO()
        assert obs.write_jsonl(spans, fp) == len(spans)
        back = obs.read_jsonl(io.StringIO(fp.getvalue()))
        assert back == spans
        assert _tree_shape(obs.spans_to_tree(back)) == _tree_shape(
            obs.spans_to_tree(spans)
        )

    def test_read_jsonl_rejects_missing_keys(self):
        with pytest.raises(ValueError, match="missing"):
            obs.read_jsonl(io.StringIO('{"name": "x"}\n'))

    def test_perfetto_lanes_and_validation(self):
        obs.enable()
        with obs.span("driver.step"):
            pass
        with obs.span("shard.color", shard=3):
            pass
        doc = obs.spans_to_perfetto(obs.drain_spans())
        assert obs.validate_perfetto(doc) == []
        lanes = {e["tid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert lanes == {0, 4}  # driver lane 0, shard 3 on lane 4
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names == {"driver", "shard 3"}

    def test_validate_perfetto_flags_problems(self):
        assert obs.validate_perfetto({}) == ["traceEvents is not a list"]
        bad = {"traceEvents": [{"ph": "X", "name": 3, "pid": 1, "tid": 1,
                                "ts": 0.0, "dur": -1}]}
        problems = obs.validate_perfetto(bad)
        assert any("missing name" in p for p in problems)
        assert any("bad dur" in p for p in problems)


# ----------------------------------------------------------------------
# Layer 4: integration with the engines
# ----------------------------------------------------------------------
def _shard_cfg(**kw):
    return ColoringConfig.practical(seed=7, shard_k=3, **kw)


GRAPH = make_graph("geometric", 900, 10.0, 7)


class TestIntegration:
    def test_round_metrics_emits_phase_spans(self):
        obs.enable()
        m = RoundMetrics()
        m.begin_phase("setup")
        m.begin_phase("slack")
        m.stop_timer()
        names = [s["name"] for s in obs.drain_spans()]
        assert names == ["setup", "slack"]
        assert "repro_phase_us_count" in obs.render_metrics()

    def test_coloring_byte_identical_tracing_on_off(self):
        off = ShardedColoring(GRAPH, _shard_cfg(), workers=1).run()
        obs.disable()
        on = ShardedColoring(
            GRAPH, _shard_cfg(obs_trace=True), workers=1
        ).run()
        spans = obs.drain_spans()
        assert spans, "traced run recorded nothing"
        assert np.array_equal(off.colors, on.colors)
        assert off.rounds_total == on.rounds_total
        assert off.total_bits == on.total_bits

    def test_spawned_workers_ship_spans_back(self):
        """Cross-process reassembly: spawned shard workers arm from the
        config riding the pool pipe and piggyback their span buffers on
        the result payloads; the driver trace must contain worker-pid
        spans for every shard."""
        import os

        cfg = _shard_cfg(obs_trace=True, shard_start_method="spawn")
        result = ShardedColoring(GRAPH, cfg, workers=2).run()
        assert result.proper and result.complete
        spans = obs.drain_spans()
        worker = [s for s in spans if s["pid"] != os.getpid()]
        assert worker, "no worker-side spans crossed the pool boundary"
        shards = {
            s["attrs"]["shard"] for s in worker if s["name"] == "shard.color"
        }
        assert shards == {0, 1, 2}
        # The merged trace still exports and validates.
        doc = obs.spans_to_perfetto(spans)
        assert obs.validate_perfetto(doc) == []

    def test_spans_survive_injected_worker_crash(self):
        """A seeded ``shard.worker`` crash kills one attempt; the retry
        succeeds, the run completes, and the reassembled trace still
        parses — dead attempts lose their spans, nothing else does."""
        fplan.arm(
            FaultPlan(
                name="obs-crash", seed=3,
                rules=(
                    FaultRule(site="shard.worker", kind="crash",
                              match=(("shard", 1), ("attempt", 1))),
                ),
            )
        )
        cfg = _shard_cfg(obs_trace=True, shard_start_method="spawn")
        result = ShardedColoring(GRAPH, cfg, workers=2).run()
        assert result.proper and result.complete
        spans = obs.drain_spans()
        fp = io.StringIO()
        obs.write_jsonl(spans, fp)
        back = obs.read_jsonl(io.StringIO(fp.getvalue()))
        assert {s["name"] for s in back} >= {"shard.color"}
        assert obs.validate_perfetto(obs.spans_to_perfetto(back)) == []

    def test_fault_metrics_from_armed_plan(self):
        obs.enable(tracing=False, metrics=True)
        plan = FaultPlan(
            name="metered", seed=1,
            rules=(FaultRule(site="shard.worker", kind="crash",
                             match=(("shard", 99),)),),
        )
        fplan.arm(plan)
        text = obs.render_metrics()
        assert 'repro_faults_armed_total{plan="metered"} 1' in text
        assert 'repro_faults_rules{plan="metered"} 1' in text
