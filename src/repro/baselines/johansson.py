"""Johansson's folklore randomized coloring [Joh99] — the O(log n)-round
BCONGEST baseline the paper improves on.

Per round, every uncolored node broadcasts a uniform color from its
current palette and keeps it if no neighbor announced the same color
(ID-priority tie-break).  Each node survives a round with constant
probability, so the uncolored set decays geometrically: Θ(log n) rounds
w.h.p.  One color broadcast per node per round — BCONGEST-compliant, which
is exactly why this 25-year-old bound was still the state of the art for
broadcast-only coloring before the paper (§1: "the best such
broadcast-based algorithm required O(log n) rounds").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.state import ColoringState
from repro.core.trycolor import palette_sampler, try_color_round
from repro.simulator.metrics import RoundMetrics
from repro.simulator.network import BroadcastNetwork
from repro.simulator.rng import SeedSequencer

__all__ = ["BaselineResult", "johansson_coloring"]


@dataclass
class BaselineResult:
    colors: np.ndarray
    rounds: int
    proper: bool
    complete: bool
    max_message_bits: int
    total_bits: int

    def as_dict(self) -> dict:
        return {
            "rounds": self.rounds,
            "proper": self.proper,
            "complete": self.complete,
            "max_message_bits": self.max_message_bits,
            "total_bits": self.total_bits,
        }


def johansson_coloring(
    graph,
    seed: int = 0,
    max_rounds: int = 100_000,
    bandwidth_bits: int | None = None,
) -> BaselineResult:
    """Run the baseline to completion; returns colors plus round metrics."""
    metrics = RoundMetrics()
    net = (
        graph
        if isinstance(graph, BroadcastNetwork)
        else BroadcastNetwork(graph, bandwidth_bits=bandwidth_bits, metrics=metrics)
    )
    if net.metrics is not metrics:
        metrics = net.metrics
    metrics.begin_phase("johansson")
    state = ColoringState(net)
    seq = SeedSequencer(seed)
    sampler = palette_sampler(state)
    rounds = 0
    while state.num_uncolored() and rounds < max_rounds:
        pending = state.uncolored_nodes()
        try_color_round(state, pending, sampler, seq, phase="johansson", round_tag=rounds)
        rounds += 1
    state.verify()
    return BaselineResult(
        colors=state.colors.copy(),
        rounds=rounds,
        proper=state.is_proper(),
        complete=state.is_complete(),
        max_message_bits=metrics.max_message_bits,
        total_bits=metrics.total_bits,
    )
