"""Tests for slack generation (Lemma 2.12)."""

import numpy as np
import pytest

from repro.config import ColoringConfig
from repro.core.slack import generate_slack
from repro.core.state import ColoringState
from repro.decomposition.sparsity import local_sparsity
from repro.graphs.generators import gnp_graph, complete_graph
from repro.simulator.network import BroadcastNetwork
from repro.simulator.rng import SeedSequencer


@pytest.fixture
def cfg():
    return ColoringConfig.practical()


class TestGenerateSlack:
    def test_one_round_charged(self, cfg):
        net = BroadcastNetwork(gnp_graph(100, 0.1, seed=1))
        state = ColoringState(net)
        generate_slack(state, np.zeros(net.n, dtype=np.int64), cfg, SeedSequencer(0))
        assert net.metrics.rounds_in("slack") == 1

    def test_participation_rate(self, cfg):
        net = BroadcastNetwork(gnp_graph(4000, 0.005, seed=2))
        state = ColoringState(net)
        rep = generate_slack(state, np.zeros(net.n, dtype=np.int64), cfg, SeedSequencer(1))
        expected = cfg.slack_probability * net.n
        assert abs(rep.participants - expected) < 4 * np.sqrt(expected) + 5

    def test_reserved_prefix_untouched(self, cfg):
        net = BroadcastNetwork(complete_graph(60))
        state = ColoringState(net)
        x = np.full(net.n, 20, dtype=np.int64)
        cfg_hot = ColoringConfig.practical(slack_probability=1.0)
        generate_slack(state, x, cfg_hot, SeedSequencer(3))
        used = state.colors[state.colors >= 0]
        assert used.size > 0
        assert used.min() >= 20

    def test_coloring_stays_proper(self, cfg):
        net = BroadcastNetwork(gnp_graph(300, 0.05, seed=4))
        state = ColoringState(net)
        cfg_hot = ColoringConfig.practical(slack_probability=0.5)
        generate_slack(state, np.zeros(net.n, dtype=np.int64), cfg_hot, SeedSequencer(4))
        state.verify()

    def test_colored_nodes_do_not_retry(self, cfg):
        net = BroadcastNetwork(gnp_graph(100, 0.1, seed=5))
        state = ColoringState(net)
        state.adopt(np.array([0]), np.array([0]))
        cfg_hot = ColoringConfig.practical(slack_probability=1.0)
        rep = generate_slack(state, np.zeros(net.n, dtype=np.int64), cfg_hot, SeedSequencer(5))
        assert rep.participants <= net.n - 1
        assert state.colors[0] == 0

    def test_report_dict(self, cfg):
        net = BroadcastNetwork(gnp_graph(50, 0.1, seed=6))
        state = ColoringState(net)
        rep = generate_slack(state, np.zeros(net.n, dtype=np.int64), cfg, SeedSequencer(6))
        d = rep.as_dict()
        assert set(d) == {"participants", "colored"}
        assert d["colored"] <= d["participants"]


class TestSlackProportionalToSparsity:
    def test_lemma_2_12_shape(self):
        """Statistical check of Lemma 2.12: sparser nodes end with more
        slack after slack generation (averaged over seeds)."""
        # Graph with graded sparsity: one clique (zero-sparse) + a random
        # sparse region with the same max degree.
        import networkx as nx

        clique_n = 30
        edges = [(i, j) for i in range(clique_n) for j in range(i + 1, clique_n)]
        rng = np.random.default_rng(0)
        sparse_n = 200
        for v in range(clique_n, clique_n + sparse_n):
            targets = rng.choice(
                np.arange(clique_n, clique_n + sparse_n), size=29, replace=False
            )
            for u in targets:
                if u != v:
                    edges.append((v, int(u)))
        net = BroadcastNetwork((clique_n + sparse_n, edges))
        zeta = local_sparsity(net)
        assert zeta[:clique_n].mean() < zeta[clique_n:].mean()

        cfg_hot = ColoringConfig.practical(slack_probability=0.2)
        slack_gain_sparse = []
        slack_gain_dense = []
        for seed in range(5):
            state = ColoringState(net)
            base = state.slack()
            generate_slack(
                state, np.zeros(net.n, dtype=np.int64), cfg_hot, SeedSequencer(seed)
            )
            # Permanent slack for *uncolored* nodes.
            gain = state.slack() - base
            unc = state.colors < 0
            slack_gain_dense.append(gain[: clique_n][unc[:clique_n]].mean())
            slack_gain_sparse.append(gain[clique_n:][unc[clique_n:]].mean())
        assert np.mean(slack_gain_sparse) > np.mean(slack_gain_dense)
