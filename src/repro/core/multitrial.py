"""MultiTrial: trying many colors per round under O(log n)-bit broadcasts
(Lemma 2.14, [SW10, HN23, HKNT22]).

The bandwidth trick (Challenge 1 of §1.2): instead of broadcasting the
tried colors explicitly, a node broadcasts one short *seed*; every
neighbor expands the seed into the same pseudorandom sequence of colors
from the node's publicly known list L(v) (Property 1 of Lemma 2.14 — in
this pipeline every list is a color interval, and interval endpoints were
broadcast during setup).

Adoption rule: v adopts the first color c in its expanded sequence such
that (a) no colored neighbor holds c and (b) no *smaller-ID* active
neighbor u has c anywhere in u's expanded sequence.  Rule (b) makes
simultaneous adoption conflict-free: if adjacent u < v both could adopt c,
then c ∈ X_u, so v skipped it.

The number of tries grows geometrically per iteration — the engine behind
the O(log* n) bound: with slack ≥ 2d̂ each try fails with probability
≤ 1/2, so the uncolored degree decays doubly exponentially while the try
budget catches up.

Execution engines (DESIGN.md §4): the round is a pure function of the
per-node expansions, so the adoption rule admits two implementations that
must agree entry for entry.

* ``"vectorized"`` (default) — the whole iteration runs on the CSR edge
  arrays: the (A×k) proposal matrix is built in one call, colored-neighbor
  collisions die via a sorted join (``searchsorted`` over per-node sorted
  neighbor colors), smaller-ID expansion collisions die via a sorted
  membership join over per-node sorted expansions, and each row adopts its
  first surviving column with one ``argmax``.  No per-node Python.
* ``"pernode"`` — the reference loop (one node at a time), kept for the
  engine-equivalence tests and the tracked perf baseline
  (``BENCH_multitrial.json``).

Round and bit accounting is engine-independent; with the ``"prg"`` sampler
both engines reproduce the pre-vectorization color streams byte for byte.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.config import ColoringConfig
from repro.core.state import ColoringState
from repro.hashing.expander import walk_colors
from repro.hashing.prg import derive_seeds_batch, expand_indices, expand_indices_batch
from repro.simulator.rng import SeedSequencer
from repro.util.bitio import bits_for_color

__all__ = ["MultiTrialReport", "multitrial", "ENGINES"]

ENGINES = ("vectorized", "pernode")

_ENGINE_ENV = "REPRO_MULTITRIAL_ENGINE"


@dataclass
class MultiTrialReport:
    iterations: int = 0
    colored: int = 0
    remaining: int = 0
    engine: str = "vectorized"
    per_iteration: list[dict] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "iterations": self.iterations,
            "colored": self.colored,
            "remaining": self.remaining,
            "engine": self.engine,
        }


def _expand_list(seed: int, k: int, lo: int, hi: int, sampler: str = "prg") -> np.ndarray:
    """The public expansion both v and its neighbors compute: k colors from
    the interval [lo, hi) — via counter-mode PRG or the [HN23] expander
    walk, per config."""
    width = hi - lo
    if width <= 0 or k <= 0:
        return np.empty(0, dtype=np.int64)
    if sampler == "expander":
        return walk_colors(seed, k, lo, hi)
    return lo + expand_indices(seed, k, width)


def _proposal_matrix(
    active: np.ndarray,
    k: int,
    list_lo: np.ndarray,
    list_hi: np.ndarray,
    cfg: ColoringConfig,
    seq: SeedSequencer,
    phase: str,
    it: int,
) -> np.ndarray:
    """The (A×k) matrix of tried colors: row i is active[i]'s expansion of
    its broadcast seed over its interval.  Rows whose interval is empty are
    all ``-1``.  This is the *public* computation — broadcaster and every
    listener produce identical rows from the seed alone."""
    lo = list_lo[active].astype(np.int64)
    hi = list_hi[active].astype(np.int64)
    if cfg.multitrial_sampler == "batched":
        # One blake2b for the round, one vectorized mix for all A seeds,
        # one counter-mode call for all A×k colors.
        base = seq.derive_seed("mt", phase, it)
        seeds = derive_seeds_batch(active, base)
        idx = expand_indices_batch(seeds, k, hi - lo)
        return np.where(idx >= 0, lo[:, None] + idx, np.int64(-1))
    proposals = np.full((active.size, k), -1, dtype=np.int64)
    for i, v in enumerate(active):
        seed = seq.derive_seed("mt", phase, it, int(v))
        x_v = _expand_list(seed, k, int(lo[i]), int(hi[i]), cfg.multitrial_sampler)
        if x_v.size:
            proposals[i] = x_v
    return proposals


def _resolve_pernode(
    state: ColoringState, active: np.ndarray, proposals: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Reference adoption rule, one node at a time (the pre-vectorization
    loop).  Kept as the equivalence/bench baseline."""
    net = state.net
    pos = np.full(state.n, -1, dtype=np.int64)
    pos[active] = np.arange(active.size)
    adopt_nodes: list[int] = []
    adopt_colors: list[int] = []
    for i, v in enumerate(active):
        v = int(v)
        x_v = proposals[i]
        if x_v[0] < 0:  # empty interval — rows are homogeneous
            continue
        nbrs = net.neighbors(v)
        nbr_colors = state.colors[nbrs]
        nbr_colors = nbr_colors[nbr_colors >= 0]
        forbidden_parts = [nbr_colors]
        for u in nbrs:
            u = int(u)
            if u < v and pos[u] >= 0:
                forbidden_parts.append(proposals[pos[u]])
        forbidden = (
            np.concatenate(forbidden_parts) if len(forbidden_parts) > 1 else nbr_colors
        )
        ok = ~np.isin(x_v, forbidden)
        hits = np.flatnonzero(ok)
        if hits.size:
            adopt_nodes.append(v)
            adopt_colors.append(int(x_v[hits[0]]))
    return np.asarray(adopt_nodes, dtype=np.int64), np.asarray(adopt_colors, dtype=np.int64)


def _resolve_vectorized(
    state: ColoringState, active: np.ndarray, proposals: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Edge-wise adoption over the CSR arrays — no per-node Python.

    Kill rule (a): a proposal equal to any colored neighbor's color dies.
    Sorted join: pack (row, color) pairs of colored neighbors into integer
    keys, ``searchsorted`` every proposal entry against the sorted keys.

    Kill rule (b): a proposal present anywhere in a smaller-ID active
    neighbor's expansion dies.  Per-row sorted expansions concatenate into
    one globally sorted key array (row offsets dominate the in-row values),
    so one ``searchsorted`` per directed active edge batch answers every
    membership query.
    """
    net = state.net
    a_count, k = proposals.shape
    pos = np.full(state.n, -1, dtype=np.int64)
    pos[active] = np.arange(a_count)

    # Key packing span: strictly larger than any color appearing in either
    # join (proposals, colored neighbor colors) plus a sentinel slot.
    span = int(
        max(
            state.num_colors,
            int(proposals.max(initial=-1)) + 1,
            1,
        )
    ) + 2
    sentinel = span - 1  # never a real color on either side of a join

    src, dst = net.edge_src, net.indices
    src_pos = pos[src]
    src_active = src_pos >= 0

    # --- rule (a): colored-neighbor collisions -------------------------
    dst_colors = state.colors[dst]
    am = src_active & (dst_colors >= 0)
    colored_keys = np.unique(src_pos[am] * span + dst_colors[am])
    row_base = np.arange(a_count, dtype=np.int64)[:, None] * span
    query = row_base + np.where(proposals >= 0, proposals, sentinel)
    loc = np.searchsorted(colored_keys, query.ravel())
    loc_ok = loc < colored_keys.size
    killed = np.zeros(a_count * k, dtype=bool)
    killed[loc_ok] = colored_keys[loc[loc_ok]] == query.ravel()[loc_ok]
    killed = killed.reshape(a_count, k)

    # --- rule (b): smaller-ID active neighbors' expansions -------------
    bm = src_active & (pos[dst] >= 0) & (dst < src)
    if bm.any():
        v_rows = src_pos[bm]          # the node whose proposals may die
        u_rows = pos[dst[bm]]          # the smaller-ID active neighbor
        sorted_exp = np.sort(np.where(proposals >= 0, proposals, sentinel), axis=1)
        flat_keys = (row_base + sorted_exp).ravel()  # globally sorted
        q2 = u_rows[:, None] * span + np.where(
            proposals[v_rows] >= 0, proposals[v_rows], sentinel - 1
        )
        loc2 = np.searchsorted(flat_keys, q2.ravel())
        loc2_ok = loc2 < flat_keys.size
        hit2 = np.zeros(q2.size, dtype=bool)
        hit2[loc2_ok] = flat_keys[loc2[loc2_ok]] == q2.ravel()[loc2_ok]
        if hit2.any():
            flat_idx = (v_rows[:, None] * k + np.arange(k, dtype=np.int64)).ravel()
            killed.ravel()[np.unique(flat_idx[hit2])] = True

    alive = (proposals >= 0) & ~killed
    has = alive.any(axis=1)
    first = np.argmax(alive, axis=1)
    rows = np.flatnonzero(has)
    return active[rows], proposals[rows, first[rows]]


def multitrial(
    state: ColoringState,
    mask: np.ndarray,
    list_lo: np.ndarray,
    list_hi: np.ndarray,
    cfg: ColoringConfig,
    seq: SeedSequencer,
    phase: str,
    engine: str | None = None,
) -> MultiTrialReport:
    """Color (as many as possible of) the nodes in ``mask`` whose color
    lists are the intervals ``[list_lo[v], list_hi[v])``.

    Returns a report; nodes still uncolored after ``cfg.multitrial_max_iters``
    iterations are left for the caller (the cleanup phase picks them up —
    with the paper's slack guarantees this does not happen w.h.p.).

    ``engine`` selects the adoption-rule implementation ("vectorized" or
    "pernode"); the two are equivalent by construction and by test.  The
    default is "vectorized" (override per call or via the
    ``REPRO_MULTITRIAL_ENGINE`` environment variable).
    """
    if engine is None:
        engine = os.environ.get(_ENGINE_ENV, "vectorized")
    if engine not in ENGINES:
        raise ValueError(f"unknown multitrial engine: {engine!r}")
    resolve = _resolve_vectorized if engine == "vectorized" else _resolve_pernode
    net = state.net
    report = MultiTrialReport(engine=engine)
    k = float(cfg.multitrial_initial)
    for it in range(cfg.multitrial_max_iters):
        active = np.flatnonzero(mask & (state.colors < 0))
        if active.size == 0:
            break
        report.iterations += 1
        k_i = int(min(cfg.multitrial_cap, max(1, round(k))))

        proposals = _proposal_matrix(
            active, k_i, list_lo, list_hi, cfg, seq, phase, it
        )
        adopt_nodes, adopt_colors = resolve(state, active, proposals)

        if adopt_nodes.size:
            state.adopt(adopt_nodes, adopt_colors)
        # Round 1: seeds (one O(log n)-bit word — capped for tiny graphs
        # where 64 raw bits would exceed the scaled budget); round 2:
        # adopted colors.
        seed_bits = min(64, net.bandwidth_bits) if net.bandwidth_bits else 64
        net.account_vector_round(int(active.size), seed_bits, phase=phase)
        net.account_vector_round(
            int(adopt_nodes.size), bits_for_color(state.delta), phase=phase
        )
        report.colored += int(adopt_nodes.size)
        report.per_iteration.append(
            {
                "iteration": it,
                "tries": k_i,
                "active": int(active.size),
                "colored": int(adopt_nodes.size),
            }
        )
        k *= cfg.multitrial_growth

    report.remaining = int((mask & (state.colors < 0)).sum())
    return report
