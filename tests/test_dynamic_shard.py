"""The sharded dynamic engine (repro.shard.dynamic, ISSUE 10 tentpole).

Three load-bearing guarantees:

* **k=1 identity**: with one shard the engine *is* DynamicColoring —
  colors, reports (modulo wall-clock), rounds, and bits are byte-
  identical across the full churn_quick matrix.  This is the benchmark
  gate's correctness anchor.
* **k>1 invariants**: after every batch of every schedule the coloring
  is proper, complete on active nodes, and within the Δ_t+1 budget —
  same contract as the unsharded engine, now re-established by
  shard-local repair plus delta-scaled cut reconciliation.
* **delta-aware ACD**: the maintained fingerprint grid equals a fresh
  sketch of the current topology after every fallback — the refresh
  path may save broadcasts, never change results.
"""

import numpy as np
import pytest

from repro.config import ColoringConfig
from repro.dynamic import DynamicColoring
from repro.graphs.families import make_churn
from repro.hashing.fingerprints import minwise_fingerprints
from repro.shard import ShardedDynamicColoring

QUICK_FAMILIES = ("gnp-churn", "mobile", "blobs-churn")


def strip_seconds(d: dict) -> dict:
    return {k: v for k, v in d.items() if "seconds" not in k}


def run_engine(engine, schedule):
    reports = [strip_seconds(engine.apply_batch(b).as_dict()) for b in schedule]
    return engine, reports


class TestIdentityAtK1:
    """k == 1 must execute zero sharded code: every observable —
    colors, per-batch reports, total rounds, total bits — matches
    DynamicColoring exactly (only wall-clock may differ)."""

    @pytest.mark.parametrize("family", QUICK_FAMILIES)
    @pytest.mark.parametrize("n", [256, 512])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_churn_quick_matrix(self, family, n, seed):
        schedule = make_churn(family, n, 16.0, seed, batches=5,
                              churn_fraction=0.08)
        cfg = ColoringConfig.practical(seed=seed)
        ref, ref_reports = run_engine(
            DynamicColoring(schedule.initial, cfg), schedule
        )
        got, got_reports = run_engine(
            ShardedDynamicColoring(schedule.initial, cfg, k=1), schedule
        )
        assert got.colors.tolist() == ref.colors.tolist()
        assert got.active.tolist() == ref.active.tolist()
        assert got_reports == ref_reports
        assert got.initial_rounds == ref.initial_rounds
        assert got.net.metrics.total_rounds == ref.net.metrics.total_rounds
        assert got.net.metrics.total_bits == ref.net.metrics.total_bits

    def test_k1_runs_no_sharded_code(self):
        schedule = make_churn("gnp-churn", 200, 8.0, 3, batches=3)
        engine, _ = run_engine(
            ShardedDynamicColoring(schedule.initial, k=1), schedule
        )
        assert engine.routes == []  # the routing plane never engaged


class TestShardedInvariants:
    @pytest.mark.parametrize("family", QUICK_FAMILIES)
    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_invariant_after_every_batch(self, family, k):
        schedule = make_churn(family, 400, 12.0, seed=k, batches=5,
                              churn_fraction=0.1)
        cfg = ColoringConfig.practical(seed=k)
        engine = ShardedDynamicColoring(schedule.initial, cfg, k=k)
        for batch in schedule:
            report = engine.apply_batch(batch)
            assert engine.is_proper()
            assert engine.is_complete()
            assert engine.colors_used() <= max(engine.net.delta, 0) + 1
            assert report.proper and report.complete
        routes = engine.route_summary()
        assert routes["k"] == k
        assert routes["batches_routed"] >= 1
        assert 0 <= routes["mean_shards_touched"] <= k
        assert routes["max_reconcile_touched_fraction"] <= 1.0

    def test_determinism(self):
        schedule = make_churn("mobile", 300, 10.0, seed=5, batches=4)
        cfg = ColoringConfig.practical(seed=5)
        a, ra = run_engine(ShardedDynamicColoring(schedule.initial, cfg, k=4),
                           schedule)
        b, rb = run_engine(ShardedDynamicColoring(schedule.initial, cfg, k=4),
                           schedule)
        assert a.colors.tolist() == b.colors.tolist()
        assert ra == rb
        assert a.net.metrics.total_bits == b.net.metrics.total_bits

    def test_run_surface_matches_parent(self):
        schedule = make_churn("gnp-churn", 250, 8.0, seed=2, batches=4)
        result = ShardedDynamicColoring(schedule, k=3).run(schedule)
        summary = result.summary()
        assert summary["proper_all"] and summary["complete_all"]
        assert summary["colors_within_budget"]
        assert summary["batches"] == schedule.num_batches

    def test_invalid_k_raises(self):
        schedule = make_churn("gnp-churn", 50, 4.0, seed=0, batches=1)
        with pytest.raises(ValueError):
            ShardedDynamicColoring(schedule, k=0)

    def test_warm_start_skips_initial_coloring(self):
        schedule = make_churn("gnp-churn", 200, 8.0, seed=7, batches=2)
        cold = ShardedDynamicColoring(schedule.initial, k=4)
        warm = ShardedDynamicColoring(
            schedule.initial, k=4, initial_colors=cold.colors.copy()
        )
        assert warm.initial_rounds == 0
        assert warm.colors.tolist() == cold.colors.tolist()
        for batch in schedule:
            warm.apply_batch(batch)
            assert warm.is_proper() and warm.is_complete()


class TestDeltaAwareACD:
    """Fallbacks at k > 1 route through the maintained sketch; the grid
    must equal a from-scratch sketch of the *current* topology after
    every batch, or the refresh path silently drifts."""

    def force_fallback_cfg(self, seed, **kw):
        # dynamic_fallback_fraction < 0 makes every batch a fallback.
        return ColoringConfig.practical(
            seed=seed, dynamic_fallback_fraction=-1.0, **kw
        )

    @pytest.mark.parametrize("family", ["gnp-churn", "mobile"])
    def test_maintained_sketch_equals_fresh(self, family):
        schedule = make_churn(family, 300, 10.0, seed=11, batches=4,
                              churn_fraction=0.1)
        cfg = self.force_fallback_cfg(11)
        engine = ShardedDynamicColoring(schedule.initial, cfg, k=4)
        for batch in schedule:
            report = engine.apply_batch(batch)
            assert report.mode == "fallback"
            assert engine.is_proper() and engine.is_complete()
            net = engine.net
            fresh = minwise_fingerprints(
                net.indptr, net.indices, net.n,
                cfg.acd_minhash_samples, cfg.acd_minhash_bits,
                engine._acd_salt,
            )
            assert np.array_equal(engine._acd_fps, fresh)
            assert not engine._acd_dirty.any()  # consumed by the fallback

    def test_resketch_off_falls_back_to_parent(self):
        schedule = make_churn("gnp-churn", 250, 8.0, seed=13, batches=3)
        cfg = self.force_fallback_cfg(13, dynamic_shard_resketch=False)
        engine = ShardedDynamicColoring(schedule.initial, cfg, k=4)
        for batch in schedule:
            report = engine.apply_batch(batch)
            assert report.mode == "fallback"
            assert engine.is_proper() and engine.is_complete()
        assert engine._acd_fps is None  # the cache never materialized

    def test_fallback_cheaper_than_fresh_sketch_on_small_delta(self):
        """The broadcast-economy claim: with the sketch maintained, a
        fallback's acd/sketch phase charges rounds for the changed nodes
        only, so its bits are strictly below the resketch-off path."""
        schedule = make_churn("gnp-churn", 400, 10.0, seed=17, batches=4,
                              churn_fraction=0.02)

        def total_sketch_bits(resketch):
            cfg = self.force_fallback_cfg(17, dynamic_shard_resketch=resketch)
            engine = ShardedDynamicColoring(schedule.initial, cfg, k=4)
            for batch in schedule:
                engine.apply_batch(batch)
            return engine.net.metrics.phases["acd/sketch"].total_bits

        assert total_sketch_bits(True) < total_sketch_bits(False)


class TestRunnerIntegration:
    def test_dynamic_shard_trial_payload(self):
        from repro.runner.execute import run_trial
        from repro.runner.spec import TrialSpec

        spec = TrialSpec(family="gnp-churn", n=200, avg_degree=8.0, seed=1,
                         algorithm="dynamic_shard",
                         overrides=(("shard_k", 4),))
        result = run_trial(spec)
        assert result.ok, result.error
        payload = result.payload
        assert payload["proper"] and payload["complete"]
        assert payload["k"] == 4
        assert 0.0 <= payload["max_reconcile_touched_fraction"] <= 1.0
        assert "mean_shards_touched" in payload

    def test_churn_family_accepts_both_dynamic_algorithms(self):
        from repro.runner.spec import TrialSpec

        TrialSpec(family="gnp-churn", algorithm="dynamic_shard")  # ok
        with pytest.raises(ValueError, match="dynamic"):
            TrialSpec(family="gnp-churn", algorithm="broadcast")
