"""Broadcast messages with explicit bit sizes.

A BCONGEST broadcast is "one O(log n)-bit message to all neighbors".  The
simulator represents it as a :class:`Broadcast`: an arbitrary payload plus
the number of bits a real encoding would occupy, computed by the codecs in
:mod:`repro.util.bitio`.  The network refuses messages over the bandwidth
cap, so accidental use of large messages fails loudly instead of silently
breaking the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import numpy as np

from repro.util.bitio import (
    bitmap_bits,
    bits_for_color,
    bits_for_count,
    bits_for_id,
    bits_for_int,
)

__all__ = [
    "Broadcast",
    "color_message",
    "id_message",
    "bitmap_message",
    "seed_message",
    "count_message",
    "label_list_message",
    "tuple_message",
]


@dataclass(frozen=True)
class Broadcast:
    """One broadcast: ``payload`` delivered to every neighbor, ``bits`` of
    bandwidth consumed, ``tag`` for tracing/debugging."""

    payload: Any
    bits: int
    tag: str = ""

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError("a broadcast costs at least 1 bit")


def color_message(color: int, delta: int, tag: str = "color") -> Broadcast:
    """A single color (or ⊥ encoded as -1) out of the palette [Δ+1]."""
    return Broadcast(payload=int(color), bits=bits_for_color(delta), tag=tag)


def id_message(node_id: int, n: int, tag: str = "id") -> Broadcast:
    """A node identifier out of [n]."""
    return Broadcast(payload=int(node_id), bits=bits_for_id(n), tag=tag)


def bitmap_message(bitmap: Sequence[bool] | np.ndarray, tag: str = "bitmap") -> Broadcast:
    """A bitmap message; bits == its length (Algorithm 2's subpalette maps)."""
    arr = np.asarray(bitmap, dtype=bool)
    return Broadcast(payload=arr, bits=bitmap_bits(arr.size), tag=tag)


def seed_message(seed: int, seed_bits: int = 64, tag: str = "seed") -> Broadcast:
    """A PRG seed — the representative-set trick costs one word."""
    return Broadcast(payload=int(seed), bits=int(seed_bits), tag=tag)


def count_message(value: int, max_value: int, tag: str = "count") -> Broadcast:
    """A bounded counter (group sizes in Permute, |S_i| in prefix sums)."""
    return Broadcast(payload=int(value), bits=bits_for_count(max_value), tag=tag)


def label_list_message(
    labels: Sequence[int], label_universe: int, tag: str = "labels"
) -> Broadcast:
    """A list of small labels (Relabel's candidate labels, Permute's
    in-bucket permutations).  Bits = len · ceil(log2 universe)."""
    bits = max(1, len(labels)) * bits_for_int(label_universe)
    return Broadcast(payload=tuple(int(x) for x in labels), bits=bits, tag=tag)


def tuple_message(fields: Iterable[tuple[Any, int]], tag: str = "tuple") -> Broadcast:
    """A product message: ``fields`` is (value, bits) pairs; total bits is
    the sum.  Used e.g. for Algorithm 5's (ID, t, t', r) tuples."""
    values = []
    total = 0
    for value, bits in fields:
        values.append(value)
        total += int(bits)
    return Broadcast(payload=tuple(values), bits=max(1, total), tag=tag)
