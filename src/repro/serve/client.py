"""Blocking client for the ``repro serve`` protocol.

:class:`ServeClient` is the reference consumer of docs/PROTOCOL.md —
the CLI, the tests and ``examples/streaming_demo.py`` all talk to the
daemon through it.  It is deliberately synchronous (a socket plus a
buffered file object): the protocol is request/response per connection
except for the pushed ``batch_report`` frames, which the client stashes
in :attr:`reports` as they interleave with replies.

Error frames surface as :class:`~repro.serve.protocol.ProtocolError`
(``exc.code``/``exc.retry_after`` carry the wire fields), except inside
:meth:`update_batch`'s retry loop, which honors the ``queue-full`` →
``retry_after`` backpressure contract for you.

Both retry loops — connect (racing a booting daemon) and ``queue-full``
resubmission — wait with **capped exponential backoff plus deterministic
jitter** (:func:`_backoff_delay`): waits grow geometrically so a dead or
saturated server is not hammered, and the jitter (a pure hash of the
attempt number and a caller key) decorrelates clients without making
tests flaky.  Exhaustion raises the typed :class:`RetriesExhausted`
carrying how many attempts were made and how long was spent waiting.
"""

from __future__ import annotations

import hashlib
import socket
import time
from types import TracebackType

from repro.dynamic.events import UpdateBatch
from repro.serve import protocol as wire

__all__ = ["ServeClient", "RetriesExhausted", "connect"]


class RetriesExhausted(wire.ProtocolError):
    """A client retry loop gave up: every attempt failed (connect) or was
    rejected (``queue-full``).  Subclasses :class:`ProtocolError` so
    existing ``except ProtocolError`` handlers keep working; adds the
    retry ledger — ``attempts`` made and ``total_wait`` seconds slept."""

    def __init__(
        self, code: str, message: str, *, attempts: int, total_wait: float
    ) -> None:
        super().__init__(code, message)
        self.attempts = attempts
        self.total_wait = total_wait


def _backoff_delay(
    base: float, cap: float, attempt: int, *key: object
) -> float:
    """The wait before retry number ``attempt`` (0-based):
    ``min(cap, base·2^attempt) · u`` with jitter ``u ∈ [0.5, 1.0)``
    derived by hashing ``(attempt, *key)`` — deterministic for a given
    caller (reproducible tests) yet decorrelated across callers that
    pass distinct keys."""
    material = "\x1f".join(str(k) for k in (attempt, *key)).encode()
    digest = hashlib.blake2b(material, digest_size=8).digest()
    u = 0.5 + (int.from_bytes(digest, "big") % 4096) / 8192.0
    return min(float(cap), float(base) * (2.0 ** attempt)) * u


class ServeClient:
    """One connection to a coloring server.

    Parameters
    ----------
    socket_path / host+port:
        The server endpoint — exactly one of unix path or TCP port.
    timeout:
        Socket timeout in seconds for connect and each read.
    retries / retry_delay:
        Connection attempts while the daemon boots (the CLI and the
        demo spawn the server as a subprocess and race its bind).
        ``retry_delay`` is the backoff *base*: waits double per attempt
        up to a 1-second cap, with deterministic jitter
        (:func:`_backoff_delay`).

    Use as a context manager; :meth:`hello` (version negotiation) runs
    automatically on entry::

        with ServeClient(socket_path=p) as c:
            c.load_graph(n, edges, seed=7)
            report = c.update_batch(batch)
    """

    def __init__(
        self,
        *,
        socket_path: str | None = None,
        host: str = "127.0.0.1",
        port: int | None = None,
        timeout: float = 60.0,
        retries: int = 50,
        retry_delay: float = 0.1,
    ) -> None:
        if (socket_path is None) == (port is None):
            raise ValueError("exactly one of socket_path / port is required")
        last: Exception | None = None
        attempts = max(1, retries)
        total_wait = 0.0
        endpoint = socket_path if socket_path is not None else f"{host}:{port}"
        for attempt in range(attempts):
            try:
                if socket_path is not None:
                    self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                    self.sock.settimeout(timeout)
                    self.sock.connect(socket_path)
                else:
                    self.sock = socket.create_connection((host, port), timeout=timeout)
                break
            except OSError as exc:
                last = exc
                if attempt + 1 < attempts:
                    delay = _backoff_delay(retry_delay, 1.0, attempt, "connect", endpoint)
                    total_wait += delay
                    time.sleep(delay)
        else:
            raise ConnectionError(
                f"cannot reach server after {attempts} attempt(s) "
                f"({total_wait:.2f}s waiting): {last}"
            ) from last
        self.fp = self.sock.makefile("rwb")
        self.reports: list[wire.BatchReportFrame] = []
        """Pushed ``batch_report`` frames, in arrival order."""
        self.welcome: wire.Welcome | None = None
        self._next_id = 0

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _fresh_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def send(self, frame: wire.Frame) -> None:
        """Fire one frame without waiting for anything back."""
        wire.write_frame(self.fp, frame)

    def recv(self) -> wire.Frame | None:
        """Read one frame (``None`` on clean EOF).  Does *not* filter
        pushed reports — most callers want :meth:`_rpc` instead."""
        return wire.read_frame(self.fp)

    def _rpc(self, frame: wire.Frame) -> wire.Frame:
        """Send ``frame``, then read until its response arrives, stashing
        any interleaved ``batch_report`` pushes.  Error frames raise."""
        self.send(frame)
        return self._wait_reply(frame.id)

    def _wait_reply(self, request_id: int) -> wire.Frame:
        while True:
            reply = self.recv()
            if reply is None:
                raise ConnectionError("server closed the connection mid-request")
            if isinstance(reply, wire.BatchReportFrame):
                self.reports.append(reply)
                continue
            if isinstance(reply, wire.ErrorFrame):
                raise reply.to_exception()
            if reply.id != request_id:
                raise wire.ProtocolError(
                    "bad-payload",
                    f"response id {reply.id} does not match request {request_id}",
                )
            return reply

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------
    def hello(self, client: str = "repro-client") -> wire.Welcome:
        """Negotiate the protocol version (must precede everything else)."""
        reply = self._rpc(
            wire.Hello(
                id=self._fresh_id(),
                versions=[wire.PROTOCOL_VERSION],
                client=client,
            )
        )
        assert isinstance(reply, wire.Welcome)
        self.welcome = reply
        return reply

    def load_graph(self, n: int, edges, **config) -> wire.GraphLoaded:
        """Install the graph; keyword args become config overrides
        (``seed=...``, ``initial="sharded"``, any ColoringConfig field)."""
        edges_list = [
            [int(u), int(v)] for u, v in (edges if edges is not None else [])
        ]
        reply = self._rpc(
            wire.LoadGraph(id=self._fresh_id(), n=int(n), edges=edges_list,
                           config=config)
        )
        assert isinstance(reply, wire.GraphLoaded)
        return reply

    def submit_batch(self, batch: UpdateBatch) -> int:
        """Fire-and-forget one batch; returns its request id.  The matching
        report (or ``queue-full`` error) arrives on a later read —
        pipelined ingestion, used by the backpressure test."""
        request_id = self._fresh_id()
        self.send(wire.UpdateBatchFrame.from_batch(batch, id=request_id))
        return request_id

    def update_batch(
        self,
        batch: UpdateBatch,
        *,
        wait: bool = True,
        max_retries: int = 100,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
    ) -> wire.BatchReportFrame | int:
        """Submit one batch, honoring backpressure.

        With ``wait=True`` (default) blocks until the ``batch_report``
        covering this request arrives and returns it; on ``queue-full``
        waits and resubmits, up to ``max_retries`` times.  Each wait is
        the larger of the server-suggested ``retry_after`` and the
        capped exponential backoff (:func:`_backoff_delay`), so repeated
        rejections slow the client down geometrically instead of
        retrying on a fixed cadence against a saturated server.
        Exhaustion raises :class:`RetriesExhausted` (code
        ``queue-full``) with the attempt count and total wait.  With
        ``wait=False`` behaves like :meth:`submit_batch` (no retry,
        returns the id).
        """
        if not wait:
            return self.submit_batch(batch)
        attempts = max(1, max_retries)
        total_wait = 0.0
        for attempt in range(attempts):
            request_id = self.submit_batch(batch)
            try:
                return self._wait_report(request_id)
            except wire.ProtocolError as exc:
                if exc.code != "queue-full":
                    raise
                if attempt + 1 < attempts:
                    delay = max(
                        float(exc.retry_after or 0.0),
                        _backoff_delay(
                            backoff_base, backoff_cap, attempt, "queue-full", request_id
                        ),
                    )
                    total_wait += delay
                    time.sleep(delay)
        raise RetriesExhausted(
            "queue-full",
            f"batch still rejected after {attempts} attempt(s) "
            f"({total_wait:.2f}s waiting)",
            attempts=attempts,
            total_wait=total_wait,
        )

    def _wait_report(self, request_id: int) -> wire.BatchReportFrame:
        for report in self.reports:
            if request_id in report.ids:
                return report
        while True:
            reply = self.recv()
            if reply is None:
                raise ConnectionError("server closed the connection mid-request")
            if isinstance(reply, wire.BatchReportFrame):
                self.reports.append(reply)
                if request_id in reply.ids:
                    return reply
                continue
            if isinstance(reply, wire.ErrorFrame):
                raise reply.to_exception()
            raise wire.ProtocolError(
                "bad-payload", f"unexpected {reply.TYPE!r} while awaiting report"
            )

    def collect(self, request_ids) -> list[wire.BatchReportFrame]:
        """Block until every id in ``request_ids`` is covered by a stashed
        report; returns the covering reports in arrival order."""
        pending = set(request_ids)
        for report in self.reports:
            pending -= set(report.ids)
        while pending:
            report = self._wait_report(next(iter(pending)))
            pending -= set(report.ids)
        out, seen = [], set()
        wanted = set(request_ids)
        for report in self.reports:
            if wanted & set(report.ids) and id(report) not in seen:
                seen.add(id(report))
                out.append(report)
        return out

    def query_colors(self, nodes=None) -> wire.ColorsReply:
        """Read the maintained coloring (all nodes, or a subset)."""
        payload_nodes = None if nodes is None else [int(x) for x in nodes]
        reply = self._rpc(wire.QueryColors(id=self._fresh_id(), nodes=payload_nodes))
        assert isinstance(reply, wire.ColorsReply)
        return reply

    def query_palette(self, node: int) -> wire.PaletteReply:
        """Read one node's color and free palette."""
        reply = self._rpc(wire.QueryPalette(id=self._fresh_id(), node=int(node)))
        assert isinstance(reply, wire.PaletteReply)
        return reply

    def ping(self) -> wire.Pong:
        """Liveness probe: round-trips a ``ping`` through the server's
        event loop (also refreshes the server's idle-timeout window)."""
        reply = self._rpc(wire.Ping(id=self._fresh_id()))
        assert isinstance(reply, wire.Pong)
        return reply

    def stats(self) -> dict:
        """The server's counter dict (docs/PROTOCOL.md §stats)."""
        reply = self._rpc(wire.StatsRequest(id=self._fresh_id()))
        assert isinstance(reply, wire.StatsReply)
        return reply.stats

    def metrics(self) -> str:
        """The server's Prometheus text exposition (docs/PROTOCOL.md
        §metrics) — same payload the ``--metrics-port`` endpoint serves."""
        reply = self._rpc(wire.MetricsRequest(id=self._fresh_id()))
        assert isinstance(reply, wire.MetricsReply)
        return reply.text

    def snapshot(self, path: str | None = None) -> wire.SnapshotSaved:
        """Force a snapshot now (to ``path`` or the server default)."""
        reply = self._rpc(wire.SnapshotRequest(id=self._fresh_id(), path=path))
        assert isinstance(reply, wire.SnapshotSaved)
        return reply

    def shutdown(self) -> wire.Goodbye:
        """Ask the server to drain, snapshot and exit; waits for Goodbye."""
        reply = self._rpc(wire.Shutdown(id=self._fresh_id()))
        assert isinstance(reply, wire.Goodbye)
        return reply

    # ------------------------------------------------------------------
    # Context manager / teardown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop the connection (without asking the server to exit —
        that's :meth:`shutdown`).  Safe to call twice."""
        for closer in (self.fp.close, self.sock.close):
            try:
                closer()
            except OSError:
                pass

    def __enter__(self) -> "ServeClient":
        self.hello()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()


def connect(**kwargs) -> ServeClient:
    """Open a connection and run ``hello`` — the one-liner form of the
    context-manager entry, for callers that manage lifetime themselves."""
    client = ServeClient(**kwargs)
    client.hello()
    return client
