"""Graph property audits: degrees, density, sparsity summaries.

These are *analysis-side* (centralized) computations used by tests and
experiments to characterize workloads — they are not part of the
distributed algorithm (which must learn such quantities via broadcasts).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulator.network import BroadcastNetwork

__all__ = ["GraphSummary", "summarize_graph", "edge_density", "degeneracy_order"]


@dataclass(frozen=True)
class GraphSummary:
    n: int
    m: int
    delta: int
    min_degree: int
    avg_degree: float
    density: float

    def as_dict(self) -> dict:
        return {
            "n": self.n,
            "m": self.m,
            "delta": self.delta,
            "min_degree": self.min_degree,
            "avg_degree": self.avg_degree,
            "density": self.density,
        }


def summarize_graph(net: BroadcastNetwork) -> GraphSummary:
    degrees = net.degrees
    n, m = net.n, net.m
    return GraphSummary(
        n=n,
        m=m,
        delta=int(degrees.max()) if n else 0,
        min_degree=int(degrees.min()) if n else 0,
        avg_degree=float(degrees.mean()) if n else 0.0,
        density=edge_density(n, m),
    )


def edge_density(n: int, m: int) -> float:
    """m over the maximum possible number of edges."""
    pairs = n * (n - 1) / 2
    return float(m / pairs) if pairs else 0.0


def degeneracy_order(net: BroadcastNetwork) -> np.ndarray:
    """A degeneracy (smallest-last) ordering — used by the greedy baseline
    to get good color counts, and as a reference ordering in tests."""
    n = net.n
    deg = net.degrees.copy()
    removed = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    # Simple bucket queue.
    buckets: list[set[int]] = [set() for _ in range(int(deg.max()) + 2 if n else 1)]
    for v in range(n):
        buckets[deg[v]].add(v)
    cursor = 0
    for i in range(n):
        while cursor < len(buckets) and not buckets[cursor]:
            cursor += 1
        if cursor >= len(buckets):  # pragma: no cover - defensive
            rest = np.flatnonzero(~removed)
            order[i:] = rest
            break
        v = buckets[cursor].pop()
        order[i] = v
        removed[v] = True
        for u in net.neighbors(v):
            u = int(u)
            if not removed[u]:
                buckets[deg[u]].discard(u)
                deg[u] -= 1
                buckets[deg[u]].add(u)
                if deg[u] < cursor:
                    cursor = deg[u]
    return order
