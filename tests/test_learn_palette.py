"""Tests for LearnPalette (Algorithm 2, Lemma 4.2)."""

import numpy as np
import pytest

from repro.config import ColoringConfig
from repro.core.learn_palette import learn_palette
from repro.core.state import ColoringState
from repro.graphs.generators import clique_blob_graph, complete_graph
from repro.simulator.network import BroadcastNetwork
from repro.simulator.rng import SeedSequencer


@pytest.fixture
def cfg():
    return ColoringConfig.practical()


@pytest.fixture
def seq():
    return SeedSequencer(77)


class TestLearnPalette:
    def test_uncolored_clique_everything_free(self, cfg, seq):
        net = BroadcastNetwork(complete_graph(20))
        state = ColoringState(net)
        know = learn_palette(state, np.arange(20), cfg, seq)
        assert know.complete
        assert know.true_free.all()
        assert know.known_free.all()

    def test_learns_used_colors_in_clique(self, cfg, seq):
        net = BroadcastNetwork(complete_graph(20))
        state = ColoringState(net)
        state.adopt(np.array([0, 1, 2]), np.array([5, 7, 11]))
        know = learn_palette(state, np.arange(20), cfg, seq)
        assert know.complete
        assert not know.true_free[5] and not know.true_free[7] and not know.true_free[11]
        for row in range(20):
            pal = know.learned_palette(row)
            assert 5 not in pal and 7 not in pal and 11 not in pal

    def test_never_overapproximates(self, cfg, seq):
        # Learned-used ⊆ true-used, i.e. learned_free ⊇ true_free.
        g = clique_blob_graph(1, 30, anti_edges_per_clique=60, seed=1)
        net = BroadcastNetwork(g)
        state = ColoringState(net)
        state.adopt(np.array([3, 4]), np.array([0, 1]))
        know = learn_palette(state, np.arange(30), cfg, seq)
        assert (know.known_free | ~know.true_free[None, :]).all()

    def test_incomplete_detected_with_anti_edges(self, cfg):
        """With heavy anti-edges a member may miss a color whose holders are
        all non-neighbors; completeness flag must notice when it happens.
        This is a *can-happen* test: we only assert consistency between the
        flag and the matrices, not that failure occurs."""
        g = clique_blob_graph(1, 24, anti_edges_per_clique=120, seed=3)
        net = BroadcastNetwork(g)
        state = ColoringState(net)
        members = np.arange(24)
        colored = members[:8]
        state.adopt(colored, np.arange(8))
        know = learn_palette(state, members, cfg, SeedSequencer(3))
        missed = (~know.known_free ^ ~know.true_free[None, :]).any(axis=1)
        assert know.complete == (not missed.any())
        assert know.incomplete_members == int(missed.sum())

    def test_one_round_charged(self, cfg, seq):
        net = BroadcastNetwork(complete_graph(10))
        state = ColoringState(net)
        learn_palette(state, np.arange(10), cfg, seq, phase="lp")
        assert net.metrics.rounds_in("lp") == 1

    def test_account_false_charges_nothing(self, cfg, seq):
        net = BroadcastNetwork(complete_graph(10))
        state = ColoringState(net)
        learn_palette(state, np.arange(10), cfg, seq, phase="lp", account=False)
        assert net.metrics.rounds_in("lp") == 0

    def test_bitmap_fits_bandwidth(self, cfg):
        n = 300
        net = BroadcastNetwork(
            complete_graph(n), bandwidth_bits=cfg.bandwidth_bits(n)
        )
        state = ColoringState(net)
        learn_palette(state, np.arange(n), cfg, SeedSequencer(5), phase="lp")
        assert net.metrics.max_message_bits <= net.bandwidth_bits

    def test_members_own_neighbors_always_known(self, cfg, seq):
        # Even without bitmaps, direct neighbors' colors are known.
        net = BroadcastNetwork((3, [(0, 1), (1, 2), (0, 2)]))
        state = ColoringState(net)
        state.adopt(np.array([2]), np.array([1]))
        know = learn_palette(state, np.arange(3), cfg, seq)
        for row in range(3):
            assert 1 not in know.learned_palette(row)
