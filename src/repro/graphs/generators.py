"""Graph workload generators.

The paper's algorithm behaves differently on *locally sparse* nodes (which
earn slack from Lemma 2.12) and on *dense* nodes living in almost-cliques
(which need the synchronized color trial).  The generators here produce
both regimes and their mixtures:

* :func:`gnp_graph`, :func:`random_regular_graph` — classic sparse-ish
  random graphs (every node lands in ``V_sparse``).
* :func:`clique_blob_graph`, :func:`planted_acd_graph` — unions of
  near-cliques with controlled anti-degree (removed inside edges) and
  external degree (added cross edges); these exercise the dense machinery
  (matching, put-aside sets, SCT) and have a *known* ground-truth
  decomposition for validation.
* :func:`geometric_graph` — random geometric graphs, the wireless /
  frequency-assignment motivation from the paper's introduction.
* :func:`hard_mix_graph` — dense blobs embedded in a sparse sea.

All generators return ``(n, edges)`` pairs accepted by
:class:`~repro.simulator.network.BroadcastNetwork` and are deterministic in
their ``seed``.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

__all__ = [
    "gnp_graph",
    "random_regular_graph",
    "clique_blob_graph",
    "planted_acd_graph",
    "geometric_graph",
    "geometric_edges",
    "hard_mix_graph",
    "ring_graph",
    "star_graph",
    "empty_graph",
    "complete_graph",
]

GraphInput = tuple[int, np.ndarray]


def _dedup(n: int, edges: Iterable[tuple[int, int]] | np.ndarray) -> GraphInput:
    if isinstance(edges, np.ndarray):
        arr = edges.reshape(-1, 2).astype(np.int64, copy=False)
        arr = arr[arr[:, 0] != arr[:, 1]]
        arr = np.stack(
            [np.minimum(arr[:, 0], arr[:, 1]), np.maximum(arr[:, 0], arr[:, 1])],
            axis=1,
        )
    else:
        arr = np.array(
            [(min(u, v), max(u, v)) for u, v in edges if u != v], dtype=np.int64
        )
        arr = arr.reshape(-1, 2)
    if arr.size:
        arr = np.unique(arr, axis=0)
    return n, arr


def empty_graph(n: int) -> GraphInput:
    """n isolated nodes."""
    return n, np.empty((0, 2), dtype=np.int64)


def complete_graph(n: int) -> GraphInput:
    """The clique K_n."""
    idx = np.arange(n)
    u, v = np.meshgrid(idx, idx, indexing="ij")
    mask = u < v
    return n, np.stack([u[mask], v[mask]], axis=1).astype(np.int64)


def ring_graph(n: int) -> GraphInput:
    """The n-cycle (classic log*-lower-bound topology)."""
    if n < 3:
        return empty_graph(n)
    edges = [(i, (i + 1) % n) for i in range(n)]
    return _dedup(n, edges)


def star_graph(n: int) -> GraphInput:
    """One hub joined to n-1 leaves."""
    return _dedup(n, [(0, i) for i in range(1, n)])


def gnp_graph(n: int, p: float, seed: int = 0) -> GraphInput:
    """Erdős–Rényi G(n, p), vectorized sampling."""
    rng = np.random.default_rng(seed)
    if n < 2 or p <= 0:
        return empty_graph(n)
    # Sample the upper triangle in blocks to bound memory.
    edges = []
    block = 4_000_000
    total_pairs = n * (n - 1) // 2
    if total_pairs <= block:
        iu = np.triu_indices(n, k=1)
        mask = rng.random(iu[0].size) < p
        edges_arr = np.stack([iu[0][mask], iu[1][mask]], axis=1)
        return n, edges_arr.astype(np.int64)
    # Row-block sampling for large n.
    for start in range(0, n):
        row_len = n - start - 1
        if row_len <= 0:
            continue
        mask = rng.random(row_len) < p
        cols = np.flatnonzero(mask) + start + 1
        if cols.size:
            edges.append(np.stack([np.full(cols.size, start), cols], axis=1))
    if not edges:
        return empty_graph(n)
    return n, np.concatenate(edges).astype(np.int64)


def random_regular_graph(n: int, d: int, seed: int = 0) -> GraphInput:
    """A d-regular graph via the configuration model with retry/repair.

    Multi-edges and self-loops from the pairing are dropped, so the result
    is *near*-regular (degree ≤ d); exact regularity is not needed by any
    experiment, only bounded Δ.
    """
    if n * d % 2 != 0:
        d += 1
    if d >= n:
        raise ValueError("need d < n")
    rng = np.random.default_rng(seed)
    stubs = np.repeat(np.arange(n), d)
    rng.shuffle(stubs)
    pairs = stubs.reshape(-1, 2)
    return _dedup(n, [(int(u), int(v)) for u, v in pairs])


def clique_blob_graph(
    num_cliques: int,
    clique_size: int,
    anti_edges_per_clique: int = 0,
    external_edges_per_clique: int = 0,
    seed: int = 0,
) -> GraphInput:
    """Union of ``num_cliques`` cliques of ``clique_size`` nodes each, with
    ``anti_edges_per_clique`` random inside edges *removed* (these become
    the anti-edges the colorful matching feeds on) and
    ``external_edges_per_clique`` random cross-clique edges *added* (these
    set the external degrees the SCT analysis is parameterized by).
    """
    rng = np.random.default_rng(seed)
    n = num_cliques * clique_size
    # Inside edges: one (i, j) template per clique (``triu_indices`` is
    # row-major — the same lexicographic order the old per-pair loop
    # produced, so the anti-edge draws hit the same pairs), minus a
    # without-replacement keep-mask of dropped anti-edges.
    iu, jv = np.triu_indices(clique_size, k=1)
    per_clique = iu.size
    bases = (np.arange(num_cliques, dtype=np.int64) * clique_size)[:, None]
    keep = np.ones((num_cliques, per_clique), dtype=bool)
    if anti_edges_per_clique > 0 and per_clique:
        for k in range(num_cliques):
            drop_idx = rng.choice(
                per_clique,
                size=min(anti_edges_per_clique, per_clique),
                replace=False,
            )
            keep[k, drop_idx] = False
    parts = [
        np.stack(
            [
                np.broadcast_to(bases + iu, keep.shape)[keep],
                np.broadcast_to(bases + jv, keep.shape)[keep],
            ],
            axis=1,
        )
    ]
    # External edges between distinct cliques: batched candidate draws per
    # clique, deduplicated against the already-accepted cross edges, until
    # the quota is met (guard-bounded like the old rejection loop).  Cross
    # edges can never collide with inside edges, so only the accepted
    # cross-edge key set matters.
    if external_edges_per_clique > 0 and num_cliques > 1:
        accepted = np.empty(0, dtype=np.int64)
        for k in range(num_cliques):
            added = 0
            guard = 0
            while added < external_edges_per_clique and guard < 50:
                guard += 1
                need = external_edges_per_clique - added
                m = 2 * need + 4
                u = rng.integers(
                    k * clique_size, (k + 1) * clique_size, size=m, dtype=np.int64
                )
                other = rng.integers(0, num_cliques - 1, size=m, dtype=np.int64)
                other[other >= k] += 1
                v = other * clique_size + rng.integers(
                    0, clique_size, size=m, dtype=np.int64
                )
                key = np.minimum(u, v) * n + np.maximum(u, v)
                # Order-preserving in-batch dedup + reject already-accepted.
                _, first = np.unique(key, return_index=True)
                fresh_mask = np.zeros(m, dtype=bool)
                fresh_mask[first] = True
                fresh_mask &= ~np.isin(key, accepted)
                key = key[fresh_mask][:need]
                accepted = np.concatenate([accepted, key])
                added += key.size
        if accepted.size:
            parts.append(
                np.stack([accepted // n, accepted % n], axis=1).astype(np.int64)
            )
    return _dedup(n, np.concatenate(parts))


def planted_acd_graph(
    num_cliques: int,
    clique_size: int,
    eps: float,
    sparse_nodes: int = 0,
    sparse_degree: int = 8,
    seed: int = 0,
) -> GraphInput:
    """A graph with a *known* ε-almost-clique decomposition.

    Degree discipline is what makes the ground truth valid: Definition
    2.2(2b) requires every member to keep ``(1−ε)Δ`` neighbors *inside* its
    clique, with Δ the **global** max degree.  So internal edges are kept
    with probability ``1 − ε/8`` (inside degree ≈ ``(s−1)(1−ε/8)``), each
    dense node receives at most ``⌊ε·s/8⌋`` cross-clique edges (external
    degree ≤ ``ε·s/4`` counting both directions), and the sparse periphery
    only wires among itself — its low degrees never move Δ.  Ground truth:
    node ``v < num_cliques·clique_size`` belongs to clique
    ``v // clique_size``; the rest are sparse.
    """
    rng = np.random.default_rng(seed)
    n_dense = num_cliques * clique_size
    n = n_dense + sparse_nodes
    parts: list[np.ndarray] = []
    # Internal edges: (num_cliques × pairs) keep-mask in one draw.  The
    # draw order (clique-major, pairs lexicographic) matches the old
    # per-pair loop, so internal edges are stream-identical to it.
    iu, jv = np.triu_indices(clique_size, k=1)
    if iu.size and num_cliques:
        keep = rng.random((num_cliques, iu.size)) >= eps / 8.0
        bases = (np.arange(num_cliques, dtype=np.int64) * clique_size)[:, None]
        parts.append(
            np.stack(
                [
                    np.broadcast_to(bases + iu, keep.shape)[keep],
                    np.broadcast_to(bases + jv, keep.shape)[keep],
                ],
                axis=1,
            )
        )
    # Cross edges: per-node quota keeps external degrees ≤ ε·s/4.
    ext_quota = max(0, int(eps * clique_size / 8.0))
    if num_cliques > 1 and ext_quota and n_dense:
        v = np.repeat(np.arange(n_dense, dtype=np.int64), ext_quota)
        k = v // clique_size
        other = rng.integers(0, num_cliques - 1, size=v.size, dtype=np.int64)
        other[other >= k] += 1
        u = other * clique_size + rng.integers(
            0, clique_size, size=v.size, dtype=np.int64
        )
        parts.append(np.stack([v, u], axis=1))
    # Sparse periphery: wires only among itself so dense degrees stay put.
    if sparse_nodes > 1:
        cap = min(sparse_degree, sparse_nodes - 1)
        if cap > 0:
            v = np.repeat(np.arange(n_dense, n, dtype=np.int64), cap)
            u = n_dense + rng.integers(0, sparse_nodes, size=v.size, dtype=np.int64)
            parts.append(np.stack([v, u], axis=1))
    if not parts:
        return empty_graph(n)
    return _dedup(n, np.concatenate(parts))


def geometric_edges(pts: np.ndarray, radius: float) -> np.ndarray:
    """Edges of the geometric graph on point set ``pts`` (unit square):
    (u, v) with u < v whenever ``|pts[u] − pts[v]| ≤ radius``.  Shared by
    :func:`geometric_graph` and the mobile churn generator, which re-runs
    it per timestep as transmitters move."""
    # Grid-bucketed neighbor search keeps this O(n) for constant density.
    cell = max(radius, 1e-9)
    grid: dict[tuple[int, int], list[int]] = {}
    for i, (x, y) in enumerate(pts):
        grid.setdefault((int(x / cell), int(y / cell)), []).append(i)
    edges = []
    r2 = radius * radius
    for (cx, cy), bucket in grid.items():
        cand: list[int] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                cand.extend(grid.get((cx + dx, cy + dy), []))
        for i in bucket:
            xi, yi = pts[i]
            for j in cand:
                if j <= i:
                    continue
                dx_, dy_ = pts[j][0] - xi, pts[j][1] - yi
                if dx_ * dx_ + dy_ * dy_ <= r2:
                    edges.append((i, j))
    # Each i < j pair is emitted at most once (i lives in exactly one
    # bucket and appears once in cand), so no dedup pass is needed —
    # this runs per timestep in the mobile churn hot path.
    return np.array(edges, dtype=np.int64).reshape(-1, 2)


def geometric_graph(n: int, radius: float, seed: int = 0) -> GraphInput:
    """Random geometric graph on the unit square — the wireless-network
    motivation (frequency assignment) from the paper's introduction."""
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2))
    return n, geometric_edges(pts, radius)


def hard_mix_graph(
    num_cliques: int,
    clique_size: int,
    sparse_nodes: int,
    sparse_p: float,
    bridge_edges: int,
    seed: int = 0,
) -> GraphInput:
    """Dense blobs embedded in a sparse G(n,p) sea with random bridges —
    the mixed regime where both halves of the algorithm must cooperate."""
    rng = np.random.default_rng(seed)
    n_blob, blob_edges = clique_blob_graph(
        num_cliques,
        clique_size,
        anti_edges_per_clique=max(1, clique_size // 8),
        external_edges_per_clique=max(1, clique_size // 10),
        seed=seed,
    )
    n_sea, sea_edges = gnp_graph(sparse_nodes, sparse_p, seed=seed + 1)
    edges = [tuple(e) for e in blob_edges]
    edges.extend((int(u) + n_blob, int(v) + n_blob) for u, v in sea_edges)
    for _ in range(bridge_edges):
        u = int(rng.integers(0, n_blob))
        v = n_blob + int(rng.integers(0, max(n_sea, 1)))
        if v < n_blob + n_sea:
            edges.append((u, v))
    return _dedup(n_blob + n_sea, edges)
