"""Zero-copy shared-memory arena for shard transport (DESIGN.md §7).

Spawning k shard workers used to pickle every :class:`ShardView`'s numpy
arrays through the pool's argument pipe — O(n + m) bytes serialized,
copied, and deserialized once per worker, which is exactly the
whole-graph touch-point that stops k shards from behaving like k
machines (OSERENA's partition-bounded-memory discipline in PAPERS.md is
the target: per-worker footprint proportional to interior + ghost
frontier only).  The arena removes it: the driver packs the view arrays
and the global colors array into one ``multiprocessing.shared_memory``
segment, and workers *attach* — the argument pipe carries only an
:class:`ArenaDescriptor` (segment name + per-array dtype/shape/offset
slices, a few hundred bytes at any n).  A worker's unique RSS is then
the pages of its own slices: shared-memory pages fault in on first
touch, and each shard only ever touches its region.

Lifecycle (the part that must be crash-safe):

* ``create`` — driver side: one segment, arrays copied in once,
  64-byte-aligned offsets.  Every created segment lands in a
  process-wide registry with an ``atexit`` sweep, so a driver that dies
  with an arena live still unlinks it on interpreter exit.
* ``attach`` — worker side: map the segment, build read-only numpy
  views (``writeable=False`` — the ghost contract survives transport),
  and *unregister* the segment from the worker's resource tracker: the
  worker is a borrower, not an owner, and must not fight the driver
  over who unlinks (the stdlib tracker would otherwise unlink a
  still-live segment when the first worker exits).
* ``close`` / ``unlink`` — views dropped, mapping closed; ``unlink``
  (creator only) removes the name.  :class:`ShardedColoring` unlinks in
  a ``finally`` and the chaos campaigns assert :func:`leaked_segments`
  is empty, so injected ``shard.worker`` / ``shard.shm`` faults cannot
  leak ``/dev/shm`` space.

Both lifecycle verbs are fault-injection sites (``"shard.shm"``,
``op="create"`` / ``op="attach"``): a chaos plan can kill the arena at
either end and the supervisor + registry must still leave ``/dev/shm``
clean.
"""

from __future__ import annotations

import atexit
import os
import secrets
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Iterator, Mapping

import numpy as np

from repro.faults import plan as faults

__all__ = [
    "ArraySpec",
    "ArenaDescriptor",
    "ShmArena",
    "leaked_segments",
    "NAME_PREFIX",
]

NAME_PREFIX = "repro-shard"
"""Every arena segment name starts with this — what
:func:`leaked_segments` (and the CI ``ls /dev/shm`` gate) scans for."""

_ALIGN = 64
"""Array offsets are aligned to cache lines so attached views keep
numpy's aligned-access fast paths."""


@dataclass(frozen=True)
class ArraySpec:
    """Where one named array lives inside the segment."""

    name: str
    dtype: str
    shape: tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape, dtype=np.int64)))


@dataclass(frozen=True)
class ArenaDescriptor:
    """The picklable handle workers receive instead of the arrays: the
    segment name plus one :class:`ArraySpec` slice per array.  A few
    hundred bytes at any n — this is the whole cost of spawning a
    worker under ``shard_transport="shm"``."""

    segment: str
    specs: tuple[ArraySpec, ...]
    nbytes: int

    def names(self) -> tuple[str, ...]:
        """The packed array names, in segment layout order."""
        return tuple(s.name for s in self.specs)


class _untracked_attach:
    """Context manager suppressing resource-tracker registration while a
    *borrower* maps a segment (see module docstring).  Registering and
    then unregistering is not enough: under fork all workers share one
    tracker process, and interleaved register/unregister pairs from
    sibling workers race into spurious tracker KeyErrors and — worse —
    an early unlink of a live segment.  Not registering at all is the
    correct borrower semantics (python 3.13's ``track=False``,
    backported here by patching ``register`` around the attach)."""

    def __enter__(self) -> None:
        try:  # pragma: no cover - depends on interpreter internals
            from multiprocessing import resource_tracker

            self._mod = resource_tracker
            self._orig = resource_tracker.register

            def _skip_shm(name: str, rtype: str) -> None:
                if rtype != "shared_memory":
                    self._orig(name, rtype)

            resource_tracker.register = _skip_shm
        except Exception:
            self._mod = None

    def __exit__(self, *exc) -> None:
        if self._mod is not None:  # pragma: no branch
            self._mod.register = self._orig


class _Registry:
    """Process-wide account of segments this process *created* and has
    not yet unlinked — the crash-safety net behind ``atexit`` and the
    chaos campaigns' leak gate."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._live: dict[str, shared_memory.SharedMemory] = {}

    def add(self, shm: shared_memory.SharedMemory) -> None:
        with self._lock:
            self._live[shm.name] = shm

    def remove(self, name: str) -> None:
        with self._lock:
            self._live.pop(name, None)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._live)

    def sweep(self) -> list[str]:
        """Unlink every still-live created segment (idempotent); returns
        the names that were swept."""
        with self._lock:
            live = list(self._live.items())
            self._live.clear()
        swept = []
        for name, shm in live:
            try:
                shm.close()
            except Exception:
                pass
            try:
                shm.unlink()
                swept.append(name)
            except Exception:
                pass
        return swept


_REGISTRY = _Registry()
atexit.register(_REGISTRY.sweep)


def live_segments() -> list[str]:
    """Names of segments created by this process and not yet unlinked."""
    return _REGISTRY.names()


def leaked_segments() -> list[str]:
    """Arena segments visible system-wide (``/dev/shm`` scan on linux,
    falling back to this process's registry) — the chaos campaigns and
    the CI shard-smoke job assert this is empty after every run."""
    root = "/dev/shm"
    if os.path.isdir(root):
        try:
            return sorted(
                name for name in os.listdir(root) if name.startswith(NAME_PREFIX)
            )
        except OSError:  # pragma: no cover
            pass
    return live_segments()


class ShmArena:
    """A named shared-memory segment holding a set of numpy arrays.

    Driver side::

        arena = ShmArena.create({"colors": colors, "nodes": nodes})
        pool.submit(work, arena.descriptor())   # bytes on the pipe: O(1)
        ...
        arena.unlink()                          # in a finally

    Worker side::

        with ShmArena.attach(desc, writeable=("colors",)) as arena:
            nodes = arena.array("nodes")        # zero-copy, read-only
            colors = arena.array("colors")      # zero-copy, writable
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        descriptor: ArenaDescriptor,
        owner: bool,
        writeable: tuple[str, ...] = (),
    ) -> None:
        self._shm: shared_memory.SharedMemory | None = shm
        self._descriptor = descriptor
        self._owner = owner
        self._views: dict[str, np.ndarray] = {}
        for spec in descriptor.specs:
            view = np.frombuffer(
                shm.buf, dtype=np.dtype(spec.dtype), count=int(np.prod(spec.shape, dtype=np.int64)), offset=spec.offset
            ).reshape(spec.shape)
            view.flags.writeable = spec.name in writeable
            self._views[spec.name] = view

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, arrays: Mapping[str, np.ndarray], label: str = "arena"
    ) -> "ShmArena":
        """Pack ``arrays`` into one fresh segment (driver side).  The
        input arrays are copied in once; the returned arena's views are
        writable (the driver owns the data until it publishes)."""
        faults.inject("shard.shm", op="create", label=label)
        specs: list[ArraySpec] = []
        offset = 0
        items = [(name, np.ascontiguousarray(a)) for name, a in arrays.items()]
        for name, arr in items:
            offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
            specs.append(
                ArraySpec(
                    name=name,
                    dtype=arr.dtype.str,
                    shape=tuple(int(s) for s in arr.shape),
                    offset=offset,
                )
            )
            offset += arr.nbytes
        nbytes = max(offset, 1)
        name = f"{NAME_PREFIX}-{label}-{os.getpid()}-{secrets.token_hex(4)}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        _REGISTRY.add(shm)
        descriptor = ArenaDescriptor(segment=shm.name, specs=tuple(specs), nbytes=nbytes)
        arena = cls(shm, descriptor, owner=True, writeable=tuple(arrays))
        for (arr_name, arr) in items:
            if arr.size:
                arena._views[arr_name][...] = arr
        return arena

    @classmethod
    def attach(
        cls, descriptor: ArenaDescriptor, writeable: tuple[str, ...] = ()
    ) -> "ShmArena":
        """Map an existing segment (worker side).  Views come back
        read-only unless named in ``writeable``; the mapping is never
        registered with the resource tracker — the worker borrows, the
        creator owns (see :class:`_untracked_attach`)."""
        faults.inject("shard.shm", op="attach", segment=descriptor.segment)
        with _untracked_attach():
            shm = shared_memory.SharedMemory(name=descriptor.segment)
        return cls(shm, descriptor, owner=False, writeable=writeable)

    # ------------------------------------------------------------------
    def descriptor(self) -> ArenaDescriptor:
        """The picklable handle workers attach with."""
        return self._descriptor

    @property
    def name(self) -> str:
        """The ``/dev/shm`` segment name (``repro-shard-*``)."""
        return self._descriptor.segment

    @property
    def nbytes(self) -> int:
        """Total mapped segment size in bytes."""
        return self._descriptor.nbytes

    def array(self, name: str) -> np.ndarray:
        """Zero-copy view of one packed array."""
        return self._views[name]

    def arrays(self) -> dict[str, np.ndarray]:
        """All views, by name (the same objects every call)."""
        return dict(self._views)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop the views and unmap (idempotent).  Any view still
        referenced elsewhere keeps its page mapping alive until released
        — close is best-effort by design, unlink is the authority."""
        self._views.clear()
        if self._shm is not None:
            try:
                self._shm.close()
            except BufferError:
                # A view escaped (e.g. a network built over it, or a
                # caller's local still in scope).  The name can still be
                # unlinked; the mapping stays alive through the escaped
                # view's buffer chain and dies with it.  Detach the
                # stdlib handles so ``SharedMemory.__del__`` cannot
                # re-raise the BufferError as an unraisable later —
                # only the fd is ours to release now (closing it does
                # not unmap).
                shm = self._shm
                shm._buf = None
                shm._mmap = None
                fd = getattr(shm, "_fd", -1)
                if fd >= 0:
                    try:
                        os.close(fd)
                    except OSError:  # pragma: no cover
                        pass
                    shm._fd = -1
            if not self._owner:
                self._shm = None

    def unlink(self) -> None:
        """Remove the segment name (creator only, idempotent).  Safe to
        call with workers still attached: the memory lives until the
        last mapping closes, but nothing can leak past this call."""
        self.close()
        if self._shm is not None and self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass
            _REGISTRY.remove(self._shm.name)
            self._shm = None

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        if self._owner:
            self.unlink()
        else:
            self.close()

    def __iter__(self) -> Iterator[str]:
        return iter(self._views)
