"""TryColor: the basic randomized color trial (Lemma 2.13).

"When we say a node *tries a random color*, we mean that it broadcasts a
color uniformly sampled from some set (usually from its palette) and
adopts the color if none of its neighbors with smaller ID tried the same
color" (§2.2) — and, of course, if no colored neighbor already holds it.

The round is fully vectorized: proposals are arrays, conflicts are
edge-wise comparisons over the CSR arrays, and the bit cost (one color
broadcast per participant) goes through the shared metrics.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.state import ColoringState
from repro.simulator.rng import SeedSequencer
from repro.util.bitio import bits_for_color

__all__ = [
    "try_color_round",
    "resolve_proposals",
    "interval_sampler",
    "palette_sampler",
    "palette_interval_sampler",
]


def resolve_proposals(
    state: ColoringState,
    proposals: np.ndarray,
    phase: str,
    bits: int | None = None,
) -> int:
    """Adjudicate a full array of simultaneous color proposals (−1 = none)
    with the standard rule — drop a proposal that matches a colored
    neighbor or a smaller-ID neighbor's proposal — then adopt the
    survivors.  Returns the number of adoptions.  Used by every phase that
    builds proposals its own way (SCT's permutation trial, matching, ...).
    """
    net = state.net
    valid = (proposals >= 0) & (state.colors < 0)
    src, dst = net.edge_src, net.indices
    kill = np.zeros(state.n, dtype=bool)
    a = valid[src] & (state.colors[dst] >= 0) & (proposals[src] == state.colors[dst])
    b = valid[src] & valid[dst] & (proposals[src] == proposals[dst]) & (dst < src)
    kill[src[a | b]] = True
    winners = np.flatnonzero(valid & ~kill)
    if winners.size:
        state.adopt(winners, proposals[winners])
    net.account_vector_round(
        int(valid.sum()), bits if bits is not None else bits_for_color(state.delta), phase=phase
    )
    return int(winners.size)

Sampler = Callable[[np.ndarray, np.random.Generator], np.ndarray]


def interval_sampler(lo: np.ndarray | int, hi: np.ndarray | int) -> Sampler:
    """Sampler for per-node color intervals ``[lo(v), hi(v))`` — the shape
    every list in the algorithm takes ([Δ+1]\\[x(v)] is [x(v), Δ+1);
    [x(v)] is [0, x(v)))."""

    def sample(nodes: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        lo_v = (lo[nodes] if isinstance(lo, np.ndarray) else np.full(nodes.size, lo)).astype(
            np.int64
        )
        hi_v = (hi[nodes] if isinstance(hi, np.ndarray) else np.full(nodes.size, hi)).astype(
            np.int64
        )
        width = np.maximum(hi_v - lo_v, 1)
        return lo_v + (rng.random(nodes.size) * width).astype(np.int64)

    return sample


def palette_sampler(state: ColoringState) -> Sampler:
    """Uniform sample from the node's current palette Ψ(v) (used by the
    cleanup phase).  Falls back to color 0 for empty palettes (cannot
    happen in (Δ+1)-coloring: d(v) ≤ Δ < |palette|).

    Loop-free: the grouped-palette helper
    (:meth:`repro.core.state.ColoringState.grouped_palettes`) exposes all
    palette sizes at once, a rank is drawn per node, and one vectorized
    rank→color search maps ranks back to colors.
    """

    def sample(nodes: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        gp = state.grouped_palettes(np.asarray(nodes, dtype=np.int64))
        out = gp.sample(rng)
        return np.where(out >= 0, out, 0)

    return sample


def palette_interval_sampler(
    state: ColoringState, lo: np.ndarray | int, hi: np.ndarray | int
) -> Sampler:
    """Uniform sample from ``Ψ(v) ∩ [lo(v), hi(v))`` — e.g. the
    Ψ(v)\\[x(v)] trials in open cliques after SCT (proof of Lemma 3.7).
    Loop-free over the grouped palettes; −1 where the intersection is
    empty (such nodes sit the round out)."""

    def sample(nodes: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        gp = state.grouped_palettes(np.asarray(nodes, dtype=np.int64), lo, hi)
        return gp.sample(rng)

    return sample


def try_color_round(
    state: ColoringState,
    participants: np.ndarray,
    sampler: Sampler,
    seq: SeedSequencer,
    phase: str,
    round_tag: object = 0,
) -> int:
    """One synchronous TryColor round.

    ``participants`` — node ids trying a color this round (must be
    uncolored).  Returns the number of nodes that adopted.

    Conflict rule (per the paper): v keeps its tried color c unless
    (a) some colored neighbor already has c, or (b) some *smaller-ID*
    neighbor tried c this round.
    """
    participants = np.asarray(participants, dtype=np.int64)
    participants = participants[state.colors[participants] < 0]
    net = state.net
    if participants.size == 0:
        net.metrics.add_uniform_round(0, 1, phase=phase)
        return 0

    rng = seq.stream("trycolor", phase, round_tag)
    tried = sampler(participants, rng)

    proposals = np.full(state.n, -1, dtype=np.int64)
    proposals[participants] = tried
    valid = proposals >= 0

    src, dst = net.edge_src, net.indices
    kill = np.zeros(state.n, dtype=bool)
    # (a) colored-neighbor conflicts.
    a = valid[src] & (state.colors[dst] >= 0) & (proposals[src] == state.colors[dst])
    # (b) smaller-ID simultaneous trial of the same color.
    b = (
        valid[src]
        & valid[dst]
        & (proposals[src] == proposals[dst])
        & (dst < src)
    )
    kill[src[a | b]] = True

    winners = participants[~kill[participants] & (proposals[participants] >= 0)]
    if winners.size:
        state.adopt(winners, proposals[winners])
    net.account_vector_round(
        int(participants.size), bits_for_color(state.delta), phase=phase
    )
    return int(winners.size)
