#!/usr/bin/env python3
"""Quickstart: (Δ+1)-color a random graph with O(log n)-bit broadcasts.

Run:  python examples/quickstart.py [n] [avg_degree] [seed]
"""

from __future__ import annotations

import sys

from repro import BroadcastColoring, ColoringConfig
from repro.analysis.verify import coloring_summary
from repro.graphs import gnp_graph
from repro.simulator.network import BroadcastNetwork


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    avg_deg = float(sys.argv[2]) if len(sys.argv) > 2 else 40.0
    seed = int(sys.argv[3]) if len(sys.argv) > 3 else 0

    graph = gnp_graph(n, avg_deg / n, seed=seed)
    cfg = ColoringConfig.practical(seed=seed)

    print(f"coloring G(n={n}, p={avg_deg / n:.4f}) ...")
    result = BroadcastColoring(graph, cfg).run()

    audit = coloring_summary(BroadcastNetwork(graph), result.colors)
    print(f"  proper coloring : {audit['proper']}")
    print(f"  complete        : {audit['complete']}")
    print(f"  colors used     : {audit['colors_used']} (palette Δ+1 = {result.delta + 1})")
    print(f"  rounds          : {result.rounds_total} "
          f"(algorithm {result.rounds_algorithm}, cleanup {result.rounds_cleanup})")
    print(f"  max message     : {result.max_message_bits} bits "
          f"(cap {cfg.bandwidth_bits(n)} = 32·ceil(log2 n))")
    print(f"  total bits/node : {result.total_bits / n:.0f}")
    print("\nrounds per phase:")
    for phase, rounds in sorted(result.phase_rounds.items()):
        if rounds:
            print(f"  {phase:<22} {rounds}")


if __name__ == "__main__":
    main()
