"""Tests for round/bit accounting (repro.simulator.metrics)."""

from repro.simulator.metrics import RoundMetrics


class TestAddRound:
    def test_single_round(self):
        m = RoundMetrics()
        m.add_round([8, 8, 16], phase="p")
        assert m.total_rounds == 1
        assert m.phases["p"].messages == 3
        assert m.phases["p"].total_bits == 32
        assert m.max_message_bits == 16

    def test_phase_and_total_both_updated(self):
        m = RoundMetrics()
        m.add_round([4], phase="a")
        m.add_round([6], phase="b")
        assert m.rounds_in("a") == 1
        assert m.rounds_in("b") == 1
        assert m.total_rounds == 2
        assert m.total_bits == 10

    def test_empty_round_counts(self):
        m = RoundMetrics()
        m.add_round([], phase="quiet")
        assert m.rounds_in("quiet") == 1
        assert m.phases["quiet"].messages == 0

    def test_current_phase_default(self):
        m = RoundMetrics()
        m.begin_phase("x")
        m.add_round([1])
        assert m.rounds_in("x") == 1


class TestUniformRound:
    def test_uniform_round(self):
        m = RoundMetrics()
        m.add_uniform_round(10, 7, phase="v")
        assert m.phases["v"].messages == 10
        assert m.phases["v"].total_bits == 70
        assert m.max_message_bits == 7

    def test_zero_broadcasters_no_max_update(self):
        m = RoundMetrics()
        m.add_uniform_round(0, 100, phase="v")
        assert m.max_message_bits == 0
        assert m.total_rounds == 1


class TestBulkUniformRounds:
    def test_matches_per_round_loop(self):
        bulk, loop = RoundMetrics(), RoundMetrics()
        bulk.add_uniform_rounds(5, 9, 16, phase="v")
        for _ in range(5):
            loop.add_uniform_round(9, 16, phase="v")
        assert bulk.report() == loop.report()

    def test_zero_rounds_noop(self):
        m = RoundMetrics()
        m.add_uniform_rounds(0, 9, 16, phase="v")
        assert m.total_rounds == 0
        assert "v" not in m.phase_names()

    def test_observers_fire_once_per_round(self):
        m = RoundMetrics()
        seen = []
        m.observers.append(lambda phase, k: seen.append((phase, k)))
        m.add_uniform_rounds(3, 4, 8, phase="v")
        assert seen == [("v", 4)] * 3


class TestTimePhase:
    def test_nested_timing_not_double_counted(self):
        m = RoundMetrics()
        m.begin_phase("outer")
        with m.time_phase("inner"):
            pass
        m.stop_timer()
        assert m.phase_seconds["inner"] >= 0
        assert m.phase_seconds["outer"] >= 0
        assert m.current_phase == "outer"

    def test_without_running_outer_timer(self):
        m = RoundMetrics()
        with m.time_phase("inner"):
            pass
        assert "inner" in m.phase_seconds
        # no phantom timer was started for the (never-begun) outer phase
        assert m._phase_started is None

    def test_restores_phase_on_exception(self):
        m = RoundMetrics()
        m.begin_phase("outer")
        try:
            with m.time_phase("inner"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert m.current_phase == "outer"


class TestReporting:
    def test_report_includes_total(self):
        m = RoundMetrics()
        m.add_round([2], phase="a")
        rep = m.report()
        assert "total" in rep and "a" in rep
        assert rep["total"]["rounds"] == 1

    def test_phase_names_excludes_total(self):
        m = RoundMetrics()
        m.add_round([2], phase="a")
        assert m.phase_names() == ["a"]

    def test_rounds_in_unknown_phase(self):
        assert RoundMetrics().rounds_in("nope") == 0

    def test_merged_with(self):
        a = RoundMetrics()
        a.add_round([4], phase="x")
        b = RoundMetrics()
        b.add_round([8, 8], phase="x")
        b.add_round([2], phase="y")
        merged = a.merged_with(b)
        assert merged.rounds_in("x") == 2
        assert merged.rounds_in("y") == 1
        assert merged.total_bits == 22
        assert merged.max_message_bits == 8
