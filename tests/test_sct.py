"""Tests for the Synchronized Color Trial (§3.2, Lemma 3.5, Claim 3.8)."""

import numpy as np
import pytest

from repro.config import ColoringConfig
from repro.core.cliques import compute_clique_info
from repro.core.sct import synchronized_color_trial
from repro.core.state import ColoringState
from repro.decomposition.acd import AlmostCliqueDecomposition
from repro.graphs.generators import clique_blob_graph
from repro.simulator.network import BroadcastNetwork
from repro.simulator.rng import SeedSequencer


def blob_setup(num=3, size=40, anti=20, ext=10, seed=0, **cfg_kw):
    cfg = ColoringConfig.practical(**cfg_kw)
    g = clique_blob_graph(num, size, anti, ext, seed=seed)
    net = BroadcastNetwork(g, bandwidth_bits=cfg.bandwidth_bits(g[0]))
    labels = np.arange(net.n) // size
    acd = AlmostCliqueDecomposition(labels=labels, eps=cfg.eps)
    state = ColoringState(net)
    info = compute_clique_info(net, acd, cfg, num_colors=state.num_colors)
    return cfg, net, state, info


class TestSCT:
    def test_colors_most_of_each_clique(self):
        cfg, net, state, info = blob_setup()
        rep = synchronized_color_trial(state, info, {}, cfg, SeedSequencer(1))
        assert rep.colored > 0
        for c, leftover in rep.leftover_by_clique.items():
            members = info.members(c)
            assert leftover < 0.5 * members.size

    def test_leftover_scales_with_external_degree(self):
        """Lemma 3.5: uncolored-after-SCT is O(e_K + log n).  Compare low
        vs high external degree blobs (averaged over seeds).

        The reserved prefix is scaled down (x_full_factor) so the palette
        covers all of S — in the full pipeline Lemma 3.6 guarantees that;
        in this isolated call we arrange it by config so the measurement
        sees only the external-conflict effect the lemma is about.
        """
        low, high = [], []
        for s in range(6):
            cfg, net, state, info = blob_setup(ext=2, seed=s, x_full_factor=0.02)
            rep = synchronized_color_trial(state, info, {}, cfg, SeedSequencer(s))
            low.append(np.mean(list(rep.leftover_by_clique.values())))
            cfg, net, state, info = blob_setup(ext=60, seed=s, x_full_factor=0.02)
            rep = synchronized_color_trial(state, info, {}, cfg, SeedSequencer(s))
            high.append(np.mean(list(rep.leftover_by_clique.values())))
        assert np.mean(high) >= np.mean(low)

    def test_no_in_clique_conflicts(self):
        # The permutation hands distinct palette indices to clique members:
        # the trial must never produce an in-clique monochromatic edge.
        cfg, net, state, info = blob_setup(seed=3)
        synchronized_color_trial(state, info, {}, cfg, SeedSequencer(3))
        state.verify()

    def test_putaside_nodes_excluded(self):
        cfg, net, state, info = blob_setup(seed=4)
        aside = {0: info.members(0)[:5]}
        synchronized_color_trial(state, info, aside, cfg, SeedSequencer(4))
        assert (state.colors[aside[0]] < 0).all()

    def test_reserved_prefix_untouched(self):
        cfg, net, state, info = blob_setup(seed=5)
        synchronized_color_trial(state, info, {}, cfg, SeedSequencer(5))
        for c in range(info.num_cliques):
            members = info.members(c)
            used = state.colors[members]
            used = used[used >= 0]
            if used.size:
                assert used.min() >= int(info.x_k[c])

    def test_rounds_charged(self):
        cfg, net, state, info = blob_setup(seed=6)
        synchronized_color_trial(state, info, {}, cfg, SeedSequencer(6), phase="s")
        assert net.metrics.rounds_in("s/trial") == 1
        assert net.metrics.rounds_in("s/learn-palette") >= 1
        assert net.metrics.rounds_in("s/permute") >= 1

    def test_no_cliques_noop(self):
        cfg = ColoringConfig.practical()
        net = BroadcastNetwork((6, [(0, 1)]))
        state = ColoringState(net)
        acd = AlmostCliqueDecomposition(labels=np.full(6, -1), eps=cfg.eps)
        info = compute_clique_info(net, acd, cfg)
        rep = synchronized_color_trial(state, info, {}, cfg, SeedSequencer(7))
        assert rep.cliques == 0
        assert rep.colored >= 0

    def test_already_colored_members_skipped(self):
        cfg, net, state, info = blob_setup(seed=8)
        pre = info.members(0)[:10]
        state.adopt(pre, np.arange(10) + int(info.x_k[0]))
        synchronized_color_trial(state, info, {}, cfg, SeedSequencer(8))
        assert np.array_equal(state.colors[pre], np.arange(10) + int(info.x_k[0]))
        state.verify()

    def test_open_clique_extra_rounds_fire(self):
        # Build an open clique: e_K > 2 a_K and a_K + e_K ≥ ℓ.
        cfg, net, state, info = blob_setup(
            num=3, size=40, anti=2, ext=300, seed=9, ell_factor=0.4
        )
        assert "open" in info.kind
        rep = synchronized_color_trial(state, info, {}, cfg, SeedSequencer(9), phase="o")
        assert rep.extra_trycolor_rounds > 0 or state.is_complete()

    def test_report_dict_keys(self):
        cfg, net, state, info = blob_setup(seed=10)
        rep = synchronized_color_trial(state, info, {}, cfg, SeedSequencer(10))
        d = rep.as_dict()
        for key in ("tried", "colored", "cliques", "permute_rounds_max"):
            assert key in d
