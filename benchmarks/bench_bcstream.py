"""E10 — Theorem 2: the pipeline under BCStream (poly log memory).

Paper claim: the same O(log³ log n) round complexity holds when each node
consumes its inbox as a stream with poly(log n) memory — even though a
round may deliver Θ(Δ log n) bits.  Measured: peak working-set words vs
the ceiling as Δ grows (the incoming volume grows linearly, the working
set must not), plus round parity with the BCONGEST run.
"""

from __future__ import annotations

import numpy as np
import pytest

from _common import print_table
from repro.bcstream.pipeline import bcstream_coloring
from repro.config import ColoringConfig
from repro.core.algorithm import BroadcastColoring
from repro.graphs.generators import clique_blob_graph


def blob(num, size, seed):
    return clique_blob_graph(num, size, size // 3, size // 5, seed=seed)


@pytest.mark.benchmark(group="E10-bcstream")
def test_e10_memory_flat_while_delta_grows(benchmark):
    cfg = ColoringConfig.practical()
    rows = []
    peaks = []
    incoming = []
    for size in [32, 64, 128, 256]:
        g = blob(max(2, 512 // size), size, seed=1)
        res = bcstream_coloring(g, cfg)
        assert res.coloring.proper and res.coloring.complete
        assert res.within_memory
        n = res.coloring.n
        delta = res.coloring.delta
        inbox_bits = delta * cfg.bandwidth_bits(n)  # per-round stream volume
        peaks.append(res.peak_words)
        incoming.append(inbox_bits)
        rows.append(
            (
                size,
                delta,
                inbox_bits,
                res.peak_words,
                res.memory_ceiling_words,
            )
        )
    print_table(
        "E10 BCStream: inbox volume grows with Δ, working set does not",
        ["clique size", "Δ", "inbox bits/round", "peak words", "ceiling words"],
        rows,
    )
    # Incoming volume grew ~8x; peak memory must grow far slower.
    assert incoming[-1] / incoming[0] > 4
    assert peaks[-1] / max(peaks[0], 1) < 3
    benchmark.pedantic(
        lambda: bcstream_coloring(blob(4, 64, 2), cfg), rounds=1, iterations=1
    )


@pytest.mark.benchmark(group="E10-bcstream")
def test_e10_round_parity_with_bcongest(benchmark):
    """Theorem 2 keeps Theorem 1's round complexity: the BCStream run's
    rounds match the plain run (identical pipeline, + streaming lookups
    that reuse existing broadcasts)."""
    cfg = ColoringConfig.practical(seed=3)
    rows = []
    for seed in range(3):
        g = blob(6, 64, seed)
        plain = BroadcastColoring(g, cfg).run()
        stream = bcstream_coloring(g, cfg)
        rows.append(
            (
                seed,
                plain.rounds_total,
                stream.coloring.rounds_total,
                stream.palette_lookup_rounds,
            )
        )
        assert stream.coloring.rounds_total == plain.rounds_total
    print_table(
        "E10 round parity (streaming lookups reuse the same broadcasts)",
        ["seed", "BCONGEST rounds", "BCStream rounds", "lookup rounds (within)"],
        rows,
    )
    benchmark.pedantic(
        lambda: bcstream_coloring(blob(4, 64, 5), cfg), rounds=1, iterations=1
    )


@pytest.mark.benchmark(group="E10-bcstream")
def test_e10_phase_audit_polylog(benchmark):
    cfg = ColoringConfig.practical()
    g = blob(6, 96, 7)
    res = bcstream_coloring(g, cfg)
    n = res.coloring.n
    ceiling = res.memory_ceiling_words
    rows = sorted(res.phase_memory_words.items(), key=lambda kv: -kv[1])
    print_table(
        f"E10 per-phase working-set audit (n={n}, ceiling={ceiling} words)",
        ["phase", "words"],
        rows,
    )
    assert all(w <= ceiling for _, w in rows)
    benchmark.pedantic(
        lambda: bcstream_coloring(blob(3, 64, 8), cfg), rounds=1, iterations=1
    )
