"""One-call experiment reporter: reruns the key measurements and renders a
markdown summary — the programmatic backbone of EXPERIMENTS.md.

``build_report()`` is deliberately lighter than the full bench suite (it
targets seconds, not minutes) so it can run in CI or a notebook; each
section names the claim it measures and the bench that does it at full
scale.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.fitting import growth_fit
from repro.baselines.johansson import johansson_coloring
from repro.bcstream.pipeline import bcstream_coloring
from repro.config import ColoringConfig
from repro.core.algorithm import BroadcastColoring
from repro.graphs.generators import clique_blob_graph

__all__ = ["ExperimentReport", "build_report"]


@dataclass
class ExperimentReport:
    sections: dict[str, dict] = field(default_factory=dict)

    def to_markdown(self) -> str:
        out = io.StringIO()
        out.write("# Experiment summary (quick run)\n")
        for name, data in self.sections.items():
            out.write(f"\n## {name}\n")
            for key, value in data.items():
                out.write(f"- **{key}**: {value}\n")
        return out.getvalue()


def _blob(n: int, seed: int):
    size = 48
    return clique_blob_graph(
        max(1, n // size), size, anti_edges_per_clique=20,
        external_edges_per_clique=10, seed=seed,
    )


def build_report(
    ns: list[int] | None = None,
    seeds: list[int] | None = None,
    config: ColoringConfig | None = None,
) -> ExperimentReport:
    """Run the quick version of E1/E2/E10 and return the rendered report."""
    ns = ns or [256, 1024, 4096]
    seeds = seeds or [1, 2]
    cfg = config or ColoringConfig.practical()
    report = ExperimentReport()

    # E1-lite: shape comparison.
    ours_series, base_series = [], []
    for n in ns:
        ours, base = [], []
        for s in seeds:
            g = _blob(n, s)
            res = BroadcastColoring(g, cfg.with_seed(s)).run()
            assert res.proper and res.complete
            ours.append(res.rounds_algorithm)
            base.append(johansson_coloring(g, seed=s).rounds)
        ours_series.append(float(np.mean(ours)))
        base_series.append(float(np.mean(base)))
    section: dict = {
        "rows (n, ours, johansson)": list(zip(ns, ours_series, base_series)),
    }
    if len(ns) >= 2:
        section["fit ours"] = growth_fit(ns, ours_series).best
        section["fit johansson"] = growth_fit(ns, base_series).best
    report.sections["E1 round complexity (bench_round_complexity.py)"] = section

    # E2-lite: bandwidth compliance.
    g = _blob(ns[-1], seeds[0])
    res = BroadcastColoring(g, cfg.with_seed(seeds[0])).run()
    report.sections["E2 bandwidth (bench_bandwidth.py)"] = {
        "max message bits": res.max_message_bits,
        "cap": cfg.bandwidth_bits(res.n),
        "compliant": res.max_message_bits <= cfg.bandwidth_bits(res.n),
    }

    # E10-lite: BCStream memory.
    stream = bcstream_coloring(_blob(ns[0], seeds[0]), cfg)
    report.sections["E10 BCStream (bench_bcstream.py)"] = {
        "peak words": stream.peak_words,
        "ceiling words": stream.memory_ceiling_words,
        "within memory": stream.within_memory,
        "round parity": stream.coloring.rounds_total,
    }

    return report
