"""E15 — multi-shard partitioned coloring: breaking the 10⁷-node wall.

The claim the `repro.shard` subsystem makes (DESIGN.md §7): with the
zero-copy shared-memory transport, the vectorized partitioner and
shard-local cut repair, k shard workers behave like k machines — the
driver's serial overhead (partition + arena pack + delta merges) stays a
small fraction of the run, per-worker memory scales with interior +
ghost size rather than n, and reconciliation touches only the cut.

Tracked measurements (→ ``BENCH_shard.json`` at the repo root), one
entry per graph size along the n-scaling axis:

* **critical-path speedup** — ``single_s / (driver phases + max shard
  CPU seconds)``.  The bench host typically has fewer cores than k, so
  k workers time-share and per-shard *wall* time mostly measures the
  scheduler; per-shard **CPU** time is what one dedicated machine would
  pay, which is exactly the k-machine deployment the shard engine
  models.  The raw wall-clock speedup and ``host_cores`` ride along so
  the entry is honest about what the box could show.
* partition / pack / reconcile phase seconds (partition must stay ≤10%
  of the sharded wall — the vectorized-partitioner regression gate);
* per-worker peak RSS under ``shard_start_method="spawn"`` (fresh
  interpreters: RSS reflects the shm pages a worker actually touches,
  not fork's copy-on-write inheritance of the driver);
* ``k1_identical`` — a k=1 sharded run reproduces the single-process
  pipeline bit for bit on the same graph;
* zero leaked ``/dev/shm`` segments after every run.

Env knobs (CI quick tier vs the full tracked axis):

* ``REPRO_BENCH_SHARD_SIZES`` — space/comma-separated n values
  (default ``100000``; the full tracked axis is
  ``"100000 1000000 10000000"``);
* ``REPRO_BENCH_SHARD_DEG`` — average degree (default 10);
* ``REPRO_BENCH_SHARD_K`` — shard count, pool width is always k
  (default 8; the n=10⁶ CI smoke runs k=4);
* ``REPRO_BENCH_SHARD_MIN_SPEEDUP`` — critical-path gate applied at
  n ≥ 10⁶ (default 2.0; the 10⁷ acceptance bar is 4.0).
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np
import pytest

from _common import print_table, run_matrix
from repro.config import ColoringConfig
from repro.core.algorithm import BroadcastColoring
from repro.graphs.families import make_graph
from repro.runner.benchtrack import append_entry
from repro.runner.spec import load_matrix
from repro.shard import ShardedColoring, partition_nodes
from repro.shard.shm import leaked_segments
from repro.simulator.network import BroadcastNetwork

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY = REPO_ROOT / "BENCH_shard.json"
SPECS = REPO_ROOT / "benchmarks" / "specs" / "shard_quick.toml"


def _sizes() -> list[int]:
    raw = os.environ.get("REPRO_BENCH_SHARD_SIZES")
    if raw is None:
        raw = os.environ.get("REPRO_BENCH_SHARD_N", "100000")
    return [int(float(tok)) for tok in raw.replace(",", " ").split()]


def _workload() -> tuple[float, int]:
    deg = float(os.environ.get("REPRO_BENCH_SHARD_DEG", "10"))
    k = int(os.environ.get("REPRO_BENCH_SHARD_K", "8"))
    return deg, k


def _min_speedup() -> float:
    return float(os.environ.get("REPRO_BENCH_SHARD_MIN_SPEEDUP", "2.0"))


def _one_size(n: int, deg: float, k: int) -> dict:
    """Measure one point on the n-axis and return its trajectory entry.

    Order matters: the sharded run goes *first* so worker RSS is
    measured before the driver's own heap has ballooned through the
    single-process reference run."""
    cfg = ColoringConfig.practical(seed=5)
    net = BroadcastNetwork(make_graph("geometric", n, deg, 1))

    # k-shard run: pool of k spawned workers over the shm arena.
    scfg = ColoringConfig.practical(seed=5, shard_start_method="spawn")
    t0 = time.perf_counter()
    sharded = ShardedColoring(
        net, scfg, k=k, strategy="greedy", workers=k
    ).run()
    sharded_s = time.perf_counter() - t0
    assert leaked_segments() == [], "sharded run leaked /dev/shm segments"
    assert sharded.faults.get("inline_fallbacks", 0) == 0, sharded.faults

    # Single-process reference on the identical graph.
    t0 = time.perf_counter()
    ref = BroadcastColoring((net.n, net.undirected_edges()), cfg).run()
    single_s = time.perf_counter() - t0

    # k=1 must reproduce it bit for bit (the identity anchor).
    k1 = ShardedColoring(net, cfg, k=1).run()
    k1_identical = bool(np.array_equal(k1.colors, ref.colors))
    assert k1_identical, "k=1 diverged from the unsharded pipeline"

    ph = sharded.phase_seconds
    partition_s = ph.get("shard/partition", 0.0)
    pack_s = ph.get("shard/pack", 0.0)
    reconcile_s = ph.get("shard/reconcile", 0.0)
    driver_s = partition_s + pack_s + reconcile_s
    interior_max_cpu = max(
        (r.cpu_seconds for r in sharded.shard_reports), default=0.0
    )
    critical_path_s = driver_s + interior_max_cpu
    speedup = single_s / max(critical_path_s, 1e-9)
    wall_speedup = single_s / max(sharded_s, 1e-9)
    worker_rss = max(
        (r.peak_rss_mb for r in sharded.shard_reports), default=0.0
    )

    assert sharded.proper and sharded.complete, sharded.as_dict()
    assert sharded.unresolved_conflicts == 0, sharded.as_dict()
    assert sharded.num_colors_used <= sharded.delta + 1
    assert sharded.touched_fraction < 0.05, (
        f"reconciliation touched {sharded.touched_fraction:.2%} of nodes"
    )
    assert partition_s <= 0.10 * sharded_s, (
        f"partition {partition_s:.2f}s is over 10% of the "
        f"{sharded_s:.2f}s sharded run"
    )
    if n >= 1_000_000:
        floor = _min_speedup() if n < 10_000_000 else max(_min_speedup(), 4.0)
        assert speedup >= floor, (
            f"critical-path speedup {speedup:.2f}x below the {floor:g}x "
            f"gate at n={n}"
        )

    return {
        "n": n,
        "avg_degree": deg,
        "family": "geometric",
        "k": k,
        "strategy": "greedy",
        "transport": sharded.transport,
        "pool_workers": k,
        "host_cores": os.cpu_count() or 1,
        "cut_edges": sharded.cut_edges,
        "cut_fraction": round(sharded.cut_fraction, 5),
        "initial_conflicts": sharded.initial_conflicts,
        "reconcile_touched": sharded.reconcile_touched,
        "touched_fraction": round(sharded.touched_fraction, 5),
        "reconcile_rounds": sharded.reconcile_rounds,
        "reconcile_iterations": sharded.reconcile_iterations,
        "unresolved_conflicts": sharded.unresolved_conflicts,
        "k1_identical": k1_identical,
        "single_s": round(single_s, 3),
        "sharded_s": round(sharded_s, 3),
        "critical_path_s": round(critical_path_s, 3),
        "speedup": round(speedup, 2),
        "wall_speedup": round(wall_speedup, 2),
        "partition_s": round(partition_s, 3),
        "pack_s": round(pack_s, 3),
        "interior_s": round(ph.get("shard/interior", 0.0), 3),
        "interior_max_cpu_s": round(interior_max_cpu, 3),
        "reconcile_s": round(reconcile_s, 3),
        "worker_peak_rss_mb": round(worker_rss, 1),
    }


@pytest.mark.benchmark(group="E15-shard")
def test_e15_scaling_axis_tracked(benchmark):
    """The tracked n-scaling axis: for every configured size, one
    sharded run (shm transport, spawned pool of k), one single-process
    reference, one k=1 identity check — each appending a trajectory
    entry.

    Gates (CI perf-smoke re-asserts these from the trajectory): proper,
    complete, within Δ+1, zero unresolved conflicts, < 5% of nodes
    touched during reconciliation, partition ≤ 10% of the sharded wall,
    critical-path speedup over the floor at n ≥ 10⁶, k=1 bit-identity,
    and zero leaked shm segments.
    """
    deg, k = _workload()
    entries = []
    for n in _sizes():
        entry = _one_size(n, deg, k)
        entries.append(entry)
        append_entry(
            TRAJECTORY, entry, label=f"shard-n{n}-d{deg:g}-k{k}"
        )
    print_table(
        f"E15 n-scaling axis (geometric, avg_degree={deg:g}, k={k}, "
        f"workers=k, transport=shm, host_cores={os.cpu_count() or 1})",
        ["n", "single s", "crit-path s", "speedup", "wall x",
         "partition s", "reconcile s", "worker RSS MB", "cut frac"],
        [
            (e["n"], e["single_s"], e["critical_path_s"], f"{e['speedup']}x",
             f"{e['wall_speedup']}x", e["partition_s"], e["reconcile_s"],
             e["worker_peak_rss_mb"], e["cut_fraction"])
            for e in entries
        ],
    )
    # Benchmark one reconciliation-scale unit: re-partitioning the
    # smallest measured graph (the driver-side overhead sharding adds).
    net = BroadcastNetwork(make_graph("geometric", min(_sizes()), deg, 1))
    benchmark.pedantic(
        lambda: partition_nodes(net, k, "greedy"), rounds=1, iterations=1
    )


@pytest.mark.benchmark(group="E15-shard")
def test_e15_partition_strategies(benchmark):
    """Cut quality per strategy on the two structural extremes: greedy
    must crush random on geometric graphs (locality) and never win on
    G(n,p) expanders (no partitioner can)."""
    n = min(min(_sizes()), 100_000)
    rows = []
    cuts: dict[tuple[str, str], float] = {}
    for family in ("geometric", "gnp"):
        net = BroadcastNetwork(make_graph(family, n, 16.0, 3))
        for strategy in ("contiguous", "random", "greedy"):
            t0 = time.perf_counter()
            part = partition_nodes(net, 4, strategy, seed=0)
            secs = time.perf_counter() - t0
            stats = part.cut_stats(net)
            cuts[(family, strategy)] = stats["cut_fraction"]
            rows.append(
                (family, strategy, f"{stats['cut_fraction']:.4f}",
                 stats["boundary_nodes"], f"{secs:.3f}")
            )
    print_table(
        f"E15 partition strategies (n={n}, k=4)",
        ["family", "strategy", "cut fraction", "boundary nodes", "seconds"],
        rows,
    )
    assert cuts[("geometric", "greedy")] < cuts[("geometric", "random")] / 3
    net = BroadcastNetwork(make_graph("geometric", n, 16.0, 3))
    benchmark.pedantic(
        lambda: partition_nodes(net, 4, "greedy"), rounds=1, iterations=1
    )


@pytest.mark.benchmark(group="E15-shard")
def test_e15_quick_shard_matrix(benchmark):
    """The shard acceptance matrix through the runner: every family ×
    size × seed reconciles to zero unresolved conflicts, proper and
    within budget, touching a bounded fraction of nodes."""
    payloads = run_matrix(load_matrix(SPECS)).payloads()
    rows = []
    for p in payloads:
        rows.append(
            (p["family"], p["n"], p["seed"], p["k"], p["cut_edges"],
             p["initial_conflicts"], p["reconcile_touched"],
             p["unresolved_conflicts"])
        )
        assert p["proper"] and p["complete"], p
        assert p["unresolved_conflicts"] == 0, p
        assert p["num_colors_used"] <= p["delta"] + 1, p
    print_table(
        "E15 quick shard matrix (runner, algorithm=shard)",
        ["family", "n", "seed", "k", "cut", "conflicts", "touched",
         "unresolved"],
        rows,
    )
    spec = load_matrix(SPECS)[0]
    from repro.runner.execute import run_trial

    benchmark.pedantic(lambda: run_trial(spec), rounds=1, iterations=1)
