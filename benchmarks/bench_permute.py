"""E7 — Relabel & Permute (Algorithms 3–5, Lemmas 4.3–4.5).

Paper claims: Relabel succeeds w.h.p. in O(1) rounds; Algorithm 4 samples
a near-uniform permutation in O(log log n) rounds; Algorithm 5 in O(1) —
asymptotically, i.e. once Δ ≫ log³ n makes its leftover-set dissemination
cheap.  Measured: success rates, round counts of both algorithms as the
clique size grows (the crossover), and a position-uniformity chi-square.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats as scipy_stats

from _common import print_table
from repro.config import ColoringConfig
from repro.core.permute import permute_constant, permute_loglog
from repro.core.relabel import relabel
from repro.graphs.generators import complete_graph
from repro.simulator.network import BroadcastNetwork
from repro.simulator.rng import SeedSequencer


def clique_net(size, cfg):
    return BroadcastNetwork(complete_graph(size), bandwidth_bits=cfg.bandwidth_bits(size))


@pytest.mark.benchmark(group="E7-permute")
def test_e7_relabel_success_rate(benchmark):
    cfg = ColoringConfig.practical()
    rows = []
    for set_size in [8, 16, 32, 64]:
        net = clique_net(128, cfg)
        successes = sum(
            relabel(net, np.arange(set_size), cfg, SeedSequencer(s)).succeeded
            for s in range(50)
        )
        bits = relabel(net, np.arange(set_size), cfg, SeedSequencer(0)).label_bits
        rows.append((set_size, f"{successes}/50", bits))
        assert successes >= 49
    print_table(
        "E7 Relabel success rate and label width (Lemma 4.3)",
        ["|S|", "successes", "label bits"],
        rows,
    )
    net = clique_net(128, cfg)
    benchmark.pedantic(
        lambda: relabel(net, np.arange(32), cfg, SeedSequencer(1)), rounds=3, iterations=1
    )


@pytest.mark.benchmark(group="E7-permute")
def test_e7_alg4_vs_alg5_rounds(benchmark):
    """Round counts of the two permutation algorithms as Δ grows.  At
    small Δ Algorithm 4 wins (Algorithm 5's leftover set is the whole
    clique); Algorithm 5's relative cost falls as Δ/(log n) grows — the
    asymptotic crossover the paper's O(1) claim lives beyond."""
    cfg4 = ColoringConfig.practical(permute_constant_round=False)
    cfg5 = ColoringConfig.practical(permute_constant_round=True)
    rows = []
    ratios = []
    for size in [48, 96, 192, 384]:
        r4s, r5s, leftovers = [], [], []
        for seed in range(3):
            net = clique_net(size, cfg4)
            members = np.arange(size)
            r4 = permute_loglog(net, members, members, cfg4, SeedSequencer(seed))
            r5 = permute_constant(net, members, members, cfg5, SeedSequencer(seed))
            assert r4.validate() and r5.validate()
            r4s.append(r4.rounds)
            r5s.append(r5.rounds)
            leftovers.append(r5.leftover / size)
        ratios.append(np.mean(r5s) / np.mean(r4s))
        rows.append(
            (
                size,
                f"{np.mean(r4s):.1f}",
                f"{np.mean(r5s):.1f}",
                f"{np.mean(leftovers):.0%}",
            )
        )
    print_table(
        "E7 Algorithm 4 vs Algorithm 5 rounds (single clique, |S| = Δ+1)",
        ["clique size", "Alg 4 rounds", "Alg 5 rounds", "Alg 5 leftover frac"],
        rows,
    )
    # Algorithm 5's relative cost must not grow with Δ.
    assert ratios[-1] <= ratios[0] * 1.5 + 0.5
    cfg = cfg4
    net = clique_net(96, cfg)
    benchmark.pedantic(
        lambda: permute_loglog(net, np.arange(96), np.arange(96), cfg, SeedSequencer(7)),
        rounds=1,
        iterations=1,
    )


@pytest.mark.benchmark(group="E7-permute")
def test_e7_uniformity(benchmark):
    """Lemma 4.4/4.5: output within 1/poly(n) of uniform.  Chi-square on
    the position of a fixed node across seeds, for both algorithms."""
    cfg = ColoringConfig.practical()
    rows = []
    for name, fn in [("Alg 4", permute_loglog), ("Alg 5", permute_constant)]:
        net = clique_net(64, cfg)
        members = np.arange(64)
        subset = np.arange(6)
        counts = np.zeros(6, dtype=np.int64)
        trials = 300
        for s in range(trials):
            res = fn(net, members, subset, cfg, SeedSequencer(s))
            counts[res.pi[0]] += 1
        _, p = scipy_stats.chisquare(counts)
        rows.append((name, counts.tolist(), f"{p:.3f}"))
        assert p > 1e-4
    print_table(
        "E7 position uniformity (node 0's position over 300 samples)",
        ["algorithm", "position counts", "chi² p-value"],
        rows,
    )
    net = clique_net(64, cfg)
    benchmark.pedantic(
        lambda: permute_constant(net, np.arange(64), np.arange(6), cfg, SeedSequencer(0)),
        rounds=3,
        iterations=1,
    )
