"""The dynamic-graph event model (DESIGN.md §6).

A churn workload is an initial graph plus a stream of
:class:`UpdateBatch` objects — numpy arrays of edge insertions/deletions
and node arrivals/departures, one batch per timestep.  Batches are the
unit the incremental engine consumes: within a batch every change lands
"simultaneously" (one :meth:`~repro.simulator.network.BroadcastNetwork.apply_delta`
merge), between batches the maintained coloring must be proper.

Node semantics: the node universe [n] is fixed; *departure* deactivates
a node (all incident edges drop, its color clears), *arrival*
re-activates it (its attachment edges ride the same batch's
``insert_edges``).  This is the wireless hand-off model (OSERENA-style):
a transmitter powering down and re-appearing elsewhere is a departure
followed, batches later, by an arrival with fresh interference edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

__all__ = ["UpdateBatch", "ChurnSchedule"]


def _edge_array(edges) -> np.ndarray:
    if edges is None:
        return np.empty((0, 2), dtype=np.int64)
    arr = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    return arr


def _node_array(nodes) -> np.ndarray:
    if nodes is None:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.asarray(nodes, dtype=np.int64))


@dataclass(frozen=True)
class UpdateBatch:
    """One timestep of topology churn, fully vectorized.

    ``insert_edges``/``delete_edges`` are (k, 2) int64 arrays of
    undirected pairs; ``arrivals``/``departures`` are sorted unique node
    id arrays.  A departing node's incident edges need not be listed in
    ``delete_edges`` — the engine expands departures against the current
    adjacency before applying the delta.

    Self-loop pairs (``u == v``) are rejected at construction: the model
    has no self-loops, and a loop that reached
    :meth:`~repro.simulator.network.BroadcastNetwork.apply_delta` would
    make its node permanently uncolorable.  The wire layer maps the
    ``ValueError`` onto a ``bad-payload`` error frame.
    """

    insert_edges: np.ndarray = field(default_factory=lambda: _edge_array(None))
    delete_edges: np.ndarray = field(default_factory=lambda: _edge_array(None))
    arrivals: np.ndarray = field(default_factory=lambda: _node_array(None))
    departures: np.ndarray = field(default_factory=lambda: _node_array(None))

    def __post_init__(self) -> None:
        object.__setattr__(self, "insert_edges", _edge_array(self.insert_edges))
        object.__setattr__(self, "delete_edges", _edge_array(self.delete_edges))
        object.__setattr__(self, "arrivals", _node_array(self.arrivals))
        object.__setattr__(self, "departures", _node_array(self.departures))
        for name in ("insert_edges", "delete_edges"):
            arr = getattr(self, name)
            if arr.size:
                loops = arr[arr[:, 0] == arr[:, 1]]
                if loops.size:
                    raise ValueError(
                        f"{name}: self-loop edge "
                        f"({int(loops[0, 0])}, {int(loops[0, 1])}) — the "
                        f"model has no self-loops"
                    )
        both = np.intersect1d(self.arrivals, self.departures)
        if both.size:
            raise ValueError(
                f"nodes {both[:5].tolist()} both arrive and depart in one batch"
            )

    def validate(self, n: int) -> None:
        """Range-check every id against the node universe [n)."""
        for name in ("insert_edges", "delete_edges", "arrivals", "departures"):
            arr = getattr(self, name)
            if arr.size and (arr.min() < 0 or arr.max() >= n):
                raise ValueError(f"{name}: node id out of range [0, {n})")

    @property
    def is_empty(self) -> bool:
        """True when the batch carries no events at all (the engine
        still advances its timestep on an empty batch)."""
        return not (
            self.insert_edges.size
            or self.delete_edges.size
            or self.arrivals.size
            or self.departures.size
        )

    def counts(self) -> dict:
        """Per-field event counts (the shape reports and logs print)."""
        return {
            "insert_edges": int(self.insert_edges.shape[0]),
            "delete_edges": int(self.delete_edges.shape[0]),
            "arrivals": int(self.arrivals.size),
            "departures": int(self.departures.size),
        }

    def as_payload(self) -> dict:
        """JSON-safe dict of this batch — the wire form ``update_batch``
        frames carry (docs/PROTOCOL.md).  Inverse of :meth:`from_payload`."""
        return {
            "insert_edges": self.insert_edges.tolist(),
            "delete_edges": self.delete_edges.tolist(),
            "arrivals": self.arrivals.tolist(),
            "departures": self.departures.tolist(),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "UpdateBatch":
        """Rebuild a batch from :meth:`as_payload` output (or any mapping
        with the same keys; missing keys mean "no events of that kind").

        Raises ``ValueError``/``TypeError`` on malformed entries — the
        wire layer maps those onto ``bad-payload`` error frames.
        """
        return cls(
            insert_edges=payload.get("insert_edges"),
            delete_edges=payload.get("delete_edges"),
            arrivals=payload.get("arrivals"),
            departures=payload.get("departures"),
        )


@dataclass(frozen=True)
class ChurnSchedule:
    """An initial graph plus its update stream.

    ``initial`` is the ``(n, edges)`` pair every generator in
    :mod:`repro.graphs` produces; ``batches`` is the timestep sequence.
    ``family`` records which churn recipe built it (for reports).
    """

    initial: tuple[int, np.ndarray]
    batches: tuple[UpdateBatch, ...]
    family: str = "custom"

    def __post_init__(self) -> None:
        object.__setattr__(self, "batches", tuple(self.batches))
        n = int(self.initial[0])
        edges = np.asarray(self.initial[1])
        if edges.size:
            if edges.ndim != 2 or edges.shape[1] != 2:
                raise ValueError(
                    f"initial edges must be a (m, 2) array, got shape "
                    f"{edges.shape}"
                )
            bad = np.flatnonzero((edges < 0).any(axis=1) | (edges >= n).any(axis=1))
            if bad.size:
                i = int(bad[0])
                raise ValueError(
                    f"initial edge {i} = ({int(edges[i, 0])}, "
                    f"{int(edges[i, 1])}): node id out of range [0, {n})"
                )
            loops = np.flatnonzero(edges[:, 0] == edges[:, 1])
            if loops.size:
                i = int(loops[0])
                raise ValueError(
                    f"initial edge {i} = ({int(edges[i, 0])}, "
                    f"{int(edges[i, 1])}): self-loop — the model has no "
                    f"self-loops"
                )
        for batch in self.batches:
            batch.validate(n)

    @property
    def n(self) -> int:
        """Size of the fixed node universe (ids are always in [0, n))."""
        return int(self.initial[0])

    @property
    def num_batches(self) -> int:
        """Number of timesteps in the stream."""
        return len(self.batches)

    def __iter__(self) -> Iterator[UpdateBatch]:
        return iter(self.batches)

    def total_counts(self) -> dict:
        """Event totals summed over every batch (workload-size summary
        for reports and benchmark rows)."""
        totals = {"insert_edges": 0, "delete_edges": 0, "arrivals": 0, "departures": 0}
        for batch in self.batches:
            for key, value in batch.counts().items():
                totals[key] += value
        return totals
