"""The ``repro serve`` daemon: asyncio sessions around the dynamic engine.

Architecture (DESIGN.md §8):

* **single-writer event loop** — one engine, one worker coroutine that
  applies batches; queries and ingestion run on the same loop, so every
  read observes a between-batches state and no lock ever guards the
  numpy arrays.  An ``apply_batch`` call blocks the loop for its
  duration; the admission control *in front* of it is what bounds the
  damage a slow apply can do.
* **bounded ingestion** — ``update_batch`` requests land in an
  ``asyncio.Queue`` of depth ``serve_queue_max`` via ``put_nowait``:
  the reader never blocks on the engine.  A full queue rejects with a
  ``queue-full`` error frame carrying ``retry_after`` — backpressure is
  explicit and client-visible, not hidden in TCP buffers.
* **coalescing** — the worker drains up to ``serve_coalesce_max``
  queued batches per cycle and merges them
  (:func:`~repro.serve.coalesce.coalesce_batches`) so a burst pays one
  detect/repair instead of k.  Each applied engine batch streams one
  :class:`~repro.serve.protocol.BatchReportFrame` back to every session
  that contributed to it.
* **snapshots** — every ``serve_snapshot_every`` applied batches (and
  on clean shutdown) the engine state goes to ``--snapshot-path``
  atomically; ``--restore`` warm-starts from one.  Crash loss is
  bounded by the cadence; restored replay is byte-identical
  (:mod:`repro.serve.snapshot`).

Failure model: the server is single-tenant (one graph; ``load_graph``
replaces it after draining the queue) and applies each accepted batch
exactly once, in admission order.  A rejected batch was *not* applied —
the client owns the retry.  On a crash, accepted-but-unapplied batches
die with the queue; clients that never got a ``batch_report`` for an id
must treat it as lost and resubmit after restore.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import signal
import sys
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import __version__, obs
from repro.config import ColoringConfig
from repro.dynamic.engine import DynamicColoring
from repro.faults import plan as faults
from repro.serve import protocol as wire
from repro.serve.coalesce import coalesce_batches
from repro.serve.snapshot import restore_engine, save_snapshot, sweep_stale_tmp
from repro.shard.dynamic import ShardedDynamicColoring
from repro.shard.engine import ShardedColoring

__all__ = ["ColoringServer"]

_SERVER_NAME = f"repro-serve/{__version__}"


@dataclass
class _QueueItem:
    """One admitted ``update_batch``: who sent it, its correlation id,
    and the parsed event object."""

    session: "_Session"
    request_id: int
    batch: object  # UpdateBatch


class _Session:
    """One client connection: framed reader/writer plus a write lock (the
    worker and the handler both push frames down the same socket)."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer
        self.hello_done = False
        self._lock = asyncio.Lock()

    async def send(self, frame: wire.Frame) -> None:
        """Serialize and flush one frame; closed peers are ignored (the
        handler notices EOF on its own)."""
        async with self._lock:
            if self.writer.is_closing():
                return
            try:
                self.writer.write(wire.encode_frame(frame))
                await self.writer.drain()
            except (ConnectionError, RuntimeError):
                pass

    async def close(self) -> None:
        with contextlib.suppress(Exception):
            self.writer.close()
            await self.writer.wait_closed()


class ColoringServer:
    """The streaming coloring service (tentpole of DESIGN.md §8).

    Parameters
    ----------
    config:
        Base :class:`ColoringConfig`; the ``serve_*`` knobs size the
        queue, coalescing and snapshot cadence, and everything else is
        the default engine config ``load_graph`` overrides merge into.
    socket_path / host+port:
        Exactly one listening endpoint: a unix socket path, or a TCP
        port (default host 127.0.0.1 — the protocol has no auth; see
        docs/RUNBOOK.md before binding wider).
    snapshot_path:
        Where periodic/final/``snapshot``-requested snapshots go when
        the request doesn't name a path.
    restore:
        Snapshot to warm-start from: the engine (graph + colors + batch
        index + config) is rebuilt before the first connection.  A torn
        current snapshot falls back to rotated generations
        (:func:`~repro.serve.snapshot.restore_engine`).
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` armed at ``start()`` —
        the chaos harness's hook into the daemon's injection sites
        (``serve.snapshot.write``, ``serve.connection``).  ``None`` (the
        default) leaves every site a no-op.
    metrics_port:
        Optional loopback TCP port serving the Prometheus text
        exposition of the :mod:`repro.obs` registry over plain HTTP
        (``GET /metrics`` — any path answers).  The same text is
        available in-protocol via the ``metrics`` verb; this port
        exists for scrapers that speak HTTP, not our framing.
    """

    def __init__(
        self,
        config: ColoringConfig | None = None,
        *,
        socket_path: str | None = None,
        host: str = "127.0.0.1",
        port: int | None = None,
        snapshot_path: str | None = None,
        restore: str | None = None,
        fault_plan: "faults.FaultPlan | None" = None,
        metrics_port: int | None = None,
    ) -> None:
        if (socket_path is None) == (port is None):
            raise ValueError("exactly one of socket_path / port is required")
        self.cfg = config or ColoringConfig.practical()
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.snapshot_path = snapshot_path
        self.fault_plan = fault_plan
        self.metrics_port = metrics_port
        self._metrics_server: asyncio.base_events.Server | None = None

        self.engine: DynamicColoring | None = None
        self.initial_mode = "pipeline"
        self.backend = "single"
        self._queue: asyncio.Queue[_QueueItem] = asyncio.Queue(
            maxsize=max(1, int(self.cfg.serve_queue_max))
        )
        self._sessions: set[_Session] = set()
        self._server: asyncio.base_events.Server | None = None
        self._worker: asyncio.Task | None = None
        self._stop_event: asyncio.Event | None = None
        self._started = time.monotonic()

        # Counters surfaced by the ``stats`` verb.
        self.batches_applied = 0
        self.coalesced_batches = 0
        self.rejected_batches = 0
        self.fallbacks = 0
        self.snapshots_written = 0
        self.last_snapshot_index = -1
        self.snapshot_failures = 0
        self.idle_disconnects = 0
        self.queue_high_water = 0
        self.frame_counts: dict[str, int] = {}
        self.last_snapshot_at: float | None = None  # time.monotonic()
        self.last_snapshot_seconds = 0.0

        if restore is not None:
            self.engine = restore_engine(restore)
            self.cfg = dataclasses.replace(
                self.engine.cfg,
                **{
                    f: getattr(self.cfg, f)
                    for f in (
                        "serve_queue_max",
                        "serve_coalesce_max",
                        "serve_snapshot_every",
                        "serve_retry_after_s",
                        "serve_snapshot_keep",
                        "serve_idle_timeout_s",
                    )
                },
            )
            # Snapshots record graph + colors + batch index, not the
            # driver: a restore always comes back as the single engine
            # (send a fresh load_graph with backend="sharded" to re-shard).
            self.initial_mode = "restored"
            self.backend = "single"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the endpoint and start the ingest worker."""
        self._stop_event = asyncio.Event()
        # A daemon is what the metrics registry exists for: arm it
        # unconditionally (tracing still follows the obs_trace knob).
        obs.enable(tracing=False, metrics=True)
        obs.enable_from_config(self.cfg)
        if self.fault_plan is not None:
            faults.arm(self.fault_plan)
        if self.snapshot_path:
            swept = sweep_stale_tmp(self.snapshot_path)
            if swept:
                print(
                    f"{_SERVER_NAME} swept {len(swept)} stale snapshot "
                    f"tmp file(s): {', '.join(swept)}",
                    file=sys.stderr,
                    flush=True,
                )
        if self.socket_path is not None:
            path = Path(self.socket_path)
            if path.exists():
                path.unlink()
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=str(path)
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_client, host=self.host, port=self.port
            )
        if self.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics_scrape,
                host="127.0.0.1",
                port=self.metrics_port,
            )
        self._worker = asyncio.create_task(self._worker_loop())

    async def _handle_metrics_scrape(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Minimal HTTP/1.1 responder for ``--metrics-port``: read the
        request head, answer the Prometheus exposition, close.  No
        routing, no keep-alive — exactly what a scraper needs."""
        try:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"), timeout=5.0)
        except (asyncio.IncompleteReadError, ConnectionError, asyncio.LimitOverrunError):
            pass
        body = self.metrics_text().encode()
        head = (
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            b"Connection: close\r\n\r\n"
        )
        with contextlib.suppress(ConnectionError):
            writer.write(head + body)
            await writer.drain()
        with contextlib.suppress(Exception):
            writer.close()
            await writer.wait_closed()

    def metrics_text(self) -> str:
        """Prometheus text exposition: live server gauges refreshed into
        the :mod:`repro.obs` registry, then rendered.  Shared by the
        ``metrics`` verb and the ``--metrics-port`` scrape endpoint."""
        obs.gauge_set("repro_serve_queue_depth", self._queue.qsize())
        obs.gauge_set("repro_serve_sessions", len(self._sessions))
        obs.gauge_set(
            "repro_serve_uptime_seconds",
            round(time.monotonic() - self._started, 3),
        )
        return obs.render_metrics()

    @property
    def endpoint(self) -> str:
        """Human-readable listening address (for logs and the ready line)."""
        if self.socket_path is not None:
            return f"unix:{self.socket_path}"
        return f"tcp:{self.host}:{self.port}"

    async def run_until_stopped(self, install_signals: bool = True) -> None:
        """``start()`` + serve until ``shutdown`` (or SIGINT/SIGTERM),
        then drain, snapshot and tear down — the CLI entry point."""
        await self.start()
        loop = asyncio.get_running_loop()
        if install_signals:
            for sig in (signal.SIGINT, signal.SIGTERM):
                with contextlib.suppress(NotImplementedError, ValueError):
                    loop.add_signal_handler(sig, self.request_stop)
        print(f"{_SERVER_NAME} listening on {self.endpoint}", file=sys.stderr, flush=True)
        assert self._stop_event is not None
        await self._stop_event.wait()
        await self._teardown()

    def request_stop(self) -> None:
        """Flag the server to stop (idempotent; safe from signal handlers)."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def _teardown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
        if self._worker is not None:
            await self._drain()
            self._worker.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._worker
        if self.snapshot_path and self.engine is not None:
            self._write_snapshot(self.snapshot_path)
        for session in list(self._sessions):
            await session.close()
        if self.socket_path is not None:
            with contextlib.suppress(OSError):
                Path(self.socket_path).unlink()
        print(f"{_SERVER_NAME} clean shutdown", file=sys.stderr, flush=True)

    async def _drain(self) -> None:
        """Wait until every admitted batch has been applied."""
        await self._queue.join()

    # ------------------------------------------------------------------
    # The apply worker (single writer)
    # ------------------------------------------------------------------
    async def _worker_loop(self) -> None:
        while True:
            items = [await self._queue.get()]
            limit = max(1, int(self.cfg.serve_coalesce_max))
            while len(items) < limit:
                try:
                    items.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            try:
                await self._apply(items)
            finally:
                for _ in items:
                    self._queue.task_done()

    async def _apply(self, items: list[_QueueItem]) -> None:
        engine = self.engine
        assert engine is not None
        batches = [item.batch for item in items]
        t_apply = time.perf_counter()
        try:
            batch = coalesce_batches(engine.net, batches)
            report = engine.apply_batch(batch)
        except Exception as exc:  # keep serving; the batch is lost
            frame = wire.ErrorFrame(
                id=None, code="internal", message=f"apply failed: {exc!r}"
            )
            for session in {item.session for item in items}:
                await session.send(frame)
            return
        self.batches_applied += 1
        self.coalesced_batches += len(items) - 1
        if report.mode == "fallback":
            self.fallbacks += 1
        obs.count("repro_serve_batches_applied_total")
        obs.count("repro_serve_batches_coalesced_total", len(items) - 1)
        obs.observe(
            "repro_serve_apply_us", (time.perf_counter() - t_apply) * 1e6
        )
        obs.gauge_set("repro_serve_queue_depth", self._queue.qsize())
        frame = wire.BatchReportFrame(
            ids=[item.request_id for item in items],
            coalesced=len(items),
            report=report.as_dict(),
        )
        for session in {item.session for item in items}:
            await session.send(frame)
        every = int(self.cfg.serve_snapshot_every)
        if every > 0 and self.snapshot_path and self.batches_applied % every == 0:
            # A failed *periodic* snapshot (disk trouble, injected torn
            # write) must not take the service down: the engine state is
            # intact, only recovery freshness suffers.  Note it and keep
            # serving; clean shutdown and explicit `snapshot` requests
            # still surface their own failures.
            try:
                self._write_snapshot(self.snapshot_path)
            except (faults.FaultInjected, OSError, ValueError) as exc:
                self.snapshot_failures += 1
                print(
                    f"{_SERVER_NAME} periodic snapshot failed: {exc!r}",
                    file=sys.stderr,
                    flush=True,
                )

    def _write_snapshot(self, path: str) -> None:
        assert self.engine is not None
        t0 = time.perf_counter()
        info = save_snapshot(
            self.engine, path, keep=max(1, int(self.cfg.serve_snapshot_keep))
        )
        self.snapshots_written += 1
        self.last_snapshot_index = info.batch_index
        self.last_snapshot_seconds = time.perf_counter() - t0
        self.last_snapshot_at = time.monotonic()
        obs.count("repro_serve_snapshots_total")
        obs.observe("repro_serve_snapshot_us", self.last_snapshot_seconds * 1e6)

    # ------------------------------------------------------------------
    # Per-connection handler
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session = _Session(reader, writer)
        self._sessions.add(session)
        idle = float(self.cfg.serve_idle_timeout_s)
        try:
            while True:
                try:
                    frame = await asyncio.wait_for(
                        wire.read_frame_async(reader), timeout=idle or None
                    )
                except asyncio.TimeoutError:
                    # Quiet client past the idle window: reclaim the
                    # session (pings count as activity — see `ping`).
                    self.idle_disconnects += 1
                    break
                except wire.ProtocolError as exc:
                    await session.send(
                        wire.ErrorFrame(id=exc.id, code=exc.code, message=exc.message)
                    )
                    if exc.code in ("bad-frame", "frame-too-large"):
                        break  # framing lost; cannot resynchronize
                    continue
                if frame is None:
                    break
                try:
                    # Chaos site: an armed `serve.connection` fault drops
                    # the session right here (mid-conversation hangup).
                    faults.inject("serve.connection", frame_type=frame.TYPE)
                except faults.FaultInjected:
                    break
                try:
                    done = await self._dispatch(session, frame)
                except wire.ProtocolError as exc:
                    await session.send(
                        wire.ErrorFrame(
                            id=exc.id if exc.id is not None else frame.id,
                            code=exc.code,
                            message=exc.message,
                            retry_after=exc.retry_after,
                        )
                    )
                    continue
                except Exception as exc:
                    await session.send(
                        wire.ErrorFrame(
                            id=frame.id, code="internal", message=repr(exc)
                        )
                    )
                    continue
                if done:
                    break
        finally:
            self._sessions.discard(session)
            await session.close()

    async def _dispatch(self, session: _Session, frame: wire.Frame) -> bool:
        """Handle one request frame; returns True when the connection (or
        the whole server, for ``shutdown``) should wind down."""
        self.frame_counts[frame.TYPE] = self.frame_counts.get(frame.TYPE, 0) + 1
        obs.count("repro_serve_frames_total", verb=frame.TYPE)
        if isinstance(frame, wire.Hello):
            common = set(frame.versions) & {wire.PROTOCOL_VERSION}
            if not common:
                raise wire.ProtocolError(
                    "bad-version",
                    f"server speaks version {wire.PROTOCOL_VERSION}, "
                    f"client offered {frame.versions}",
                    id=frame.id,
                )
            session.hello_done = True
            await session.send(
                wire.Welcome(
                    id=frame.id,
                    v=max(common),
                    server=_SERVER_NAME,
                    n=None if self.engine is None else self.engine.n,
                )
            )
            return False
        if not session.hello_done:
            raise wire.ProtocolError(
                "hello-required", "first frame must be 'hello'", id=frame.id
            )

        if isinstance(frame, wire.LoadGraph):
            await self._handle_load_graph(session, frame)
            return False
        if isinstance(frame, wire.UpdateBatchFrame):
            self._handle_update_batch(session, frame)
            return False
        if isinstance(frame, wire.QueryColors):
            await session.send(self._handle_query_colors(frame))
            return False
        if isinstance(frame, wire.QueryPalette):
            await session.send(self._handle_query_palette(frame))
            return False
        if isinstance(frame, wire.Ping):
            await session.send(wire.Pong(id=frame.id))
            return False
        if isinstance(frame, wire.StatsRequest):
            await session.send(wire.StatsReply(id=frame.id, stats=self.stats()))
            return False
        if isinstance(frame, wire.MetricsRequest):
            await session.send(
                wire.MetricsReply(id=frame.id, text=self.metrics_text())
            )
            return False
        if isinstance(frame, wire.SnapshotRequest):
            await session.send(self._handle_snapshot(frame))
            return False
        if isinstance(frame, wire.Shutdown):
            await self._drain()
            if self.snapshot_path and self.engine is not None:
                self._write_snapshot(self.snapshot_path)
            await session.send(wire.Goodbye(id=frame.id))
            self.request_stop()
            return True
        # A well-formed *response* type sent by a client.
        raise wire.ProtocolError(
            "bad-type", f"{frame.TYPE!r} is not a request", id=frame.id
        )

    # ------------------------------------------------------------------
    # Verb implementations
    # ------------------------------------------------------------------
    def _engine_or_raise(self, request_id: int) -> DynamicColoring:
        if self.engine is None:
            raise wire.ProtocolError(
                "no-graph", "no graph loaded (send 'load_graph' first)",
                id=request_id,
            )
        return self.engine

    async def _handle_load_graph(
        self, session: _Session, frame: wire.LoadGraph
    ) -> None:
        overrides = dict(frame.config)
        # "initial" and "backend" are reserved protocol keys, not
        # ColoringConfig fields: "initial" picks which engine pays for the
        # initial coloring of the *single* maintenance engine, "backend"
        # picks the maintenance engine itself.
        initial = overrides.pop("initial", None)
        backend = overrides.pop("backend", "single")
        if backend not in ("single", "sharded"):
            raise wire.ProtocolError(
                "bad-payload",
                f"load_graph: 'backend' must be 'single' or 'sharded', "
                f"got {backend!r}",
                id=frame.id,
            )
        if backend == "sharded" and initial is not None:
            # The sharded backend always pays its own (sharded) initial
            # coloring; an explicit 'initial' would silently not apply.
            raise wire.ProtocolError(
                "bad-payload",
                "load_graph: 'initial' applies to backend='single' only "
                "(the sharded backend does its own sharded initial coloring)",
                id=frame.id,
            )
        if initial is None:
            initial = "pipeline"
        if initial not in ("pipeline", "sharded"):
            raise wire.ProtocolError(
                "bad-payload",
                f"load_graph: 'initial' must be 'pipeline' or 'sharded', "
                f"got {initial!r}",
                id=frame.id,
            )
        known = {f.name for f in dataclasses.fields(ColoringConfig)}
        unknown = set(overrides) - known
        if unknown:
            raise wire.ProtocolError(
                "bad-payload",
                f"load_graph: unknown config fields {sorted(unknown)}",
                id=frame.id,
            )
        cfg = dataclasses.replace(self.cfg, **overrides)
        edges = np.asarray(frame.edges, dtype=np.int64).reshape(-1, 2)
        if edges.size and (edges.min() < 0 or edges.max() >= frame.n):
            raise wire.ProtocolError(
                "bad-payload", "load_graph: edge endpoint out of range", id=frame.id
            )
        # Pending batches belong to the engine being replaced: flush them
        # first so every admitted batch is applied exactly once.
        if self.engine is not None:
            await self._drain()
        t0 = time.perf_counter()
        if backend == "sharded":
            engine: DynamicColoring = ShardedDynamicColoring(
                (frame.n, edges), cfg
            )
            initial_rounds = int(engine.initial_rounds)
            self.initial_mode = "sharded" if engine.k > 1 else "pipeline"
        elif initial == "sharded":
            sharded = ShardedColoring((frame.n, edges), cfg).run()
            engine = DynamicColoring(
                (frame.n, edges), cfg, initial_colors=sharded.colors
            )
            initial_rounds = int(sharded.rounds_total)
            self.initial_mode = "sharded"
        else:
            engine = DynamicColoring((frame.n, edges), cfg)
            initial_rounds = int(engine.initial_rounds)
            self.initial_mode = "pipeline"
        self.engine = engine
        self.backend = backend
        self.batches_applied = 0
        self.coalesced_batches = 0
        self.rejected_batches = 0
        self.fallbacks = 0
        await session.send(
            wire.GraphLoaded(
                id=frame.id,
                n=engine.n,
                m=int(engine.net.m),
                delta=int(engine.net.delta),
                colors_used=engine.colors_used(),
                initial_rounds=initial_rounds,
                seconds=time.perf_counter() - t0,
                initial=self.initial_mode,
                backend=self.backend,
            )
        )

    def _handle_update_batch(
        self, session: _Session, frame: wire.UpdateBatchFrame
    ) -> None:
        engine = self._engine_or_raise(frame.id)
        try:
            batch = frame.batch
            batch.validate(engine.n)
        except ValueError as exc:
            raise wire.ProtocolError("bad-payload", str(exc), id=frame.id) from exc
        try:
            self._queue.put_nowait(_QueueItem(session, frame.id, batch))
            depth = self._queue.qsize()
            if depth > self.queue_high_water:
                self.queue_high_water = depth
                obs.gauge_set("repro_serve_queue_high_water", depth)
        except asyncio.QueueFull:
            self.rejected_batches += 1
            obs.count("repro_serve_batches_rejected_total")
            raise wire.ProtocolError(
                "queue-full",
                f"ingest queue at capacity ({self._queue.maxsize})",
                id=frame.id,
                retry_after=float(self.cfg.serve_retry_after_s),
            ) from None

    def _handle_query_colors(self, frame: wire.QueryColors) -> wire.Frame:
        engine = self._engine_or_raise(frame.id)
        if frame.nodes is None:
            colors = engine.colors
        else:
            nodes = np.asarray(frame.nodes, dtype=np.int64)
            if nodes.size and (nodes.min() < 0 or nodes.max() >= engine.n):
                raise wire.ProtocolError(
                    "bad-payload", "query_colors: node id out of range", id=frame.id
                )
            colors = engine.colors[nodes]
        return wire.ColorsReply(
            id=frame.id,
            nodes=frame.nodes,
            colors=colors.tolist(),
            proper=engine.is_proper(),
            complete=engine.is_complete(),
        )

    def _handle_query_palette(self, frame: wire.QueryPalette) -> wire.Frame:
        engine = self._engine_or_raise(frame.id)
        if not 0 <= frame.node < engine.n:
            raise wire.ProtocolError(
                "bad-payload", f"query_palette: node {frame.node} out of range",
                id=frame.id,
            )
        num_colors = engine.net.delta + 1
        neigh = engine.net.neighbors(frame.node)
        held = engine.colors[neigh]
        held = held[(held >= 0) & (held < num_colors)]
        free = np.setdiff1d(np.arange(num_colors, dtype=np.int64), held)
        return wire.PaletteReply(
            id=frame.id,
            node=frame.node,
            color=int(engine.colors[frame.node]),
            num_colors=num_colors,
            free=free.tolist(),
        )

    def _handle_snapshot(self, frame: wire.SnapshotRequest) -> wire.Frame:
        engine = self._engine_or_raise(frame.id)
        path = frame.path or self.snapshot_path
        if not path:
            raise wire.ProtocolError(
                "snapshot-failed",
                "no path: pass one in the request or start with --snapshot-path",
                id=frame.id,
            )
        t0 = time.perf_counter()
        try:
            info = save_snapshot(
                engine, path, keep=max(1, int(self.cfg.serve_snapshot_keep))
            )
        except (OSError, faults.FaultInjected) as exc:
            raise wire.ProtocolError(
                "snapshot-failed", f"cannot write {path}: {exc}", id=frame.id
            ) from exc
        self.snapshots_written += 1
        self.last_snapshot_index = info.batch_index
        self.last_snapshot_seconds = time.perf_counter() - t0
        self.last_snapshot_at = time.monotonic()
        obs.count("repro_serve_snapshots_total")
        obs.observe("repro_serve_snapshot_us", self.last_snapshot_seconds * 1e6)
        return wire.SnapshotSaved(
            id=frame.id,
            path=info.path,
            batch_index=info.batch_index,
            bytes=info.bytes,
        )

    def stats(self) -> dict:
        """The ``stats_report`` payload (docs/PROTOCOL.md §stats)."""
        out = {
            "server": _SERVER_NAME,
            "protocol_version": wire.PROTOCOL_VERSION,
            "endpoint": self.endpoint,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "graph_loaded": self.engine is not None,
            "initial": self.initial_mode,
            "backend": self.backend,
            "queue_depth": self._queue.qsize(),
            "queue_max": self._queue.maxsize,
            "coalesce_max": int(self.cfg.serve_coalesce_max),
            "snapshot_every": int(self.cfg.serve_snapshot_every),
            "snapshot_keep": int(self.cfg.serve_snapshot_keep),
            "idle_timeout_s": float(self.cfg.serve_idle_timeout_s),
            "batches_applied": self.batches_applied,
            "coalesced_batches": self.coalesced_batches,
            "rejected_batches": self.rejected_batches,
            "fallbacks": self.fallbacks,
            "snapshots_written": self.snapshots_written,
            "last_snapshot_index": self.last_snapshot_index,
            "snapshot_failures": self.snapshot_failures,
            "idle_disconnects": self.idle_disconnects,
            "fault_plan": None if self.fault_plan is None else self.fault_plan.name,
            # Observability enrichment (PROTOCOL.md 1.4.0).
            "queue_depth_high_water": self.queue_high_water,
            "coalesce_ratio": (
                round(
                    (self.batches_applied + self.coalesced_batches)
                    / self.batches_applied,
                    4,
                )
                if self.batches_applied
                else None
            ),
            "snapshot_generation": self.snapshots_written,
            "snapshot_age_s": (
                None
                if self.last_snapshot_at is None
                else round(time.monotonic() - self.last_snapshot_at, 3)
            ),
            "last_snapshot_seconds": round(self.last_snapshot_seconds, 6),
            "frames": dict(sorted(self.frame_counts.items())),
        }
        engine = self.engine
        if engine is not None:
            metrics = engine.net.metrics
            out.update(
                {
                    "n": engine.n,
                    "active": int(engine.active.sum()),
                    "m": int(engine.net.m),
                    "delta": int(engine.net.delta),
                    "colors_used": engine.colors_used(),
                    "batch_index": engine.batch_index,
                    "proper": engine.is_proper(),
                    "complete": engine.is_complete(),
                    "rounds_total": int(metrics.total_rounds),
                    "bits_total": int(metrics.total_bits),
                }
            )
        return out
