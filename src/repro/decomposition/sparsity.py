"""Exact local sparsity (Definition 2.1) via blocked triangle counting.

``ζ_v = (1/Δ)·(C(Δ,2) − m(N(v)))`` where ``m(N(v))`` is the number of
edges induced by v's neighborhood — equivalently the number of triangles
through v.  The "missing neighbor counts as Δ missing edges" subtlety of
Definition 2.1 is automatic: a node of degree ``d < Δ`` can have at most
``C(d,2)`` induced edges, so the formula already charges it the deficit.

This is an analysis-side computation (used to characterize workloads, to
validate decompositions, and in the slack experiment E4); the distributed
algorithm never calls it.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.simulator.network import BroadcastNetwork

__all__ = ["triangle_counts", "local_sparsity", "adjacency_matrix", "edge_common_neighbors"]


def adjacency_matrix(net: BroadcastNetwork, closed: bool = False) -> sp.csr_matrix:
    """CSR 0/1 adjacency (optionally with the identity added: closed
    neighborhoods N[v])."""
    n = net.n
    data = np.ones(net.indices.size, dtype=np.int32)
    A = sp.csr_matrix((data, net.indices.copy(), net.indptr.copy()), shape=(n, n))
    if closed:
        A = (A + sp.identity(n, dtype=np.int32, format="csr")).tocsr()
        A.data[:] = 1
    return A


def edge_common_neighbors(
    net: BroadcastNetwork,
    closed: bool = False,
    block: int = 1024,
) -> np.ndarray:
    """For every undirected edge (u, v), the size of ``N(u) ∩ N(v)`` (or
    ``N[u] ∩ N[v]`` when ``closed``), computed in src-blocks so memory
    stays bounded by ``block · Δ²`` sparse entries."""
    edges = net.undirected_edges()
    if edges.size == 0:
        return np.empty(0, dtype=np.int64)
    A = adjacency_matrix(net, closed=closed)
    out = np.zeros(edges.shape[0], dtype=np.int64)
    src = edges[:, 0]
    order = np.argsort(src, kind="stable")
    edges_sorted = edges[order]
    # Walk edge blocks grouped by source node ranges.
    i = 0
    m = edges_sorted.shape[0]
    while i < m:
        lo_src = edges_sorted[i, 0]
        hi = i
        uniq: set[int] = set()
        while hi < m and len(uniq | {int(edges_sorted[hi, 0])}) <= block:
            uniq.add(int(edges_sorted[hi, 0]))
            hi += 1
        rows = np.array(sorted(uniq), dtype=np.int64)
        local = {int(r): k for k, r in enumerate(rows)}
        C = (A[rows] @ A.T).tocsr()
        seg = edges_sorted[i:hi]
        li = np.array([local[int(s)] for s in seg[:, 0]], dtype=np.int64)
        vals = np.asarray(C[li, seg[:, 1]]).ravel()
        out[order[i:hi]] = vals.astype(np.int64)
        i = hi
        del C
        _ = lo_src  # readability only
    return out


def triangle_counts(net: BroadcastNetwork, block: int = 1024) -> np.ndarray:
    """Number of triangles through each node — i.e. ``m(N(v))``."""
    n = net.n
    t = np.zeros(n, dtype=np.int64)
    edges = net.undirected_edges()
    if edges.size == 0:
        return t
    tri_per_edge = edge_common_neighbors(net, closed=False, block=block)
    # Each triangle (v,u,w) contributes to edges (v,u) and (v,w) at v;
    # summing per-edge triangle counts over incident edges double counts.
    np.add.at(t, edges[:, 0], tri_per_edge)
    np.add.at(t, edges[:, 1], tri_per_edge)
    assert np.all(t % 2 == 0)
    return t // 2


def local_sparsity(net: BroadcastNetwork, block: int = 1024) -> np.ndarray:
    """ζ_v for every node (Definition 2.1), as float64."""
    delta = max(net.delta, 1)
    max_edges = delta * (delta - 1) / 2.0
    t = triangle_counts(net, block=block)
    return (max_edges - t.astype(np.float64)) / delta
