"""Tests for MultiTrial (Lemma 2.14)."""

import numpy as np
import pytest

from repro.config import ColoringConfig
from repro.core.multitrial import multitrial
from repro.core.state import ColoringState
from repro.graphs.generators import complete_graph, gnp_graph, ring_graph
from repro.simulator.network import BroadcastNetwork
from repro.simulator.rng import SeedSequencer


@pytest.fixture
def cfg():
    return ColoringConfig.practical()


def full_lists(state):
    lo = np.zeros(state.n, dtype=np.int64)
    hi = np.full(state.n, state.num_colors, dtype=np.int64)
    return lo, hi


class TestBasicBehavior:
    def test_colors_everyone_with_slack(self, cfg):
        # Sparse graph: palettes are huge relative to degrees.
        net = BroadcastNetwork(gnp_graph(200, 0.03, seed=1))
        state = ColoringState(net)
        mask = np.ones(net.n, dtype=bool)
        rep = multitrial(state, mask, *full_lists(state), cfg, SeedSequencer(1), "mt")
        assert rep.remaining == 0
        assert state.is_complete()
        state.verify()

    def test_result_proper_even_on_clique(self, cfg):
        net = BroadcastNetwork(complete_graph(12))
        state = ColoringState(net)
        mask = np.ones(net.n, dtype=bool)
        multitrial(state, mask, *full_lists(state), cfg, SeedSequencer(2), "mt")
        state.verify()

    def test_respects_mask(self, cfg):
        net = BroadcastNetwork(ring_graph(20))
        state = ColoringState(net)
        mask = np.zeros(net.n, dtype=bool)
        mask[:10] = True
        multitrial(state, mask, *full_lists(state), cfg, SeedSequencer(3), "mt")
        assert (state.colors[10:] < 0).all()

    def test_respects_list_intervals(self, cfg):
        net = BroadcastNetwork(ring_graph(30))
        state = ColoringState(net, num_colors=8)
        lo = np.full(net.n, 5, dtype=np.int64)
        hi = np.full(net.n, 8, dtype=np.int64)
        mask = np.ones(net.n, dtype=bool)
        multitrial(state, mask, lo, hi, cfg, SeedSequencer(4), "mt")
        used = state.colors[state.colors >= 0]
        assert used.size > 0
        assert used.min() >= 5

    def test_empty_interval_never_colors(self, cfg):
        net = BroadcastNetwork(ring_graph(10))
        state = ColoringState(net)
        lo = np.full(net.n, 2, dtype=np.int64)
        hi = np.full(net.n, 2, dtype=np.int64)
        mask = np.ones(net.n, dtype=bool)
        rep = multitrial(state, mask, lo, hi, cfg, SeedSequencer(5), "mt")
        assert rep.colored == 0
        assert rep.remaining == net.n


class TestReporting:
    def test_iterations_bounded(self, cfg):
        net = BroadcastNetwork(gnp_graph(100, 0.05, seed=6))
        state = ColoringState(net)
        mask = np.ones(net.n, dtype=bool)
        rep = multitrial(state, mask, *full_lists(state), cfg, SeedSequencer(6), "mt")
        assert rep.iterations <= cfg.multitrial_max_iters

    def test_tries_grow_geometrically(self, cfg):
        net = BroadcastNetwork(complete_graph(30))
        state = ColoringState(net)
        mask = np.ones(net.n, dtype=bool)
        rep = multitrial(state, mask, *full_lists(state), cfg, SeedSequencer(7), "mt")
        tries = [r["tries"] for r in rep.per_iteration]
        assert all(b >= a for a, b in zip(tries, tries[1:]))
        assert tries[0] == cfg.multitrial_initial

    def test_rounds_charged_two_per_iteration(self, cfg):
        net = BroadcastNetwork(ring_graph(12))
        state = ColoringState(net)
        mask = np.ones(net.n, dtype=bool)
        rep = multitrial(state, mask, *full_lists(state), cfg, SeedSequencer(8), "mtx")
        assert net.metrics.rounds_in("mtx") == 2 * rep.iterations

    def test_deterministic(self, cfg):
        def run(seed):
            net = BroadcastNetwork(gnp_graph(80, 0.05, seed=3))
            state = ColoringState(net)
            mask = np.ones(net.n, dtype=bool)
            multitrial(state, mask, *full_lists(state), cfg, SeedSequencer(seed), "mt")
            return state.colors.copy()

        assert np.array_equal(run(11), run(11))

    def test_report_dict(self, cfg):
        net = BroadcastNetwork(ring_graph(8))
        state = ColoringState(net)
        mask = np.ones(net.n, dtype=bool)
        rep = multitrial(state, mask, *full_lists(state), cfg, SeedSequencer(9), "mt")
        d = rep.as_dict()
        assert d["colored"] + d["remaining"] == 8


class TestLogStarBehavior:
    def test_fast_on_high_slack(self, cfg):
        """With slack ≥ 2d̂ everywhere, MultiTrial finishes in very few
        iterations — the O(log* n) engine observable."""
        net = BroadcastNetwork(gnp_graph(500, 0.01, seed=10))
        state = ColoringState(net)
        mask = np.ones(net.n, dtype=bool)
        rep = multitrial(state, mask, *full_lists(state), cfg, SeedSequencer(10), "mt")
        assert rep.remaining == 0
        assert rep.iterations <= 6
