"""Tests for round/bit accounting (repro.simulator.metrics)."""

from repro.simulator.metrics import RoundMetrics


class TestAddRound:
    def test_single_round(self):
        m = RoundMetrics()
        m.add_round([8, 8, 16], phase="p")
        assert m.total_rounds == 1
        assert m.phases["p"].messages == 3
        assert m.phases["p"].total_bits == 32
        assert m.max_message_bits == 16

    def test_phase_and_total_both_updated(self):
        m = RoundMetrics()
        m.add_round([4], phase="a")
        m.add_round([6], phase="b")
        assert m.rounds_in("a") == 1
        assert m.rounds_in("b") == 1
        assert m.total_rounds == 2
        assert m.total_bits == 10

    def test_empty_round_counts(self):
        m = RoundMetrics()
        m.add_round([], phase="quiet")
        assert m.rounds_in("quiet") == 1
        assert m.phases["quiet"].messages == 0

    def test_current_phase_default(self):
        m = RoundMetrics()
        m.begin_phase("x")
        m.add_round([1])
        assert m.rounds_in("x") == 1


class TestUniformRound:
    def test_uniform_round(self):
        m = RoundMetrics()
        m.add_uniform_round(10, 7, phase="v")
        assert m.phases["v"].messages == 10
        assert m.phases["v"].total_bits == 70
        assert m.max_message_bits == 7

    def test_zero_broadcasters_no_max_update(self):
        m = RoundMetrics()
        m.add_uniform_round(0, 100, phase="v")
        assert m.max_message_bits == 0
        assert m.total_rounds == 1


class TestReporting:
    def test_report_includes_total(self):
        m = RoundMetrics()
        m.add_round([2], phase="a")
        rep = m.report()
        assert "total" in rep and "a" in rep
        assert rep["total"]["rounds"] == 1

    def test_phase_names_excludes_total(self):
        m = RoundMetrics()
        m.add_round([2], phase="a")
        assert m.phase_names() == ["a"]

    def test_rounds_in_unknown_phase(self):
        assert RoundMetrics().rounds_in("nope") == 0

    def test_merged_with(self):
        a = RoundMetrics()
        a.add_round([4], phase="x")
        b = RoundMetrics()
        b.add_round([8, 8], phase="x")
        b.add_round([2], phase="y")
        merged = a.merged_with(b)
        assert merged.rounds_in("x") == 2
        assert merged.rounds_in("y") == 1
        assert merged.total_bits == 22
        assert merged.max_message_bits == 8
