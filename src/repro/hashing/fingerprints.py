"""Integer hash families and b-bit minwise fingerprints.

The BCONGEST almost-clique decomposition (Lemma 2.5, implemented per
[FGH+23]'s strategy) needs every pair of adjacent nodes to estimate the
similarity of their neighborhoods from broadcast-size sketches.  We use
b-bit minwise hashing: per sample ``j`` a shared hash ``h_j`` (the top 32
bits of splitmix64) orders the vertex universe; each node's fingerprint is
the low ``b`` bits of the minimum hash over its closed neighborhood —
computed batched over sample chunks, see :func:`minwise_fingerprints`.
:func:`pack_fingerprints` packs the samples ⌊64/b⌋ per uint64 word for the
SWAR similarity estimator.  Two nodes' fingerprints agree
with probability ``J + (1-J)·2^{-b}`` where ``J`` is the Jaccard similarity
of the closed neighborhoods — the standard estimator, which
:func:`repro.decomposition.minhash.estimate_edge_similarity` inverts.

Since ``b`` is constant, ``Θ(log n)`` samples fit into one ``O(log n)``-bit
broadcast, giving the O(ε⁻⁴) round count of Lemma 2.5.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "hash_u64",
    "hash_array_u64",
    "mix_u64",
    "minwise_fingerprints",
    "refresh_minwise_fingerprints",
    "pack_fingerprints",
    "packed_words_per_node",
]

_MASK64 = (1 << 64) - 1
# splitmix64 constants — a well-tested 64-bit mixer.
_GAMMA = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def hash_u64(value: int, salt: int = 0) -> int:
    """Deterministic 64-bit hash (splitmix64 finalizer) of ``value`` under
    ``salt``.  Pure-python scalar version of :func:`hash_array_u64`."""
    z = (int(value) + _GAMMA * (int(salt) + 1)) & _MASK64
    z = ((z ^ (z >> 30)) * _MIX1) & _MASK64
    z = ((z ^ (z >> 27)) * _MIX2) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def mix_u64(z: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer over an (any-shape) uint64 array.  The
    building block shared by :func:`hash_array_u64` and the counter-mode
    batch expansion in :mod:`repro.hashing.prg`."""
    with np.errstate(over="ignore"):
        z = (z ^ (z >> np.uint64(30))) * np.uint64(_MIX1)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(_MIX2)
        z = z ^ (z >> np.uint64(31))
    return z


def hash_array_u64(values: np.ndarray, salt: int = 0) -> np.ndarray:
    """Vectorized splitmix64 over an int array (returns uint64)."""
    with np.errstate(over="ignore"):
        z = values.astype(np.uint64) + np.uint64((_GAMMA * (int(salt) + 1)) & _MASK64)
    return mix_u64(z)


# Per-chunk gather budget for the batched fingerprint kernel: chunks are
# sized so a chunk's gather temporary stays around this many bytes.
_CHUNK_BYTES = 32 << 20
# The padded-dense path gathers n·(Δ+1) elements per sample; fall back to
# the CSR reduceat path when the padding waste over nnz+n exceeds this
# factor (skewed degree sequences) or the padded table itself is huge.
_PAD_WASTE_LIMIT = 4
_PAD_ELEMENT_CAP = 1 << 25


def _padded_closed_adjacency(
    indptr: np.ndarray, indices: np.ndarray, n: int
) -> tuple[np.ndarray, int] | None:
    """Flat ``(n · width)`` closed-adjacency table, each node's row
    ``[v, neighbors..., v, v, ...]`` padded *with the node itself* — extra
    copies of v never change a closed-neighborhood min, so no sentinel is
    needed.  Returns None when padding to ``width = Δ+1`` would waste too
    much over the CSR size (the reduceat path wins there)."""
    degrees = np.diff(indptr)
    width = int(degrees.max()) + 1 if n else 1
    total = n * width
    if total > _PAD_ELEMENT_CAP or total > max(
        _PAD_WASTE_LIMIT * (indices.size + n), 1 << 16
    ):
        return None
    padded = np.repeat(np.arange(n, dtype=np.int64)[:, None], width, axis=1)
    if indices.size:
        rows = np.repeat(np.arange(n), degrees)
        cols = np.arange(indices.size) - np.repeat(indptr[:-1], degrees) + 1
        padded[rows, cols] = indices
    return padded.ravel(), width


def minwise_fingerprints(
    indptr: np.ndarray,
    indices: np.ndarray,
    n: int,
    num_samples: int,
    bits: int,
    salt: int = 0,
) -> np.ndarray:
    """b-bit minwise fingerprints of the *closed* neighborhoods.

    The sample loop is batched: a chunk of Tc hash functions is one
    vectorized splitmix64 evaluation over a ``(Tc, n)`` salt×node grid
    (per-sample salts broadcast down the rows), and the per-neighborhood
    minima of a whole chunk are folded by array kernels instead of T
    python-level iterations.  Two equivalent gather strategies are chosen
    from the graph's shape (identical outputs either way):

    * *padded-dense* — gather each sample's hashes through a self-padded
      ``(n, Δ+1)`` closed-adjacency table and take one contiguous
      ``min(axis=1)`` (SIMD-friendly; the default for near-regular
      degree sequences, where padding waste is small);
    * *CSR reduceat* — gather ``h.take(indices, axis=1)`` once per chunk
      and fold the node segments with one axis-1 ``minimum.reduceat``
      (no padding waste; used for skewed degree sequences).

    Hashes are the top 32 bits of splitmix64: halving the lane width
    halves gather traffic through the hot path, and at simulable n the
    probability that a 32-bit tie involves two distinct neighborhood
    members in any sample is ≈ |N[u] ∪ N[v]|²/2³³ — negligible against
    the 2^{-b} collision floor the estimator already debiases.

    Parameters
    ----------
    indptr, indices:
        CSR adjacency of the graph.
    num_samples:
        Number of independent hash functions (T).
    bits:
        Fingerprint width b (1..16).
    salt:
        Base salt; sample j uses ``salt*num_samples + j``.

    Returns
    -------
    ``(T, n)`` uint16 array of fingerprints.
    """
    if not 1 <= bits <= 16:
        raise ValueError("bits must be in [1, 16]")
    fps = np.empty((num_samples, n), dtype=np.uint16)
    if n == 0 or num_samples == 0:
        return fps
    node_ids = np.arange(n, dtype=np.uint64)
    mask = np.uint32((1 << bits) - 1)
    base = int(salt) * int(num_samples)
    pad = _padded_closed_adjacency(indptr, indices, n)
    if pad is not None:
        flat, width = pad
        row_bytes = 4 * n
    else:
        has_nbrs = np.diff(indptr) > 0
        starts = indptr[:-1][has_nbrs]
        row_bytes = 4 * max(int(indices.size), n)
    chunk = int(np.clip(_CHUNK_BYTES // row_bytes, 1, num_samples))
    for j0 in range(0, num_samples, chunk):
        j1 = min(j0 + chunk, num_samples)
        # salt j enters splitmix64 as an additive offset γ·(salt+1); the
        # whole chunk shares one vectorized mix.
        salts = np.arange(base + j0 + 1, base + j1 + 1, dtype=np.uint64)
        with np.errstate(over="ignore"):
            offsets = salts * np.uint64(_GAMMA)
            h64 = mix_u64(node_ids[None, :] + offsets[:, None])
        h = (h64 >> np.uint64(32)).astype(np.uint32)
        if pad is not None:
            for t in range(j1 - j0):
                mins = h[t].take(flat).reshape(n, width).min(axis=1)
                fps[j0 + t] = (mins & mask).astype(np.uint16)
        else:
            # Min over the closed neighborhood N[v] = {v} ∪ N(v).
            m = h.copy()
            if indices.size:
                gathered = h.take(indices, axis=1)
                mins = np.minimum.reduceat(gathered, starts, axis=1)
                m[:, has_nbrs] = np.minimum(m[:, has_nbrs], mins)
            fps[j0:j1] = (m & mask).astype(np.uint16)
    return fps


def refresh_minwise_fingerprints(
    indptr: np.ndarray,
    indices: np.ndarray,
    n: int,
    num_samples: int,
    bits: int,
    salt: int,
    fps: np.ndarray,
    nodes: np.ndarray,
) -> np.ndarray:
    """Recompute only ``nodes``' columns of a ``(T, n)`` fingerprint
    matrix in place — byte-identical to a fresh
    :func:`minwise_fingerprints` call on the current CSR, restricted to
    the listed nodes.

    This is the delta-aware sketch maintenance path (ISSUE 10): a node's
    fingerprint is a pure function of ``(salt, sample, N[v])``, so after
    a topology delta only nodes whose *closed* neighborhood changed need
    re-hashing.  The hash grid is evaluated only over the closed
    neighborhoods of ``nodes`` (their ids plus their current neighbors),
    so the cost is ``O(T · (|nodes| + Σ deg(nodes)))`` instead of
    ``O(T · (n + m))``.

    ``fps`` must have shape ``(num_samples, n)`` and dtype uint16, and
    ``salt``/``num_samples``/``bits`` must match the call that built it.
    Returns ``fps`` (mutated in place) for chaining.
    """
    if not 1 <= bits <= 16:
        raise ValueError("bits must be in [1, 16]")
    if fps.shape != (num_samples, n):
        raise ValueError(f"fps shape {fps.shape} != ({num_samples}, {n})")
    nodes = np.unique(np.asarray(nodes, dtype=np.int64))
    if nodes.size and (nodes[0] < 0 or nodes[-1] >= n):
        raise ValueError(f"node id out of range [0, {n})")
    if nodes.size == 0 or num_samples == 0:
        return fps
    deg = (indptr[nodes + 1] - indptr[nodes]).astype(np.int64)
    total = int(deg.sum())
    if total:
        # Concatenated adjacency of the refreshed rows (one fancy gather).
        row_base = np.concatenate(([0], np.cumsum(deg)[:-1]))
        idx = np.arange(total, dtype=np.int64) + np.repeat(
            indptr[nodes] - row_base, deg
        )
        nb = np.asarray(indices[idx], dtype=np.int64)
    else:
        nb = np.empty(0, dtype=np.int64)
    universe = np.union1d(nodes, nb)
    pos_self = np.searchsorted(universe, nodes)
    has_nbrs = deg > 0
    if total:
        pos_nb = np.searchsorted(universe, nb)
        starts = row_base[has_nbrs]
    u64_universe = universe.astype(np.uint64)
    mask = np.uint32((1 << bits) - 1)
    base = int(salt) * int(num_samples)
    row_bytes = 4 * max(universe.size + nb.size, 1)
    chunk = int(np.clip(_CHUNK_BYTES // row_bytes, 1, num_samples))
    for j0 in range(0, num_samples, chunk):
        j1 = min(j0 + chunk, num_samples)
        salts = np.arange(base + j0 + 1, base + j1 + 1, dtype=np.uint64)
        with np.errstate(over="ignore"):
            offsets = salts * np.uint64(_GAMMA)
            h64 = mix_u64(u64_universe[None, :] + offsets[:, None])
        h = (h64 >> np.uint64(32)).astype(np.uint32)
        m = h[:, pos_self]
        if total:
            gathered = h[:, pos_nb]
            mins = np.minimum.reduceat(gathered, starts, axis=1)
            m[:, has_nbrs] = np.minimum(m[:, has_nbrs], mins)
        fps[j0:j1, nodes] = (m & mask).astype(np.uint16)
    return fps


def packed_words_per_node(num_samples: int, bits: int) -> int:
    """Words per node of the packed layout: ⌈T / ⌊64/b⌋⌉."""
    fields = 64 // bits
    return -(-int(num_samples) // fields)


def pack_fingerprints(fps: np.ndarray, bits: int) -> np.ndarray:
    """Pack a ``(T, n)`` b-bit fingerprint matrix into ``(n, words)``
    uint64 words, ⌊64/b⌋ samples per word, node-major so each node's row
    is contiguous (per-edge XOR in the SWAR estimator streams two rows).

    Sample j lands in word ``j // fields`` at bit offset
    ``(j % fields) * bits``; unused tail fields (and the ``64 % b``
    leftover bits when b ∤ 64) stay zero, so XOR-ing two packed rows
    yields zero in every non-sample field.
    """
    if not 1 <= bits <= 16:
        raise ValueError("bits must be in [1, 16]")
    num_samples, n = fps.shape
    fields = 64 // bits
    words = packed_words_per_node(num_samples, bits)
    if fps.size and int(fps.max()) >> bits:
        raise ValueError(f"fingerprint value exceeds {bits} bits")
    padded = np.zeros((n, words * fields), dtype=np.uint64)
    padded[:, :num_samples] = fps.T
    shifts = (np.arange(fields, dtype=np.uint64) * np.uint64(bits))[None, None, :]
    return np.bitwise_or.reduce(
        padded.reshape(n, words, fields) << shifts, axis=2
    )
