"""E12 — total communication: broadcast rounds · O(log n) bits per node.

The paper's §1 framing: CONGEST-model coloring algorithms may ship
Θ(n log n) bits per node per round (one distinct message per neighbor);
the whole point of BCONGEST is one O(log n)-bit message per round.
Measured: total bits broadcast per node over a full run (ours vs the
Johansson baseline) against the volume a CONGEST node may emit
(Δ·log n·rounds) — ours must sit orders of magnitude below the CONGEST
budget and stay within rounds·cap.
"""

from __future__ import annotations

import numpy as np
import pytest

from _common import print_table, ratio
from repro.baselines.johansson import johansson_coloring
from repro.config import ColoringConfig
from repro.core.algorithm import BroadcastColoring
from repro.graphs.generators import clique_blob_graph


@pytest.mark.benchmark(group="E12-total-bits")
def test_e12_bits_per_node(benchmark):
    cfg = ColoringConfig.practical(seed=1)
    rows = []
    for num, size in [(8, 48), (16, 64), (24, 96)]:
        g = clique_blob_graph(num, size, size // 3, size // 6, seed=1)
        res = BroadcastColoring(g, cfg).run()
        base = johansson_coloring(g, seed=1)
        n = res.n
        ours_per_node = res.total_bits / n
        base_per_node = base.total_bits / n
        congest_budget = res.delta * np.ceil(np.log2(n)) * res.rounds_total
        rows.append(
            (
                f"{num}x{size}",
                n,
                res.delta,
                f"{ours_per_node:.0f}",
                f"{base_per_node:.0f}",
                f"{congest_budget:.0f}",
                f"{ratio(congest_budget, ours_per_node):.0f}x",
            )
        )
        # Ours must respect rounds · cap, and sit far under CONGEST volume.
        assert ours_per_node <= res.rounds_total * cfg.bandwidth_bits(n)
        assert ours_per_node < congest_budget / 5
    print_table(
        "E12 total broadcast bits per node over a full run",
        ["blobs", "n", "Δ", "ours", "johansson", "CONGEST budget", "headroom"],
        rows,
    )
    benchmark.pedantic(
        lambda: BroadcastColoring(
            clique_blob_graph(8, 48, 16, 8, seed=2), cfg
        ).run(),
        rounds=1,
        iterations=1,
    )


@pytest.mark.benchmark(group="E12-total-bits")
def test_e12_bits_scale_with_log_n(benchmark):
    """Per-node totals grow like rounds·log n — doubling n at fixed Δ adds
    bits only through the log n factor (rounds stay flat per E1)."""
    cfg = ColoringConfig.practical(seed=2)
    rows = []
    per_node = []
    ns = []
    for num in [8, 16, 32, 64]:
        g = clique_blob_graph(num, 64, 20, 10, seed=2)
        res = BroadcastColoring(g, cfg).run()
        ns.append(res.n)
        per_node.append(res.total_bits / res.n)
        rows.append((res.n, res.rounds_total, f"{res.total_bits / res.n:.0f}"))
    print_table(
        "E12 per-node bits vs n (Δ = 64 fixed)",
        ["n", "rounds", "bits/node"],
        rows,
    )
    # 8x more nodes: per-node volume grows by at most ~2x (log factor).
    assert per_node[-1] <= 2.5 * per_node[0]
    benchmark.pedantic(
        lambda: BroadcastColoring(clique_blob_graph(8, 64, 20, 10, seed=3), cfg).run(),
        rounds=1,
        iterations=1,
    )
