"""Slack generation (Lemma 2.12, [EPS15]).

Each node independently, with probability ``p_s = 1/200``, tries one
uniform color — from ``[Δ+1] \\ [x(v)]`` in our pipeline, because the
reserved prefix ``[x(v)]`` must stay untouched until MultiTrial (Step 1(i)
of Algorithm 1).  Sparse nodes then hold Ω(ζ_v) permanent slack w.h.p.:
two of their neighbors adopted the same color often enough.

One round, one color broadcast per participant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import ColoringConfig
from repro.core.state import ColoringState
from repro.core.trycolor import interval_sampler, try_color_round
from repro.simulator.rng import SeedSequencer

__all__ = ["SlackReport", "generate_slack"]


@dataclass(frozen=True)
class SlackReport:
    participants: int
    colored: int

    def as_dict(self) -> dict:
        return {"participants": self.participants, "colored": self.colored}


def generate_slack(
    state: ColoringState,
    x_of_node: np.ndarray,
    cfg: ColoringConfig,
    seq: SeedSequencer,
    phase: str = "slack",
) -> SlackReport:
    """Run the one slack-generation round.

    ``x_of_node[v]`` is the reserved prefix x(v) (0 for sparse nodes, per
    §3.4: "for consistency, let x(v) = 0 for all v ∈ V_sparse").
    """
    rng = seq.shared_stream("slack-participation")
    participate = rng.random(state.n) < cfg.slack_probability
    participate &= state.colors < 0
    participants = np.flatnonzero(participate)

    lo = np.minimum(x_of_node, state.num_colors - 1).astype(np.int64)
    sampler = interval_sampler(lo, state.num_colors)
    colored = try_color_round(
        state, participants, sampler, seq, phase=phase, round_tag="slackgen"
    )
    return SlackReport(participants=int(participants.size), colored=colored)
