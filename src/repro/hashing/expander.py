"""Expander-walk representative sets — the [HN23] construction itself.

Lemma 2.14's bandwidth trick represents Θ(log n) random colors by "a
random walk on an implicit expander graph" over the color space ([HN23,
Section 7], quoted in the paper's §2.2).  The point: a length-k walk on a
degree-d expander is described by a start vertex (O(log n) bits) plus k
degree choices (k·log d bits), and by the expander Chernoff bound the
visited vertices hit any dense target set almost as reliably as k
independent samples — with *exponentially fewer* random bits.

This module implements an explicit expander over the color space: the
Margulis–Gabber–Galil family on Z_m × Z_m (constant degree 8, spectral
gap bounded away from 0 for every m), with the color list embedded into
the torus.  ``ExpanderWalker`` exposes the same seed→colors interface as
the counter-mode PRG in :mod:`repro.hashing.prg`, and
``ColoringConfig.multitrial_sampler = "expander"`` switches MultiTrial to
it — the ablation bench (EA3) compares the two.

Seed layout (all derived from the broadcast 63-bit seed, so the bit cost
is unchanged): start vertex and degree choices come from splitmix64
outputs of the seed — i.e. the walk itself is deterministic given the
seed, exactly what the receiving neighbors need to reproduce it.
"""

from __future__ import annotations

import math

import numpy as np

from repro.hashing.fingerprints import hash_u64

__all__ = ["ExpanderWalker", "mgg_neighbors", "walk_colors"]


def mgg_neighbors(x: int, y: int, m: int) -> list[tuple[int, int]]:
    """The 8 Margulis–Gabber–Galil neighbors of (x, y) on Z_m × Z_m:

        (x ± y, y), (x ± (y+1), y), (x, y ± x), (x, y ± (x+1))

    A classic constant-degree expander family (Gabber & Galil 1981);
    every vertex has exactly 8 (not necessarily distinct) neighbors.
    """
    return [
        ((x + y) % m, y),
        ((x - y) % m, y),
        ((x + y + 1) % m, y),
        ((x - y - 1) % m, y),
        (x, (y + x) % m),
        (x, (y - x) % m),
        (x, (y + x + 1) % m),
        (x, (y - x - 1) % m),
    ]


class ExpanderWalker:
    """Deterministic expander walks over a color interval ``[lo, hi)``.

    The interval of ``width`` colors embeds into the smallest torus
    Z_m × Z_m with m² ≥ width (row-major); torus vertices beyond the
    width map back into the interval by modular reduction, keeping the
    visited-color distribution near-uniform (each color has ⌈m²/width⌉ or
    ⌊m²/width⌋ preimages — a ≤ 2× density ratio that the walk's mixing
    washes out for the hitting-probability purpose).
    """

    DEGREE = 8

    def __init__(self, lo: int, hi: int):
        if hi <= lo:
            raise ValueError("empty color interval")
        self.lo = int(lo)
        self.width = int(hi - lo)
        self.m = max(2, int(math.ceil(math.sqrt(self.width))))

    def _start(self, seed: int) -> tuple[int, int]:
        h = hash_u64(seed, salt=0x5EED)
        return (h & 0xFFFFFFFF) % self.m, (h >> 32) % self.m

    def walk(self, seed: int, k: int) -> np.ndarray:
        """The first ``k`` colors visited by the seed's walk."""
        if k <= 0:
            return np.empty(0, dtype=np.int64)
        x, y = self._start(seed)
        out = np.empty(k, dtype=np.int64)
        for i in range(k):
            out[i] = self.lo + (x * self.m + y) % self.width
            step = hash_u64(seed, salt=i + 1) % self.DEGREE
            x, y = mgg_neighbors(x, y, self.m)[step]
        return out


def walk_colors(seed: int, k: int, lo: int, hi: int) -> np.ndarray:
    """Functional form mirroring :func:`repro.hashing.prg.expand_colors`
    for interval lists."""
    if hi <= lo or k <= 0:
        return np.empty(0, dtype=np.int64)
    return ExpanderWalker(lo, hi).walk(seed, k)
