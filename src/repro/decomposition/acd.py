"""ε-almost-clique decomposition (Definition 2.2, Lemma 2.5).

Two constructions with a common repair/normalization core:

* :func:`decompose_exact` — centralized reference: exact closed-neighborhood
  Jaccard similarities, friend graph, connected components.  Used by tests
  and as a cross-check for the distributed protocol.
* :func:`decompose_distributed` — the BCONGEST protocol in the spirit of
  [FGH+23]: b-bit minhash sketches broadcast under the bandwidth cap
  (O(ε⁻⁴) rounds), friendship decided from local estimates, clusters formed
  by two rounds of min-ID propagation over friend edges (almost-cliques
  have friend-diameter ≤ 2), then O(1) local repair rounds.

Both enforce Definition 2.2 on their output:
  (1) evicted nodes are locally sparse (validated separately),
  (2a) |K| ≤ (1+ε)Δ, (2b) |N(v) ∩ K| ≥ (1−ε)Δ for members,
  (2c) |N(v) ∩ K| ≤ (1−ε/2)Δ for non-members (repair adds violators when
       it can do so without breaking 2a).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.config import ColoringConfig
from repro.decomposition.minhash import compute_sketches, estimate_edge_similarity
from repro.decomposition.sparsity import edge_common_neighbors
from repro.simulator.network import BroadcastNetwork
from repro.simulator.rng import SeedSequencer
from repro.util.bitio import bits_for_id

__all__ = [
    "AlmostCliqueDecomposition",
    "decompose_exact",
    "decompose_distributed",
    "decompose_from_sketch",
]

SPARSE = -1


@dataclass
class AlmostCliqueDecomposition:
    """labels[v] == SPARSE (-1) for V_sparse, else the clique index."""

    labels: np.ndarray
    eps: float
    rounds_used: int = 0
    _cliques: list[np.ndarray] | None = field(default=None, repr=False)

    @property
    def num_cliques(self) -> int:
        return int(self.labels.max()) + 1 if (self.labels >= 0).any() else 0

    @property
    def cliques(self) -> list[np.ndarray]:
        if self._cliques is None:
            k = self.num_cliques
            self._cliques = [
                np.flatnonzero(self.labels == i).astype(np.int64) for i in range(k)
            ]
        return self._cliques

    def members(self, i: int) -> np.ndarray:
        return self.cliques[i]

    @property
    def sparse_nodes(self) -> np.ndarray:
        return np.flatnonzero(self.labels == SPARSE).astype(np.int64)

    def invalidate_cache(self) -> None:
        self._cliques = None


# ---------------------------------------------------------------------------
# Shared core
# ---------------------------------------------------------------------------


def _compact_labels(labels: np.ndarray) -> np.ndarray:
    """Relabel clique ids to 0..k-1 preserving SPARSE."""
    out = np.full_like(labels, SPARSE)
    used = np.unique(labels[labels >= 0])
    for new, old in enumerate(used):
        out[labels == old] = new
    return out


def _neighbor_label_counts(net: BroadcastNetwork, labels: np.ndarray) -> sp.csr_matrix:
    """Sparse (n × k) matrix: entry (v, c) = |N(v) ∩ K_c|."""
    k = int(labels.max()) + 1 if (labels >= 0).any() else 0
    if k == 0:
        return sp.csr_matrix((net.n, 0), dtype=np.int64)
    dst_labels = labels[net.indices]
    mask = dst_labels >= 0
    rows = net.edge_src[mask]
    cols = dst_labels[mask]
    data = np.ones(rows.size, dtype=np.int64)
    return sp.csr_matrix((data, (rows, cols)), shape=(net.n, k)).tocsr()


def _admit_joins(
    v_arr: np.ndarray,
    c_arr: np.ndarray,
    cnt_arr: np.ndarray,
    quota: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized quota admission for the (2c) join: qualifying
    (node, clique, count) candidacies in, (admitted nodes, their cliques)
    out.  ``quota[c]`` is clique c's remaining (2a) headroom (mutated).

    Best-count-first with fallback: each round every node bids for its
    best remaining clique, per-clique quotas admit by grouped rank, and a
    node whose best clique ran out of headroom falls back to its next
    qualifying clique (the behaviour of the old sequential scan) — rounds
    repeat until nothing moves.
    """
    order = np.lexsort((v_arr, c_arr, -cnt_arr))
    v_arr, c_arr, cnt_arr = v_arr[order], c_arr[order], cnt_arr[order]
    out_v: list[np.ndarray] = []
    out_c: list[np.ndarray] = []
    k = quota.size
    while v_arr.size:
        # Drop candidacies for cliques with no remaining headroom — a node
        # whose best clique is full falls through to its next one.
        open_ = quota[c_arr] > 0
        v_arr, c_arr, cnt_arr = v_arr[open_], c_arr[open_], cnt_arr[open_]
        if not v_arr.size:
            break
        # One candidacy per node: its best remaining clique.
        _, first = np.unique(v_arr, return_index=True)
        bv, bc = v_arr[first], c_arr[first]
        # Per-clique quota applied to the count-sorted group via grouped
        # cumulative ranks.
        gorder = np.lexsort((-cnt_arr[first], bc))
        bv, bc = bv[gorder], bc[gorder]
        group_start = np.searchsorted(bc, bc, side="left")
        rank_in_group = np.arange(bc.size) - group_start
        admit = rank_in_group < quota[bc]
        if not admit.any():  # unreachable safety: every open group admits its top rank
            break
        out_v.append(bv[admit])
        out_c.append(bc[admit])
        quota -= np.bincount(bc[admit], minlength=k)
        still = np.isin(v_arr, bv[admit], invert=True)
        v_arr, c_arr, cnt_arr = v_arr[still], c_arr[still], cnt_arr[still]
    if not out_v:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(out_v), np.concatenate(out_c)


def _repair(
    net: BroadcastNetwork,
    labels: np.ndarray,
    eps: float,
    iterations: int,
) -> tuple[np.ndarray, int]:
    """Enforce 2a/2b/2c by peeling/dissolving/joining.  Returns the repaired
    labels and the number of O(1)-round repair passes performed (each pass
    corresponds to 2 broadcast rounds: labels out, decisions out)."""
    delta = max(net.delta, 1)
    need_inside = (1.0 - eps) * delta  # 2b
    max_size = (1.0 + eps) * delta  # 2a
    join_threshold = (1.0 - eps / 2.0) * delta  # 2c
    passes = 0
    labels = labels.copy()
    for _ in range(max(1, iterations)):
        passes += 1
        changed = False
        counts = _neighbor_label_counts(net, labels)
        k = counts.shape[1]
        if k == 0:
            break
        own = np.zeros(net.n, dtype=np.int64)
        member = labels >= 0
        if member.any():
            own[member] = np.asarray(
                counts[np.flatnonzero(member), labels[member]]
            ).ravel()
        # (2b) peel members with too few inside-neighbors.
        bad = member & (own < need_inside)
        if bad.any():
            labels[bad] = SPARSE
            changed = True
        # dissolve cliques that became too small to ever satisfy 2b.
        sizes = np.bincount(labels[labels >= 0], minlength=k) if k else np.empty(0)
        for c in range(k):
            if 0 < sizes[c] <= need_inside:
                labels[labels == c] = SPARSE
                changed = True
        # (2c) join outsiders that see almost all of a clique, unless that
        # would break (2a).  Vectorized join: qualifying (node, clique)
        # candidates sort by count (best first), each node keeps its single
        # best clique, and per-clique admission applies the remaining (2a)
        # headroom as a quota via grouped ranks — no per-entry Python.
        counts = _neighbor_label_counts(net, labels)
        k = counts.shape[1]
        if k:
            sizes = np.bincount(labels[labels >= 0], minlength=k)
            coo = counts.tocoo()
            v_arr = coo.row.astype(np.int64)
            c_arr = coo.col.astype(np.int64)
            cnt_arr = coo.data.astype(np.int64)
            cand = (
                (labels[v_arr] == SPARSE)
                & (cnt_arr > join_threshold)
                & (cnt_arr >= need_inside)
            )
            if cand.any():
                quota = np.floor(max_size - sizes).astype(np.int64)
                joined_v, joined_c = _admit_joins(
                    v_arr[cand], c_arr[cand], cnt_arr[cand], quota
                )
                if joined_v.size:
                    labels[joined_v] = joined_c
                    changed = True
        # (2a) shed lowest-connectivity members from oversized cliques.
        counts = _neighbor_label_counts(net, labels)
        k = counts.shape[1]
        if k:
            sizes = np.bincount(labels[labels >= 0], minlength=k)
            for c in np.flatnonzero(sizes > max_size):
                members_c = np.flatnonzero(labels == c)
                inside = np.asarray(counts[members_c, c]).ravel()
                order = np.argsort(inside)
                shed = members_c[order[: int(sizes[c] - np.floor(max_size))]]
                labels[shed] = SPARSE
                changed = True
        if not changed:
            break
    return _compact_labels(labels), passes


def _clusters_from_friend_edges(
    net: BroadcastNetwork,
    friend_edge_mask: np.ndarray,
    dense_mask: np.ndarray,
) -> np.ndarray:
    """Cluster ids via two rounds of min-ID propagation over friend edges
    among dense nodes (almost-cliques have friend-diameter ≤ 2, so two
    rounds suffice for every member to hear the minimum ID)."""
    n = net.n
    edges = net.undirected_edges()
    ids = np.where(dense_mask, np.arange(n, dtype=np.int64), np.iinfo(np.int64).max)
    fe = edges[friend_edge_mask]
    both_dense = dense_mask[fe[:, 0]] & dense_mask[fe[:, 1]]
    fe = fe[both_dense]
    current = ids.copy()
    for _ in range(2):
        nxt = current.copy()
        if fe.size:
            np.minimum.at(nxt, fe[:, 0], current[fe[:, 1]])
            np.minimum.at(nxt, fe[:, 1], current[fe[:, 0]])
        current = nxt
    labels = np.full(n, SPARSE, dtype=np.int64)
    dense_nodes = np.flatnonzero(dense_mask)
    labels[dense_nodes] = current[dense_nodes]
    return _compact_labels(labels)


def _friend_degree(net: BroadcastNetwork, friend_edge_mask: np.ndarray) -> np.ndarray:
    edges = net.undirected_edges()
    fe = edges[friend_edge_mask]
    if not fe.size:
        return np.zeros(net.n, dtype=np.int64)
    return np.bincount(fe.ravel(), minlength=net.n).astype(np.int64)


def _build(
    net: BroadcastNetwork,
    similarity: np.ndarray,
    cfg: ColoringConfig,
    rounds_used: int,
) -> AlmostCliqueDecomposition:
    eps = cfg.eps
    delta = max(net.delta, 1)
    friend_threshold = 1.0 - cfg.acd_friend_slack * eps
    friend_mask = similarity >= friend_threshold
    fdeg = _friend_degree(net, friend_mask)
    dense_mask = fdeg >= (1.0 - 2.0 * eps) * delta
    labels = _clusters_from_friend_edges(net, friend_mask, dense_mask)
    # cluster formation: 2 rounds of id broadcasts.
    net.account_vector_round(int(dense_mask.sum()), bits_for_id(net.n), phase="acd/cluster")
    net.account_vector_round(int(dense_mask.sum()), bits_for_id(net.n), phase="acd/cluster")
    labels, passes = _repair(net, labels, eps, cfg.acd_repair_iterations)
    for _ in range(passes):
        # each repair pass: broadcast label, then broadcast join/leave bit.
        net.account_vector_round(net.n, bits_for_id(net.n), phase="acd/repair")
        net.account_vector_round(net.n, 1, phase="acd/repair")
    return AlmostCliqueDecomposition(
        labels=labels, eps=eps, rounds_used=rounds_used + 2 + 2 * passes
    )


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def decompose_exact(
    net: BroadcastNetwork, cfg: ColoringConfig | None = None
) -> AlmostCliqueDecomposition:
    """Centralized reference decomposition from exact similarities.

    No rounds are charged for the similarity computation itself (it is an
    oracle); cluster formation and repair still follow the distributed
    logic so that the two constructions remain comparable.
    """
    cfg = cfg or ColoringConfig.practical()
    edges = net.undirected_edges()
    if edges.size == 0:
        return AlmostCliqueDecomposition(
            labels=np.full(net.n, SPARSE, dtype=np.int64), eps=cfg.eps
        )
    cc = edge_common_neighbors(net, closed=True)
    du = net.degrees[edges[:, 0]] + 1
    dv = net.degrees[edges[:, 1]] + 1
    union = du + dv - cc
    similarity = np.where(union > 0, cc / np.maximum(union, 1), 0.0)
    return _build(net, similarity, cfg, rounds_used=0)


def decompose_distributed(
    net: BroadcastNetwork,
    cfg: ColoringConfig | None = None,
    seq: SeedSequencer | None = None,
) -> AlmostCliqueDecomposition:
    """The broadcast protocol of Lemma 2.5: minhash sketches → friendship →
    min-ID clustering → O(1) repair rounds.  All rounds accounted."""
    cfg = cfg or ColoringConfig.practical()
    seq = seq or SeedSequencer(cfg.seed)
    if net.undirected_edges().size == 0:
        return AlmostCliqueDecomposition(
            labels=np.full(net.n, SPARSE, dtype=np.int64), eps=cfg.eps
        )
    sketch = compute_sketches(
        net,
        num_samples=cfg.acd_minhash_samples,
        bits=cfg.acd_minhash_bits,
        salt=seq.derive_seed("acd-hash") % (1 << 31),
        engine=cfg.acd_sketch_engine,
    )
    similarity = estimate_edge_similarity(net, sketch)
    return _build(net, similarity, cfg, rounds_used=sketch.rounds_used)


def decompose_from_sketch(
    net: BroadcastNetwork,
    sketch,
    cfg: ColoringConfig | None = None,
) -> AlmostCliqueDecomposition:
    """Build the almost-clique decomposition from a *precomputed*
    similarity sketch — the delta-aware maintenance seam (ISSUE 10).

    Identical to :func:`decompose_distributed` except the sketch phase is
    skipped: the caller hands in a
    :class:`~repro.decomposition.minhash.SimilaritySketch` it maintains
    incrementally (see
    :func:`repro.hashing.fingerprints.refresh_minwise_fingerprints`) and
    accounts the re-broadcast of only the changed fingerprints itself.
    Friendship estimation, min-ID clustering, and the repair rounds run —
    and are accounted — exactly as in the from-scratch path.
    """
    cfg = cfg or ColoringConfig.practical()
    if net.undirected_edges().size == 0:
        return AlmostCliqueDecomposition(
            labels=np.full(net.n, SPARSE, dtype=np.int64), eps=cfg.eps
        )
    similarity = estimate_edge_similarity(net, sketch)
    return _build(net, similarity, cfg, rounds_used=sketch.rounds_used)
