"""Legacy setup shim.

The metadata lives in pyproject.toml; this file exists so that
``pip install -e . --no-build-isolation`` works on environments whose
setuptools predates native PEP 660 editable wheels (no `wheel` package
available offline).
"""

from setuptools import setup

setup()
