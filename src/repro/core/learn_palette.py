"""LearnPalette (Algorithm 2): every member of an almost-clique learns the
clique palette Ψ(K) in O(1) rounds.

The color space [Δ+1] is split into k = ⌊Δ/(C log n)⌋ contiguous ranges
R_1..R_k.  Every member picks a random range index t(v); the set
T_i = {v : t(v) = i} 2-hop connects K w.h.p. (Lemma 4.1).  Each v
broadcasts a C·log n-bit bitmap of R_{t(v)} ∩ C(N(v) ∩ K) — the colors of
its in-clique neighbors falling in its range — and every u ∈ K recovers
R_i ∩ C(K) by OR-ing the bitmaps received from its neighbors in T_i
(Lemma 4.2: any used color c ∈ R_i with holder w is seen because T_i
contains a common neighbor of u and w).

The implementation runs the actual protocol (random ranges, per-node
bitmaps, OR over in-clique neighbors) and reports per-node completeness,
so the w.h.p. statement of Lemma 4.2 is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import ColoringConfig
from repro.core.state import ColoringState
from repro.simulator.rng import SeedSequencer
from repro.util.bitio import bits_for_int

__all__ = ["PaletteKnowledge", "learn_palette"]


@dataclass
class PaletteKnowledge:
    """What LearnPalette produced for one clique."""

    members: np.ndarray  # clique members, aligned with rows of `known_free`
    known_free: np.ndarray  # (|K|, num_colors) bool: v's view of Ψ(K)
    true_free: np.ndarray  # (num_colors,) bool: the actual Ψ(K)
    complete: bool  # every member learned exactly C(K)
    incomplete_members: int

    def learned_palette(self, row: int) -> np.ndarray:
        """The clique palette as node ``members[row]`` believes it to be."""
        return np.flatnonzero(self.known_free[row]).astype(np.int64)


def learn_palette(
    state: ColoringState,
    members: np.ndarray,
    cfg: ColoringConfig,
    seq: SeedSequencer,
    phase: str = "sct/learn-palette",
    tag: object = 0,
    account: bool = True,
) -> PaletteKnowledge:
    """Run Algorithm 2 in the clique with the given ``members``."""
    net = state.net
    members = np.asarray(members, dtype=np.int64)
    num_colors = state.num_colors
    size = members.size

    # Number of ranges: k = ⌊Δ/(C log n)⌋, at least 1 (Algorithm 2).
    k = max(1, int(net.delta // max(cfg.log_threshold(net.n), 1.0)))
    k = min(k, max(size, 1))
    bounds = np.linspace(0, num_colors, k + 1).astype(np.int64)

    rng = seq.stream("learn-palette", phase, tag)
    t = rng.integers(0, k, size=size)

    member_row = {int(v): i for i, v in enumerate(members)}
    in_clique = np.zeros(net.n, dtype=bool)
    in_clique[members] = True

    # Step 1: per-member bitmap of its range ∩ colors of in-clique neighbors.
    bitmaps = np.zeros((size, num_colors), dtype=bool)
    for i, v in enumerate(members):
        lo, hi = int(bounds[t[i]]), int(bounds[t[i] + 1])
        nbrs = net.neighbors(int(v))
        nbrs = nbrs[in_clique[nbrs]]
        cols = state.colors[nbrs]
        cols = cols[(cols >= lo) & (cols < hi)]
        bitmaps[i, cols] = True

    # Step 2: each member ORs the bitmaps of its in-clique neighbors
    # (grouped by range via t, which travels with the bitmap).
    known_used = np.zeros((size, num_colors), dtype=bool)
    for i, v in enumerate(members):
        nbrs = net.neighbors(int(v))
        nbrs = nbrs[in_clique[nbrs]]
        rows = np.array([member_row[int(u)] for u in nbrs], dtype=np.int64)
        if rows.size:
            known_used[i] = bitmaps[rows].any(axis=0)
        # v also knows the colors of its own neighbors directly, and its own.
        cols = state.colors[nbrs]
        known_used[i, cols[cols >= 0]] = True
        if state.colors[members[i]] >= 0:
            known_used[i, state.colors[members[i]]] = True

    true_used = np.zeros(num_colors, dtype=bool)
    mc = state.colors[members]
    true_used[mc[mc >= 0]] = True

    # Completeness: over-approximation is impossible (bitmaps only carry
    # genuinely used colors); count members that *missed* colors.
    missed = (~known_used & true_used[None, :]).any(axis=1)
    incomplete = int(missed.sum())

    # One broadcast round: bitmap (range length bits) + the range index.
    range_len = int((bounds[1:] - bounds[:-1]).max()) if k else num_colors
    if account:
        net.account_vector_round(size, range_len + bits_for_int(k), phase=phase)

    return PaletteKnowledge(
        members=members,
        known_free=~known_used,
        true_free=~true_used,
        complete=incomplete == 0,
        incomplete_members=incomplete,
    )
