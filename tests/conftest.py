"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ColoringConfig
from repro.graphs.generators import (
    clique_blob_graph,
    complete_graph,
    gnp_graph,
    planted_acd_graph,
    ring_graph,
)
from repro.simulator.network import BroadcastNetwork
from repro.simulator.rng import SeedSequencer


@pytest.fixture
def cfg() -> ColoringConfig:
    return ColoringConfig.practical()


@pytest.fixture
def seq() -> SeedSequencer:
    return SeedSequencer(12345)


@pytest.fixture
def triangle_net() -> BroadcastNetwork:
    return BroadcastNetwork((3, [(0, 1), (1, 2), (0, 2)]))


@pytest.fixture
def path_net() -> BroadcastNetwork:
    return BroadcastNetwork((4, [(0, 1), (1, 2), (2, 3)]))


@pytest.fixture
def small_gnp_net() -> BroadcastNetwork:
    return BroadcastNetwork(gnp_graph(60, 0.15, seed=3))


@pytest.fixture
def clique_net() -> BroadcastNetwork:
    return BroadcastNetwork(complete_graph(12))


@pytest.fixture
def ring_net() -> BroadcastNetwork:
    return BroadcastNetwork(ring_graph(20))


@pytest.fixture
def planted_net(cfg) -> BroadcastNetwork:
    g = planted_acd_graph(4, 40, cfg.eps, sparse_nodes=40, seed=7)
    return BroadcastNetwork(g, bandwidth_bits=cfg.bandwidth_bits(g[0]))


@pytest.fixture
def blob_net(cfg) -> BroadcastNetwork:
    g = clique_blob_graph(3, 40, anti_edges_per_clique=30, external_edges_per_clique=10, seed=9)
    return BroadcastNetwork(g, bandwidth_bits=cfg.bandwidth_bits(g[0]))



