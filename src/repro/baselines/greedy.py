"""Sequential greedy (Δ+1)-coloring — the correctness/color-count oracle.

Not a distributed algorithm: it exists so that tests and experiments have
a trusted reference (greedy in any order uses ≤ Δ+1 colors; greedy in
degeneracy order uses ≤ degeneracy+1).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.properties import degeneracy_order
from repro.simulator.network import BroadcastNetwork

__all__ = ["greedy_coloring"]


def greedy_coloring(
    net: BroadcastNetwork, order: np.ndarray | None = None, smallest_last: bool = False
) -> np.ndarray:
    """Color greedily in ``order`` (default: by node id; ``smallest_last``
    uses the reverse degeneracy order, which minimizes the color count)."""
    n = net.n
    if order is None:
        order = (
            degeneracy_order(net)[::-1] if smallest_last else np.arange(n, dtype=np.int64)
        )
    colors = np.full(n, -1, dtype=np.int64)
    for v in order:
        v = int(v)
        used = set(int(c) for c in colors[net.neighbors(v)] if c >= 0)
        c = 0
        while c in used:
            c += 1
        colors[v] = c
    return colors
