"""One-pass streaming consumption of a round's inbox.

In BCStream a node sees its neighbors' messages one after another and may
keep only bounded state between them.  :func:`stream_reduce` enforces that
discipline mechanically: the reducer's state size (in words, via
``size_of``) is metered after *every* message, so a reducer that tries to
accumulate Θ(Δ) items trips the memory ceiling at the exact message where
a real device would run out.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

import numpy as np

from repro.bcstream.memory import MemoryMeter

__all__ = ["stream_reduce", "default_size_of"]


def default_size_of(state: Any) -> int:
    """Estimate a reducer state's size in words.

    Scalars cost 1; numpy arrays their length; containers the sum of their
    items (+1 for the spine).  Good enough to catch Δ-sized buffering.
    """
    if state is None:
        return 0
    if isinstance(state, (int, float, bool, np.integer, np.floating)):
        return 1
    if isinstance(state, np.ndarray):
        if state.dtype == bool:
            return max(1, int(np.ceil(state.size / 64)))
        return int(state.size)
    if isinstance(state, (bytes, str)):
        return max(1, len(state) // 8)
    if isinstance(state, dict):
        return 1 + sum(default_size_of(k) + default_size_of(v) for k, v in state.items())
    if isinstance(state, (list, tuple, set, frozenset)):
        return 1 + sum(default_size_of(x) for x in state)
    return 1


def stream_reduce(
    node: int,
    messages: Iterable[Any],
    init: Any,
    step: Callable[[Any, Any], Any],
    meter: MemoryMeter,
    size_of: Callable[[Any], int] = default_size_of,
) -> Any:
    """Fold ``messages`` through ``step`` starting from ``init``, metering
    the state after every message against ``node``'s memory budget."""
    state = init
    meter.touch(node, size_of(state))
    for msg in messages:
        state = step(state, msg)
        meter.touch(node, size_of(state))
    return state
