"""``repro.faults`` — deterministic fault injection + chaos campaigns.

The robustness layer of the repo (DESIGN.md §9): a seeded
:class:`FaultPlan` maps named injection sites (:data:`SITES`, compiled
into :mod:`repro.shard`, :mod:`repro.serve` and :mod:`repro.runner` as
:func:`inject` hooks) to deterministic fault schedules — crash, hang,
slow, torn-write — and the chaos harness (:mod:`repro.faults.chaos`,
``repro chaos``) runs real workloads under a plan and checks the
**byte-equality oracle**: because every engine is a pure function of
``(graph, config, seed)``, a run that crashed and recovered must end in
exactly the colors of a run that never failed.

Layers:

* :mod:`repro.faults.plan` — plans, rules, the armed-plan runtime and
  the zero-cost-when-disarmed :func:`inject` hook;
* :mod:`repro.faults.chaos` — the three campaign drivers (shard /
  dynamic / serve) behind the ``repro chaos`` subcommand.
"""

from repro.faults.plan import (
    KINDS,
    SITES,
    Fault,
    FaultInjected,
    FaultPlan,
    FaultRule,
    arm,
    armed_plan,
    disarm,
    fault_events,
    inject,
    suppressed,
)
from repro.faults.chaos import chaos_dynamic, chaos_serve, chaos_shard

__all__ = [
    "SITES",
    "KINDS",
    "Fault",
    "FaultRule",
    "FaultPlan",
    "FaultInjected",
    "inject",
    "arm",
    "disarm",
    "armed_plan",
    "suppressed",
    "fault_events",
    "chaos_shard",
    "chaos_dynamic",
    "chaos_serve",
]
