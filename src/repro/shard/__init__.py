"""Multi-shard partitioned coloring (DESIGN.md §7).

The first layer where the proper-coloring invariant is a *distributed*
property: the node universe is split across k workers, each colors its
shard's interior on the induced CSR (plus a read-only ghost frontier of
cut neighbors), and the driver re-establishes propriety across the cut
with the batched conflict-repair kernel — by protocol, not by
construction.  Partitioners in :mod:`repro.shard.partition`, driver in
:mod:`repro.shard.engine`, surface via ``repro shard`` and the runner's
``algorithm="shard"`` trials.
"""

from repro.shard.engine import ShardedColoring, ShardedResult, ShardReport
from repro.shard.partition import STRATEGIES, Partition, partition_nodes

__all__ = [
    "Partition",
    "STRATEGIES",
    "ShardReport",
    "ShardedColoring",
    "ShardedResult",
    "partition_nodes",
]
