"""Named workload families: one factory shared by the CLI, the runner and
the benches.

A *family* is a recipe turning ``(n, avg_degree, seed)`` into a concrete
graph.  Keeping the recipes here (rather than inside ``cli.py``, where
they historically lived) lets :mod:`repro.runner` worker processes build
the graph for a :class:`~repro.runner.spec.TrialSpec` without importing
argparse machinery.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.generators import (
    clique_blob_graph,
    geometric_graph,
    gnp_graph,
    hard_mix_graph,
    planted_acd_graph,
)

__all__ = ["FAMILIES", "make_graph"]

FAMILIES = ("gnp", "blobs", "geometric", "hardmix", "planted")


def make_graph(family: str, n: int, avg_degree: float, seed: int):
    """Instantiate a workload by family name (shared by all subcommands)."""
    if family == "gnp":
        return gnp_graph(n, min(1.0, avg_degree / max(n, 2)), seed=seed)
    if family == "blobs":
        size = max(8, int(avg_degree))
        return clique_blob_graph(
            max(1, n // size),
            size,
            anti_edges_per_clique=max(1, size // 3),
            external_edges_per_clique=max(1, size // 6),
            seed=seed,
        )
    if family == "geometric":
        radius = float(np.sqrt(avg_degree / (np.pi * max(n, 2))))
        return geometric_graph(n, radius, seed=seed)
    if family == "hardmix":
        size = max(8, int(avg_degree))
        blobs = max(1, n // (4 * size))
        return hard_mix_graph(
            blobs, size, n - blobs * size, avg_degree / max(n, 2), n // 20, seed=seed
        )
    if family == "planted":
        size = max(8, int(avg_degree))
        return planted_acd_graph(
            max(1, n // size), size, 0.1, sparse_nodes=n // 5, seed=seed
        )
    raise ValueError(f"unknown family: {family!r}")
