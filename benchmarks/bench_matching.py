"""E5 — the colorful matching (Lemma 2.9, Appendix A).

Paper claim: in every almost-clique with a_K ≥ C log n, an O(β)-round
procedure finds a colorful matching of size β·a_K, coloring at most
2β·a_K nodes.  Measured: matching size vs the β·a_K target and the round
count, sweeping the anti-degree a_K.
"""

from __future__ import annotations

import numpy as np
import pytest

from _common import print_table
from repro.config import ColoringConfig
from repro.core.cliques import compute_clique_info
from repro.core.matching import colorful_matching
from repro.core.state import ColoringState
from repro.decomposition.acd import AlmostCliqueDecomposition
from repro.graphs.generators import clique_blob_graph
from repro.simulator.network import BroadcastNetwork
from repro.simulator.rng import SeedSequencer


def setup(anti_per_clique: int, size=64, num=4, seed=0, beta=1.5):
    cfg = ColoringConfig.practical(c_log=0.3, beta=beta)
    g = clique_blob_graph(num, size, anti_per_clique, 8, seed=seed)
    net = BroadcastNetwork(g, bandwidth_bits=cfg.bandwidth_bits(g[0]))
    labels = np.arange(net.n) // size
    acd = AlmostCliqueDecomposition(labels=labels, eps=cfg.eps)
    state = ColoringState(net)
    info = compute_clique_info(net, acd, cfg, num_colors=state.num_colors)
    return cfg, net, state, info


@pytest.mark.benchmark(group="E5-matching")
def test_e5_matching_size_tracks_beta_ak(benchmark):
    rows = []
    for anti in [100, 200, 400, 800]:
        achieved, targets, rounds_used, colored = [], [], [], []
        for seed in range(3):
            cfg, net, state, info = setup(anti, seed=seed)
            rep = colorful_matching(state, info, cfg, SeedSequencer(seed))
            achieved.append(sum(rep.sizes.values()))
            targets.append(sum(rep.targets.values()))
            rounds_used.append(rep.rounds)
            colored.append(rep.colored_nodes)
        a_k = info.a_k.mean()
        rows.append(
            (
                anti,
                f"{a_k:.1f}",
                f"{np.mean(targets):.0f}",
                f"{np.mean(achieved):.0f}",
                f"{np.mean(achieved) / max(np.mean(targets), 1):.2f}",
                f"{np.mean(rounds_used):.1f}",
            )
        )
        # Shape claims: sizeable fraction of target; nodes ≤ 2·pairs.
        assert np.mean(achieved) >= 0.5 * np.mean(targets)
        assert all(c == 2 * s for c, s in zip(colored, achieved))
    print_table(
        "E5 colorful matching vs anti-degree (β=1.5, 4 cliques of 64)",
        ["anti-edges/clique", "a_K", "target Σβ·a_K", "achieved", "fraction", "rounds"],
        rows,
    )
    benchmark.pedantic(_run_once, rounds=1, iterations=1)


def _run_once():
    cfg, net, state, info = setup(200, seed=5)
    return colorful_matching(state, info, cfg, SeedSequencer(5))


@pytest.mark.benchmark(group="E5-matching")
def test_e5_rounds_are_o_beta(benchmark):
    """Round count stays within the O(β) budget as β grows."""
    rows = []
    for beta in [0.5, 1.0, 2.0, 4.0]:
        cfg, net, state, info = setup(400, beta=beta, seed=1)
        rep = colorful_matching(state, info, cfg, SeedSequencer(1))
        budget = int(np.ceil(cfg.matching_round_factor * beta))
        rows.append((beta, rep.rounds, budget, sum(rep.sizes.values())))
        assert rep.rounds <= budget
    print_table(
        "E5 rounds vs β (budget = 6β)",
        ["beta", "rounds used", "budget", "pairs found"],
        rows,
    )
    benchmark.pedantic(_run_once, rounds=1, iterations=1)
