"""Analysis helpers: verification oracles, growth-shape fitting, sweeps."""

from repro.analysis.verify import (
    verify_coloring,
    assert_proper_coloring,
    coloring_summary,
)
from repro.analysis.fitting import growth_fit, GrowthFit
from repro.analysis.stats import run_seeds, SweepResult, success_rate

__all__ = [
    "verify_coloring",
    "assert_proper_coloring",
    "coloring_summary",
    "growth_fit",
    "GrowthFit",
    "run_seeds",
    "SweepResult",
    "success_rate",
]
