"""Tests for the multi-shard subsystem (repro.shard + induced_subgraph +
the shared conflict kernel).

The load-bearing guarantee (ISSUE 5 acceptance): for any graph, partition
strategy and k, the reconciled coloring is proper, complete, and uses at
most Δ+1 colors — and k=1 is *bit-identical* to the single-process
pipeline.  Propriety here is a distributed property: interior edges are
proper by construction, the cut only by protocol, so the suite leans on
brute-force edge checks rather than the engine's own verdicts.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import brute_force_proper
from repro.config import ColoringConfig
from repro.core.algorithm import BroadcastColoring
from repro.graphs.families import make_graph
from repro.graphs.generators import geometric_graph, gnp_graph
from repro.runner import ParallelRunner, ResultStore, TrialSpec, load_matrix
from repro.runner.execute import run_trial
from repro.shard import STRATEGIES, TRANSPORTS, ShardedColoring, partition_nodes
from repro.shard.engine import _color_shard, _view_from_arena
from repro.shard.shm import ShmArena, leaked_segments
from repro.simulator.network import BroadcastNetwork

QUICK_MATRIX = "benchmarks/specs/quick.toml"


def shard_cfg(seed: int = 0, **overrides) -> ColoringConfig:
    return ColoringConfig.practical(seed=seed, **overrides)


# ----------------------------------------------------------------------
# Partitioners
# ----------------------------------------------------------------------
class TestPartition:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("k", [1, 2, 4, 8])
    def test_balanced_cover(self, strategy, k):
        net = BroadcastNetwork(gnp_graph(97, 0.08, seed=1))
        part = partition_nodes(net, k, strategy, seed=3)
        assert part.assignment.size == net.n
        assert part.assignment.min() >= 0 and part.assignment.max() < k
        sizes = part.sizes()
        assert sizes.sum() == net.n
        assert sizes.max() - sizes.min() <= 1

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_deterministic(self, strategy):
        net = BroadcastNetwork(gnp_graph(80, 0.1, seed=2))
        a = partition_nodes(net, 4, strategy, seed=5).assignment
        b = partition_nodes(net, 4, strategy, seed=5).assignment
        assert np.array_equal(a, b)

    def test_random_seed_changes_assignment(self):
        net = BroadcastNetwork(gnp_graph(80, 0.1, seed=2))
        a = partition_nodes(net, 4, "random", seed=1).assignment
        b = partition_nodes(net, 4, "random", seed=2).assignment
        assert not np.array_equal(a, b)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_k1_is_all_zero(self, strategy):
        net = BroadcastNetwork(gnp_graph(30, 0.2, seed=0))
        part = partition_nodes(net, 1, strategy, seed=0)
        assert (part.assignment == 0).all()
        assert part.cut_edges(net).size == 0

    def test_k_exceeding_n_leaves_empty_shards(self):
        net = BroadcastNetwork((3, [(0, 1), (1, 2)]))
        part = partition_nodes(net, 8, "contiguous")
        assert part.sizes().sum() == 3

    def test_cut_edges_match_brute_force(self):
        net = BroadcastNetwork(gnp_graph(60, 0.15, seed=4))
        part = partition_nodes(net, 3, "random", seed=7)
        got = {tuple(e) for e in part.cut_edges(net).tolist()}
        want = {
            (int(u), int(v))
            for u, v in net.undirected_edges()
            if part.assignment[u] != part.assignment[v]
        }
        assert got == want

    def test_greedy_beats_random_on_geometric(self):
        net = BroadcastNetwork(geometric_graph(1500, 0.06, seed=3))
        rand = partition_nodes(net, 4, "random", seed=1).cut_stats(net)
        greedy = partition_nodes(net, 4, "greedy", seed=1).cut_stats(net)
        assert greedy["cut_edges"] < rand["cut_edges"] / 3

    def test_invalid_inputs(self):
        net = BroadcastNetwork(gnp_graph(10, 0.3, seed=0))
        with pytest.raises(ValueError):
            partition_nodes(net, 0, "contiguous")
        with pytest.raises(ValueError):
            partition_nodes(net, 2, "metis")


# ----------------------------------------------------------------------
# Induced subgraphs with frontier ghosting
# ----------------------------------------------------------------------
class TestShardView:
    def _view(self, n=50, p=0.15, seed=9, frac=0.4, shard=2):
        net = BroadcastNetwork(gnp_graph(n, p, seed=seed))
        rng = np.random.default_rng(seed)
        mask = rng.random(n) < frac
        return net, mask, net.induced_subgraph(mask, shard=shard)

    def test_interior_edges_match_brute_force(self):
        net, mask, view = self._view()
        nodes = view.nodes
        assert np.array_equal(nodes, np.flatnonzero(mask))
        got = {
            (int(nodes[a]), int(nodes[b])) for a, b in view.interior_edges
        }
        want = {
            (int(u), int(v))
            for u, v in net.undirected_edges()
            if mask[u] and mask[v]
        }
        assert got == want

    def test_ghosts_are_exactly_cut_neighbors(self):
        net, mask, view = self._view()
        want_ghosts = set()
        want_cut = set()
        for u, v in net.undirected_edges():
            u, v = int(u), int(v)
            if mask[u] != mask[v]:
                inner, ghost = (u, v) if mask[u] else (v, u)
                want_ghosts.add(ghost)
                want_cut.add((inner, ghost))
        assert set(view.ghost_nodes.tolist()) == want_ghosts
        got_cut = {
            (int(view.nodes[i]), int(view.ghost_nodes[g]))
            for i, g in view.cut_edges
        }
        assert got_cut == want_cut
        assert view.shard == 2
        assert view.n_global == net.n

    def test_frontier_is_write_protected(self):
        _, _, view = self._view()
        assert view.ghost_nodes.size > 0
        with pytest.raises(ValueError):
            view.ghost_nodes[0] = 99
        with pytest.raises(ValueError):
            view.cut_edges[0, 0] = 99

    def test_full_mask_is_identity(self):
        net = BroadcastNetwork(gnp_graph(40, 0.2, seed=1))
        view = net.induced_subgraph(np.ones(net.n, dtype=bool))
        assert np.array_equal(view.nodes, np.arange(net.n))
        assert view.ghost_nodes.size == 0 and view.cut_edges.size == 0
        assert np.array_equal(view.interior_edges, net.undirected_edges())

    def test_accepts_id_array(self):
        net = BroadcastNetwork(gnp_graph(30, 0.2, seed=1))
        ids = np.array([3, 7, 11])
        view = net.induced_subgraph(ids)
        assert np.array_equal(view.nodes, ids)

    def test_cut_degrees(self):
        net, mask, view = self._view()
        counts = np.zeros(view.n_interior, dtype=np.int64)
        for i, _ in view.cut_edges:
            counts[i] += 1
        assert np.array_equal(view.cut_degrees(), counts)


# ----------------------------------------------------------------------
# The sharded engine: the distributed invariant
# ----------------------------------------------------------------------
class TestShardedColoring:
    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(12, 48),
        avg_deg=st.floats(2.0, 10.0),
        seed=st.integers(0, 10_000),
        k=st.sampled_from([1, 2, 4, 8]),
        strategy=st.sampled_from(STRATEGIES),
    )
    def test_reconciled_coloring_is_proper_within_budget(
        self, n, avg_deg, seed, k, strategy
    ):
        graph = gnp_graph(n, min(1.0, avg_deg / n), seed=seed)
        net = BroadcastNetwork(graph)
        result = ShardedColoring(
            net, shard_cfg(seed=seed), k=k, strategy=strategy
        ).run()
        assert result.unresolved_conflicts == 0
        assert brute_force_proper(net, result.colors)
        assert (result.colors >= 0).all()
        assert result.colors.max() <= net.delta  # colors in [0, Δ+1)
        assert result.num_colors_used <= net.delta + 1
        assert result.proper and result.complete

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_k1_identical_to_single_process(self, strategy):
        cfg = shard_cfg(seed=11)
        graph = gnp_graph(300, 0.05, seed=6)
        ref = BroadcastColoring(graph, cfg).run()
        got = ShardedColoring(graph, cfg, k=1, strategy=strategy).run()
        assert np.array_equal(got.colors, ref.colors)
        assert got.cut_edges == 0 and got.reconcile_touched == 0

    def test_k1_identical_on_full_quick_matrix(self):
        """The acceptance bar: k=1 ≡ the single-process engine on every
        (family, n, avg_degree, seed) cell of the quick matrix, under the
        runner's own graph-seeding discipline."""
        cells = {
            (s.family, s.n, s.avg_degree, s.seed): s
            for s in load_matrix(QUICK_MATRIX)
        }
        for (family, n, deg, seed), spec in sorted(cells.items()):
            graph = make_graph(family, n, deg, spec.graph_seed())
            cfg = shard_cfg(seed=spec.algo_seed())
            ref = BroadcastColoring(graph, cfg).run()
            got = ShardedColoring(graph, cfg, k=1).run()
            assert np.array_equal(got.colors, ref.colors), (family, n, deg, seed)
            assert got.num_colors_used == ref.num_colors_used

    def test_pool_identical_to_inline(self):
        def deterministic(d: dict) -> dict:
            # Wall-clock and RSS ride outside the deterministic account,
            # exactly as in TrialResult (elapsed_s/timings vs payload).
            env = ("seconds", "cpu_seconds", "peak_rss_mb")
            d = {k: v for k, v in d.items() if k not in env}
            d["shards"] = [
                {
                    k: ([{sk: sv for sk, sv in row.items() if sk not in env}
                         for row in v] if k == "reconcile_sweeps" else v)
                    for k, v in s.items() if k not in env
                }
                for s in d["shards"]
            ]
            return d

        cfg = shard_cfg(seed=4)
        graph = gnp_graph(400, 0.03, seed=2)
        inline = ShardedColoring(graph, cfg, k=4, workers=1).run()
        pooled = ShardedColoring(graph, cfg, k=4, workers=4).run()
        assert np.array_equal(inline.colors, pooled.colors)
        assert json.dumps(deterministic(inline.as_dict()), sort_keys=True) == \
            json.dumps(deterministic(pooled.as_dict()), sort_keys=True)

    def test_interior_edges_never_monochromatic_before_reconcile(self):
        """Only cut edges can conflict at merge time: interior propriety
        is by construction (each worker's hard invariant)."""
        graph = gnp_graph(200, 0.08, seed=3)
        net = BroadcastNetwork(graph)
        part = partition_nodes(net, 4, "random", seed=0)
        cfg = shard_cfg(seed=1)
        colors = np.full(net.n, -1, dtype=np.int64)
        for i in range(4):
            view = net.induced_subgraph(part.assignment == i, shard=i)
            out = _color_shard(view, cfg.with_seed(i))
            colors[view.nodes] = out["colors"]
        und = net.undirected_edges()
        interior = part.assignment[und[:, 0]] == part.assignment[und[:, 1]]
        mono = colors[und[:, 0]] == colors[und[:, 1]]
        assert not (interior & mono).any()

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_ghost_frontier_never_mutates(self, seed):
        """The worker contract: a full interior coloring leaves the ghost
        frontier byte-identical (and still write-protected)."""
        net = BroadcastNetwork(gnp_graph(40, 0.15, seed=seed))
        mask = np.zeros(net.n, dtype=bool)
        mask[: net.n // 2] = True
        view = net.induced_subgraph(mask)
        ghosts_before = view.ghost_nodes.copy()
        cut_before = view.cut_edges.copy()
        _color_shard(view, shard_cfg(seed=seed))
        assert np.array_equal(view.ghost_nodes, ghosts_before)
        assert np.array_equal(view.cut_edges, cut_before)
        assert not view.ghost_nodes.flags.writeable
        assert not view.cut_edges.flags.writeable

    def test_empty_graph_and_empty_shards(self):
        result = ShardedColoring((5, []), shard_cfg(), k=8).run()
        assert result.proper and result.complete
        assert result.unresolved_conflicts == 0

    def test_touched_nodes_reported(self):
        graph = gnp_graph(500, 0.04, seed=1)
        result = ShardedColoring(graph, shard_cfg(seed=3), k=4).run()
        assert result.initial_conflicts > 0  # expander cut must conflict
        assert 0 < result.reconcile_touched <= result.n
        assert result.unresolved_conflicts == 0
        assert result.reconcile_iterations >= 1

    @pytest.mark.parametrize("victim", ["id", "slack"])
    def test_victim_policies_both_reconcile(self, victim):
        graph = gnp_graph(300, 0.06, seed=2)
        net = BroadcastNetwork(graph)
        result = ShardedColoring(
            net, shard_cfg(seed=2, conflict_victim=victim), k=4
        ).run()
        assert result.unresolved_conflicts == 0
        assert brute_force_proper(net, result.colors)


# ----------------------------------------------------------------------
# Runner integration: determinism + content hashing
# ----------------------------------------------------------------------
class TestShardRunner:
    SPEC = dict(
        family="gnp", n=200, avg_degree=8.0, seed=1, algorithm="shard",
        overrides=(("shard_k", 4), ("shard_strategy", "random")),
    )

    def test_same_spec_twice_is_byte_identical(self):
        a, b = run_trial(TrialSpec(**self.SPEC)), run_trial(TrialSpec(**self.SPEC))
        assert a.status == b.status == "ok"
        assert json.dumps(a.payload, sort_keys=True) == \
            json.dumps(b.payload, sort_keys=True)

    def test_store_roundtrip_byte_identical(self, tmp_path):
        spec = TrialSpec(**self.SPEC)
        p1, p2 = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        ParallelRunner(store=ResultStore(p1)).run([spec])
        ParallelRunner(store=ResultStore(p2)).run([spec])
        row1 = json.loads(p1.read_text())
        row2 = json.loads(p2.read_text())
        for row in (row1, row2):
            row.pop("elapsed_s"), row.pop("timings")
        assert json.dumps(row1, sort_keys=True) == json.dumps(row2, sort_keys=True)

    def test_key_changes_with_k_and_strategy(self):
        base = TrialSpec(**self.SPEC)
        k8 = TrialSpec(**{**self.SPEC, "overrides": (("shard_k", 8), ("shard_strategy", "random"))})
        greedy = TrialSpec(**{**self.SPEC, "overrides": (("shard_k", 4), ("shard_strategy", "greedy"))})
        assert len({base.key, k8.key, greedy.key}) == 3

    def test_shard_trial_through_pool_workers(self, tmp_path):
        specs = [
            TrialSpec(**{**self.SPEC, "seed": s}) for s in range(3)
        ]
        serial = ParallelRunner(workers=1).run(specs)
        parallel = ParallelRunner(workers=3).run(specs)
        assert json.dumps(serial.payloads(), sort_keys=True) == \
            json.dumps(parallel.payloads(), sort_keys=True)

    def test_churn_family_rejects_shard(self):
        with pytest.raises(ValueError):
            TrialSpec(family="gnp-churn", algorithm="shard")

    def test_payload_carries_cut_account(self):
        r = run_trial(TrialSpec(**self.SPEC))
        for key in (
            "k", "strategy", "cut_edges", "cut_fraction", "initial_conflicts",
            "reconcile_touched", "touched_fraction", "reconcile_rounds",
            "unresolved_conflicts", "rounds_interior",
        ):
            assert key in r.payload, key
        assert r.payload["unresolved_conflicts"] == 0
        assert r.payload["proper"] and r.payload["complete"]


# ----------------------------------------------------------------------
# Zero-copy shared-memory transport (ISSUE 8)
# ----------------------------------------------------------------------
class TestShmTransport:
    def test_arena_roundtrip_bit_identical(self):
        arrays = {
            "a": np.arange(100, dtype=np.int64),
            "b": np.linspace(0.0, 1.0, 33),
            "c": np.arange(12, dtype=np.int32).reshape(3, 4),
            "empty": np.empty(0, dtype=np.int64),
        }
        with ShmArena.create(arrays, label="test") as arena:
            desc = arena.descriptor()
            assert desc.names() == tuple(arrays)
            with ShmArena.attach(desc, writeable=("a",)) as borrowed:
                for name, arr in arrays.items():
                    got = borrowed.array(name)
                    assert got.dtype == arr.dtype and got.shape == arr.shape
                    assert np.array_equal(got, arr), name
                    assert got.flags.writeable == (name == "a"), name
                with pytest.raises((ValueError, RuntimeError)):
                    borrowed.array("b")[0] = 9.0
                # Writes through the writable slice land in the creator's
                # view: one segment, no copies anywhere.
                borrowed.array("a")[7] = -42
                assert arena.array("a")[7] == -42
        assert leaked_segments() == []

    def test_attached_view_identical_to_pickled_view(self):
        """The worker-side view rebuilt from read-only arena slices is
        bit-identical to the pickled ShardView of the legacy transport."""
        net = BroadcastNetwork(gnp_graph(250, 0.05, seed=11))
        part = partition_nodes(net, 4, "greedy", seed=3)
        order, starts = part.index_arrays()
        arrays = {
            "indptr": net.indptr,
            "indices": net.indices,
            "assignment": part.assignment,
            "local": part.local_ids(),
            "order": order,
            "starts": starts,
        }
        with ShmArena.create(arrays, label="view") as arena:
            with ShmArena.attach(arena.descriptor()) as borrowed:
                for s in range(4):
                    pickled = net.induced_subgraph(part.members(s), shard=s)
                    attached = _view_from_arena(borrowed, s)
                    assert np.array_equal(attached.nodes, pickled.nodes)
                    assert np.array_equal(
                        attached.interior_edges, pickled.interior_edges
                    )
                    assert np.array_equal(
                        attached.ghost_nodes, pickled.ghost_nodes
                    )
                    assert np.array_equal(attached.cut_edges, pickled.cut_edges)

    def test_ghost_protection_survives_attachment(self):
        """The ghost-frontier write protection is a property of the view
        builder, not of pickling — it must hold on shm-attached arrays."""
        net = BroadcastNetwork(gnp_graph(120, 0.08, seed=6))
        part = partition_nodes(net, 3, "contiguous", seed=0)
        order, starts = part.index_arrays()
        arrays = {
            "indptr": net.indptr,
            "indices": net.indices,
            "assignment": part.assignment,
            "order": order,
            "starts": starts,
            "local": part.local_ids(),
        }
        with ShmArena.create(arrays, label="ghost") as arena:
            with ShmArena.attach(arena.descriptor()) as borrowed:
                view = _view_from_arena(borrowed, 1)
                assert not view.ghost_nodes.flags.writeable
                assert not view.cut_edges.flags.writeable
                with pytest.raises((ValueError, RuntimeError)):
                    view.ghost_nodes[:] = 0

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_transports_identical_through_pool(self, transport):
        graph = gnp_graph(400, 0.03, seed=2)
        ref = ShardedColoring(graph, shard_cfg(seed=4), k=4, workers=1).run()
        got = ShardedColoring(
            graph,
            shard_cfg(seed=4, shard_transport=transport),
            k=4,
            workers=4,
        ).run()
        assert got.transport == transport
        assert np.array_equal(got.colors, ref.colors)
        assert got.proper and got.complete and got.unresolved_conflicts == 0

    def test_pooled_repair_identical_to_inline_repair(self):
        """shard_repair_pool_min=0 forces every reconciliation sweep
        through _pool_repair_shard; the default threshold keeps small
        sweeps inline.  Same pure kernel, byte-identical colors."""
        graph = gnp_graph(400, 0.04, seed=7)
        inline = ShardedColoring(
            graph, shard_cfg(seed=3), k=4, workers=1
        ).run()
        pooled = ShardedColoring(
            graph, shard_cfg(seed=3, shard_repair_pool_min=0),
            k=4, workers=4,
        ).run()
        assert np.array_equal(inline.colors, pooled.colors)
        assert pooled.unresolved_conflicts == 0
        assert leaked_segments() == []

    def test_segments_unlinked_after_normal_run(self):
        before = leaked_segments()
        ShardedColoring(
            gnp_graph(300, 0.04, seed=1), shard_cfg(seed=1), k=4, workers=2
        ).run()
        assert leaked_segments() == before == []

    def test_segments_unlinked_after_worker_crash(self):
        """A hard worker crash (SIGKILL-grade: os._exit inside the pool)
        must not leak the arena: the driver's finally owns the unlink."""
        from repro import faults

        plan = faults.FaultPlan(
            name="shm-hard-crash",
            seed=3,
            rules=(
                faults.FaultRule(
                    site="shard.worker", kind="crash", hard=True,
                    match={"shard": 1, "attempt": 1},
                ),
            ),
        )
        graph = gnp_graph(300, 0.04, seed=9)
        with faults.suppressed():
            reference = ShardedColoring(
                graph, shard_cfg(seed=2), k=4, workers=2
            ).run()
        faults.arm(plan)
        try:
            crashed = ShardedColoring(
                graph, shard_cfg(seed=2), k=4, workers=2
            ).run()
        finally:
            faults.disarm()
        assert crashed.faults.get("worker_crashes", 0) >= 1
        assert np.array_equal(crashed.colors, reference.colors)
        assert leaked_segments() == []

    def test_injected_attach_fault_recovers_and_unlinks(self):
        """A soft crash at the shm *attach* site: the worker dies before
        mapping; supervision retries/falls back and the recovered result
        is byte-identical, with /dev/shm clean."""
        from repro import faults

        plan = faults.FaultPlan(
            name="attach-flake",
            seed=5,
            rules=(
                faults.FaultRule(
                    site="shard.shm", kind="crash",
                    match={"op": "attach"}, max_fires=1,
                ),
            ),
        )
        graph = gnp_graph(300, 0.05, seed=4)
        with faults.suppressed():
            reference = ShardedColoring(
                graph, shard_cfg(seed=6), k=4, workers=2
            ).run()
        faults.arm(plan)
        try:
            recovered = ShardedColoring(
                graph, shard_cfg(seed=6), k=4, workers=2
            ).run()
        finally:
            faults.disarm()
        assert np.array_equal(recovered.colors, reference.colors)
        assert leaked_segments() == []

    def test_invalid_transport_rejected(self):
        with pytest.raises(ValueError):
            ShardedColoring(
                gnp_graph(50, 0.1, seed=0),
                shard_cfg(seed=0, shard_transport="carrier-pigeon"),
                k=2,
            )
