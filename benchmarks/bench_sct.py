"""E6 — the synchronized color trial (Lemma 3.5, Claim 3.8).

Paper claim: after SCT, the number of uncolored nodes per clique is
≤ 8·max(6e_K, C log n) — i.e. it scales with the *external* degree, not
with the clique size, because the permutation rules out in-clique
conflicts entirely.  Measured: per-clique leftovers sweeping e_K with the
clique size held fixed, plus the Claim 3.8 inequality 2d̂(v)+e_v ≤ x(v)
audit in the full pipeline regime.
"""

from __future__ import annotations

import numpy as np
import pytest

from _common import print_table
from repro.config import ColoringConfig
from repro.core.cliques import compute_clique_info
from repro.core.sct import synchronized_color_trial
from repro.core.state import ColoringState
from repro.decomposition.acd import AlmostCliqueDecomposition
from repro.graphs.generators import clique_blob_graph
from repro.simulator.network import BroadcastNetwork
from repro.simulator.rng import SeedSequencer

SIZE = 64


def setup(ext_per_clique: int, seed: int):
    # x_full_factor small so the isolated SCT has full palette coverage
    # (in the pipeline Lemma 3.6 arranges this; see EXPERIMENTS.md E6).
    cfg = ColoringConfig.practical(x_full_factor=0.02, seed=seed)
    g = clique_blob_graph(4, SIZE, 16, ext_per_clique, seed=seed)
    net = BroadcastNetwork(g, bandwidth_bits=cfg.bandwidth_bits(g[0]))
    labels = np.arange(net.n) // SIZE
    acd = AlmostCliqueDecomposition(labels=labels, eps=cfg.eps)
    state = ColoringState(net)
    info = compute_clique_info(net, acd, cfg, num_colors=state.num_colors)
    return cfg, net, state, info


@pytest.mark.benchmark(group="E6-sct")
def test_e6_leftover_scales_with_external_degree(benchmark):
    rows = []
    series = []
    for ext in [4, 16, 64, 160]:
        leftovers, eks = [], []
        for seed in range(4):
            cfg, net, state, info = setup(ext, seed)
            rep = synchronized_color_trial(state, info, {}, cfg, SeedSequencer(seed))
            leftovers.append(np.mean(list(rep.leftover_by_clique.values())))
            eks.append(info.e_k.mean())
        series.append(np.mean(leftovers))
        rows.append(
            (
                ext,
                f"{np.mean(eks):.1f}",
                f"{np.mean(leftovers):.1f}",
                f"{np.mean(leftovers) / SIZE:.2%}",
            )
        )
    print_table(
        "E6 SCT leftover vs external degree (4 cliques of 64)",
        ["ext edges/clique", "e_K", "leftover/clique", "fraction of clique"],
        rows,
    )
    # Monotone in e_K and always well below the clique size.
    assert series[-1] >= series[0]
    assert all(s < 0.55 * SIZE for s in series)
    benchmark.pedantic(lambda: _trial_once(16, 9), rounds=1, iterations=1)


def _trial_once(ext, seed):
    cfg, net, state, info = setup(ext, seed)
    return synchronized_color_trial(state, info, {}, cfg, SeedSequencer(seed))


@pytest.mark.benchmark(group="E6-sct")
def test_e6_no_in_clique_conflicts(benchmark):
    """The permutation eliminates in-clique collisions: every conflict that
    prevented adoption involved an *external* neighbor.  Verified by
    re-running the trial with external edges removed — leftovers collapse
    to (near) zero."""
    rows = []
    for seed in range(3):
        cfg, net, state, info = setup(0, seed)  # zero external edges
        rep = synchronized_color_trial(state, info, {}, cfg, SeedSequencer(seed))
        leftover = sum(rep.leftover_by_clique.values())
        rows.append((seed, rep.tried, rep.colored, leftover))
        # Only palette-index overflow (|S| vs palette) can strand nodes.
        assert leftover <= 4 * 2
        state.verify()
    print_table(
        "E6 zero-external-degree control (leftover ≈ 0)",
        ["seed", "tried", "colored", "total leftover"],
        rows,
    )
    benchmark.pedantic(lambda: _trial_once(0, 5), rounds=1, iterations=1)


@pytest.mark.benchmark(group="E6-sct")
def test_e6_claim_3_8_inequality_in_pipeline(benchmark):
    """Claim 3.8 (as used by Lemma 3.7): after SCT in the *full pipeline*,
    uncolored inliers satisfy |[x(v)] ∩ Ψ(v)| ≥ 2d̂(v) — the slack that
    lets MultiTrial finish in O(log* n).  Measured as the fraction of
    uncolored inliers satisfying it."""
    from repro.core.algorithm import BroadcastColoring

    cfg = ColoringConfig.practical(seed=2)
    g = clique_blob_graph(6, SIZE, 24, 12, seed=2)
    res = BroadcastColoring(g, cfg).run()
    # The pipeline colored everything; the check is recorded via the SCT
    # report's deficits: no clique may have run short of palette.
    sct = res.reports["sct"]
    rows = [
        ("palette deficits", sct["palette_deficits"]),
        ("learn-palette incomplete", sct["learn_palette_incomplete"]),
        ("cleanup rounds", res.rounds_cleanup),
    ]
    print_table("E6 pipeline-level Lemma 3.6/3.7 audit", ["check", "value"], rows)
    assert res.proper and res.complete
    benchmark.pedantic(
        lambda: BroadcastColoring(g, cfg).run(), rounds=1, iterations=1
    )
