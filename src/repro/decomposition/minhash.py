"""BCONGEST neighborhood-similarity sketches via b-bit minwise hashing.

Every node repeatedly broadcasts a few bits of minhash fingerprint of its
closed neighborhood; after ``T`` samples each node can estimate, for every
incident edge, the Jaccard similarity of the two closed neighborhoods.
With constant fingerprint width ``b``, ``⌊bandwidth/b⌋`` samples fit in
one ``O(log n)``-bit broadcast, which is how the almost-clique
decomposition achieves its O(ε⁻⁴)-round budget (Lemma 2.5, following the
[FGH+23] strategy of packing many tiny sketches per message).

The same packing idea drives the similarity estimator itself (DESIGN.md
§4): fingerprints are packed ⌊64/b⌋ samples per uint64 word, node-major,
and per edge the two packed rows are XOR-ed and the zero b-bit fields
counted with a branch-free SWAR reduction — ``engine="packed"``, the
default.  ``engine="unpacked"`` keeps the (T × m) fingerprint-matrix
comparison as the reference; both return bit-identical estimates.

The hash functions are shared randomness: all nodes derive ``h_j`` from the
public seed and the sample index — exactly the kind of shared coin the
decomposition papers assume (or realize with one extra seed-broadcast
round, which we account for).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hashing.fingerprints import minwise_fingerprints, pack_fingerprints
from repro.simulator.network import BroadcastNetwork

__all__ = [
    "SKETCH_ENGINES",
    "SimilaritySketch",
    "compute_sketches",
    "estimate_edge_similarity",
]

SKETCH_ENGINES = ("packed", "unpacked")

# Edges per chunk in the packed estimator: bounds every temporary to
# (chunk × words) uint64, so no (T × m) matrix is ever materialized.
_EDGE_CHUNK = 1 << 18


@dataclass
class SimilaritySketch:
    """Fingerprint matrix plus the accounting of the rounds that shipped it."""

    fingerprints: np.ndarray  # (T, n) uint16
    bits_per_sample: int
    samples: int
    rounds_used: int
    engine: str = "packed"
    phase: str = "acd/sketch"
    _packed: np.ndarray | None = field(default=None, repr=False)  # (n, words) uint64

    @property
    def packed(self) -> np.ndarray:
        """Node-major ``(n, words)`` packed fingerprint words (lazy)."""
        if self._packed is None:
            self._packed = pack_fingerprints(self.fingerprints, self.bits_per_sample)
        return self._packed


def compute_sketches(
    net: BroadcastNetwork,
    num_samples: int,
    bits: int,
    salt: int,
    phase: str = "acd/sketch",
    engine: str = "packed",
) -> SimilaritySketch:
    """Compute fingerprints and account the broadcast rounds needed to
    exchange them under the network's bandwidth cap."""
    if engine not in SKETCH_ENGINES:
        raise ValueError(f"unknown sketch engine: {engine!r} (use {SKETCH_ENGINES})")
    with net.metrics.time_phase(phase):
        fps = minwise_fingerprints(
            net.indptr, net.indices, net.n, num_samples=num_samples, bits=bits, salt=salt
        )
        sketch = SimilaritySketch(
            fingerprints=fps,
            bits_per_sample=bits,
            samples=num_samples,
            rounds_used=0,
            engine=engine,
            phase=phase,
        )
        if engine == "packed":
            sketch.packed  # materialize inside the timed region
    # Closed-form round/bit accounting: ``full`` saturated rounds of
    # ``per_round`` samples plus one remainder round — no python loop.
    budget = net.bandwidth_bits or (64 * max(1, num_samples))
    per_round = max(1, budget // bits)
    full, rem = divmod(num_samples, per_round)
    net.account_vector_rounds(full, net.n, per_round * bits, phase=phase)
    if rem:
        net.account_vector_round(net.n, rem * bits, phase=phase)
    sketch.rounds_used = full + (1 if rem else 0)
    return sketch


def _swar_match_counts(
    packed: np.ndarray, edges: np.ndarray, bits: int, samples: int
) -> np.ndarray:
    """Per-edge count of agreeing samples from the packed words.

    Per edge: XOR the two (words,)-rows, OR-fold each b-bit field onto its
    low bit (b−1 shift-ORs — branch-free, exact for any b since every
    shifted source bit stays inside its own field), mask to the field-low
    bits, popcount, and sum over words.  That counts *mismatching* fields;
    padding fields XOR to zero and contribute none, so
    ``matches = T − mismatches`` is exact.
    """
    u64 = np.uint64
    fields = 64 // bits
    low_bits = u64(sum(1 << (f * bits) for f in range(fields)))
    matches = np.empty(edges.shape[0], dtype=np.int64)
    for e0 in range(0, edges.shape[0], _EDGE_CHUNK):
        e1 = min(e0 + _EDGE_CHUNK, edges.shape[0])
        x = packed[edges[e0:e1, 0]] ^ packed[edges[e0:e1, 1]]
        nz = x.copy()
        for k in range(1, bits):
            nz |= x >> u64(k)
        nz &= low_bits
        mism = np.bitwise_count(nz).sum(axis=1, dtype=np.int64)
        matches[e0:e1] = samples - mism
    return matches


def estimate_edge_similarity(
    net: BroadcastNetwork, sketch: SimilaritySketch
) -> np.ndarray:
    """Per-undirected-edge estimate of Jaccard(N[u], N[v]).

    Uses the standard b-bit minhash debiasing: if fingerprints collide with
    empirical rate ``r``, then ``Ĵ = (r − 2^{-b}) / (1 − 2^{-b})`` clipped
    to [0, 1].  Each endpoint of an edge computes this locally from the
    fingerprints it received — no extra rounds.

    Engine dispatch (``sketch.engine``): "packed" XOR-and-SWAR-counts the
    packed word rows chunk-by-chunk; "unpacked" compares the raw (T × m)
    fingerprint gather.  Both produce the same integer match counts, hence
    bit-identical estimates.
    """
    edges = net.undirected_edges()
    if edges.size == 0:
        return np.empty(0, dtype=np.float64)
    with net.metrics.time_phase(sketch.phase):
        samples = sketch.samples
        if sketch.engine == "packed":
            matches = _swar_match_counts(
                sketch.packed, edges, sketch.bits_per_sample, samples
            )
        else:
            fps = sketch.fingerprints
            eq = fps[:, edges[:, 0]] == fps[:, edges[:, 1]]
            matches = eq.sum(axis=0, dtype=np.int64)
        rate = matches / samples
        floor = 2.0 ** (-sketch.bits_per_sample)
        est = (rate - floor) / (1.0 - floor)
        return np.clip(est, 0.0, 1.0)
