"""Tests for Relabel (Algorithm 3, Lemma 4.3)."""

import numpy as np
import pytest

from repro.config import ColoringConfig
from repro.core.relabel import relabel
from repro.graphs.generators import complete_graph
from repro.simulator.network import BroadcastNetwork
from repro.simulator.rng import SeedSequencer
from repro.util.bitio import bits_for_int


@pytest.fixture
def cfg():
    return ColoringConfig.practical()


@pytest.fixture
def net(cfg):
    n = 64
    return BroadcastNetwork(complete_graph(n), bandwidth_bits=cfg.bandwidth_bits(n))


class TestRelabel:
    def test_labels_unique(self, cfg, net):
        nodes = np.arange(20)
        rr = relabel(net, nodes, cfg, SeedSequencer(1))
        assert np.unique(rr.labels).size == 20

    def test_labels_in_universe(self, cfg, net):
        nodes = np.arange(30)
        rr = relabel(net, nodes, cfg, SeedSequencer(2))
        assert rr.labels.min() >= 0
        assert rr.labels.max() < rr.label_universe

    def test_universe_is_s2_log_n(self, cfg, net):
        nodes = np.arange(10)
        rr = relabel(net, nodes, cfg, SeedSequencer(3))
        assert rr.label_universe == int(10 * 10 * np.log2(net.n))

    def test_label_bits_loglog_scale(self, cfg, net):
        # For poly(log n)-sized S the labels are O(log log n)-bit: far
        # smaller than full IDs.
        nodes = np.arange(12)
        rr = relabel(net, nodes, cfg, SeedSequencer(4))
        assert rr.label_bits < bits_for_int(net.n) * 2
        assert rr.label_bits == bits_for_int(rr.label_universe)

    def test_success_whp(self, cfg, net):
        successes = sum(
            relabel(net, np.arange(16), cfg, SeedSequencer(s)).succeeded
            for s in range(30)
        )
        assert successes == 30  # collision prob is ~1/log n per index, x tries

    def test_empty_set(self, cfg, net):
        rr = relabel(net, np.empty(0, dtype=np.int64), cfg, SeedSequencer(5))
        assert rr.succeeded
        assert rr.labels.size == 0
        assert rr.rounds == 0

    def test_singleton(self, cfg, net):
        rr = relabel(net, np.array([3]), cfg, SeedSequencer(6))
        assert rr.succeeded
        assert rr.labels.size == 1

    def test_rounds_charged(self, cfg, net):
        relabel(net, np.arange(8), cfg, SeedSequencer(7), phase="rl")
        assert net.metrics.rounds_in("rl") >= 2

    def test_account_false(self, cfg, net):
        relabel(net, np.arange(8), cfg, SeedSequencer(8), phase="rl2", account=False)
        assert net.metrics.rounds_in("rl2") == 0

    def test_fallback_labels_still_unique(self, net):
        # Force the fallback by exhausting the candidate space: a universe
        # this tiny cannot happen via the public API, so drive the internal
        # path by monkeypatching the config to near-zero candidates.
        cfg_tiny = ColoringConfig.practical(c_log=1e-9)
        nodes = np.arange(10)
        rr = relabel(net, nodes, cfg_tiny, SeedSequencer(9))
        # x = 1 candidate; collisions possible but uniqueness guaranteed
        # either way (success or fallback).
        assert np.unique(rr.labels).size == nodes.size

    def test_deterministic(self, cfg, net):
        a = relabel(net, np.arange(15), cfg, SeedSequencer(10)).labels
        b = relabel(net, np.arange(15), cfg, SeedSequencer(10)).labels
        assert np.array_equal(a, b)
