"""Docs lint: the documentation may not drift from the code.

* docs/PROTOCOL.md must have exactly one ``####``-level section per
  message type registered in ``repro.serve.protocol.MESSAGE_TYPES`` —
  both directions: an undocumented type fails, and so does a documented
  type the code no longer speaks.
* Every ``ERROR_CODES`` entry must appear in PROTOCOL.md's error table.
* Every relative link in docs/*.md must resolve inside the repo.
* The public surfaces docs/API.md indexes (repro.dynamic, repro.shard,
  repro.serve) must be fully docstringed — API.md promises that.
"""

import inspect
import importlib
import re
from pathlib import Path

import pytest

from repro.serve import protocol as wire

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"
PROTOCOL_MD = DOCS / "PROTOCOL.md"


def protocol_headings() -> list[str]:
    text = PROTOCOL_MD.read_text()
    return re.findall(r"^#### `([a-z_]+)`\s*$", text, flags=re.M)


class TestProtocolSpec:
    def test_every_registered_type_is_documented(self):
        missing = set(wire.MESSAGE_TYPES) - set(protocol_headings())
        assert not missing, (
            f"message types missing a '#### `type`' section in "
            f"docs/PROTOCOL.md: {sorted(missing)}"
        )

    def test_every_documented_type_is_registered(self):
        stale = set(protocol_headings()) - set(wire.MESSAGE_TYPES)
        assert not stale, (
            f"docs/PROTOCOL.md documents types the registry does not "
            f"speak: {sorted(stale)}"
        )

    def test_no_duplicate_sections(self):
        headings = protocol_headings()
        assert len(headings) == len(set(headings))

    def test_every_error_code_is_documented(self):
        text = PROTOCOL_MD.read_text()
        table = text[text.index("## Errors"):]
        for code in wire.ERROR_CODES:
            assert f"`{code}`" in table, (
                f"error code {code!r} missing from docs/PROTOCOL.md's "
                f"error table"
            )

    def test_documented_version_matches(self):
        text = PROTOCOL_MD.read_text()
        assert f"(version {wire.PROTOCOL_VERSION})" in text.splitlines()[0]


class TestDocLinks:
    @pytest.mark.parametrize("doc", sorted(DOCS.glob("*.md")),
                             ids=lambda p: p.name)
    def test_relative_links_resolve(self, doc):
        text = doc.read_text()
        broken = []
        for label, target in re.findall(r"\[([^\]]+)\]\(([^)#\s]+)[^)]*\)", text):
            if target.startswith(("http://", "https://")):
                continue
            if not (doc.parent / target).exists():
                broken.append(target)
        assert not broken, f"{doc.name}: broken links {broken}"


class TestApiDocstrings:
    @pytest.mark.parametrize("modname",
                             ["repro.dynamic", "repro.shard", "repro.serve",
                              "repro.faults", "repro.obs"])
    def test_public_surface_is_docstringed(self, modname):
        mod = importlib.import_module(modname)
        missing = []
        for name in mod.__all__:
            obj = getattr(mod, name)
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if not inspect.getdoc(obj):
                missing.append(f"{modname}.{name}")
            if inspect.isclass(obj):
                for mname, member in vars(obj).items():
                    if mname.startswith("_"):
                        continue
                    if callable(member) and not (member.__doc__ or "").strip():
                        missing.append(f"{modname}.{name}.{mname}")
                    if isinstance(member, property) and not (
                        (member.fget.__doc__ or "").strip()
                    ):
                        missing.append(f"{modname}.{name}.{mname}")
        assert not missing, f"undocumented public surface: {missing}"
