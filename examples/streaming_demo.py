#!/usr/bin/env python3
"""BCStream (§5) demo: coloring with poly(log n) memory per node.

A BCStream node may receive Θ(Δ·log n) bits per round but can only hold
poly(log n) of working memory — it must process its inbox as a stream.
This demo (a) runs the full pipeline under the memory audit, (b) shows
the §5.1 streaming prefix sums working on a live example, and (c) shows a
node finding "the 1000th free color of my clique palette" with O(1)
working words via the merge-hierarchy descent.

Run:  python examples/streaming_demo.py
"""

from __future__ import annotations

import numpy as np

from repro import ColoringConfig
from repro.bcstream import (
    MemoryMeter,
    bcstream_coloring,
    stream_reduce,
    streaming_palette_lookup,
    streaming_prefix_sums,
)
from repro.graphs import clique_blob_graph


def main() -> None:
    cfg = ColoringConfig.practical(seed=7)

    # (a) the audited pipeline ------------------------------------------
    g = clique_blob_graph(8, 96, 30, 15, seed=7)
    res = bcstream_coloring(g, cfg)
    c = res.coloring
    print("full pipeline under BCStream:")
    print(f"  n={c.n}, Δ={c.delta}; proper={c.proper}, complete={c.complete}")
    print(f"  rounds: {c.rounds_total} (same as BCONGEST — Theorem 2)")
    inbox = c.delta * cfg.bandwidth_bits(c.n)
    print(
        f"  per-round inbox: up to {inbox} bits; "
        f"peak working set: {res.peak_words} words "
        f"(ceiling {res.memory_ceiling_words} = log³ n)"
    )
    print("  heaviest phases (working-set words):")
    for phase, words in sorted(res.phase_memory_words.items(), key=lambda kv: -kv[1])[:4]:
        print(f"    {phase:<14} {words}")

    # (b) streaming prefix sums -----------------------------------------
    print("\nstreaming prefix sums (Lemma 5.2):")
    k = 3000
    rng = np.random.default_rng(0)
    values = rng.integers(0, 100, size=k)
    ps = streaming_prefix_sums(values, np.full(k, 24), cfg, n=1 << 18)
    assert np.array_equal(
        ps.prefix, np.concatenate([[0], np.cumsum(values)[:-1]])
    )
    print(
        f"  {k} groups summed exactly in {ps.iterations} merge iterations "
        f"({ps.rounds} rounds), peak {ps.peak_words} words"
    )

    # (c) i-th color of the clique palette ------------------------------
    print("\nstreaming palette lookup (§5, SCT support):")
    free = rng.random(4096) < 0.3
    direct = np.flatnonzero(free)
    queries = np.array([0, 500, 1000, int(direct.size - 1)])
    lk = streaming_palette_lookup(free, queries, cfg, n=1 << 18)
    for q, got in zip(queries, lk.colors):
        print(f"  {int(q):>5}-th free color = {int(got):>5}  (direct: {int(direct[q])})")
        assert got == direct[q]
    print(f"  peak {lk.peak_words} words — independent of the {free.size}-color space")

    # Bonus: the stream_reduce discipline in one line --------------------
    meter = MemoryMeter(ceiling_words=8)
    total = stream_reduce(0, range(100_000), 0, lambda acc, x: acc + x, meter)
    print(
        f"\nstream_reduce: summed 100k messages with peak "
        f"{meter.peak_of(0)} word(s); total={total}"
    )


if __name__ == "__main__":
    main()
