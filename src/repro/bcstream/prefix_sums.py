"""Streaming prefix sums by group merging (§5.1, Lemmas 5.2–5.4).

The BCStream obstacle: in Permute's step 5, a node must compute
``Σ_{j<i} |S_j|`` but receives each term Θ(log n) times (once per
neighbor in T_j) and cannot buffer-and-dedup Θ(Δ) values.  The paper's
solution is hierarchical merging:

* **Stage 0** (Lemma 5.3): ranges of z₀ = C log n spanning groups merge;
  every node stores the z₀ values of its range — O(log n) words, done in
  O(1) rounds because each node has ≥ z₀ neighbors in every group.
* **Iterations** (Lemma 5.4): ranges of z^{1/2} merged groups merge again.
  Within each group, every node samples one term of the incoming sum to be
  responsible for; per term a unique *chief* is elected among the samplers
  (groups are unions of spanning groups, hence 2-hop connected), and a
  depth-2 leader tree aggregates exactly one copy of each term — no double
  counting, O(1) words per node.  Sizes grow as z → z^{3/2}, so
  O(log log n) iterations cover everything.

The implementation simulates the chief sampling with real randomness and
meters real node memory; the returned result carries the merge hierarchy
(reused by :mod:`repro.bcstream.palette_stream` for i-th-color queries).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bcstream.memory import MemoryMeter
from repro.config import ColoringConfig
from repro.simulator.rng import SeedSequencer

__all__ = ["PrefixSumResult", "streaming_prefix_sums"]


@dataclass
class MergeLevel:
    """One level of the hierarchy: segment boundaries (in original group
    indices) and each segment's total."""

    boundaries: list[tuple[int, int]]  # [start, end) per segment
    totals: list[int]


@dataclass
class PrefixSumResult:
    prefix: np.ndarray  # prefix[i] = Σ_{j<i} y_j (the Lemma 5.2 output)
    totals: int
    rounds: int
    iterations: int
    peak_words: int
    chief_failures: int
    levels: list[MergeLevel] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "rounds": self.rounds,
            "iterations": self.iterations,
            "peak_words": self.peak_words,
            "chief_failures": self.chief_failures,
        }


def streaming_prefix_sums(
    values: np.ndarray,
    group_sizes: np.ndarray,
    cfg: ColoringConfig,
    n: int,
    seq: SeedSequencer | None = None,
    meter: MemoryMeter | None = None,
) -> PrefixSumResult:
    """Compute all prefix sums of ``values`` (one per spanning group) the
    BCStream way.

    Parameters
    ----------
    values:
        y_i per group, known to the group's members.
    group_sizes:
        |T_i| per group — needed for the chief-sampling simulation and
        memory audit.
    n:
        Network size (for the C log n scale).
    """
    values = np.asarray(values, dtype=np.int64)
    group_sizes = np.asarray(group_sizes, dtype=np.int64)
    if values.size != group_sizes.size:
        raise ValueError("values/group_sizes mismatch")
    k = values.size
    meter = meter if meter is not None else MemoryMeter()
    seq = seq if seq is not None else SeedSequencer(cfg.seed)
    result_prefix = np.zeros(k, dtype=np.int64)
    if k == 0:
        return PrefixSumResult(
            prefix=result_prefix,
            totals=0,
            rounds=0,
            iterations=0,
            peak_words=0,
            chief_failures=0,
        )

    z0 = max(2, int(np.ceil(cfg.log_threshold(n))))
    rounds = 0
    iterations = 0
    chief_failures = 0
    levels: list[MergeLevel] = []

    # ---- Stage 0 (Lemma 5.3): ranges of z0 groups ----------------------
    # Every node of a range stores the range's z0 values: z0 words each.
    boundaries: list[tuple[int, int]] = []
    totals: list[int] = []
    node_id = 0
    for start in range(0, k, z0):
        end = min(start + z0, k)
        seg_vals = values[start:end]
        running = 0
        for gi in range(start, end):
            result_prefix[gi] += running
            running += int(values[gi])
        boundaries.append((start, end))
        totals.append(int(seg_vals.sum()))
        # Memory audit: each member of each group in the range stores the
        # z0 values (sampled representative node per group suffices for the
        # peak-tracking purpose).
        for gi in range(start, end):
            meter.touch(node_id, end - start)
            node_id += 1
    rounds += 1  # Lemma 5.3: O(1) rounds (single broadcast wave)
    levels.append(MergeLevel(boundaries=list(boundaries), totals=list(totals)))

    # ---- Iterations (Lemma 5.4): merge z^{1/2} segments at a time ------
    z = float(z0) * float(z0)  # z_1 = z0² per the §5.1 sequence
    rng = seq.stream("prefix-merge")
    while len(boundaries) > 1:
        iterations += 1
        m = max(2, int(np.ceil(np.sqrt(max(z, 4.0)))))
        new_boundaries: list[tuple[int, int]] = []
        new_totals: list[int] = []
        for rstart in range(0, len(boundaries), m):
            rend = min(rstart + m, len(boundaries))
            # Chief sampling: every node of each group samples one of the
            # (rend - rstart) terms; a term with no sampler in some group
            # forces a retry round (Lemma 5.4 says w.h.p. all terms get
            # ≥ z^{1/2}/2 samplers).
            terms = rend - rstart
            for seg_idx in range(rstart, rend):
                g_lo, g_hi = boundaries[seg_idx]
                size_proxy = int(group_sizes[g_lo:g_hi].sum())
                if size_proxy > 0 and terms > 1:
                    # Every member of the merged group samples a term
                    # (Lemma 5.4 banks on ~z^{1/2} samplers per term); the
                    # cap below only bounds the *simulation's* draw count
                    # while keeping the coverage probability faithful.
                    draw = min(size_proxy, max(16 * terms, 64))
                    picks = rng.integers(0, terms, size=draw)
                    if np.unique(picks).size < terms:
                        chief_failures += 1
                # chiefs hold 1 term; leaders hold running sums: O(1) words
                meter.touch(seg_idx, 4)
            # Merge: prefix of segment s within range = Σ totals of earlier
            # segments; every original group adds its segment's offset.
            running = 0
            for seg_idx in range(rstart, rend):
                g_lo, g_hi = boundaries[seg_idx]
                if running:
                    result_prefix[g_lo:g_hi] += running
                running += totals[seg_idx]
            new_boundaries.append((boundaries[rstart][0], boundaries[rend - 1][1]))
            new_totals.append(running)
        boundaries, totals = new_boundaries, new_totals
        levels.append(MergeLevel(boundaries=list(boundaries), totals=list(totals)))
        rounds += 4  # Lemma 5.4: O(1) rounds per iteration
        z = z ** 1.5

    return PrefixSumResult(
        prefix=result_prefix,
        totals=int(values.sum()),
        rounds=rounds,
        iterations=iterations,
        peak_words=meter.peak_words(),
        chief_failures=chief_failures,
        levels=levels,
    )
