"""Sharded dynamic engine: delta-routed shard repair under churn.

This composes the two maintenance planes (DESIGN.md §6 × §7): the
dynamic engine's per-batch invariant restoration with the shard
subsystem's partition/boundary-exchange geometry.  The driver,
:class:`ShardedDynamicColoring`, subclasses
:class:`~repro.dynamic.engine.DynamicColoring` so the delta phase, the
accounting, the report contract, and the ``run`` loop are *inherited* —
at ``k == 1`` no sharded code path executes at all and the engine is
byte-identical to the unsharded one (colors, rounds, bits, seeds; the
benchmark gates this).  At ``k > 1`` three seams are overridden:

1. **delta-routed detect** — while the pre-batch invariant holds
   (proper coloring), a delta can only create monochromatic edges among
   the batch's *inserted* edges: deletions and departures never create
   conflicts, and no other edge's endpoint colors changed.  Detection
   therefore checks the inserted pairs plus the O(n) out-of-palette
   vector instead of scanning all m edges — provably the same conflict
   set as the full scan, at delta cost.
2. **shard-local repair** — victims are routed to their owning shards
   by one partition-index lookup; each touched shard repairs its own
   nodes on a halo-sized scratch network via the *same*
   :func:`~repro.shard.boundary.repair_boundary` kernel the static
   reconciler runs (empty cut slice, victims as ``extra``).  Deltas are
   disjoint by ownership, so the driver merges them exactly as the
   static path does, and the shard metrics fold in under the
   parallel-composition rule.
3. **cut reconciliation, delta-scaled** — only edges incident to nodes
   recolored *this batch* can have become monochromatic across the cut,
   so each sweep gathers the cross-shard pairs from the recolored
   nodes' CSR rows (cost ∝ Σ deg(recolored), never the full cut) and
   runs the boundary exchange on exactly those, shard by shard.

Fallbacks pair with **delta-aware ACD maintenance**: the driver caches
the minhash fingerprint grid under a fixed salt and, on fallback,
re-hashes only nodes whose closed neighborhood changed since the last
sketch (:func:`~repro.hashing.fingerprints.refresh_minwise_fingerprints`
— a node's fingerprint is a pure function of ``(salt, sample, N[v])``,
so the refreshed grid is byte-identical to a from-scratch sketch), then
feeds the sketch to
:func:`~repro.decomposition.acd.decompose_from_sketch` and injects the
decomposition into the pipeline.  Only the changed fingerprints are
re-broadcast, which is the broadcast-economy half of the claim.
"""

from __future__ import annotations

import numpy as np

from repro.config import ColoringConfig
from repro.core.algorithm import BroadcastColoring
from repro.decomposition.acd import decompose_from_sketch
from repro.decomposition.minhash import SimilaritySketch
from repro.dynamic.engine import BatchReport, DynamicColoring, conflict_victims
from repro.dynamic.events import ChurnSchedule, UpdateBatch
from repro.hashing.fingerprints import (
    minwise_fingerprints,
    pack_fingerprints,
    refresh_minwise_fingerprints,
)
from repro.shard.boundary import repair_boundary
from repro.shard.engine import ShardedColoring
from repro.shard.partition import partition_nodes
from repro.simulator.network import gather_csr_rows
from repro.simulator.rng import SeedSequencer
from repro.util.bitio import bits_for_color

__all__ = ["ShardedDynamicColoring"]


class ShardedDynamicColoring(DynamicColoring):
    """Maintains a proper (Δ_t+1)-coloring under churn across k shards.

    Drop-in for :class:`~repro.dynamic.engine.DynamicColoring` — same
    ``apply_batch``/``run`` surface, same :class:`BatchReport` contract,
    same invariants after every batch.  ``k == 1`` *is* the unsharded
    engine (every override delegates, nothing sharded runs); ``k > 1``
    routes detection and repair to the shards the delta touches and
    reconciles only delta-incident cut edges (module docstring).

    >>> from repro.graphs.families import make_churn
    >>> sched = make_churn("gnp-churn", 500, 12.0, seed=3, batches=4)
    >>> result = ShardedDynamicColoring(sched, k=4).run(sched)
    >>> assert result.summary()["proper_all"]

    Parameters
    ----------
    graph:
        The initial ``(n, edges)`` pair or a :class:`ChurnSchedule`.
    config:
        :class:`ColoringConfig`; ``dynamic_*`` knobs drive repair-vs-
        fallback, ``shard_*`` knobs the partition geometry, and
        ``dynamic_shard_resketch`` the delta-aware ACD maintenance.
    k, strategy:
        Shard count and partition strategy (default: the ``shard_k`` /
        ``shard_strategy`` config knobs).  The partition is computed
        once over the fixed node universe [n] and never migrates.
    initial_colors, active, batch_index:
        The warm-start path, exactly as in the parent.  Without
        ``initial_colors`` the initial coloring runs through
        :class:`~repro.shard.engine.ShardedColoring` when ``k > 1``
        (same partition), through the pipeline when ``k == 1``.
    """

    def __init__(
        self,
        graph,
        config: ColoringConfig | None = None,
        *,
        k: int | None = None,
        strategy: str | None = None,
        initial_colors: np.ndarray | None = None,
        active: np.ndarray | None = None,
        batch_index: int = 0,
    ):
        if isinstance(graph, ChurnSchedule):
            graph = graph.initial
        cfg = config or ColoringConfig.practical()
        self.k = int(k) if k is not None else cfg.shard_k
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        self.strategy = strategy if strategy is not None else cfg.shard_strategy
        self.routes: list[dict] = []
        if self.k > 1 and initial_colors is None:
            sharded = ShardedColoring(graph, cfg, k=self.k, strategy=self.strategy)
            res = sharded.run()
            super().__init__(
                sharded.net, cfg,
                initial_colors=res.colors,
                batch_index=batch_index,
            )
            self.initial_rounds = int(res.rounds_total)
            self.initial_seconds = float(res.seconds)
            self._part = sharded._part
        else:
            super().__init__(
                graph, cfg,
                initial_colors=initial_colors,
                active=active,
                batch_index=batch_index,
            )
            self._part = None
        if self._part is None:
            self._part = partition_nodes(
                self.net, self.k, self.strategy, seed=self.cfg.seed
            )
        # k>1-only machinery; at k == 1 none of this is ever consulted,
        # which is what keeps the identity gate trivially true.
        self._dseq = SeedSequencer(self.cfg.seed).spawn("dshard")
        self._acd_salt = self._dseq.derive_seed("acd-hash") % (1 << 31)
        self._acd_fps: np.ndarray | None = None
        self._acd_packed: np.ndarray | None = None
        self._acd_dirty = np.zeros(self.net.n, dtype=bool)

    # ------------------------------------------------------------------
    def apply_batch(self, batch: UpdateBatch) -> BatchReport:
        """Apply one update batch and restore the coloring invariant —
        the parent's control loop verbatim, with sharded seams (detect /
        repair / fallback) substituted when ``k > 1``.  Also accumulates
        the delta's endpoints into the ACD dirty set for the delta-aware
        re-sketch."""
        if self.k > 1 and self.cfg.dynamic_shard_resketch:
            self._mark_dirty(batch)
        return super().apply_batch(batch)

    def _mark_dirty(self, batch: UpdateBatch) -> None:
        """Record every node whose closed neighborhood this batch will
        change: endpoints of inserted/deleted edges, departure-expanded
        incident edges (pre-batch CSR), and the churned nodes themselves."""
        dirty = self._acd_dirty
        for arr in (batch.insert_edges, batch.delete_edges):
            if arr.size:
                dirty[arr.reshape(-1)] = True
        dirty[batch.arrivals] = True
        if batch.departures.size:
            dirty[batch.departures] = True
            dep_mask = np.zeros(self.net.n, dtype=bool)
            dep_mask[batch.departures] = True
            und = self.net.undirected_edges()
            inc = und[dep_mask[und[:, 0]] | dep_mask[und[:, 1]]]
            if inc.size:
                dirty[inc.reshape(-1)] = True

    # ------------------------------------------------------------------
    def _detect_conflicts(self, batch: UpdateBatch, num_colors: int) -> np.ndarray:
        """Delta-routed detection (k > 1): while the pre-batch invariant
        holds, only the batch's inserted edges can be monochromatic, so
        the victim rule runs on those pairs plus the O(n) out-of-palette
        vector — the same conflict set the parent's full edge scan
        produces, at delta cost.  ``k == 1`` delegates to the parent."""
        if self.k == 1:
            return super()._detect_conflicts(batch, num_colors)
        c = self.colors
        ins = batch.insert_edges
        if ins.size:
            hi = np.maximum(ins[:, 0], ins[:, 1])
            lo = np.minimum(ins[:, 0], ins[:, 1])
            mono = (c[hi] >= 0) & (c[hi] == c[lo])
            edges = (hi[mono], lo[mono])
        else:
            e = np.empty(0, dtype=np.int64)
            edges = (e, e)
        conflict = conflict_victims(
            self.net, c,
            policy=self.cfg.conflict_victim,
            num_colors=num_colors,
            edges=edges,
        )
        conflict |= self.active & (c >= num_colors)
        return conflict

    # ------------------------------------------------------------------
    def _repair(self, repair_set: np.ndarray, num_colors: int, t: int) -> bool:
        """Shard-routed repair (k > 1): split the repair set by owning
        shard (one partition-index lookup), run each touched shard's
        halo repair via the shared :func:`repair_boundary` kernel, merge
        the disjoint deltas, then reconcile delta-incident cut edges.
        ``k == 1`` delegates to the parent's global repair."""
        if self.k == 1:
            return super()._repair(repair_set, num_colors, t)
        net, cfg = self.net, self.cfg
        metrics = net.metrics
        route = {
            "index": t,
            "repair_set": int(repair_set.size),
            "shards_touched": 0,
            "sweeps": 0,
            "cut_touched": 0,
        }
        if repair_set.size == 0:
            self.routes.append(route)
            return True
        assignment = self._part.assignment
        empty = np.empty(0, dtype=np.int64)
        empty_cut = np.empty((0, 2), dtype=np.int64)
        own = assignment[repair_set]
        shards = np.unique(own)
        route["shards_touched"] = int(shards.size)
        with metrics.time_phase("dshard/repair"):
            outs = [
                repair_boundary(
                    net.n, net.indptr, net.indices, assignment, self.colors,
                    empty_cut, int(s), repair_set[own == s], num_colors, cfg,
                    self._dseq.derive_seed("repair", int(s), t), t,
                )
                for s in shards
            ]
            # Merge: deltas are disjoint by ownership, so order is
            # irrelevant — exactly the static driver's merge rule.
            for out in outs:
                nodes = out["nodes"]
                if nodes.size:
                    self.colors[nodes] = out["colors"]
            metrics.absorb_parallel(
                [out["metrics"] for out in outs], phase="dshard/repair"
            )
        sweeps, cut_touched, clean = self._reconcile_cut(
            repair_set, num_colors, t
        )
        route["sweeps"] = sweeps
        route["cut_touched"] = cut_touched
        self.routes.append(route)
        colored = bool((self.colors[self.active] >= 0).all())
        return clean and colored

    def _cut_candidates(self, nodes: np.ndarray) -> np.ndarray:
        """Cross-shard undirected pairs incident to ``nodes`` (``u < v``,
        unique) — the only cut edges a batch that recolored ``nodes``
        can have turned monochromatic.  Cost ∝ Σ deg(nodes)."""
        net = self.net
        assignment = self._part.assignment
        if not nodes.size:
            return np.empty((0, 2), dtype=np.int64)
        nb = gather_csr_rows(net.indptr, net.indices, nodes)
        if not nb.size:
            return np.empty((0, 2), dtype=np.int64)
        deg = net.indptr[nodes + 1] - net.indptr[nodes]
        src = np.repeat(nodes, deg)
        cross = assignment[src] != assignment[nb]
        if not cross.any():
            return np.empty((0, 2), dtype=np.int64)
        u = np.minimum(src[cross], nb[cross])
        v = np.maximum(src[cross], nb[cross])
        keys = np.unique(u * net.n + v)
        return np.stack([keys // net.n, keys % net.n], axis=1)

    def _reconcile_cut(
        self, touched: np.ndarray, num_colors: int, t: int
    ) -> tuple[int, int, bool]:
        """The boundary-exchange sweep loop, delta-scaled: candidates
        are the cross-shard edges incident to everything recolored this
        batch; each sweep exchanges only those endpoints' colors, the
        conflicting shards repair locally, the driver merges.  Returns
        ``(sweeps, nodes_touched, converged)``."""
        net, cfg = self.net, self.cfg
        metrics = net.metrics
        assignment = self._part.assignment
        color_bits = bits_for_color(max(net.delta, 1))
        recolored = np.zeros(net.n, dtype=bool)
        recolored[touched] = True
        empty = np.empty(0, dtype=np.int64)
        sweeps = 0
        cut_touched = 0
        clean = False
        with metrics.time_phase("dshard/reconcile"):
            for sweep in range(max(1, cfg.shard_reconcile_max_iters)):
                cand = self._cut_candidates(np.flatnonzero(recolored))
                if not cand.size:
                    clean = True
                    break
                # The exchange: each candidate endpoint re-broadcasts
                # its color — one vector round sized by the delta's cut
                # frontier, never by the full boundary.
                endpoints = np.unique(cand.reshape(-1))
                net.account_vector_round(
                    int(endpoints.size), color_bits, phase="dshard/reconcile"
                )
                cu, cv = self.colors[cand[:, 0]], self.colors[cand[:, 1]]
                mono = (cu >= 0) & (cu == cv)
                if not mono.any():
                    clean = True
                    break
                active_shards = np.unique(assignment[cand[mono].reshape(-1)])
                outs = [
                    repair_boundary(
                        net.n, net.indptr, net.indices, assignment,
                        self.colors,
                        cand[
                            (assignment[cand[:, 0]] == s)
                            | (assignment[cand[:, 1]] == s)
                        ],
                        int(s), empty, num_colors, cfg,
                        self._dseq.derive_seed("reconcile", int(s), t, sweep),
                        sweep,
                    )
                    for s in active_shards
                ]
                for out in outs:
                    nodes = out["nodes"]
                    if nodes.size:
                        self.colors[nodes] = out["colors"]
                        recolored[nodes] = True
                        cut_touched += int(nodes.size)
                metrics.absorb_parallel(
                    [out["metrics"] for out in outs], phase="dshard/reconcile"
                )
                sweeps += 1
        return sweeps, cut_touched, clean

    # ------------------------------------------------------------------
    def _full_recolor(self, t: int) -> None:
        """Fallback (k > 1 with ``dynamic_shard_resketch``): rebuild the
        coloring through the pipeline, but hand it the ACD built from
        the incrementally maintained sketch — only nodes whose closed
        neighborhood changed since the last sketch are re-hashed and
        re-broadcast.  ``k == 1`` (or the knob off) delegates to the
        parent's from-scratch fallback."""
        if self.k == 1 or not self.cfg.dynamic_shard_resketch:
            super()._full_recolor(t)
            return
        net = self.net
        with net.metrics.time_phase("dynamic/fallback"):
            cfg = self.cfg.with_seed(self.seq.derive_seed("fallback", t))
            acd = self._maintained_decomposition(cfg)
            result = BroadcastColoring(net, cfg, decomposition=acd).run()
            colors = result.colors.copy()
            colors[~self.active] = -1
            self.colors = colors

    def _maintained_decomposition(self, cfg: ColoringConfig):
        """The delta-aware ACD: refresh only dirty fingerprint columns
        (byte-identical to a fresh sketch of the current topology under
        the cached salt), charge the re-broadcast for the changed nodes
        only, and decompose from the maintained sketch."""
        net = self.net
        samples, bits = cfg.acd_minhash_samples, cfg.acd_minhash_bits
        with net.metrics.time_phase("acd/sketch"):
            if self._acd_fps is None or self._acd_fps.shape != (samples, net.n):
                self._acd_fps = minwise_fingerprints(
                    net.indptr, net.indices, net.n, samples, bits,
                    self._acd_salt,
                )
                self._acd_packed = pack_fingerprints(self._acd_fps, bits)
                changed = net.n
            else:
                dirty = np.flatnonzero(self._acd_dirty)
                if dirty.size:
                    refresh_minwise_fingerprints(
                        net.indptr, net.indices, net.n, samples, bits,
                        self._acd_salt, self._acd_fps, dirty,
                    )
                    self._acd_packed[dirty] = pack_fingerprints(
                        self._acd_fps[:, dirty], bits
                    )
                changed = int(dirty.size)
            self._acd_dirty[:] = False
            sketch = SimilaritySketch(
                fingerprints=self._acd_fps,
                bits_per_sample=bits,
                samples=samples,
                rounds_used=0,
                engine=cfg.acd_sketch_engine,
                _packed=self._acd_packed,
            )
        if changed:
            # Same closed-form packing as compute_sketches, but only the
            # changed nodes broadcast — the saved announcement traffic is
            # the point of maintaining the sketch.
            budget = net.bandwidth_bits or (64 * max(1, samples))
            per_round = max(1, budget // bits)
            full_r, rem = divmod(samples, per_round)
            net.account_vector_rounds(
                full_r, changed, per_round * bits, phase="acd/sketch"
            )
            if rem:
                net.account_vector_round(changed, rem * bits, phase="acd/sketch")
            sketch.rounds_used = full_r + (1 if rem else 0)
        return decompose_from_sketch(net, sketch, cfg)

    # ------------------------------------------------------------------
    def route_summary(self) -> dict:
        """Aggregate delta-routing stats over the applied batches:
        how many shards each batch touched, how many reconcile sweeps
        ran, and what fraction of the node universe cross-cut
        reconciliation recolored (the <5 % locality gate in
        ``benchmarks/bench_dynamic_shard.py``)."""
        shards = [r["shards_touched"] for r in self.routes] or [0]
        sweeps = [r["sweeps"] for r in self.routes] or [0]
        touched = [r["cut_touched"] for r in self.routes] or [0]
        return {
            "k": self.k,
            "strategy": self.strategy,
            "batches_routed": len(self.routes),
            "mean_shards_touched": float(np.mean(shards)),
            "max_shards_touched": int(np.max(shards)),
            "mean_sweeps": float(np.mean(sweeps)),
            "reconcile_touched": int(np.sum(touched)),
            "max_reconcile_touched_fraction": float(
                np.max(touched) / max(self.n, 1)
            ),
        }
