"""Algorithm 1 / Theorem 1: the full (Δ+1)-coloring pipeline.

Phase order follows §3 and the proof in §3.4:

1.  **setup** — ε-almost-clique decomposition (Lemma 2.5), clique
    aggregates a_K/e_K, outliers, classes, the reserved prefixes x(K).
2.  **slack** — slack generation: each node w.p. p_s tries one color from
    [Δ+1]\\[x(v)] (Lemma 2.12).
3.  **matching** — colorful matching of size β·a_K in every clique with
    a_K ≥ C log n (Lemma 2.9).
4.  **putaside-select** — P_K ⊆ I_K in full cliques (Lemma 3.4).
5.  **sparse** — V_sparse colored by MultiTrial on [Δ+1] (they hold Ω(Δ)
    permanent slack).
6.  **outliers** — O_K colored by MultiTrial on [Δ+1]\\[x(K)] (temporary
    slack from the ≥0.9Δ inactive inliers, Claim 3.2).
7.  **sct** — synchronized color trial in every clique (Lemma 3.5), plus
    the O(1) open-clique TryColor rounds (Lemma 3.7).
8.  **inliers** — MultiTrial with lists L(v) = [x(v)] (Step 3 of
    Algorithm 1; Lemma 3.7 guarantees |[x(v)] ∩ Ψ(v)| ≥ 2d̂(v)).
9.  **putaside** — CompressTry reduction + O(1)-round finish (§3.3).
10. **cleanup** — plain TryColor from true palettes until everyone is
    colored.  With the paper's constants this phase is empty w.h.p.; with
    scaled practical constants it mops up the tail, and its rounds are
    reported separately so experiments keep the phases honest.

The result is always a proper (Δ+1)-coloring (hard invariant), and the
returned :class:`ColoringResult` carries per-phase rounds/bits plus every
lemma-level diagnostic the experiments need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro import obs
from repro.config import ColoringConfig
from repro.core.cliques import CliqueInfo, compute_clique_info
from repro.core.matching import MatchingReport, colorful_matching
from repro.core.multitrial import MultiTrialReport, multitrial
from repro.core.putaside import (
    PutAsideReport,
    color_putaside_sets,
    select_putaside_sets,
)
from repro.core.sct import SCTReport, synchronized_color_trial
from repro.core.slack import SlackReport, generate_slack
from repro.core.state import ColoringState
from repro.core.trycolor import palette_sampler, try_color_round
from repro.decomposition.acd import (
    AlmostCliqueDecomposition,
    decompose_distributed,
    decompose_exact,
)
from repro.simulator.metrics import RoundMetrics
from repro.simulator.network import BroadcastNetwork
from repro.simulator.rng import SeedSequencer
from repro.simulator.trace import TraceRecorder

__all__ = ["BroadcastColoring", "ColoringResult"]


@dataclass
class ColoringResult:
    """Everything a run produced."""

    colors: np.ndarray
    proper: bool
    complete: bool
    num_colors_used: int
    delta: int
    n: int
    rounds_total: int
    rounds_cleanup: int
    max_message_bits: int
    total_bits: int
    phase_rounds: dict[str, int]
    phase_seconds: dict[str, float] = field(default_factory=dict)
    """Wall-clock seconds spent executing each phase (simulator time, not a
    model quantity — feeds the BENCH_*.json perf trajectories)."""
    reports: dict[str, Any] = field(default_factory=dict)
    metrics: RoundMetrics | None = None
    clique_summary: dict | None = None
    trace: TraceRecorder | None = None

    @property
    def rounds_algorithm(self) -> int:
        """Rounds spent in the paper's phases (cleanup excluded)."""
        return self.rounds_total - self.rounds_cleanup

    def as_dict(self) -> dict:
        return {
            "n": self.n,
            "delta": self.delta,
            "proper": self.proper,
            "complete": self.complete,
            "num_colors_used": self.num_colors_used,
            "rounds_total": self.rounds_total,
            "rounds_algorithm": self.rounds_algorithm,
            "rounds_cleanup": self.rounds_cleanup,
            "max_message_bits": self.max_message_bits,
            "total_bits": self.total_bits,
            "phase_rounds": dict(self.phase_rounds),
        }


class BroadcastColoring:
    """The BCONGEST (Δ+1)-coloring algorithm of the paper, end to end.

    >>> from repro.graphs.generators import gnp_graph
    >>> algo = BroadcastColoring(gnp_graph(500, 0.05, seed=1))
    >>> result = algo.run()
    >>> assert result.proper and result.complete

    Parameters
    ----------
    graph:
        ``networkx.Graph`` or ``(n, edges)`` pair.
    config:
        :class:`ColoringConfig`; practical preset by default.
    decomposition:
        "distributed" (Lemma 2.5 protocol, default), "exact" (centralized
        similarity oracle, same downstream pipeline), or a precomputed
        :class:`AlmostCliqueDecomposition` (e.g. a planted ground truth).
    """

    def __init__(
        self,
        graph,
        config: ColoringConfig | None = None,
        decomposition: str | AlmostCliqueDecomposition = "distributed",
    ):
        self.cfg = config or ColoringConfig.practical()
        metrics = RoundMetrics()
        if isinstance(graph, BroadcastNetwork):
            self.net = graph
        else:
            net = BroadcastNetwork(graph, metrics=metrics)
            net.bandwidth_bits = self.cfg.bandwidth_bits(net.n)
            self.net = net
        self.decomposition_mode = decomposition
        self.seq = SeedSequencer(self.cfg.seed)

    # ------------------------------------------------------------------
    def run(self) -> ColoringResult:
        cfg = self.cfg
        net = self.net
        obs.enable_from_config(cfg)
        obs.count("repro_color_runs_total")
        # Unscoped span around the whole pipeline: the per-phase spans
        # RoundMetrics emits (begin_phase/stop_timer) nest under it.
        run_span = obs.start_span("color.run", n=int(net.n))
        metrics = net.metrics
        state = ColoringState(net)
        reports: dict[str, Any] = {}
        trace = None
        if cfg.record_trace:
            trace = TraceRecorder(progress_probe=state.num_uncolored)
            metrics.observers.append(lambda phase, k: trace.record(phase, k))

        # ---- phase 1: setup --------------------------------------------
        metrics.begin_phase("setup")
        if isinstance(self.decomposition_mode, AlmostCliqueDecomposition):
            acd = self.decomposition_mode
        elif self.decomposition_mode == "exact":
            acd = decompose_exact(net, cfg)
        else:
            acd = decompose_distributed(net, cfg, self.seq.spawn("acd"))
        info = compute_clique_info(net, acd, cfg, num_colors=state.num_colors)
        reports["clique_info"] = info.summary()

        # ---- phase 2: slack generation ---------------------------------
        metrics.begin_phase("slack")
        reports["slack"] = generate_slack(
            state, info.x_node, cfg, self.seq.spawn("slack"), phase="slack"
        ).as_dict()

        # ---- phase 3: colorful matching --------------------------------
        metrics.begin_phase("matching")
        if cfg.enable_matching:
            matching_report = colorful_matching(
                state, info, cfg, self.seq.spawn("matching"), phase="matching"
            )
            reports["matching"] = matching_report.as_dict()
        else:
            reports["matching"] = {"skipped": True}

        # ---- phase 4: put-aside selection ------------------------------
        metrics.begin_phase("putaside-select")
        if cfg.enable_putaside:
            putaside, select_report = select_putaside_sets(
                state, info, cfg, self.seq.spawn("putaside"), phase="putaside-select"
            )
            reports["putaside_select"] = select_report.as_dict()
        else:
            putaside = {}
            reports["putaside_select"] = {"skipped": True}

        # ---- phase 5: sparse nodes via MultiTrial -----------------------
        metrics.begin_phase("sparse")
        sparse_mask = info.labels < 0
        lo = np.zeros(state.n, dtype=np.int64)
        hi = np.full(state.n, state.num_colors, dtype=np.int64)
        reports["sparse"] = multitrial(
            state, sparse_mask, lo, hi, cfg, self.seq.spawn("mt-sparse"), phase="sparse"
        ).as_dict()

        # ---- phase 6: outliers via MultiTrial ---------------------------
        metrics.begin_phase("outliers")
        outlier_mask = info.outlier_mask & (state.colors < 0)
        lo_out = info.x_node.astype(np.int64)
        reports["outliers"] = multitrial(
            state,
            outlier_mask,
            lo_out,
            hi,
            cfg,
            self.seq.spawn("mt-outliers"),
            phase="outliers",
        ).as_dict()

        # ---- phase 7: synchronized color trial --------------------------
        metrics.begin_phase("sct")
        sct_report = synchronized_color_trial(
            state, info, putaside, cfg, self.seq.spawn("sct"), phase="sct"
        )
        reports["sct"] = sct_report.as_dict()

        # ---- phase 8: inliers via MultiTrial on [x(v)] -------------------
        metrics.begin_phase("inliers")
        putaside_mask = np.zeros(state.n, dtype=bool)
        for nodes in putaside.values():
            putaside_mask[nodes] = True
        inlier_mask = (info.labels >= 0) & ~putaside_mask & (state.colors < 0)
        lo_in = np.zeros(state.n, dtype=np.int64)
        hi_in = np.maximum(info.x_node.astype(np.int64), 1)
        reports["inliers"] = multitrial(
            state,
            inlier_mask,
            lo_in,
            hi_in,
            cfg,
            self.seq.spawn("mt-inliers"),
            phase="inliers",
        ).as_dict()
        # Inliers whose reserved prefix ran dry retry on the full palette
        # (still MultiTrial — the paper's w.h.p. argument makes this branch
        # empty; with scaled constants it occasionally fires).
        leftover_inliers = inlier_mask & (state.colors < 0)
        if leftover_inliers.any():
            reports["inliers_fullrange"] = multitrial(
                state,
                leftover_inliers,
                lo,
                hi,
                cfg,
                self.seq.spawn("mt-inliers2"),
                phase="inliers",
            ).as_dict()

        # ---- phase 9: color the put-aside sets --------------------------
        metrics.begin_phase("putaside")
        reports["putaside"] = color_putaside_sets(
            state, info, putaside, cfg, self.seq.spawn("putaside-color"), phase="putaside"
        ).as_dict()

        # ---- phase 10: cleanup ------------------------------------------
        metrics.begin_phase("cleanup")
        cleanup_rounds = 0
        sampler = palette_sampler(state)
        while state.num_uncolored() and cleanup_rounds < cfg.max_cleanup_rounds:
            pending = state.uncolored_nodes()
            try_color_round(
                state, pending, sampler, self.seq, phase="cleanup", round_tag=cleanup_rounds
            )
            cleanup_rounds += 1
        reports["cleanup"] = {"rounds": cleanup_rounds}

        state.verify()
        metrics.stop_timer()
        obs.end_span(run_span)
        phase_rounds = {
            name: stats.rounds
            for name, stats in metrics.phases.items()
            if name != "total"
        }
        phase_seconds = {
            name: float(secs) for name, secs in metrics.phase_seconds.items()
        }
        return ColoringResult(
            colors=state.colors.copy(),
            proper=state.is_proper(),
            complete=state.is_complete(),
            num_colors_used=state.count_colors_used(),
            delta=state.delta,
            n=state.n,
            rounds_total=metrics.total_rounds,
            rounds_cleanup=metrics.rounds_in("cleanup"),
            max_message_bits=metrics.max_message_bits,
            total_bits=metrics.total_bits,
            phase_rounds=phase_rounds,
            phase_seconds=phase_seconds,
            reports=reports,
            metrics=metrics,
            clique_summary=info.summary(),
            trace=trace,
        )
