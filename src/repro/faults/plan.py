"""Seeded, serializable fault plans and the ``inject`` hook (DESIGN.md §9).

The algorithms of this repo are pure functions of ``(graph, config,
seed)``.  That purity is what makes *deterministic* chaos testing
possible: if a shard worker is crashed and retried, or a daemon is
killed mid-snapshot and restored, the recovered run must produce colors
**byte-identical** to a run in which nothing ever failed.  This module
provides the half that breaks things on purpose; the supervision code in
:mod:`repro.shard.engine` and :mod:`repro.serve` provides the half that
survives it.

Model
-----
A :class:`FaultPlan` is a named, seeded list of :class:`FaultRule`\\ s.
Each rule binds one *injection site* (a string from :data:`SITES`,
compiled into the target code as an :func:`inject` call) to one fault
``kind``:

* ``"crash"`` — raise :class:`FaultInjected` (soft), or ``os._exit(70)``
  when ``hard`` (a genuine process death: the pool sees
  ``BrokenProcessPool``, the daemon simply vanishes);
* ``"hang"`` — sleep ``seconds`` inside the call site (a stall long
  enough to trip wall-clock deadlines);
* ``"slow"`` — sleep ``seconds * factor`` (degraded but live: must *not*
  trip deadlines tuned for hangs);
* ``"torn-write"`` — returned to the site as a cooperative
  :class:`Fault`; write sites (``serve.snapshot.write``) react by
  truncating their output mid-write, then either raising (soft) or
  ``os._exit``-ing (hard — the SIGKILL-mid-write simulation).

Rules fire deterministically: ``match`` is a subset-equality test on the
context keywords the site passes to :func:`inject`, ``prob`` thins the
matches with a coin derived (blake2b) from ``(plan.seed, rule index,
match count)`` — never from global RNG state — and ``max_fires`` caps
the total. A plan serializes to/from TOML so it can ride the same spec
files as the runner's matrices, and its :attr:`FaultPlan.key` is a
content hash (two equal plans always collide, any edit always misses).

Zero cost when disarmed
-----------------------
:func:`inject` begins with one module-global load and an ``is None``
test; until :func:`arm` installs a plan, that is the *entire* cost of a
compiled-in site (benchmarked in ``benchmarks/bench_faults.py``).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro import obs

__all__ = [
    "SITES",
    "KINDS",
    "Fault",
    "FaultRule",
    "FaultPlan",
    "FaultInjected",
    "inject",
    "arm",
    "disarm",
    "armed_plan",
    "suppressed",
    "fault_events",
]

SITES = (
    "shard.worker",
    "shard.shm",
    "serve.snapshot.write",
    "serve.connection",
    "runner.trial",
)
"""Every injection site compiled into the code base.  A plan naming any
other site is rejected at construction — a typo must fail loudly, not
silently never fire."""

KINDS = ("crash", "hang", "slow", "torn-write")
"""The fault kinds a rule can deliver (see the module docstring)."""

_EXIT_CODE = 70
"""Process exit status used by ``hard`` faults (BSD's EX_SOFTWARE) —
distinguishable from a clean 0 and from python's uncaught-exception 1."""


class FaultInjected(Exception):
    """The exception a *soft* ``crash`` (or a soft ``torn-write`` site)
    raises: the failure the supervision layer is expected to catch,
    retry, and recover from bit-identically."""

    def __init__(self, site: str, kind: str, detail: str = "") -> None:
        super().__init__(f"injected {kind} at {site}" + (f": {detail}" if detail else ""))
        self.site = site
        self.kind = kind
        self.detail = detail

    def __reduce__(self):
        # Exception's default __reduce__ replays ``args`` (the formatted
        # message) into __init__, which has the wrong arity — and an
        # exception that cannot unpickle kills the pool's result pipe,
        # escalating every soft crash into a BrokenProcessPool.
        return (type(self), (self.site, self.kind, self.detail))


@dataclass(frozen=True)
class Fault:
    """What :func:`inject` fired: handed back to cooperative sites
    (``torn-write``) and recorded in the armed plan's event log."""

    site: str
    kind: str
    seconds: float = 0.0
    factor: float = 1.0
    hard: bool = False
    rule_index: int = -1

    def as_dict(self) -> dict:
        """JSON-safe form (the event-log row)."""
        return {
            "site": self.site,
            "kind": self.kind,
            "seconds": self.seconds,
            "factor": self.factor,
            "hard": self.hard,
            "rule_index": self.rule_index,
        }


@dataclass(frozen=True)
class FaultRule:
    """One deterministic fault schedule entry of a :class:`FaultPlan`.

    ``match`` is a subset-equality predicate over the context keywords
    the site passes to :func:`inject` (``{"shard": 1, "attempt": 1}``
    fires only for shard 1's first attempt); an empty match fires for
    every call at the site.  ``prob`` thins matches with a deterministic
    coin, ``max_fires`` caps total fires (0 = unlimited), and ``hard``
    upgrades ``crash``/``torn-write`` to a real process death.
    """

    site: str
    kind: str
    match: tuple[tuple[str, Any], ...] = ()
    seconds: float = 0.0
    factor: float = 1.0
    prob: float = 1.0
    max_fires: int = 1
    hard: bool = False

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r} (choose from {SITES})")
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (choose from {KINDS})")
        if not 0.0 <= self.prob <= 1.0:
            raise ValueError(f"prob must be in [0, 1], got {self.prob}")
        pairs = self.match.items() if isinstance(self.match, Mapping) else self.match
        object.__setattr__(
            self, "match", tuple(sorted((str(k), v) for k, v in pairs))
        )

    def matches(self, context: Mapping[str, Any]) -> bool:
        """Subset-equality: every (key, value) of ``match`` must appear
        verbatim in the site's context."""
        return all(context.get(k) == v for k, v in self.match)

    def as_dict(self) -> dict:
        """Canonical JSON-safe form (the content-hash input)."""
        return {
            "site": self.site,
            "kind": self.kind,
            "match": {k: v for k, v in self.match},
            "seconds": float(self.seconds),
            "factor": float(self.factor),
            "prob": float(self.prob),
            "max_fires": int(self.max_fires),
            "hard": bool(self.hard),
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "FaultRule":
        """Inverse of :meth:`as_dict` (also the TOML ``[[rule]]`` shape)."""
        return cls(
            site=str(d["site"]),
            kind=str(d["kind"]),
            match=tuple(dict(d.get("match") or {}).items()),
            seconds=float(d.get("seconds", 0.0)),
            factor=float(d.get("factor", 1.0)),
            prob=float(d.get("prob", 1.0)),
            max_fires=int(d.get("max_fires", 1)),
            hard=bool(d.get("hard", False)),
        )


def _toml_scalar(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(float(value))
    if isinstance(value, str):
        # JSON string escaping is a valid TOML basic string for our keys.
        return json.dumps(value)
    raise TypeError(f"cannot serialize {type(value).__name__} to TOML")


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded, content-hashable set of :class:`FaultRule`\\ s.

    The ``seed`` drives every probabilistic coin of the plan (via
    blake2b, never global RNG), so a campaign under a plan is exactly as
    reproducible as the algorithms it attacks.  Plans round-trip through
    dicts (:meth:`as_dict`/:meth:`from_dict`) and TOML
    (:meth:`to_toml`/:meth:`from_toml`, :meth:`save`/:meth:`load`).
    """

    name: str
    seed: int = 0
    rules: tuple[FaultRule, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    @property
    def key(self) -> str:
        """128-bit blake2b content hash of the canonical form — two
        plans with equal fields always collide, any edit always misses
        (the same contract as :func:`repro.runner.spec.spec_key`)."""
        blob = json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.blake2b(blob.encode(), digest_size=16).hexdigest()

    def as_dict(self) -> dict:
        """Canonical JSON-safe form."""
        return {
            "name": self.name,
            "seed": int(self.seed),
            "rules": [r.as_dict() for r in self.rules],
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "FaultPlan":
        """Inverse of :meth:`as_dict`; also accepts the TOML document
        shape (``rule`` instead of ``rules``)."""
        rules = d.get("rules", d.get("rule") or [])
        return cls(
            name=str(d.get("name", "unnamed")),
            seed=int(d.get("seed", 0)),
            rules=tuple(FaultRule.from_dict(r) for r in rules),
        )

    def to_toml(self) -> str:
        """Serialize to TOML (hand-rolled writer: the container ships
        ``tomllib`` but no TOML *writer*)."""
        lines = [f"name = {_toml_scalar(self.name)}", f"seed = {int(self.seed)}", ""]
        for rule in self.rules:
            d = rule.as_dict()
            match = d.pop("match")
            lines.append("[[rule]]")
            for key in ("site", "kind", "seconds", "factor", "prob", "max_fires", "hard"):
                lines.append(f"{key} = {_toml_scalar(d[key])}")
            if match:
                inner = ", ".join(
                    f"{k} = {_toml_scalar(v)}" for k, v in sorted(match.items())
                )
                lines.append(f"match = {{{inner}}}")
            lines.append("")
        return "\n".join(lines)

    @classmethod
    def from_toml(cls, text: str) -> "FaultPlan":
        """Parse a plan from TOML text (see :meth:`to_toml`)."""
        import tomllib

        return cls.from_dict(tomllib.loads(text))

    def save(self, path: str | os.PathLike) -> None:
        """Write the TOML form to ``path``."""
        Path(path).write_text(self.to_toml(), encoding="utf-8")

    @classmethod
    def load(cls, path: str | os.PathLike) -> "FaultPlan":
        """Read a plan from a TOML file (the ``--fault-plan`` /
        ``repro chaos --plan`` entry point)."""
        return cls.from_toml(Path(path).read_text(encoding="utf-8"))


# ----------------------------------------------------------------------
# Runtime: the armed plan and the inject hook
# ----------------------------------------------------------------------
class _ArmedState:
    """Mutable runtime companion of an armed plan: per-rule match/fire
    counters (the determinism substrate of ``prob``/``max_fires``) and
    the event log of everything that fired."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.matched = [0] * len(plan.rules)
        self.fired = [0] * len(plan.rules)
        self.events: list[dict] = []
        self._lock = threading.Lock()

    def _coin(self, rule_index: int, match_index: int) -> float:
        blob = f"{self.plan.seed}\x1f{rule_index}\x1f{match_index}".encode()
        h = hashlib.blake2b(blob, digest_size=8).digest()
        return int.from_bytes(h, "big") / float(1 << 64)

    def check(self, site: str, context: Mapping[str, Any]) -> Fault | None:
        """First-match rule evaluation; returns the fired fault (after
        delivering its in-band effect) or None."""
        with self._lock:
            fault = None
            for i, rule in enumerate(self.plan.rules):
                if rule.site != site or not rule.matches(context):
                    continue
                self.matched[i] += 1
                if rule.prob < 1.0 and self._coin(i, self.matched[i]) >= rule.prob:
                    continue
                if rule.max_fires > 0 and self.fired[i] >= rule.max_fires:
                    continue
                self.fired[i] += 1
                fault = Fault(
                    site=site,
                    kind=rule.kind,
                    seconds=rule.seconds,
                    factor=rule.factor,
                    hard=rule.hard,
                    rule_index=i,
                )
                self.events.append({**fault.as_dict(), "context": dict(context)})
                break
        if fault is None:
            return None
        obs.count("repro_faults_fired_total", site=site, kind=fault.kind)
        # Deliver in-band effects outside the lock.
        if fault.kind == "hang":
            time.sleep(max(0.0, fault.seconds))
            return fault
        if fault.kind == "slow":
            time.sleep(max(0.0, fault.seconds * fault.factor))
            return fault
        if fault.kind == "crash":
            if fault.hard:
                os._exit(_EXIT_CODE)
            raise FaultInjected(site, "crash")
        return fault  # torn-write: the cooperative site acts on it


_ARMED: _ArmedState | None = None


def arm(plan: FaultPlan) -> None:
    """Install ``plan`` process-wide (counters reset).  Pool workers do
    not share the driver's counters: each arms its own copy, so rules
    meant for workers should pin their ``match`` (e.g. on
    ``shard``/``attempt``) rather than rely on ``max_fires`` across
    processes."""
    global _ARMED
    _ARMED = _ArmedState(plan)
    obs.count("repro_faults_armed_total", plan=plan.name)
    obs.gauge_set("repro_faults_rules", len(plan.rules), plan=plan.name)


def disarm() -> None:
    """Remove the armed plan (idempotent); restores the zero-cost path."""
    global _ARMED
    _ARMED = None


def armed_plan() -> FaultPlan | None:
    """The currently armed plan, or None."""
    state = _ARMED
    return None if state is None else state.plan


def fault_events() -> list[dict]:
    """Copy of the armed plan's fired-event log (empty when disarmed) —
    what the chaos harness reports alongside its oracle verdict."""
    state = _ARMED
    return [] if state is None else list(state.events)


@contextmanager
def suppressed() -> Iterator[None]:
    """Temporarily disarm within a ``with`` block — how graceful
    degradation (e.g. the shard driver's inline fallback) re-executes
    work without the plan re-killing it."""
    global _ARMED
    saved = _ARMED
    _ARMED = None
    try:
        yield
    finally:
        _ARMED = saved


def inject(site: str, **context: Any) -> Fault | None:
    """The hook compiled into every :data:`SITES` call site.

    Disarmed (the production state) this is one global load and an
    ``is None`` test — nothing else.  Armed, it evaluates the plan's
    rules against ``context``: ``hang``/``slow`` sleep here and return
    the fired :class:`Fault`; soft ``crash`` raises
    :class:`FaultInjected`; hard ``crash`` exits the process; and
    ``torn-write`` returns the :class:`Fault` for the site to act on.
    """
    state = _ARMED
    if state is None:
        return None
    return state.check(site, context)
