"""Aggregation: turn trial payloads into series, summaries and growth fits.

This is the bridge from the runner to :mod:`repro.analysis`: payload rows
group by arbitrary fields, collapse to means via
:class:`repro.analysis.stats.SweepResult`, and (n, value) series feed
:func:`repro.analysis.fitting.growth_fit` for the paper's shape claims.

Everything here is deterministic: groups are emitted in sorted key order
and rows keep their (already deterministic) runner order, so aggregated
reports are byte-identical across worker counts.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.analysis.fitting import GrowthFit, growth_fit
from repro.analysis.stats import SweepResult, summarize

__all__ = [
    "group_by",
    "mean_by",
    "series",
    "fit_rounds",
    "summarize_payloads",
    "mean_timings",
]

Payload = Mapping[str, Any]


def _sort_token(value: Any) -> tuple:
    """Type-aware sort token: numbers order numerically (256 < 1024),
    everything else lexically, mixed types grouped by kind."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return ("str", 0.0, str(value))
    return ("num", float(value), "")


def group_by(payloads: Iterable[Payload], keys: Sequence[str]) -> dict[tuple, list[Payload]]:
    """Group payload rows by a tuple of field values, sorted by key."""
    groups: dict[tuple, list[Payload]] = {}
    for p in payloads:
        groups.setdefault(tuple(p.get(k) for k in keys), []).append(p)
    return dict(
        sorted(groups.items(), key=lambda kv: tuple(_sort_token(v) for v in kv[0]))
    )


def mean_by(
    payloads: Iterable[Payload], keys: Sequence[str], value: str = "rounds"
) -> dict[tuple, float]:
    """Mean of ``value`` per group (NaN-free: missing fields are skipped)."""
    out: dict[tuple, float] = {}
    for gkey, rows in group_by(payloads, keys).items():
        sweep = SweepResult(values=[float(r[value]) for r in rows if value in r])
        out[gkey] = sweep.mean
    return out


def series(
    payloads: Iterable[Payload],
    x: str = "n",
    value: str = "rounds",
    where: Mapping[str, Any] | None = None,
) -> tuple[list, list[float]]:
    """(xs, mean values) sorted by x, filtered by exact-match ``where``."""
    rows = [
        p for p in payloads
        if all(p.get(k) == v for k, v in (where or {}).items())
    ]
    means = mean_by(rows, [x], value=value)
    xs = sorted(k[0] for k in means)
    return xs, [means[(xv,)] for xv in xs]


def fit_rounds(
    payloads: Iterable[Payload], where: Mapping[str, Any] | None = None
) -> GrowthFit | None:
    """Growth-shape fit of mean rounds vs n (None when < 2 sizes ran)."""
    xs, ys = series(payloads, x="n", value="rounds", where=where)
    if len(xs) < 2:
        return None
    return growth_fit(xs, ys)


def mean_timings(
    results: Iterable,  # Iterable[repro.runner.spec.TrialResult]
    keys: Sequence[str] = ("family", "algorithm", "n"),
) -> dict[tuple, dict[str, float]]:
    """Mean wall-clock seconds per phase, grouped by spec fields.

    Unlike every other aggregator here this consumes :class:`TrialResult`
    objects, not payloads: timings are machine-dependent and live outside
    the deterministic payload (DESIGN.md §3).  Cached results carry the
    timings of the run that computed them.  Feeds the ``BENCH_*.json``
    trajectories via ``repro bench --track``.
    """
    sums: dict[tuple, dict[str, float]] = {}
    counts: dict[tuple, int] = {}
    for r in results:
        if not r.ok or not r.timings:
            continue
        gkey = tuple(r.spec.as_dict().get(k) for k in keys)
        bucket = sums.setdefault(gkey, {})
        counts[gkey] = counts.get(gkey, 0) + 1
        for phase, secs in r.timings.items():
            bucket[phase] = bucket.get(phase, 0.0) + float(secs)
    out: dict[tuple, dict[str, float]] = {}
    for gkey in sorted(sums, key=lambda kv: tuple(_sort_token(v) for v in kv)):
        c = counts[gkey]
        out[gkey] = {phase: s / c for phase, s in sorted(sums[gkey].items())}
    return out


def summarize_payloads(
    payloads: Iterable[Payload], metrics: Sequence[str] = ("rounds", "num_colors_used")
) -> dict[str, dict]:
    """Column-wise summary stats over all rows (analysis.stats.summarize)."""
    return summarize([dict(p) for p in payloads], list(metrics))
