"""Tests for exact sparsity / triangle counting (Definition 2.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decomposition.sparsity import (
    edge_common_neighbors,
    local_sparsity,
    triangle_counts,
)
from repro.graphs.generators import complete_graph, ring_graph, star_graph
from repro.simulator.network import BroadcastNetwork


def brute_triangles(net):
    t = np.zeros(net.n, dtype=np.int64)
    for v in range(net.n):
        nbrs = [int(u) for u in net.neighbors(v)]
        count = 0
        for i in range(len(nbrs)):
            for j in range(i + 1, len(nbrs)):
                if net.has_edge(nbrs[i], nbrs[j]):
                    count += 1
        t[v] = count
    return t


class TestTriangleCounts:
    def test_triangle(self):
        net = BroadcastNetwork((3, [(0, 1), (1, 2), (0, 2)]))
        assert triangle_counts(net).tolist() == [1, 1, 1]

    def test_path_no_triangles(self):
        net = BroadcastNetwork((4, [(0, 1), (1, 2), (2, 3)]))
        assert triangle_counts(net).sum() == 0

    def test_clique(self):
        net = BroadcastNetwork(complete_graph(6))
        # Each node: C(5,2) = 10 triangles through it.
        assert (triangle_counts(net) == 10).all()

    def test_star_no_triangles(self):
        net = BroadcastNetwork(star_graph(8))
        assert triangle_counts(net).sum() == 0

    def test_empty(self):
        net = BroadcastNetwork((5, []))
        assert triangle_counts(net).sum() == 0

    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=25))
    @settings(max_examples=25, deadline=None)
    def test_matches_bruteforce(self, edges):
        net = BroadcastNetwork((10, edges))
        assert np.array_equal(triangle_counts(net), brute_triangles(net))

    def test_small_block_size_consistent(self):
        net = BroadcastNetwork(complete_graph(9))
        assert np.array_equal(triangle_counts(net, block=2), triangle_counts(net))


class TestEdgeCommonNeighbors:
    def test_open_triangle(self):
        net = BroadcastNetwork((3, [(0, 1), (1, 2), (0, 2)]))
        # Every edge of a triangle has exactly 1 common neighbor.
        assert edge_common_neighbors(net).tolist() == [1, 1, 1]

    def test_closed_includes_endpoints(self):
        net = BroadcastNetwork((3, [(0, 1), (1, 2), (0, 2)]))
        # N[u] ∩ N[v] over an edge of a triangle = all 3 nodes.
        assert edge_common_neighbors(net, closed=True).tolist() == [3, 3, 3]

    def test_path_edge_no_common(self):
        net = BroadcastNetwork((3, [(0, 1), (1, 2)]))
        assert edge_common_neighbors(net).tolist() == [0, 0]

    def test_closed_path_edge(self):
        net = BroadcastNetwork((3, [(0, 1), (1, 2)]))
        # For edge (0,1): N[0]={0,1}, N[1]={0,1,2} → 2 common.
        assert edge_common_neighbors(net, closed=True).tolist() == [2, 2]

    def test_empty_edges(self):
        net = BroadcastNetwork((3, []))
        assert edge_common_neighbors(net).size == 0


class TestLocalSparsity:
    def test_clique_is_zero_sparse(self):
        net = BroadcastNetwork(complete_graph(8))
        zeta = local_sparsity(net)
        assert np.allclose(zeta, 0.0)

    def test_ring_sparsity(self):
        net = BroadcastNetwork(ring_graph(10))
        # Δ=2, triangles 0 → ζ = (1 - 0)/2 = 0.5 for every node.
        assert np.allclose(local_sparsity(net), 0.5)

    def test_low_degree_penalized(self):
        # Star center vs leaves: leaves have tiny degree → huge deficit.
        net = BroadcastNetwork(star_graph(10))
        zeta = local_sparsity(net)
        assert zeta[1] > zeta[0] * 0.99  # leaves at least as sparse as hub

    def test_matches_definition(self):
        net = BroadcastNetwork((4, [(0, 1), (1, 2), (2, 0), (2, 3)]))
        delta = net.delta  # 3
        t = triangle_counts(net)
        zeta = local_sparsity(net)
        expected = (delta * (delta - 1) / 2 - t) / delta
        assert np.allclose(zeta, expected)

    def test_nonnegative(self):
        net = BroadcastNetwork(complete_graph(5))
        assert (local_sparsity(net) >= -1e-9).all()
