"""Tests for the broadcast network substrate (repro.simulator.network)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator.messages import Broadcast, color_message
from repro.simulator.metrics import RoundMetrics
from repro.simulator.network import BandwidthExceeded, BroadcastNetwork


def edges_strategy(max_n=12):
    return st.integers(min_value=2, max_value=max_n).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=n - 1),
                ),
                max_size=30,
            ),
        )
    )


class TestConstruction:
    def test_from_pair(self):
        net = BroadcastNetwork((3, [(0, 1), (1, 2)]))
        assert net.n == 3
        assert net.m == 2
        assert net.delta == 2

    def test_from_networkx(self):
        import networkx as nx

        g = nx.path_graph(5)
        net = BroadcastNetwork(g)
        assert net.n == 5
        assert net.m == 4

    def test_self_loops_dropped(self):
        net = BroadcastNetwork((3, [(0, 0), (0, 1)]))
        assert net.m == 1

    def test_parallel_edges_collapse(self):
        net = BroadcastNetwork((3, [(0, 1), (1, 0), (0, 1)]))
        assert net.m == 1

    def test_out_of_range_edge_raises(self):
        with pytest.raises(ValueError):
            BroadcastNetwork((2, [(0, 5)]))

    def test_empty_graph(self):
        net = BroadcastNetwork((4, []))
        assert net.m == 0
        assert net.delta == 0
        assert net.neighbors(0).size == 0

    def test_degrees_and_neighbors_consistent(self):
        net = BroadcastNetwork((4, [(0, 1), (0, 2), (0, 3)]))
        assert net.degree(0) == 3
        assert sorted(net.neighbors(0).tolist()) == [1, 2, 3]
        assert net.degree(1) == 1

    def test_adjacency_set_and_has_edge(self):
        net = BroadcastNetwork((4, [(0, 1), (2, 3)]))
        assert net.has_edge(0, 1) and net.has_edge(1, 0)
        assert not net.has_edge(0, 2)
        assert net.adjacency_set(2) == {3}

    @given(edges_strategy())
    @settings(max_examples=30, deadline=None)
    def test_csr_symmetry(self, graph):
        net = BroadcastNetwork(graph)
        for v in range(net.n):
            for u in net.neighbors(v):
                assert v in net.neighbors(int(u))

    @given(edges_strategy())
    @settings(max_examples=40, deadline=None)
    def test_single_sort_construction_matches_reference(self, graph):
        """The one-lexsort CSR build (edges deduped in sorted order,
        ``_und_edges`` = the src < dst half) must reproduce the reference
        construction: np.unique over canonicalized pairs + a second
        lexsort of both directions."""
        net = BroadcastNetwork(graph)
        n, edge_list = graph
        edges = np.array(
            [(u, v) for u, v in edge_list if u != v], dtype=np.int64
        ).reshape(-1, 2)
        if edges.size:
            lo = np.minimum(edges[:, 0], edges[:, 1])
            hi = np.maximum(edges[:, 0], edges[:, 1])
            und = np.unique(np.stack([lo, hi], axis=1), axis=0)
            src = np.concatenate([und[:, 0], und[:, 1]])
            dst = np.concatenate([und[:, 1], und[:, 0]])
            order = np.lexsort((dst, src))
            src, dst = src[order], dst[order]
        else:
            und = edges
            src = dst = np.empty(0, dtype=np.int64)
        assert np.array_equal(net.undirected_edges(), und)
        assert np.array_equal(net.edge_src, src)
        assert np.array_equal(net.indices, dst)
        assert net.m == und.shape[0]

    def test_und_edges_sorted_and_neighbors_sorted(self):
        net = BroadcastNetwork((6, [(4, 1), (2, 0), (1, 0), (5, 2), (2, 1)]))
        und = net.undirected_edges()
        assert (und[:, 0] < und[:, 1]).all()
        key = und[:, 0] * 6 + und[:, 1]
        assert (np.diff(key) > 0).all()
        for v in range(net.n):
            nbrs = net.neighbors(v)
            assert (np.diff(nbrs) > 0).all() if nbrs.size > 1 else True


class TestSubgraphDegrees:
    def test_all_members(self):
        net = BroadcastNetwork((3, [(0, 1), (1, 2), (0, 2)]))
        mask = np.ones(3, dtype=bool)
        assert net.subgraph_degrees(mask).tolist() == [2, 2, 2]

    def test_partial_members(self):
        net = BroadcastNetwork((3, [(0, 1), (1, 2), (0, 2)]))
        mask = np.array([True, False, True])
        assert net.subgraph_degrees(mask).tolist() == [1, 2, 1]

    def test_no_members(self):
        net = BroadcastNetwork((3, [(0, 1)]))
        assert net.subgraph_degrees(np.zeros(3, dtype=bool)).sum() == 0


class TestBroadcastRound:
    def test_delivery_to_neighbors_only(self):
        net = BroadcastNetwork((3, [(0, 1)]))
        inboxes = net.broadcast_round({0: color_message(1, 4)})
        assert len(inboxes[1]) == 1
        assert inboxes[1][0][0] == 0
        assert inboxes[2] == []

    def test_silent_nodes_receive(self):
        net = BroadcastNetwork((2, [(0, 1)]))
        inboxes = net.broadcast_round({0: color_message(0, 4)})
        assert inboxes[0] == []  # sender hears nothing (no broadcasting nbr)
        assert len(inboxes[1]) == 1

    def test_restrict_to(self):
        net = BroadcastNetwork((3, [(0, 1), (0, 2)]))
        inboxes = net.broadcast_round({0: color_message(0, 4)}, restrict_to=[1])
        assert set(inboxes.keys()) == {1}

    def test_rounds_counted(self):
        net = BroadcastNetwork((2, [(0, 1)]))
        net.broadcast_round({0: color_message(0, 4)})
        net.broadcast_round({1: color_message(1, 4)})
        assert net.metrics.total_rounds == 2

    def test_bandwidth_enforced(self):
        net = BroadcastNetwork((2, [(0, 1)]), bandwidth_bits=8)
        with pytest.raises(BandwidthExceeded):
            net.broadcast_round({0: Broadcast(payload=0, bits=9)})

    def test_bandwidth_ok_at_cap(self):
        net = BroadcastNetwork((2, [(0, 1)]), bandwidth_bits=8)
        net.broadcast_round({0: Broadcast(payload=0, bits=8)})
        assert net.metrics.max_message_bits == 8

    def test_unknown_sender_raises(self):
        net = BroadcastNetwork((2, [(0, 1)]))
        with pytest.raises(ValueError):
            net.broadcast_round({5: color_message(0, 4)})

    def test_vector_round_bandwidth_enforced(self):
        net = BroadcastNetwork((2, [(0, 1)]), bandwidth_bits=8)
        with pytest.raises(BandwidthExceeded):
            net.account_vector_round(1, 9)


class TestVectorCollectives:
    def test_neighbor_min(self):
        net = BroadcastNetwork((3, [(0, 1), (1, 2)]))
        vals = np.array([5, 3, 9])
        out = net.neighbor_min(vals, default=99)
        assert out.tolist() == [3, 5, 3]

    def test_neighbor_min_isolated_default(self):
        net = BroadcastNetwork((3, [(0, 1)]))
        out = net.neighbor_min(np.array([1, 2, 3]), default=-7)
        assert out[2] == -7

    def test_neighbor_sum(self):
        net = BroadcastNetwork((3, [(0, 1), (1, 2), (0, 2)]))
        out = net.neighbor_sum(np.array([1, 2, 4]))
        assert out.tolist() == [6, 5, 3]

    def test_neighbor_any(self):
        net = BroadcastNetwork((4, [(0, 1), (2, 3)]))
        flags = np.array([True, False, False, False])
        out = net.neighbor_any(flags)
        assert out.tolist() == [False, True, False, False]

    @given(edges_strategy())
    @settings(max_examples=25, deadline=None)
    def test_neighbor_sum_matches_bruteforce(self, graph):
        net = BroadcastNetwork(graph)
        vals = np.arange(net.n, dtype=np.int64)
        out = net.neighbor_sum(vals)
        for v in range(net.n):
            assert out[v] == sum(vals[u] for u in net.neighbors(v))


class TestSharedMetrics:
    def test_external_metrics_object(self):
        metrics = RoundMetrics()
        net = BroadcastNetwork((2, [(0, 1)]), metrics=metrics)
        net.account_vector_round(2, 4, phase="p")
        assert metrics.rounds_in("p") == 1
        assert metrics.total_bits == 8
