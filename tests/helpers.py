"""Shared plain-Python test helpers (not fixtures)."""

from __future__ import annotations

import numpy as np

from repro.simulator.network import BroadcastNetwork


def brute_force_proper(net: BroadcastNetwork, colors: np.ndarray) -> bool:
    """O(m) reference propriety check used to cross-validate the library's
    own verifiers."""
    for u, v in net.undirected_edges():
        if colors[u] >= 0 and colors[u] == colors[v]:
            return False
    return True


def clique_leftover_count(colors: np.ndarray, members: np.ndarray) -> int:
    return int((colors[members] < 0).sum())
