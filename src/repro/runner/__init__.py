"""Parallel experiment runner: sharded, resumable, deterministic trials.

The subsystem in one picture::

    TrialSpec  --run_trial-->  TrialResult  --ResultStore-->  results.jsonl
        |                           ^
        +----- ParallelRunner ------+        (ProcessPoolExecutor shards,
                                              cache hits skip execution)
    payloads  --aggregate-->  analysis.stats / analysis.fitting

See DESIGN.md ("Experiment runner") for the architecture notes and
EXPERIMENTS.md for the spec files that drive ``repro bench``.
"""

from repro.runner.aggregate import (
    fit_rounds,
    group_by,
    mean_by,
    mean_timings,
    series,
    summarize_payloads,
)
from repro.runner.benchtrack import append_entry, load_trajectory
from repro.runner.execute import run_trial
from repro.runner.runner import ParallelRunner, RunReport, default_workers
from repro.runner.spec import (
    ALGORITHMS,
    TrialResult,
    TrialSpec,
    expand_matrix,
    load_matrix,
    spec_key,
)
from repro.runner.store import ResultStore

__all__ = [
    "ALGORITHMS",
    "ParallelRunner",
    "ResultStore",
    "RunReport",
    "TrialResult",
    "TrialSpec",
    "append_entry",
    "default_workers",
    "expand_matrix",
    "fit_rounds",
    "group_by",
    "load_matrix",
    "load_trajectory",
    "mean_by",
    "mean_timings",
    "run_trial",
    "series",
    "spec_key",
    "summarize_payloads",
]
