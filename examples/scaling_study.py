#!/usr/bin/env python3
"""The headline experiment as a script: rounds vs n, ours vs the folklore
O(log n) baseline, with growth-shape fits and the extrapolated crossover.

This is experiment E1 (see EXPERIMENTS.md) in a runnable, tweakable form.

Run:  python examples/scaling_study.py [max_exponent] [seeds]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import BroadcastColoring, ColoringConfig
from repro.analysis.fitting import growth_fit
from repro.baselines import johansson_coloring
from repro.graphs import clique_blob_graph

CLIQUE_SIZE = 64


def measure(n: int, seeds: list[int]) -> tuple[float, float]:
    ours, base = [], []
    for s in seeds:
        g = clique_blob_graph(
            max(1, n // CLIQUE_SIZE),
            CLIQUE_SIZE,
            anti_edges_per_clique=40,
            external_edges_per_clique=12,
            seed=s,
        )
        res = BroadcastColoring(g, ColoringConfig.practical(seed=s)).run()
        assert res.proper and res.complete
        ours.append(res.rounds_algorithm)
        jr = johansson_coloring(g, seed=s)
        base.append(jr.rounds)
    return float(np.mean(ours)), float(np.mean(base))


def main() -> None:
    max_exp = int(sys.argv[1]) if len(sys.argv) > 1 else 13
    num_seeds = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    seeds = list(range(1, num_seeds + 1))
    ns = [2**k for k in range(8, max_exp + 1)]

    print(f"{'n':>8}  {'ours':>8}  {'johansson':>10}")
    ours_series, base_series = [], []
    for n in ns:
        o, b = measure(n, seeds)
        ours_series.append(o)
        base_series.append(b)
        print(f"{n:>8}  {o:>8.1f}  {b:>10.1f}")

    fit_ours = growth_fit(ns, ours_series)
    fit_base = growth_fit(ns, base_series)
    print(f"\nshape fits: ours → {fit_ours.best};  baseline → {fit_base.best}")

    # Extrapolated crossover: solve a·log2(n) + b = flat_ours.
    a, b = fit_base.coefficients["log n"]
    flat = float(np.mean(ours_series))
    if a > 1e-9:
        log2_n_star = (flat - b) / a
        print(
            f"extrapolated crossover (baseline's a·log2 n + b meets our flat "
            f"{flat:.1f} rounds): log2(n) ≈ {log2_n_star:.0f}, i.e. "
            f"n ≈ 2^{log2_n_star:.0f}"
        )
        print(
            "— the asymptotic win is real but far out, exactly as expected "
            "when O(log^3 log n) constants meet a small-constant O(log n): "
            "the paper's contribution is the *model* (broadcast-only) at the "
            "*asymptotic* rate, not a small-n speedup."
        )


if __name__ == "__main__":
    main()
