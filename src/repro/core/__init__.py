"""The paper's contribution: (Δ+1)-coloring with O(log n)-bit broadcasts.

Sub-modules follow the paper's structure:

* :mod:`repro.core.state` — partial colorings, palettes, slack (§2.2).
* :mod:`repro.core.cliques` — a_K/e_K aggregation, outliers, the
  full/open/closed classes and the reserved prefix x(K) (§3.1, Eq. (5)).
* :mod:`repro.core.slack` — slack generation (Lemma 2.12).
* :mod:`repro.core.trycolor` — the random color trial (Lemma 2.13).
* :mod:`repro.core.multitrial` — MultiTrial via representative sets
  (Lemma 2.14).
* :mod:`repro.core.matching` — the colorful matching (Lemma 2.9, App. A).
* :mod:`repro.core.learn_palette` / :mod:`repro.core.relabel` /
  :mod:`repro.core.permute` / :mod:`repro.core.sct` — the synchronized
  color trial machinery (§3.2, §4).
* :mod:`repro.core.putaside` — put-aside sets (§3.3, Appendix B).
* :mod:`repro.core.algorithm` — Algorithm 1 / Theorem 1 orchestration.
"""

from repro.core.state import ColoringState
from repro.core.algorithm import BroadcastColoring, ColoringResult

__all__ = ["ColoringState", "BroadcastColoring", "ColoringResult"]
