"""Tests for the (deg+1)-coloring extension and the trace recorder."""

import numpy as np
import pytest

from repro.config import ColoringConfig
from repro.core.algorithm import BroadcastColoring
from repro.extensions.degplusone import deg_plus_one_coloring
from repro.graphs.generators import (
    clique_blob_graph,
    complete_graph,
    gnp_graph,
    ring_graph,
    star_graph,
)
from repro.simulator.network import BroadcastNetwork
from repro.simulator.trace import TraceRecorder

from tests.helpers import brute_force_proper


class TestDegPlusOne:
    @pytest.mark.parametrize(
        "graph",
        [
            gnp_graph(200, 0.05, seed=1),
            ring_graph(50),
            star_graph(40),
            complete_graph(25),
            clique_blob_graph(3, 30, 15, 8, seed=2),
        ],
        ids=["gnp", "ring", "star", "clique", "blobs"],
    )
    def test_proper_complete_within_lists(self, graph):
        res = deg_plus_one_coloring(graph)
        assert res.proper and res.complete
        assert res.within_lists
        net = BroadcastNetwork(graph)
        assert brute_force_proper(net, res.colors)
        assert (res.colors <= net.degrees).all()

    def test_star_leaves_use_tiny_lists(self):
        # Leaves have degree 1 → colors in {0, 1} only.
        res = deg_plus_one_coloring(star_graph(30))
        assert res.colors[1:].max() <= 1

    def test_harder_than_delta_plus_one(self):
        """deg+1 restricts low-degree nodes below Δ+1 — verify it still
        finishes where the (Δ+1) pipeline has full freedom."""
        g = star_graph(50)
        res = deg_plus_one_coloring(g)
        assert res.complete
        # the hub may need color up to 50... no: hub degree 49, colors ≤ 49.
        assert res.colors[0] <= 49

    def test_deterministic(self):
        g = gnp_graph(120, 0.08, seed=3)
        a = deg_plus_one_coloring(g, ColoringConfig.practical(seed=5))
        b = deg_plus_one_coloring(g, ColoringConfig.practical(seed=5))
        assert np.array_equal(a.colors, b.colors)

    def test_bandwidth_compliant(self):
        g = gnp_graph(300, 0.05, seed=4)
        cfg = ColoringConfig.practical()
        res = deg_plus_one_coloring(g, cfg)
        assert res.max_message_bits <= cfg.bandwidth_bits(300)

    def test_report_dict(self):
        res = deg_plus_one_coloring(ring_graph(20))
        d = res.as_dict()
        assert d["within_lists"] and d["rounds"] > 0


class TestTraceRecorder:
    def test_trace_records_every_round(self):
        cfg = ColoringConfig.practical(record_trace=True, seed=1)
        g = clique_blob_graph(2, 30, 10, 5, seed=1)
        res = BroadcastColoring(g, cfg).run()
        assert res.trace is not None
        assert len(res.trace.events) == res.rounds_total

    def test_uncolored_series_monotone(self):
        cfg = ColoringConfig.practical(record_trace=True, seed=2)
        g = gnp_graph(150, 0.06, seed=2)
        res = BroadcastColoring(g, cfg).run()
        assert res.trace.is_monotone()
        assert res.trace.uncolored_series()[-1] == 0

    def test_phases_seen_in_order(self):
        cfg = ColoringConfig.practical(record_trace=True, seed=3)
        g = clique_blob_graph(3, 30, 10, 5, seed=3)
        res = BroadcastColoring(g, cfg).run()
        phases = res.trace.phases_seen()
        # ACD phases come before slack, which comes before SCT.
        acd_idx = min(i for i, p in enumerate(phases) if p.startswith("acd"))
        slack_idx = phases.index("slack")
        assert acd_idx < slack_idx

    def test_rounds_in_phase_matches_metrics(self):
        cfg = ColoringConfig.practical(record_trace=True, seed=4)
        g = gnp_graph(100, 0.05, seed=4)
        res = BroadcastColoring(g, cfg).run()
        for phase, rounds in res.phase_rounds.items():
            assert res.trace.rounds_in_phase(phase) == rounds

    def test_no_trace_by_default(self):
        g = gnp_graph(80, 0.05, seed=5)
        res = BroadcastColoring(g).run()
        assert res.trace is None

    def test_recorder_standalone(self):
        values = [10, 8, 8, 3, 0]
        it = iter(values)
        rec = TraceRecorder(progress_probe=lambda: next(it))
        for i in range(5):
            rec.record("p", i)
        assert rec.uncolored_series() == values
        assert rec.is_monotone()
        assert rec.rounds_in_phase("p") == 5
        assert rec.as_rows()[0] == (0, "p", 10, 0)


class TestAblationFlags:
    def test_matching_can_be_disabled(self):
        cfg = ColoringConfig.practical(enable_matching=False, seed=1)
        g = clique_blob_graph(3, 40, 60, 10, seed=1)
        res = BroadcastColoring(g, cfg).run()
        assert res.proper and res.complete  # cleanup still saves the day
        assert res.reports["matching"] == {"skipped": True}
        assert res.phase_rounds.get("matching", 0) == 0

    def test_putaside_can_be_disabled(self):
        cfg = ColoringConfig.practical(enable_putaside=False, seed=2)
        g = clique_blob_graph(3, 40, 10, 5, seed=2)
        res = BroadcastColoring(g, cfg).run()
        assert res.proper and res.complete
        assert res.reports["putaside_select"] == {"skipped": True}
