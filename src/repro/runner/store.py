"""JSON-lines result store with content-hash keys.

One line per completed trial, keyed by :func:`repro.runner.spec.spec_key`.
The format is append-only and human-greppable; loading tolerates a
truncated final line (a crashed run resumes cleanly — exactly the
partial-store scenario the runner's ``--resume`` path exercises).

Only ``status == "ok"`` results are persisted by the runner: errored or
timed-out trials stay out of the store so a resumed run retries them.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path
from typing import Iterator

from repro.runner.spec import TrialResult, TrialSpec

__all__ = ["ResultStore"]


class ResultStore:
    """Append-only JSONL store of :class:`TrialResult` records.

    >>> store = ResultStore("results.jsonl")     # doctest: +SKIP
    >>> store.add(result)                        # doctest: +SKIP
    >>> store.get(spec.key) is not None          # doctest: +SKIP
    """

    def __init__(self, path: str | Path, resume: bool = True):
        self.path = Path(path)
        self._by_key: dict[str, TrialResult] = {}
        if not resume:
            # Fresh run: drop any previous store contents.
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text("")
        elif self.path.exists():
            self._load()

    def _load(self) -> None:
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                    result = TrialResult.from_record(rec)
                except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                    continue  # truncated/corrupt tail line — ignore and move on
                result.cached = True
                self._by_key[result.key] = result

    # -- mapping interface ---------------------------------------------
    def __len__(self) -> int:
        return len(self._by_key)

    def __contains__(self, key: str) -> bool:
        return key in self._by_key

    def __iter__(self) -> Iterator[TrialResult]:
        return iter(self._by_key.values())

    def get(self, key: str) -> TrialResult | None:
        return self._by_key.get(key)

    def lookup(self, spec: TrialSpec) -> TrialResult | None:
        """Cached result for ``spec``, marked ``cached=True``, or None.

        Returns a copy so results a live run just ``add()``-ed keep their
        own ``cached=False`` while later lookups report a cache hit."""
        hit = self._by_key.get(spec.key)
        return None if hit is None else replace(hit, cached=True)

    # -- writes ---------------------------------------------------------
    def add(self, result: TrialResult) -> None:
        """Persist one result (idempotent per key: re-adding overwrites the
        in-memory entry but appends a new line; loads keep the last line)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(result.record(), sort_keys=True) + "\n")
            fh.flush()
        self._by_key[result.key] = result
