"""Integer hash families and b-bit minwise fingerprints.

The BCONGEST almost-clique decomposition (Lemma 2.5, implemented per
[FGH+23]'s strategy) needs every pair of adjacent nodes to estimate the
similarity of their neighborhoods from broadcast-size sketches.  We use
b-bit minwise hashing: per sample ``j`` a shared 64-bit hash ``h_j`` orders
the vertex universe; each node's fingerprint is the low ``b`` bits of the
minimum hash over its closed neighborhood.  Two nodes' fingerprints agree
with probability ``J + (1-J)·2^{-b}`` where ``J`` is the Jaccard similarity
of the closed neighborhoods — the standard estimator, which
:func:`repro.decomposition.minhash.estimate_edge_similarity` inverts.

Since ``b`` is constant, ``Θ(log n)`` samples fit into one ``O(log n)``-bit
broadcast, giving the O(ε⁻⁴) round count of Lemma 2.5.
"""

from __future__ import annotations

import numpy as np

__all__ = ["hash_u64", "hash_array_u64", "mix_u64", "minwise_fingerprints"]

_MASK64 = (1 << 64) - 1
# splitmix64 constants — a well-tested 64-bit mixer.
_GAMMA = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def hash_u64(value: int, salt: int = 0) -> int:
    """Deterministic 64-bit hash (splitmix64 finalizer) of ``value`` under
    ``salt``.  Pure-python scalar version of :func:`hash_array_u64`."""
    z = (int(value) + _GAMMA * (int(salt) + 1)) & _MASK64
    z = ((z ^ (z >> 30)) * _MIX1) & _MASK64
    z = ((z ^ (z >> 27)) * _MIX2) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def mix_u64(z: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer over an (any-shape) uint64 array.  The
    building block shared by :func:`hash_array_u64` and the counter-mode
    batch expansion in :mod:`repro.hashing.prg`."""
    with np.errstate(over="ignore"):
        z = (z ^ (z >> np.uint64(30))) * np.uint64(_MIX1)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(_MIX2)
        z = z ^ (z >> np.uint64(31))
    return z


def hash_array_u64(values: np.ndarray, salt: int = 0) -> np.ndarray:
    """Vectorized splitmix64 over an int array (returns uint64)."""
    with np.errstate(over="ignore"):
        z = values.astype(np.uint64) + np.uint64((_GAMMA * (int(salt) + 1)) & _MASK64)
    return mix_u64(z)


def minwise_fingerprints(
    indptr: np.ndarray,
    indices: np.ndarray,
    n: int,
    num_samples: int,
    bits: int,
    salt: int = 0,
) -> np.ndarray:
    """b-bit minwise fingerprints of the *closed* neighborhoods.

    Parameters
    ----------
    indptr, indices:
        CSR adjacency of the graph.
    num_samples:
        Number of independent hash functions (T).
    bits:
        Fingerprint width b (1..16).
    salt:
        Base salt; sample j uses ``salt*num_samples + j``.

    Returns
    -------
    ``(T, n)`` uint16 array of fingerprints.
    """
    if not 1 <= bits <= 16:
        raise ValueError("bits must be in [1, 16]")
    node_ids = np.arange(n, dtype=np.uint64)
    has_nbrs = np.diff(indptr) > 0
    fps = np.empty((num_samples, n), dtype=np.uint16)
    mask = np.uint64((1 << bits) - 1)
    for j in range(num_samples):
        h = hash_array_u64(node_ids, salt=salt * num_samples + j)
        # Min over the closed neighborhood N[v] = {v} ∪ N(v).
        m = h.copy()
        if indices.size:
            gathered = h[indices]
            mins = np.minimum.reduceat(gathered, indptr[:-1][has_nbrs])
            m[has_nbrs] = np.minimum(m[has_nbrs], mins)
        fps[j] = (m & mask).astype(np.uint16)
    return fps
