"""Tests for the BCStream model (§5): memory metering, streaming reduce,
prefix sums, palette lookup, and the audited pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bcstream.memory import MemoryExceeded, MemoryMeter
from repro.bcstream.palette_stream import streaming_palette_lookup
from repro.bcstream.pipeline import bcstream_coloring
from repro.bcstream.prefix_sums import streaming_prefix_sums
from repro.bcstream.stream import default_size_of, stream_reduce
from repro.config import ColoringConfig
from repro.graphs.generators import clique_blob_graph, gnp_graph


@pytest.fixture
def cfg():
    return ColoringConfig.practical()


class TestMemoryMeter:
    def test_alloc_and_peak(self):
        m = MemoryMeter()
        m.alloc(0, 5)
        m.alloc(0, 3)
        assert m.current[0] == 8
        assert m.peak_of(0) == 8

    def test_free_partial_and_full(self):
        m = MemoryMeter()
        m.alloc(1, 10)
        m.free(1, 4)
        assert m.current[1] == 6
        m.free(1)
        assert m.current[1] == 0
        assert m.peak_of(1) == 10

    def test_ceiling_enforced(self):
        m = MemoryMeter(ceiling_words=8)
        m.alloc(0, 8)
        with pytest.raises(MemoryExceeded):
            m.alloc(0, 1)

    def test_touch_is_transient(self):
        m = MemoryMeter()
        m.touch(2, 7)
        assert m.current[2] == 0
        assert m.peak_of(2) == 7

    def test_negative_alloc_rejected(self):
        with pytest.raises(ValueError):
            MemoryMeter().alloc(0, -1)

    def test_peak_words_across_nodes(self):
        m = MemoryMeter()
        m.touch(0, 3)
        m.touch(1, 9)
        assert m.peak_words() == 9


class TestStreamReduce:
    def test_sum_reduction(self):
        m = MemoryMeter()
        total = stream_reduce(0, range(10), 0, lambda acc, x: acc + x, m)
        assert total == 45
        assert m.peak_of(0) == 1

    def test_buffering_trips_ceiling(self):
        m = MemoryMeter(ceiling_words=5)
        with pytest.raises(MemoryExceeded):
            stream_reduce(0, range(100), [], lambda acc, x: acc + [x], m)

    def test_bounded_state_passes_ceiling(self):
        m = MemoryMeter(ceiling_words=5)
        out = stream_reduce(0, range(100), 0, lambda acc, x: max(acc, x), m)
        assert out == 99

    def test_size_of_scalars_and_arrays(self):
        assert default_size_of(3) == 1
        assert default_size_of(None) == 0
        assert default_size_of(np.zeros(10)) == 10
        assert default_size_of(np.zeros(128, dtype=bool)) == 2  # packed bits

    def test_size_of_containers(self):
        assert default_size_of([1, 2, 3]) == 4
        assert default_size_of({"a": 1}) == 3


class TestPrefixSums:
    def test_matches_cumsum(self, cfg):
        vals = np.array([3, 1, 4, 1, 5, 9, 2, 6])
        res = streaming_prefix_sums(vals, np.full(8, 16), cfg, n=1024)
        expected = np.concatenate([[0], np.cumsum(vals)[:-1]])
        assert np.array_equal(res.prefix, expected)

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_cumsum_property(self, values):
        cfg = ColoringConfig.practical()
        vals = np.array(values, dtype=np.int64)
        res = streaming_prefix_sums(vals, np.full(vals.size, 20), cfg, n=4096)
        expected = np.concatenate([[0], np.cumsum(vals)[:-1]])
        assert np.array_equal(res.prefix, expected)

    def test_iterations_loglog_scale(self, cfg):
        # k groups need O(log log k) merge iterations.
        for k, max_it in [(10, 2), (100, 3), (2000, 4)]:
            res = streaming_prefix_sums(
                np.ones(k, dtype=np.int64), np.full(k, 16), cfg, n=1 << 20
            )
            assert res.iterations <= max_it, k

    def test_rounds_constant_per_iteration(self, cfg):
        res = streaming_prefix_sums(
            np.ones(500, dtype=np.int64), np.full(500, 16), cfg, n=1 << 16
        )
        assert res.rounds <= 1 + 4 * res.iterations

    def test_memory_polylog(self, cfg):
        n = 1 << 16
        res = streaming_prefix_sums(
            np.ones(1000, dtype=np.int64), np.full(1000, 16), cfg, n=n
        )
        # Stage-0 ranges of z0 = C log n values dominate.
        assert res.peak_words <= 4 * np.log2(n) ** 2

    def test_empty_input(self, cfg):
        res = streaming_prefix_sums(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), cfg, n=100
        )
        assert res.prefix.size == 0
        assert res.rounds == 0

    def test_single_group(self, cfg):
        res = streaming_prefix_sums(np.array([7]), np.array([10]), cfg, n=100)
        assert res.prefix.tolist() == [0]

    def test_levels_hierarchy_consistent(self, cfg):
        vals = np.arange(50, dtype=np.int64)
        res = streaming_prefix_sums(vals, np.full(50, 16), cfg, n=4096)
        for level in res.levels:
            # Totals match the underlying values on each segment.
            for (s, e), tot in zip(level.boundaries, level.totals):
                assert tot == vals[s:e].sum()
        # Last level covers everything.
        assert res.levels[-1].boundaries[0] == (0, 50) or len(res.levels[-1].boundaries) == 1


class TestPaletteLookup:
    def test_matches_direct_indexing(self, cfg):
        rng = np.random.default_rng(0)
        free = rng.random(200) < 0.4
        direct = np.flatnonzero(free)
        queries = np.arange(direct.size)
        res = streaming_palette_lookup(free, queries, cfg, n=4096)
        assert np.array_equal(res.colors, direct)

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_masks_property(self, seed):
        cfg = ColoringConfig.practical()
        rng = np.random.default_rng(seed)
        free = rng.random(64) < 0.5
        direct = np.flatnonzero(free)
        if direct.size == 0:
            return
        q = rng.integers(0, direct.size, size=5)
        res = streaming_palette_lookup(free, q, cfg, n=1024)
        assert np.array_equal(res.colors, direct[q])

    def test_out_of_range_query(self, cfg):
        free = np.array([True, False, True])
        res = streaming_palette_lookup(free, np.array([5]), cfg, n=64)
        assert res.colors.tolist() == [-1]

    def test_memory_polylog(self, cfg):
        n = 1 << 14
        free = np.ones(4096, dtype=bool)
        res = streaming_palette_lookup(free, np.array([4000]), cfg, n=n)
        assert res.peak_words <= 4 * np.log2(n) ** 2


class TestBCStreamPipeline:
    def test_proper_complete_and_within_memory(self, cfg):
        g = clique_blob_graph(3, 40, 30, 10, seed=1)
        res = bcstream_coloring(g, cfg)
        assert res.coloring.proper and res.coloring.complete
        assert res.within_memory
        assert res.peak_words <= res.memory_ceiling_words

    def test_matches_bcongest_shape(self, cfg):
        g = gnp_graph(200, 0.05, seed=2)
        res = bcstream_coloring(g, cfg)
        assert res.coloring.rounds_total > 0
        assert res.coloring.max_message_bits <= cfg.bandwidth_bits(200)

    def test_phase_audit_reported(self, cfg):
        g = gnp_graph(100, 0.05, seed=3)
        res = bcstream_coloring(g, cfg)
        for phase in ("multitrial", "learn-palette", "prefix-sums"):
            assert phase in res.phase_memory_words

    def test_as_dict(self, cfg):
        g = gnp_graph(80, 0.05, seed=4)
        d = bcstream_coloring(g, cfg).as_dict()
        assert "peak_words" in d and "within_memory" in d
