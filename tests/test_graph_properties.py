"""Tests for graph property audits (repro.graphs.properties)."""

import numpy as np

from repro.graphs.properties import (
    GraphSummary,
    degeneracy_order,
    edge_density,
    summarize_graph,
)
from repro.graphs.generators import complete_graph, gnp_graph, ring_graph, star_graph
from repro.simulator.network import BroadcastNetwork


class TestSummary:
    def test_clique_summary(self):
        net = BroadcastNetwork(complete_graph(5))
        s = summarize_graph(net)
        assert s.n == 5 and s.m == 10
        assert s.delta == 4 and s.min_degree == 4
        assert s.density == 1.0

    def test_ring_summary(self):
        s = summarize_graph(BroadcastNetwork(ring_graph(10)))
        assert s.avg_degree == 2.0

    def test_as_dict(self):
        s = summarize_graph(BroadcastNetwork((3, [])))
        d = s.as_dict()
        assert d["m"] == 0 and d["density"] == 0.0

    def test_edge_density_bounds(self):
        assert edge_density(10, 45) == 1.0
        assert edge_density(10, 0) == 0.0
        assert edge_density(0, 0) == 0.0


class TestDegeneracyOrder:
    def test_is_permutation(self):
        net = BroadcastNetwork(gnp_graph(50, 0.1, seed=1))
        order = degeneracy_order(net)
        assert np.array_equal(np.sort(order), np.arange(50))

    def test_star_leaves_first(self):
        net = BroadcastNetwork(star_graph(10))
        order = degeneracy_order(net)
        # The hub has the largest back-degree; it must come last or near it.
        assert order[-1] == 0 or order[-2] == 0

    def test_degeneracy_bound_on_ring(self):
        # Ring degeneracy = 2: every prefix-removal step sees degree ≤ 2.
        net = BroadcastNetwork(ring_graph(12))
        order = degeneracy_order(net)
        removed = set()
        max_back = 0
        for v in order:
            back = sum(1 for u in net.neighbors(int(v)) if int(u) not in removed)
            max_back = max(max_back, back)
            removed.add(int(v))
        assert max_back <= 2

    def test_empty_graph(self):
        net = BroadcastNetwork((4, []))
        assert np.array_equal(np.sort(degeneracy_order(net)), np.arange(4))
