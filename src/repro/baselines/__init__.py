"""Baseline coloring algorithms the paper positions itself against.

* :mod:`repro.baselines.greedy` — the sequential greedy reference (not a
  distributed algorithm; correctness/color-count oracle).
* :mod:`repro.baselines.johansson` — the folklore O(log n)-round
  randomized BCONGEST algorithm [Joh99, Lub86, BEPS16] which the abstract
  cites as the previous best broadcast-based bound.
* :mod:`repro.baselines.luby` — Luby-style random-priority coloring,
  another classic O(log n) broadcast algorithm.
"""

from repro.baselines.greedy import greedy_coloring
from repro.baselines.johansson import johansson_coloring, BaselineResult
from repro.baselines.luby import luby_coloring

__all__ = [
    "greedy_coloring",
    "johansson_coloring",
    "luby_coloring",
    "BaselineResult",
]
