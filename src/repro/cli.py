"""Command-line interface: run the algorithm and its experiments without
writing Python.

    python -m repro color --family gnp --n 2000 --avg-degree 40
    python -m repro compare --family blobs --n 4096 --seeds 3
    python -m repro decompose --cliques 8 --size 56
    python -m repro churn --family mobile --n 2000 --batches 12 --churn 0.05
    python -m repro shard --family geometric --n 20000 --k 4 --strategy greedy
    python -m repro sweep --family blobs --min-exp 8 --max-exp 12 --workers 4
    python -m repro bench benchmarks/specs/quick.toml --workers 4 --out out.jsonl
    python -m repro serve --socket /tmp/repro.sock --snapshot-path /tmp/repro.npz
    python -m repro shard --n 20000 --k 4 --workers 4 --trace trace.json
    python -m repro trace export trace.jsonl --format perfetto
    python -m repro top --socket /tmp/repro.sock

Every subcommand prints a compact report; ``--json`` switches to
machine-readable output.  ``compare``, ``sweep`` and ``bench`` execute
through :mod:`repro.runner`: ``--workers`` shards trials over processes,
``--out`` persists per-trial results to a JSONL store, and re-runs
against the same store skip every already-computed trial (disable with
``--no-resume``, which truncates the store first).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

import numpy as np

from repro.config import ColoringConfig
from repro.core.algorithm import BroadcastColoring
from repro.decomposition.acd import decompose_distributed
from repro.decomposition.minhash import SKETCH_ENGINES
from repro.decomposition.validation import validate_decomposition
from repro.dynamic import DynamicColoring
from repro.graphs.families import CHURN_FAMILIES, FAMILIES, make_churn, make_graph
from repro.graphs.generators import planted_acd_graph
from repro.runner import (
    ParallelRunner,
    ResultStore,
    RunReport,
    TrialSpec,
    append_entry,
    fit_rounds,
    load_matrix,
    mean_by,
    mean_timings,
    summarize_payloads,
)
from repro.shard import (
    STRATEGIES,
    TRANSPORTS,
    ShardedColoring,
    ShardedDynamicColoring,
)
from repro.simulator.network import BroadcastNetwork

__all__ = ["main", "build_parser", "make_graph"]


def _json_safe(value: Any) -> Any:
    """Replace non-finite floats with None so --json output stays strict
    RFC 8259 (json.dumps would otherwise emit the literal ``NaN``)."""
    if isinstance(value, float) and not np.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


def _emit(report: dict[str, Any], as_json: bool) -> None:
    if as_json:
        print(json.dumps(_json_safe(report), indent=2, default=str))
        return
    for key, value in report.items():
        if isinstance(value, dict):
            print(f"{key}:")
            for k2, v2 in value.items():
                print(f"  {k2}: {v2}")
        else:
            print(f"{key}: {value}")


def _finish_trace(path: str | None) -> None:
    """Drain the armed tracer into the file ``--trace`` named: span
    JSONL when the path ends in ``.jsonl`` (re-exportable via ``repro
    trace export``), Chrome/Perfetto trace_event JSON otherwise."""
    if not path:
        return
    from repro import obs

    spans = obs.drain_spans()
    with open(path, "w", encoding="utf-8") as fp:
        if path.endswith(".jsonl"):
            obs.write_jsonl(spans, fp)
        else:
            obs.write_perfetto(spans, fp)
    print(f"trace: {len(spans)} span(s) -> {path}", file=sys.stderr)


def cmd_color(args: argparse.Namespace) -> int:
    graph = make_graph(args.family, args.n, args.avg_degree, args.seed)
    preset = (
        ColoringConfig.paper if args.paper_constants else ColoringConfig.practical
    )
    cfg = preset(seed=args.seed, obs_trace=bool(args.trace))
    result = BroadcastColoring(graph, cfg).run()
    _finish_trace(args.trace)
    report = result.as_dict()
    report["clique_summary"] = result.clique_summary
    _emit(report, args.json)
    return 0 if (result.proper and result.complete) else 1


def cmd_churn(args: argparse.Namespace) -> int:
    cfg = ColoringConfig.practical(
        seed=args.seed,
        dynamic_batches=args.batches,
        dynamic_churn_fraction=args.churn,
        dynamic_fallback_fraction=args.fallback_fraction,
        shard_k=args.k,
        shard_strategy=args.strategy,
        obs_trace=bool(args.trace),
    )
    schedule = make_churn(
        args.family,
        args.n,
        args.avg_degree,
        args.seed,
        batches=cfg.dynamic_batches,
        churn_fraction=cfg.dynamic_churn_fraction,
    )
    if args.k > 1:
        engine: DynamicColoring = ShardedDynamicColoring(schedule, cfg)
    else:
        engine = DynamicColoring(schedule, cfg)
    result = engine.run(schedule)
    _finish_trace(args.trace)
    summary = result.summary()
    report: dict[str, Any] = {
        "family": schedule.family,
        "n": engine.n,
        "batches": [r.as_dict() for r in result.reports],
        "summary": summary,
    }
    if isinstance(engine, ShardedDynamicColoring):
        report["routes"] = engine.route_summary()
    if not args.json:
        # Compact per-batch table instead of nested dict dumping.
        print(f"family: {schedule.family}  n: {engine.n}  "
              f"initial rounds: {result.initial_rounds}")
        print("batch  mode      conflicts  recolored  frac     delta  colors  rounds")
        for r in result.reports:
            print(
                f"{r.index:5d}  {r.mode:8s}  {r.conflicts:9d}  {r.recolored:9d}  "
                f"{r.recolored_fraction:7.4f}  {r.delta:5d}  {r.colors_used:6d}  "
                f"{r.rounds:6d}"
            )
        if "routes" in report:
            routes = report["routes"]
            print(
                f"sharded: k={routes['k']} strategy={routes['strategy']}  "
                f"shards/batch: {routes['mean_shards_touched']:.2f} mean "
                f"(max {routes['max_shards_touched']})  "
                f"reconcile: {routes['reconcile_touched']} nodes, "
                f"{routes['mean_sweeps']:.2f} sweeps/batch"
            )
        _emit({"summary": summary}, False)
    else:
        _emit(report, True)
    ok = (
        summary["proper_all"]
        and summary["complete_all"]
        and summary["colors_within_budget"]
    )
    return 0 if ok else 1


def cmd_shard(args: argparse.Namespace) -> int:
    cfg = ColoringConfig.practical(
        seed=args.seed,
        shard_k=args.k,
        shard_strategy=args.strategy,
        shard_transport=args.transport,
        conflict_victim=args.victim,
        obs_trace=bool(args.trace),
    )
    graph = make_graph(args.family, args.n, args.avg_degree, args.seed)
    result = ShardedColoring(graph, cfg, workers=args.workers).run()
    _finish_trace(args.trace)
    report = result.as_dict()
    if args.json:
        _emit(report, True)
    else:
        print(
            f"family: {args.family}  n: {result.n}  k: {result.k}  "
            f"strategy: {result.strategy}  delta: {result.delta}"
        )
        print("shard  interior     m_int  cut_edges  delta_i  colors  rounds")
        for r in result.shard_reports:
            print(
                f"{r.shard:5d}  {r.n_interior:8d}  {r.m_interior:8d}  "
                f"{r.cut_edges:9d}  {r.delta_interior:7d}  {r.colors_used:6d}  "
                f"{r.rounds:6d}"
            )
        if args.verbose:
            rows = [
                (r.shard, row)
                for r in result.shard_reports
                for row in r.reconcile_sweeps
            ]
            if rows:
                print("reconcile sweeps:")
                print("shard  sweep  victims  halo_nodes  repair_rounds   seconds")
                for shard, row in sorted(
                    rows, key=lambda item: (item[1]["sweep"], item[0])
                ):
                    print(
                        f"{shard:5d}  {row['sweep']:5d}  {row['victims']:7d}  "
                        f"{row['halo_nodes']:10d}  {row['repair_rounds']:13d}  "
                        f"{row['seconds']:8.4f}"
                    )
            else:
                print("reconcile sweeps: none (clean cut or k=1)")
        summary = {k: v for k, v in report.items() if k != "shards"}
        _emit(summary, False)
    ok = (
        result.proper
        and result.complete
        and result.unresolved_conflicts == 0
        and result.num_colors_used <= result.delta + 1
    )
    return 0 if ok else 1


def _make_runner(args: argparse.Namespace) -> ParallelRunner:
    """Build the trial runner from the shared --workers/--out/--resume flags."""
    store = None
    if args.out:
        store = ResultStore(args.out, resume=args.resume)

    def progress(done: int, total: int, result) -> None:
        tag = "cache" if result.cached else result.status
        print(
            f"[{done}/{total}] {tag:7s} {result.spec.algorithm:9s} "
            f"{result.spec.family} n={result.spec.n} seed={result.spec.seed}",
            file=sys.stderr,
        )

    return ParallelRunner(
        workers=args.workers,
        store=store,
        timeout_s=args.timeout,
        progress=progress if args.progress else None,
    )


def cmd_compare(args: argparse.Namespace) -> int:
    algorithms = ("broadcast", "johansson", "luby")
    specs = [
        TrialSpec(
            family=args.family, n=args.n, avg_degree=args.avg_degree,
            seed=seed, algorithm=algo,
        )
        for seed in range(args.seeds)
        for algo in algorithms
    ]
    run = _make_runner(args).run(specs)
    if run.failed:
        _report_failures(run)
        return 1
    by = {(p["seed"], p["algorithm"]): p for p in run.payloads()}
    rows = [
        {
            "seed": seed,
            "ours_rounds": by[(seed, "broadcast")]["rounds"],
            "johansson_rounds": by[(seed, "johansson")]["rounds"],
            "luby_rounds": by[(seed, "luby")]["rounds"],
            "ours_bits_per_node": round(by[(seed, "broadcast")]["bits_per_node"]),
        }
        for seed in range(args.seeds)
    ]
    report = {
        "family": args.family,
        "n": args.n,
        "runs": rows,
        "mean_ours": float(np.mean([r["ours_rounds"] for r in rows])),
        "mean_johansson": float(np.mean([r["johansson_rounds"] for r in rows])),
        "mean_luby": float(np.mean([r["luby_rounds"] for r in rows])),
        "trials": run.summary(),
    }
    _emit(report, args.json)
    return 0


def cmd_decompose(args: argparse.Namespace) -> int:
    cfg = ColoringConfig.practical(seed=args.seed, acd_sketch_engine=args.sketch_engine)
    g = planted_acd_graph(
        args.cliques, args.size, cfg.eps, sparse_nodes=args.sparse, seed=args.seed
    )
    net = BroadcastNetwork(g, bandwidth_bits=cfg.bandwidth_bits(g[0]))
    acd = decompose_distributed(net, cfg)
    rep = validate_decomposition(net, acd)
    report = {
        "n": net.n,
        "delta": net.delta,
        "cliques_found": acd.num_cliques,
        "cliques_planted": args.cliques,
        "sparse_nodes": int(acd.sparse_nodes.size),
        "rounds": acd.rounds_used,
        "sketch_engine": cfg.acd_sketch_engine,
        "sketch_seconds": round(net.metrics.phase_seconds.get("acd/sketch", 0.0), 4),
        "validator": rep.as_dict(),
    }
    _emit(report, args.json)
    return 0 if rep.ok else 1


def _report_failures(run: RunReport) -> None:
    for r in run.failed:
        detail = (r.error or "").strip().splitlines()
        tail = detail[-1] if detail else "unknown failure"
        print(
            f"trial failed ({r.status}): {r.spec.as_dict()}: {tail}",
            file=sys.stderr,
        )


def cmd_sweep(args: argparse.Namespace) -> int:
    ns = [2**k for k in range(args.min_exp, args.max_exp + 1)]
    specs = [
        TrialSpec(
            family=args.family, n=n, avg_degree=args.avg_degree,
            seed=seed, algorithm=algo,
        )
        for n in ns
        for seed in range(args.seeds)
        for algo in ("broadcast", "johansson")
    ]
    run = _make_runner(args).run(specs)
    if run.failed:
        _report_failures(run)
        return 1
    payloads = run.payloads()
    ours = mean_by([p for p in payloads if p["algorithm"] == "broadcast"], ["n"])
    base = mean_by([p for p in payloads if p["algorithm"] == "johansson"], ["n"])
    rows = [{"n": n, "ours": ours[(n,)], "johansson": base[(n,)]} for n in ns]
    report: dict[str, Any] = {"family": args.family, "rows": rows}
    if len(ns) >= 2:
        report["fit_ours"] = fit_rounds(payloads, where={"algorithm": "broadcast"}).best
        report["fit_johansson"] = fit_rounds(
            payloads, where={"algorithm": "johansson"}
        ).best
    report["trials"] = run.summary()
    _emit(report, args.json)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    try:
        specs = load_matrix(args.specfile)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot load spec matrix: {exc}")
    run = _make_runner(args).run(specs)
    if run.failed:
        _report_failures(run)
    payloads = run.payloads()
    groups = mean_by(payloads, ["family", "algorithm", "n"], value="rounds")
    rows = [
        {"family": fam, "algorithm": algo, "n": n, "mean_rounds": rounds}
        for (fam, algo, n), rounds in groups.items()
    ]
    fits = {}
    for fam in sorted({p["family"] for p in payloads}):
        for algo in sorted({p["algorithm"] for p in payloads}):
            fit = fit_rounds(payloads, where={"family": fam, "algorithm": algo})
            if fit is not None:
                fits[f"{fam}/{algo}"] = fit.best
    report: dict[str, Any] = {
        "specfile": str(args.specfile),
        "rows": rows,
        "summary": summarize_payloads(payloads),
        "trials": run.summary(),
    }
    if fits:
        report["fits"] = fits
    if args.track:
        timing_rows = [
            {"family": fam, "algorithm": algo, "n": n, "phase_seconds": phases}
            for (fam, algo, n), phases in mean_timings(run.results).items()
        ]
        entry = {
            "specfile": str(args.specfile),
            "trials": run.summary(),
            "timings": timing_rows,
        }
        append_entry(args.track, entry, label=args.track_label or "repro-bench")
        report["track"] = str(args.track)
    _emit(report, args.json)
    return 0 if not run.failed else 1


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.server import ColoringServer

    if (args.socket is None) == (args.port is None):
        raise SystemExit("repro serve: pass exactly one of --socket / --port")
    fault_plan = None
    if args.fault_plan:
        from repro.faults import FaultPlan

        try:
            fault_plan = FaultPlan.load(args.fault_plan)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"repro serve: cannot load --fault-plan: {exc}")
    cfg = ColoringConfig.practical(
        seed=args.seed,
        serve_queue_max=args.queue_max,
        serve_coalesce_max=args.coalesce_max,
        serve_snapshot_every=args.snapshot_every,
        serve_snapshot_keep=args.snapshot_keep,
        serve_idle_timeout_s=args.idle_timeout,
    )
    server = ColoringServer(
        cfg,
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        snapshot_path=args.snapshot_path,
        restore=args.restore,
        fault_plan=fault_plan,
        metrics_port=args.metrics_port,
    )
    asyncio.run(server.run_until_stopped())
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """One-shot Prometheus metrics: scrape a live daemon's registry over
    the framed protocol, or (no endpoint given) run a small local
    coloring with metrics armed and print what it measured."""
    if (args.socket is not None) and (args.port is not None):
        raise SystemExit("repro top: pass at most one of --socket / --port")
    if args.socket is not None or args.port is not None:
        from repro.serve.client import ServeClient

        with ServeClient(
            socket_path=args.socket, host=args.host, port=args.port, retries=3
        ) as client:
            text = client.metrics()
        sys.stdout.write(text)
        return 0
    from repro import obs

    obs.enable(tracing=False, metrics=True)
    graph = make_graph(args.family, args.n, args.avg_degree, args.seed)
    cfg = ColoringConfig.practical(seed=args.seed, obs_metrics=True)
    result = BroadcastColoring(graph, cfg).run()
    sys.stdout.write(obs.render_metrics())
    return 0 if (result.proper and result.complete) else 1


def cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace export``: convert a span JSONL (captured with
    ``--trace path.jsonl``) to Perfetto trace_event JSON for
    https://ui.perfetto.dev, or re-emit normalized JSONL."""
    from repro import obs

    try:
        with open(args.input, "r", encoding="utf-8") as fp:
            spans = obs.read_jsonl(fp)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        raise SystemExit(f"repro trace export: cannot read {args.input}: {exc}")
    out = args.out
    if out is None:
        base = args.input
        if base.endswith(".jsonl"):
            base = base[: -len(".jsonl")]
        out = base + (".perfetto.json" if args.format == "perfetto" else ".out.jsonl")
    with open(out, "w", encoding="utf-8") as fp:
        if args.format == "perfetto":
            obs.write_perfetto(spans, fp)
        else:
            obs.write_jsonl(spans, fp)
    print(f"{len(spans)} span(s) -> {out}", file=sys.stderr)
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults import FaultPlan, chaos_dynamic, chaos_serve, chaos_shard

    try:
        plan = FaultPlan.load(args.plan)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"repro chaos: cannot load --plan: {exc}")
    # Per-target defaults mirror the chaos_* signatures; explicit flags win.
    defaults = {
        "shard": ("geometric", 2000, 12.0, 7),
        "dynamic": ("gnp-churn", 800, 8.0, 3),
        "serve": ("gnp-churn", 300, 8.0, 5),
    }[args.target]
    family = args.family if args.family is not None else defaults[0]
    n = args.n if args.n is not None else defaults[1]
    avg_degree = args.avg_degree if args.avg_degree is not None else defaults[2]
    seed = args.seed if args.seed is not None else defaults[3]
    if args.target == "shard":
        report = chaos_shard(
            plan, family=family, n=n, avg_degree=avg_degree,
            seed=seed, k=args.k, workers=args.workers,
        )
    elif args.target == "dynamic":
        report = chaos_dynamic(
            plan, family=family, n=n, avg_degree=avg_degree,
            seed=seed, batches=args.batches,
        )
    else:
        report = chaos_serve(
            plan, family=family, n=n, avg_degree=avg_degree,
            seed=seed, batches=args.batches,
        )
    _emit(report, args.json)
    return 0 if report["oracle_ok"] else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Coloring Fast with Broadcasts (SPAA 2023) — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def family_arg(allowed: tuple[str, ...]):
        """Argparse type validating the family's *base* name, so
        'edgelist:PATH' passes while typos still get a clean usage
        error instead of a traceback (choices= can't express this)."""

        def check(value: str) -> str:
            from repro.graphs.families import split_family

            base, arg = split_family(value)
            if base not in allowed:
                raise argparse.ArgumentTypeError(
                    f"invalid family {value!r} (choose a base from {allowed})"
                )
            if base == "edgelist" and not arg:
                raise argparse.ArgumentTypeError(
                    "edgelist family needs a path: 'edgelist:/path/to/file'"
                )
            if base != "edgelist" and arg is not None:
                raise argparse.ArgumentTypeError(
                    f"family {base!r} takes no ':' argument (got {value!r})"
                )
            return value

        return check

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--family", default="gnp", type=family_arg(FAMILIES),
                       help=f"one of {FAMILIES}; 'edgelist:PATH' loads a "
                            "whitespace/CSV edge-list file")
        p.add_argument("--n", type=int, default=2000)
        p.add_argument("--avg-degree", type=float, default=40.0)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--json", action="store_true")

    def runner_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workers", type=int, default=1,
                       help="process-pool size (1 = run inline, the default)")
        p.add_argument("--out", default=None, metavar="PATH",
                       help="JSONL result store; cached trials are skipped on re-runs")
        p.add_argument("--resume", action=argparse.BooleanOptionalAction, default=True,
                       help="reuse results already in --out "
                            "(--no-resume truncates the store first)")
        p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                       help="per-trial wall-clock budget")
        p.add_argument("--progress", action=argparse.BooleanOptionalAction, default=False,
                       help="per-trial progress lines on stderr")

    def trace_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument("--trace", default=None, metavar="PATH",
                       help="record a span trace of the run: Perfetto "
                            "trace_event JSON (load at ui.perfetto.dev), "
                            "or span JSONL when PATH ends in .jsonl")

    p_color = sub.add_parser("color", help="run the full pipeline on one graph")
    common(p_color)
    trace_flag(p_color)
    p_color.add_argument("--paper-constants", action="store_true",
                         help="use the published constants instead of the practical preset")
    p_color.set_defaults(fn=cmd_color)

    p_cmp = sub.add_parser("compare", help="ours vs Johansson vs Luby across seeds")
    common(p_cmp)
    runner_flags(p_cmp)
    p_cmp.add_argument("--seeds", type=int, default=3)
    p_cmp.set_defaults(fn=cmd_compare)

    p_dec = sub.add_parser("decompose", help="run + validate the ε-ACD on a planted graph")
    p_dec.add_argument("--cliques", type=int, default=6)
    p_dec.add_argument("--size", type=int, default=56)
    p_dec.add_argument("--sparse", type=int, default=100)
    p_dec.add_argument("--seed", type=int, default=0)
    p_dec.add_argument("--sketch-engine", default="packed", choices=list(SKETCH_ENGINES),
                       help="ACD similarity estimator: packed SWAR words (default) "
                            "or the unpacked reference")
    p_dec.add_argument("--json", action="store_true")
    p_dec.set_defaults(fn=cmd_decompose)

    p_churn = sub.add_parser(
        "churn", help="maintain a coloring across a stream of topology updates"
    )
    p_churn.add_argument(
        "--family", default="gnp-churn",
        type=family_arg(CHURN_FAMILIES + FAMILIES),
        help=f"churn family {CHURN_FAMILIES} or any static family "
             f"{FAMILIES} (sliding-window churn over its initial graph)")
    p_churn.add_argument("--n", type=int, default=2000)
    p_churn.add_argument("--avg-degree", type=float, default=40.0)
    p_churn.add_argument("--seed", type=int, default=0)
    p_churn.add_argument("--batches", type=int, default=8,
                         help="number of update batches")
    p_churn.add_argument("--churn", type=float, default=0.05, metavar="FRACTION",
                         help="per-batch churn intensity (edge fraction / step scale)")
    p_churn.add_argument("--k", type=int, default=1,
                         help="shard count: 1 = single dynamic engine, >1 = "
                              "delta-routed sharded maintenance "
                              "(repro.shard.dynamic)")
    p_churn.add_argument("--strategy", default="contiguous",
                         choices=list(STRATEGIES),
                         help="partition strategy when --k > 1")
    p_churn.add_argument("--fallback-fraction", type=float, default=0.25,
                         help="conflicted fraction above which the engine "
                              "recolors from scratch (>=1 never, <0 always)")
    p_churn.add_argument("--json", action="store_true")
    trace_flag(p_churn)
    p_churn.set_defaults(fn=cmd_churn)

    p_shard = sub.add_parser(
        "shard", help="partitioned coloring: k shard workers + cut reconciliation"
    )
    common(p_shard)
    p_shard.add_argument("--k", type=int, default=4,
                         help="number of shards (1 = the single-process pipeline)")
    p_shard.add_argument("--strategy", default="contiguous", choices=list(STRATEGIES),
                         help="partition strategy (greedy = METIS-like balanced cut)")
    p_shard.add_argument("--workers", type=int, default=1,
                         help="process-pool size for shard interiors "
                              "(1 = color shards inline, same results)")
    p_shard.add_argument("--transport", default="shm", choices=list(TRANSPORTS),
                         help="how workers receive their shard: 'shm' attaches a "
                              "zero-copy shared-memory arena, 'pickle' ships the "
                              "view arrays through the pool pipe (same results)")
    p_shard.add_argument("--victim", default="id", choices=["id", "slack"],
                         help="conflict victim selection during reconciliation")
    p_shard.add_argument("--verbose", action="store_true",
                         help="also print the per-sweep reconcile table "
                              "(victims / halo / repair rounds / seconds per shard)")
    trace_flag(p_shard)
    p_shard.set_defaults(fn=cmd_shard)

    p_sweep = sub.add_parser("sweep", help="rounds vs n with growth-shape fits")
    common(p_sweep)
    runner_flags(p_sweep)
    p_sweep.add_argument("--min-exp", type=int, default=8)
    p_sweep.add_argument("--max-exp", type=int, default=12)
    p_sweep.add_argument("--seeds", type=int, default=2)
    p_sweep.set_defaults(fn=cmd_sweep)

    p_bench = sub.add_parser(
        "bench", help="replay a TOML/JSON spec matrix through the trial runner"
    )
    p_bench.add_argument("specfile", help="spec matrix file (see EXPERIMENTS.md)")
    p_bench.add_argument("--json", action="store_true")
    p_bench.add_argument("--track", default=None, metavar="PATH",
                         help="append mean per-phase wall-clock timings to the "
                              "BENCH_*.json trajectory at PATH (see EXPERIMENTS.md)")
    p_bench.add_argument("--track-label", default=None, metavar="LABEL",
                         help="entry label for --track (default: repro-bench)")
    runner_flags(p_bench)
    p_bench.set_defaults(fn=cmd_bench)

    p_serve = sub.add_parser(
        "serve",
        help="run the streaming coloring daemon (wire spec: docs/PROTOCOL.md, "
             "operations: docs/RUNBOOK.md)",
    )
    p_serve.add_argument("--socket", default=None, metavar="PATH",
                         help="listen on a unix socket at PATH")
    p_serve.add_argument("--port", type=int, default=None,
                         help="listen on TCP PORT instead of a unix socket")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address for --port (default 127.0.0.1; "
                              "the protocol has no auth — see the runbook)")
    p_serve.add_argument("--seed", type=int, default=0,
                         help="base config seed (load_graph can override)")
    p_serve.add_argument("--queue-max", type=int, default=64,
                         help="ingest-queue depth before update_batch "
                              "is rejected with queue-full")
    p_serve.add_argument("--coalesce-max", type=int, default=8,
                         help="max queued batches merged into one apply "
                              "(1 disables coalescing)")
    p_serve.add_argument("--snapshot-every", type=int, default=0,
                         help="snapshot every N applied batches "
                              "(0 = only on shutdown/request)")
    p_serve.add_argument("--snapshot-path", default=None, metavar="PATH",
                         help="where periodic/final snapshots go")
    p_serve.add_argument("--restore", default=None, metavar="PATH",
                         help="warm-start the engine from a snapshot")
    p_serve.add_argument("--snapshot-keep", type=int, default=2,
                         help="rotated snapshot generations kept on disk "
                              "(.1, .2, ... — restore falls back through them)")
    p_serve.add_argument("--idle-timeout", type=float, default=0.0,
                         metavar="SECONDS",
                         help="disconnect sessions idle for this long "
                              "(0 = never)")
    p_serve.add_argument("--fault-plan", default=None, metavar="PATH",
                         help="arm a TOML fault plan (chaos testing only; "
                              "see docs/RUNBOOK.md)")
    p_serve.add_argument("--metrics-port", type=int, default=None,
                         help="also serve the Prometheus text exposition "
                              "over HTTP on this loopback port "
                              "(GET /metrics; same text as the "
                              "'metrics' protocol verb)")
    p_serve.set_defaults(fn=cmd_serve)

    p_top = sub.add_parser(
        "top",
        help="one-shot Prometheus metrics: from a live daemon "
             "(--socket/--port) or a small local sample run",
    )
    p_top.add_argument("--socket", default=None, metavar="PATH",
                       help="scrape the daemon on this unix socket")
    p_top.add_argument("--port", type=int, default=None,
                       help="scrape the daemon on this TCP port")
    p_top.add_argument("--host", default="127.0.0.1")
    p_top.add_argument("--family", default="gnp", type=family_arg(FAMILIES),
                       help="local-run graph family (no daemon endpoint)")
    p_top.add_argument("--n", type=int, default=1000)
    p_top.add_argument("--avg-degree", type=float, default=20.0)
    p_top.add_argument("--seed", type=int, default=0)
    p_top.set_defaults(fn=cmd_top)

    p_trace = sub.add_parser(
        "trace", help="work with span traces captured via --trace"
    )
    trace_sub = p_trace.add_subparsers(dest="trace_cmd", required=True)
    p_texp = trace_sub.add_parser(
        "export",
        help="convert a span JSONL to Perfetto trace_event JSON "
             "(load at ui.perfetto.dev)",
    )
    p_texp.add_argument("input", help="span JSONL written by --trace path.jsonl")
    p_texp.add_argument("--out", default=None, metavar="PATH",
                        help="output path (default: derived from the input)")
    p_texp.add_argument("--format", default="perfetto",
                        choices=["perfetto", "jsonl"])
    p_texp.set_defaults(fn=cmd_trace)

    p_chaos = sub.add_parser(
        "chaos",
        help="run a workload under a fault plan and check the recovery "
             "oracle (byte-equal colors vs a fault-free run)",
    )
    p_chaos.add_argument("target", choices=["shard", "dynamic", "serve"],
                         help="which supervised subsystem to attack")
    p_chaos.add_argument("--plan", required=True, metavar="PATH",
                         help="TOML fault plan (see benchmarks/plans/faults_*.toml)")
    p_chaos.add_argument("--family", default=None,
                         help="graph family (default: geometric for shard, "
                              "gnp-churn for dynamic/serve)")
    p_chaos.add_argument("--n", type=int, default=None)
    p_chaos.add_argument("--avg-degree", type=float, default=None)
    p_chaos.add_argument("--seed", type=int, default=None)
    p_chaos.add_argument("--k", type=int, default=4,
                         help="shards (target=shard)")
    p_chaos.add_argument("--workers", type=int, default=2,
                         help="shard worker pool size (target=shard)")
    p_chaos.add_argument("--batches", type=int, default=8,
                         help="churn batches (target=dynamic/serve)")
    p_chaos.add_argument("--json", action="store_true")
    p_chaos.set_defaults(fn=cmd_chaos)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
