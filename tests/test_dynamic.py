"""Tests for the dynamic-graph subsystem (repro.dynamic + graphs.churn +
BroadcastNetwork.apply_delta).

The load-bearing guarantee (ISSUE 4 acceptance): after *every* batch of a
randomized churn schedule the maintained coloring is proper, complete on
active nodes, and uses at most Δ_t+1 colors — under repair-only,
fallback-forced, and mixed configurations.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ColoringConfig
from repro.dynamic import ChurnSchedule, DynamicColoring, UpdateBatch
from repro.graphs.churn import (
    blob_merge_split_churn,
    mobile_geometric_churn,
    sliding_window_churn,
)
from repro.graphs.families import (
    CHURN_FAMILIES,
    load_edgelist,
    make_churn,
    make_graph,
)
from repro.graphs.generators import gnp_graph
from repro.simulator.network import BroadcastNetwork


def edge_keys(net: BroadcastNetwork) -> set[tuple[int, int]]:
    return {tuple(e) for e in net.undirected_edges().tolist()}


# ----------------------------------------------------------------------
# UpdateBatch / ChurnSchedule
# ----------------------------------------------------------------------
class TestEvents:
    def test_batch_normalizes_arrays(self):
        b = UpdateBatch(insert_edges=[(0, 1)], arrivals=[3, 3, 2])
        assert b.insert_edges.shape == (1, 2)
        assert b.arrivals.tolist() == [2, 3]
        assert b.delete_edges.shape == (0, 2)
        assert not b.is_empty

    def test_empty_batch(self):
        assert UpdateBatch().is_empty

    def test_arrive_and_depart_conflict(self):
        with pytest.raises(ValueError):
            UpdateBatch(arrivals=[1], departures=[1])

    def test_validate_range(self):
        with pytest.raises(ValueError):
            UpdateBatch(insert_edges=[(0, 9)]).validate(4)

    def test_self_loop_rejected_at_construction(self):
        """Regression (ISSUE 10 satellite): self-loops used to survive
        until apply_delta silently dropped them — or reach apply_delta
        unfiltered through the single-batch coalesce fast path.  They
        must die in __post_init__, for both edge directions and both
        edge fields."""
        with pytest.raises(ValueError, match="self-loop"):
            UpdateBatch(insert_edges=[(3, 3)])
        with pytest.raises(ValueError, match="self-loop"):
            UpdateBatch(delete_edges=[(0, 1), (2, 2)])
        with pytest.raises(ValueError, match="self-loop"):
            UpdateBatch.from_payload({"insert_edges": [[5, 5]]})

    def test_schedule_validates_initial_edges(self):
        """Regression (ISSUE 10 satellite): a bad initial graph (e.g. an
        edgelist:PATH with a self-loop or out-of-range id) used to fail
        opaquely deep inside the engine; the schedule must name the
        offending edge at build time."""
        batches = (UpdateBatch(insert_edges=[(0, 1)]),)
        with pytest.raises(ValueError, match=r"initial edge 1 .*self-loop"):
            ChurnSchedule(
                initial=(4, np.array([[0, 1], [2, 2]])), batches=batches
            )
        with pytest.raises(ValueError, match=r"initial edge 0 .*out of range"):
            ChurnSchedule(initial=(4, np.array([[0, 9]])), batches=batches)
        with pytest.raises(ValueError, match="initial edges"):
            ChurnSchedule(initial=(4, np.array([[0, 1, 2]])), batches=batches)

    def test_schedule_validates_batches(self):
        with pytest.raises(ValueError):
            ChurnSchedule(
                initial=(4, np.empty((0, 2), dtype=np.int64)),
                batches=(UpdateBatch(departures=[7]),),
            )

    def test_schedule_counts(self):
        sched = ChurnSchedule(
            initial=(4, np.array([[0, 1]])),
            batches=(
                UpdateBatch(insert_edges=[(1, 2)]),
                UpdateBatch(delete_edges=[(0, 1)], departures=[3]),
            ),
        )
        assert sched.num_batches == 2
        totals = sched.total_counts()
        assert totals["insert_edges"] == 1
        assert totals["delete_edges"] == 1
        assert totals["departures"] == 1


# ----------------------------------------------------------------------
# apply_delta: the sorted-merge substrate
# ----------------------------------------------------------------------
class TestApplyDelta:
    def test_insert_and_delete(self):
        net = BroadcastNetwork((4, [(0, 1), (1, 2)]))
        rep = net.apply_delta(insert_edges=[(2, 3)], delete_edges=[(0, 1)])
        assert rep.edges_added == 1 and rep.edges_removed == 1
        assert edge_keys(net) == {(1, 2), (2, 3)}
        assert net.degrees.tolist() == [0, 1, 2, 1]
        assert net.delta == 2

    def test_noop_changes_ignored(self):
        net = BroadcastNetwork((4, [(0, 1)]))
        rep = net.apply_delta(insert_edges=[(0, 1)], delete_edges=[(2, 3)])
        assert rep.edges_added == 0 and rep.edges_removed == 0
        assert rep.ignored == 2
        assert rep.messages == 0 and rep.rounds == 0

    def test_same_batch_delete_then_insert_is_noop(self):
        net = BroadcastNetwork((3, [(0, 1)]))
        net.apply_delta(insert_edges=[(0, 1)], delete_edges=[(0, 1)])
        assert edge_keys(net) == {(0, 1)}

    def test_out_of_range_raises(self):
        net = BroadcastNetwork((3, [(0, 1)]))
        with pytest.raises(ValueError):
            net.apply_delta(insert_edges=[(0, 9)])

    def test_accounting_charged(self):
        net = BroadcastNetwork((8, [(0, 1), (2, 3)]))
        before = net.metrics.total_rounds
        rep = net.apply_delta(insert_edges=[(4, 5), (4, 6)], delete_edges=[(0, 1)])
        # 3 changed edges → 6 directed announcements; node 4 has 2 changes
        # incident, so the batch pipelines over 2 rounds.
        assert rep.messages == 6
        assert rep.rounds == 2
        assert net.metrics.total_rounds - before == 2
        assert net.metrics.phases["dynamic/delta"].messages == 6

    @given(
        st.integers(min_value=2, max_value=14),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_fresh_build(self, n, data):
        """Property: apply_delta's CSR equals a from-scratch build of the
        edited edge set, for random graphs and random deltas."""
        pair_st = st.tuples(
            st.integers(min_value=0, max_value=n - 1),
            st.integers(min_value=0, max_value=n - 1),
        )
        initial = data.draw(st.lists(pair_st, max_size=25))
        ins = data.draw(st.lists(pair_st, max_size=10))
        # Deletions: a mix of live edges and arbitrary pairs.
        dels = data.draw(st.lists(pair_st, max_size=10))
        net = BroadcastNetwork((n, initial))
        net.apply_delta(np.array(ins).reshape(-1, 2), np.array(dels).reshape(-1, 2))

        keys = {(min(u, v), max(u, v)) for u, v in initial if u != v}
        keys -= {(min(u, v), max(u, v)) for u, v in dels if u != v}
        keys |= {(min(u, v), max(u, v)) for u, v in ins if u != v}
        fresh = BroadcastNetwork((n, np.array(sorted(keys)).reshape(-1, 2)))
        assert np.array_equal(net.indptr, fresh.indptr)
        assert np.array_equal(net.indices, fresh.indices)
        assert np.array_equal(net.edge_src, fresh.edge_src)
        assert np.array_equal(net.undirected_edges(), fresh.undirected_edges())
        assert net.delta == fresh.delta and net.m == fresh.m

    def test_silent_nodes_not_charged(self):
        """A powered-down (departing) node cannot announce: only live
        endpoints of its incident edges are charged."""
        net = BroadcastNetwork((6, [(0, 1), (0, 2), (0, 3)]))
        rep = net.apply_delta(
            delete_edges=[(0, 1), (0, 2), (0, 3)], silent_nodes=[0]
        )
        # Node 0 would have announced 3 changes (3 rounds); silenced, the
        # three live neighbors announce one change each, in one round.
        assert rep.messages == 3
        assert rep.rounds == 1

    def test_rejected_delta_leaves_network_untouched(self):
        """A bandwidth-rejected batch must not half-apply: CSR, Δ and
        metrics all stay at their pre-call state."""
        from repro.simulator.network import BandwidthExceeded

        net = BroadcastNetwork((2048, [(0, 1)]), bandwidth_bits=4)
        rounds_before = net.metrics.total_rounds
        with pytest.raises(BandwidthExceeded):
            net.apply_delta(insert_edges=[(1, 2)])
        assert edge_keys(net) == {(0, 1)}
        assert net.delta == 1
        assert net.metrics.total_rounds == rounds_before

    def test_adjacency_cache_invalidated(self):
        net = BroadcastNetwork((3, [(0, 1)]))
        assert net.has_edge(0, 1)
        net.apply_delta(insert_edges=[(1, 2)], delete_edges=[(0, 1)])
        assert not net.has_edge(0, 1)
        assert net.has_edge(1, 2)


# ----------------------------------------------------------------------
# Churn generators
# ----------------------------------------------------------------------
class TestChurnGenerators:
    @pytest.mark.parametrize("family", CHURN_FAMILIES)
    def test_families_produce_valid_schedules(self, family):
        sched = make_churn(family, 300, 16.0, seed=2, batches=5)
        assert sched.num_batches == 5
        assert sched.n >= 200
        for batch in sched:
            batch.validate(sched.n)

    @pytest.mark.parametrize("family", CHURN_FAMILIES + ("gnp", "blobs"))
    def test_deterministic(self, family):
        a = make_churn(family, 200, 12.0, seed=7, batches=4)
        b = make_churn(family, 200, 12.0, seed=7, batches=4)
        assert np.array_equal(a.initial[1], b.initial[1])
        for x, y in zip(a, b):
            assert np.array_equal(x.insert_edges, y.insert_edges)
            assert np.array_equal(x.delete_edges, y.delete_edges)
            assert np.array_equal(x.arrivals, y.arrivals)
            assert np.array_equal(x.departures, y.departures)

    def test_schedules_are_self_consistent(self):
        """Deletions name live edges, insertions name absent ones — for
        every generator, tracked against an applied network."""
        for family in CHURN_FAMILIES:
            sched = make_churn(family, 240, 14.0, seed=3, batches=6)
            net = BroadcastNetwork(sched.initial)
            for batch in sched:
                live = edge_keys(net)
                dep = set(batch.departures.tolist())
                for u, v in batch.delete_edges.tolist():
                    assert (min(u, v), max(u, v)) in live, (family, (u, v))
                for u, v in batch.insert_edges.tolist():
                    assert (min(u, v), max(u, v)) not in live, (family, (u, v))
                # Engine-side departure expansion, mirrored here.
                dels = batch.delete_edges
                if dep:
                    und = net.undirected_edges()
                    mask = np.isin(und[:, 0], list(dep)) | np.isin(
                        und[:, 1], list(dep)
                    )
                    dels = np.concatenate([dels.reshape(-1, 2), und[mask]])
                net.apply_delta(batch.insert_edges, dels)

    def test_sliding_window_keeps_edge_count(self):
        sched = sliding_window_churn(gnp_graph(400, 0.05, seed=1), 6, 0.1, seed=2)
        net = BroadcastNetwork(sched.initial)
        m0 = net.m
        for batch in sched:
            net.apply_delta(batch.insert_edges, batch.delete_edges)
        assert abs(net.m - m0) <= 0.05 * m0

    def test_zero_churn_is_a_true_control(self):
        """churn_fraction=0 must produce genuinely empty batches (the
        no-churn baseline), not one resampled edge per batch."""
        sched = sliding_window_churn(gnp_graph(100, 0.1, seed=1), 4, 0.0, seed=2)
        assert all(b.is_empty for b in sched)
        res = DynamicColoring(sched).run(sched)
        assert res.summary()["mean_recolored_fraction"] == 0.0

    def test_mobile_handoff_cycle(self):
        sched = mobile_geometric_churn(200, 0.1, 8, step=0.01, seed=5,
                                       handoff_fraction=0.05)
        departures = sum(b.departures.size for b in sched)
        arrivals = sum(b.arrivals.size for b in sched)
        assert departures > 0
        assert 0 < arrivals <= departures

    def test_blob_merge_then_split_restores_edges(self):
        sched = blob_merge_split_churn(4, 10, 2, seed=1)
        net = BroadcastNetwork(sched.initial)
        before = edge_keys(net)
        for batch in sched:
            net.apply_delta(batch.insert_edges, batch.delete_edges)
        assert edge_keys(net) == before  # one merge + its split

    def test_static_family_gets_sliding_churn(self):
        sched = make_churn("geometric", 150, 10.0, seed=4, batches=3)
        assert sched.family == "geometric+sliding"
        assert sched.num_batches == 3

    def test_unknown_family_raises(self):
        with pytest.raises(ValueError):
            make_churn("nope", 100, 8.0, seed=0)


# ----------------------------------------------------------------------
# The incremental engine: the per-batch invariant
# ----------------------------------------------------------------------
def assert_invariants(engine: DynamicColoring, report) -> None:
    c = engine.colors
    net = engine.net
    # Proper on every edge; complete and within budget on active nodes.
    src, dst = net.edge_src, net.indices
    assert not ((c[src] >= 0) & (c[src] == c[dst])).any()
    assert (c[engine.active] >= 0).all()
    assert (c[~engine.active] < 0).all()
    assert report.proper and report.complete
    assert report.colors_used <= net.delta + 1
    assert report.colors_used <= report.delta + 1


ENGINE_CONFIGS = {
    "repair-only": {"dynamic_fallback_fraction": 1.5},
    "fallback-forced": {"dynamic_fallback_fraction": -1.0},
    "mixed": {"dynamic_fallback_fraction": 0.05},
    "trycolor-repair": {
        "dynamic_fallback_fraction": 1.5,
        "dynamic_repair_use_multitrial": False,
    },
}


class TestDynamicColoring:
    @pytest.mark.parametrize("mode", sorted(ENGINE_CONFIGS))
    @pytest.mark.parametrize("family", CHURN_FAMILIES)
    def test_invariant_after_every_batch(self, family, mode):
        """The acceptance property: proper + ≤ Δ_t+1 colors after every
        batch, per churn family × engine policy."""
        cfg = ColoringConfig.practical(seed=9, **ENGINE_CONFIGS[mode])
        sched = make_churn(family, 260, 14.0, seed=11, batches=5)
        engine = DynamicColoring(sched, cfg)
        for batch in sched:
            report = engine.apply_batch(batch)
            assert_invariants(engine, report)
            if mode == "fallback-forced":
                assert report.mode == "fallback"
            if mode in ("repair-only", "trycolor-repair"):
                assert report.mode == "repair"

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=8, deadline=None)
    def test_invariant_randomized_schedules(self, seed):
        """Hypothesis-driven churn: random family, random seed, random
        intensity — the invariant must hold after every batch."""
        rng = np.random.default_rng(seed)
        family = CHURN_FAMILIES[seed % len(CHURN_FAMILIES)]
        churn = float(rng.uniform(0.01, 0.25))
        cfg = ColoringConfig.practical(
            seed=seed, dynamic_fallback_fraction=float(rng.uniform(0.0, 1.2))
        )
        sched = make_churn(
            family, 180, 12.0, seed=seed, batches=4, churn_fraction=churn
        )
        engine = DynamicColoring(sched, cfg)
        for batch in sched:
            assert_invariants(engine, engine.apply_batch(batch))

    def test_departure_clears_color_and_edges(self):
        sched = ChurnSchedule(
            initial=gnp_graph(60, 0.2, seed=1),
            batches=(UpdateBatch(departures=[5]),),
        )
        engine = DynamicColoring(sched)
        report = engine.apply_batch(sched.batches[0])
        assert engine.colors[5] == -1
        assert not engine.active[5]
        assert engine.net.degrees[5] == 0
        assert_invariants(engine, report)

    def test_arrival_gets_colored(self):
        sched = ChurnSchedule(
            initial=gnp_graph(60, 0.2, seed=1),
            batches=(
                UpdateBatch(departures=[5]),
                UpdateBatch(arrivals=[5], insert_edges=[(5, 0), (5, 1), (5, 2)]),
            ),
        )
        engine = DynamicColoring(sched)
        engine.apply_batch(sched.batches[0])
        report = engine.apply_batch(sched.batches[1])
        assert engine.colors[5] >= 0
        assert engine.active[5]
        assert_invariants(engine, report)

    def test_delta_shrink_recolors_out_of_palette(self):
        """Splitting the merged blob shrinks Δ; colors above the new
        budget must be re-assigned (the out-of-range detection path)."""
        sched = blob_merge_split_churn(3, 12, 2, seed=2)
        engine = DynamicColoring(
            sched, ColoringConfig.practical(dynamic_fallback_fraction=1.5)
        )
        merge = engine.apply_batch(sched.batches[0])
        split = engine.apply_batch(sched.batches[1])
        assert split.delta < merge.delta
        assert_invariants(engine, split)

    def test_quick_matrix_recolors_under_20_percent(self):
        """The ISSUE acceptance bound on the quick matrix sizes."""
        for family in CHURN_FAMILIES:
            sched = make_churn(family, 512, 16.0, seed=0, batches=6)
            res = DynamicColoring(sched).run(sched)
            s = res.summary()
            assert s["fallbacks"] == 0, (family, s)
            assert s["mean_recolored_fraction"] < 0.20, (family, s)

    def test_report_round_and_bit_accounting(self):
        sched = make_churn("gnp-churn", 200, 12.0, seed=1, batches=3)
        engine = DynamicColoring(sched)
        total_before = engine.net.metrics.total_rounds
        res = engine.run(sched)
        charged = engine.net.metrics.total_rounds - total_before
        assert sum(r.rounds for r in res.reports) == charged
        assert all(r.total_bits > 0 for r in res.reports)
        assert engine.net.metrics.phases["dynamic/delta"].rounds > 0
        assert engine.net.metrics.phases["dynamic/repair"].rounds > 0

    def test_repair_touches_fewer_rounds_than_fallback(self):
        sched = make_churn("gnp-churn", 400, 16.0, seed=3, batches=4,
                           churn_fraction=0.02)
        repair = DynamicColoring(
            sched, ColoringConfig.practical(seed=1, dynamic_fallback_fraction=1.5)
        ).run(sched)
        full = DynamicColoring(
            sched, ColoringConfig.practical(seed=1, dynamic_fallback_fraction=-1.0)
        ).run(sched)
        assert repair.summary()["mean_recolored_fraction"] < 0.2
        assert full.summary()["mean_recolored_fraction"] == 1.0
        assert (
            repair.summary()["total_rounds"] < full.summary()["total_rounds"]
        )


# ----------------------------------------------------------------------
# The edgelist family (satellite)
# ----------------------------------------------------------------------
class TestEdgelistFamily:
    def test_loads_whitespace_file(self, tmp_path):
        f = tmp_path / "snap.txt"
        f.write_text("# a comment\n0 1\n1 2   # trailing\n\n2 3\n")
        n, edges = load_edgelist(f)
        assert n == 4
        assert edges.tolist() == [[0, 1], [1, 2], [2, 3]]

    def test_loads_csv_file(self, tmp_path):
        f = tmp_path / "snap.csv"
        f.write_text("0,1\n1,2\n")
        n, edges = load_edgelist(f)
        assert n == 3 and edges.shape == (2, 2)

    def test_make_graph_family_arg(self, tmp_path):
        f = tmp_path / "g.txt"
        f.write_text("0 1\n1 2\n0 2\n")
        net = BroadcastNetwork(make_graph(f"edgelist:{f}", 0, 0.0, seed=0))
        assert net.n == 3 and net.m == 3

    def test_missing_path_raises(self):
        with pytest.raises(ValueError):
            make_graph("edgelist", 10, 5.0, seed=0)

    def test_bad_line_raises(self, tmp_path):
        f = tmp_path / "bad.txt"
        f.write_text("0\n")
        with pytest.raises(ValueError):
            load_edgelist(f)

    def test_self_loop_names_offending_line(self, tmp_path):
        """Regression (ISSUE 10 satellite): a self-loop in an edgelist
        snapshot must fail at load with the file:line of the bad edge,
        not opaquely downstream."""
        f = tmp_path / "loopy.txt"
        f.write_text("0 1\n# comment\n3 3\n1 2\n")
        with pytest.raises(ValueError, match=r"loopy\.txt:3: self-loop edge 3 3"):
            load_edgelist(f)

    def test_explicit_n_keeps_isolated_tail(self, tmp_path):
        f = tmp_path / "g.txt"
        f.write_text("0 1\n")
        n, _ = load_edgelist(f, n=10)
        assert n == 10
        with pytest.raises(ValueError):
            load_edgelist(f, n=1)

    def test_spec_key_tracks_file_contents(self, tmp_path):
        """Editing the snapshot behind an edgelist spec must miss the
        result store: the content hash folds in the file bytes."""
        from repro.runner.spec import TrialSpec

        f = tmp_path / "g.txt"
        f.write_text("0 1\n1 2\n")
        spec = TrialSpec(family=f"edgelist:{f}", n=3, avg_degree=1.0)
        key_before = spec.key
        f.write_text("0 1\n1 2\n0 2\n")
        # The instance's key is cached (stable within a run, even if the
        # file changes mid-run); a *fresh* spec — what a new run builds —
        # sees the new contents and misses.
        assert spec.key == key_before
        fresh = TrialSpec(family=f"edgelist:{f}", n=3, avg_degree=1.0)
        assert fresh.key != key_before
        f.unlink()
        missing = TrialSpec(family=f"edgelist:{f}", n=3, avg_degree=1.0)
        assert missing.key not in (key_before, fresh.key)

    def test_edited_edgelist_misses_store(self, tmp_path):
        """End to end: a persisted result is served from the store while
        the snapshot file is unchanged and recomputed after an edit (the
        loaded record keeps its at-compute-time key)."""
        from repro.runner.runner import ParallelRunner
        from repro.runner.spec import TrialSpec
        from repro.runner.store import ResultStore

        f = tmp_path / "g.txt"
        f.write_text("0 1\n1 2\n2 0\n")
        spec = TrialSpec(family=f"edgelist:{f}", n=3, avg_degree=2.0,
                         algorithm="greedy")
        path = tmp_path / "store.jsonl"
        ParallelRunner(store=ResultStore(path)).run([spec])
        hit = ResultStore(path).lookup(spec)
        assert hit is not None and hit.cached
        f.write_text("0 1\n1 2\n2 3\n3 0\n")
        # A new run constructs fresh specs; the edited file must miss.
        fresh = TrialSpec(family=f"edgelist:{f}", n=3, avg_degree=2.0,
                          algorithm="greedy")
        assert ResultStore(path).lookup(fresh) is None

    def test_edgelist_seeds_churn_and_runner(self, tmp_path):
        from repro.runner.execute import run_trial
        from repro.runner.spec import TrialSpec

        f = tmp_path / "real.txt"
        rng = np.random.default_rng(0)
        n, edges = gnp_graph(120, 0.1, seed=8)
        lines = "\n".join(f"{u} {v}" for u, v in edges.tolist())
        f.write_text(lines + "\n")
        # Static run and churn run both accept the file-backed family.
        sched = make_churn(f"edgelist:{f}", 0, 0.0, seed=1, batches=3)
        res = DynamicColoring(sched).run(sched)
        assert res.summary()["proper_all"]
        spec = TrialSpec(family=f"edgelist:{f}", n=120, avg_degree=0.0,
                         algorithm="broadcast")
        result = run_trial(spec)
        assert result.ok and result.payload["proper"]


# ----------------------------------------------------------------------
# Runner integration
# ----------------------------------------------------------------------
class TestRunnerIntegration:
    def test_churn_family_requires_dynamic(self):
        from repro.runner.spec import TrialSpec

        with pytest.raises(ValueError):
            TrialSpec(family="gnp-churn", algorithm="broadcast")

    def test_dynamic_trial_payload(self):
        from repro.runner.execute import run_trial
        from repro.runner.spec import TrialSpec

        spec = TrialSpec(family="mobile", n=220, avg_degree=12.0, seed=2,
                         algorithm="dynamic")
        result = run_trial(spec)
        assert result.ok
        p = result.payload
        assert p["proper"] and p["complete"] and p["colors_within_budget"]
        assert p["batches"] == 8  # cfg.dynamic_batches default
        assert 0.0 <= p["mean_recolored_fraction"] <= 1.0
        assert "dynamic/repair" in result.timings or p["fallbacks"] > 0

    def test_dynamic_trial_honors_overrides(self):
        from repro.runner.execute import run_trial
        from repro.runner.spec import TrialSpec

        spec = TrialSpec(
            family="gnp-churn", n=180, avg_degree=10.0, seed=1,
            algorithm="dynamic",
            overrides=(("dynamic_batches", 3),
                       ("dynamic_fallback_fraction", -1.0)),
        )
        result = run_trial(spec)
        assert result.ok
        assert result.payload["batches"] == 3
        assert result.payload["fallbacks"] == 3

    def test_dynamic_trial_deterministic(self):
        from repro.runner.execute import run_trial
        from repro.runner.spec import TrialSpec

        spec = TrialSpec(family="blobs-churn", n=160, avg_degree=16.0,
                         seed=4, algorithm="dynamic")
        a, b = run_trial(spec), run_trial(spec)
        assert a.payload == b.payload


# ----------------------------------------------------------------------
# Conflict victim selection (the conflict_victim knob, ISSUE 5 satellite)
# ----------------------------------------------------------------------
class TestConflictVictims:
    def test_id_policy_picks_larger_endpoint(self):
        from repro.dynamic import conflict_victims

        net = BroadcastNetwork((4, [(0, 1), (1, 2), (2, 3)]))
        colors = np.array([0, 0, 1, -1], dtype=np.int64)  # (0,1) mono
        victims = conflict_victims(net, colors, policy="id")
        assert victims.tolist() == [False, True, False, False]

    def test_slack_policy_uncolors_roomier_endpoint(self):
        from repro.dynamic import conflict_victims

        # Edge (0,1) monochromatic with color 0; node 1 also sees a
        # neighbor colored 1, so Ψ(1) = {2} while Ψ(0) = {1, 2}: node 0
        # has the larger palette and is the victim under "slack" (the
        # constrained endpoint keeps its color), while "id" blames node 1.
        net = BroadcastNetwork((3, [(0, 1), (1, 2)]))
        colors = np.array([0, 0, 1], dtype=np.int64)
        slack = conflict_victims(net, colors, policy="slack", num_colors=3)
        assert slack.tolist() == [True, False, False]
        by_id = conflict_victims(net, colors, policy="id", num_colors=3)
        assert by_id.tolist() == [False, True, False]

    def test_slack_ties_fall_back_to_larger_id(self):
        from repro.dynamic import conflict_victims

        net = BroadcastNetwork((2, [(0, 1)]))
        colors = np.array([0, 0], dtype=np.int64)
        victims = conflict_victims(net, colors, policy="slack", num_colors=2)
        assert victims.tolist() == [False, True]

    def test_unknown_policy_raises(self):
        from repro.dynamic import conflict_victims

        net = BroadcastNetwork((2, [(0, 1)]))
        with pytest.raises(ValueError):
            conflict_victims(net, np.array([0, 0]), policy="degree")

    def test_no_mono_edges_no_victims(self):
        from repro.dynamic import conflict_victims

        net = BroadcastNetwork((3, [(0, 1), (1, 2)]))
        assert not conflict_victims(net, np.array([0, 1, 0])).any()

    @pytest.mark.parametrize("policy", ["id", "slack"])
    def test_invariant_holds_under_both_policies(self, policy):
        sched = make_churn("blobs-churn", 200, 16.0, seed=3, batches=4)
        cfg = ColoringConfig.practical(seed=1, conflict_victim=policy)
        summary = DynamicColoring(sched, cfg).run(sched).summary()
        assert summary["proper_all"] and summary["complete_all"]
        assert summary["colors_within_budget"]

    def test_slack_policy_never_increases_repair_rounds_on_blobs_churn(self):
        """The ROADMAP claim behind the knob: preferring the endpoint with
        more palette headroom as victim shrinks (or at worst matches) the
        repair-round bill on dense churn."""
        totals = {}
        for policy in ("id", "slack"):
            rounds = 0
            for seed in (0, 1, 2):
                sched = make_churn("blobs-churn", 400, 16.0, seed=seed, batches=5)
                cfg = ColoringConfig.practical(
                    seed=7, conflict_victim=policy,
                    dynamic_fallback_fraction=1.5,
                )
                res = DynamicColoring(sched, cfg).run(sched)
                summary = res.summary()
                assert summary["proper_all"] and summary["fallbacks"] == 0
                rounds += summary["total_rounds"]
            totals[policy] = rounds
        assert totals["slack"] <= totals["id"], totals
