"""Tests for the hierarchical seeded RNG (repro.simulator.rng)."""

import numpy as np

from repro.simulator.rng import SeedSequencer


class TestDeterminism:
    def test_same_key_same_stream(self):
        a = SeedSequencer(7).stream("x", 1).random(5)
        b = SeedSequencer(7).stream("x", 1).random(5)
        assert np.array_equal(a, b)

    def test_different_keys_differ(self):
        a = SeedSequencer(7).stream("x", 1).random(5)
        b = SeedSequencer(7).stream("x", 2).random(5)
        assert not np.array_equal(a, b)

    def test_different_roots_differ(self):
        a = SeedSequencer(7).stream("x").random(5)
        b = SeedSequencer(8).stream("x").random(5)
        assert not np.array_equal(a, b)

    def test_derive_seed_stable(self):
        assert SeedSequencer(1).derive_seed("a", 2) == SeedSequencer(1).derive_seed("a", 2)

    def test_derive_seed_63bit(self):
        for k in range(50):
            s = SeedSequencer(3).derive_seed("k", k)
            assert 0 <= s < (1 << 63)


class TestStreamKinds:
    def test_node_stream_distinct_per_node(self):
        seq = SeedSequencer(0)
        a = seq.node_stream("t", 0).random(4)
        b = seq.node_stream("t", 1).random(4)
        assert not np.array_equal(a, b)

    def test_shared_stream_node_independent(self):
        seq = SeedSequencer(0)
        assert np.array_equal(
            seq.shared_stream("t").random(4), seq.shared_stream("t").random(4)
        )

    def test_spawn_changes_root(self):
        seq = SeedSequencer(0)
        child = seq.spawn("phase")
        assert child.root_seed != seq.root_seed
        # but is itself deterministic
        child2 = seq.spawn("phase")
        assert child.root_seed == child2.root_seed

    def test_key_separator_no_collision(self):
        # ("ab", "c") must differ from ("a", "bc").
        seq = SeedSequencer(0)
        assert seq.derive_seed("ab", "c") != seq.derive_seed("a", "bc")

    def test_streams_statistically_reasonable(self):
        # Crude sanity: mean of uniform draws near 0.5.
        x = SeedSequencer(42).stream("u").random(10_000)
        assert abs(x.mean() - 0.5) < 0.02
