"""The streaming service: coalescing, snapshots, and the live daemon.

Three layers of guarantees, in test-speed order:

* **coalescing** is topology-exact: applying the merged batch leaves the
  CSR and active set byte-identical to applying the constituents one by
  one, and the coloring invariant holds either way (property test over
  random churn, including depart-then-rearrive and delete-of-merged-
  insert windows).
* **snapshot/restore ≡ never-crashed**: a restored engine replays the
  remaining batches to byte-identical colors, at every cut point.
* **the daemon**: a real subprocess behind a unix socket must produce
  the same final coloring as the in-process engine with the same seed,
  survive kill -9 + ``--restore``, reject floods with ``queue-full`` +
  ``retry_after``, and enforce hello/version rules.
"""

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.config import ColoringConfig
from repro.dynamic import DynamicColoring
from repro.dynamic.events import UpdateBatch
from repro.graphs.families import make_churn, make_graph
from repro.serve import protocol as wire
from repro.serve.client import ServeClient
from repro.serve.coalesce import coalesce_batches
from repro.serve.snapshot import load_snapshot, restore_engine, save_snapshot
from repro.simulator.network import BroadcastNetwork


def random_batches(n, edges, rng, count=6, events=20):
    """Random churn with tracked topology, exercising the nasty merge
    windows: deletes of just-inserted edges, depart-then-rearrive."""
    current = {tuple(sorted(e)) for e in edges.tolist()}
    active = set(range(n))
    batches = []
    for _ in range(count):
        inactive = sorted(set(range(n)) - active)
        departures = sorted(
            rng.choice(sorted(active), size=min(3, len(active) - 2), replace=False)
            .tolist()
        )
        arrivals = sorted(
            rng.choice(inactive, size=min(2, len(inactive)), replace=False).tolist()
        ) if inactive else []
        next_active = (active - set(departures)) | set(arrivals)
        pool = sorted(next_active)
        inserts = set()
        for _ in range(events):
            u, v = rng.choice(pool, size=2, replace=False)
            key = (min(int(u), int(v)), max(int(u), int(v)))
            if key not in current:
                inserts.add(key)
        deletable = [e for e in sorted(current) if not (set(e) & set(departures))]
        deletes = [
            tuple(e) for e in rng.permutation(deletable)[: events // 4].tolist()
        ]
        batch = UpdateBatch(
            insert_edges=sorted(inserts),
            delete_edges=sorted(deletes),
            arrivals=arrivals,
            departures=departures,
        )
        batches.append(batch)
        # Track resulting topology the way the engine applies it.
        current -= {e for e in current if set(e) & set(departures)}
        current -= set(deletes)
        current |= inserts
        active = next_active
    return batches


class TestCoalesce:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_merge_is_topology_exact(self, seed):
        rng = np.random.default_rng(seed)
        n, edges = make_graph("gnp", 120, 8.0, seed)
        cfg = ColoringConfig.practical(seed=seed)
        batches = random_batches(n, edges, rng)

        seq = DynamicColoring((n, edges), cfg)
        for batch in batches:
            seq.apply_batch(batch)

        merged_engine = DynamicColoring((n, edges), cfg)
        merged = coalesce_batches(merged_engine.net, batches)
        report = merged_engine.apply_batch(merged)

        def topo(engine):
            e = engine.net.undirected_edges()
            return sorted(map(tuple, e.tolist()))

        assert topo(merged_engine) == topo(seq)
        assert merged_engine.active.tolist() == seq.active.tolist()
        # Colors may legally differ; the invariant may not.
        assert merged_engine.is_proper() and merged_engine.is_complete()
        assert merged_engine.colors_used() <= merged_engine.net.delta + 1
        assert report.index == 0  # one engine batch for the whole window

    def test_identity_cases(self):
        n, edges = make_graph("gnp", 60, 6.0, 0)
        engine = DynamicColoring((n, edges), ColoringConfig.practical(seed=0))
        assert coalesce_batches(engine.net, []).is_empty
        one = UpdateBatch(insert_edges=[[0, 1]])
        assert coalesce_batches(engine.net, [one]) is one

    def test_delete_of_merged_insert_window(self):
        # insert (4,5) in batch 1, delete it in batch 2 → no insert survives.
        n = 10
        engine = DynamicColoring(
            (n, np.array([[0, 1]])), ColoringConfig.practical(seed=3)
        )
        merged = coalesce_batches(
            engine.net,
            [UpdateBatch(insert_edges=[[4, 5]]),
             UpdateBatch(delete_edges=[[4, 5]])],
        )
        assert [4, 5] not in merged.insert_edges.tolist()

    @pytest.mark.parametrize("seed", list(range(12)))
    def test_merge_is_traffic_exact(self, seed):
        """Property (ISSUE 10 satellite): the coalesced batch is the
        *minimal* window diff — every edge op it carries changes the
        pre-window CSR (``DeltaReport.ignored == 0``), and its
        announcement traffic equals the hand-built true-diff batch.
        The schedules deliberately hit the pre-fix failure modes:
        in-window insert→delete (used to emit a spurious delete),
        delete→reinsert (spurious insert), depart→re-arrive, and
        duplicate keys inside one op list."""
        rng = np.random.default_rng(seed)
        n, edges = make_graph("gnp", 80, 6.0, seed)
        cfg = ColoringConfig.practical(seed=seed)
        pre = {tuple(e) for e in BroadcastNetwork((n, edges)).undirected_edges().tolist()}

        some_pre = [tuple(e) for e in rng.permutation(sorted(pre))[:6].tolist()]
        fresh = []
        while len(fresh) < 6:
            u, v = sorted(rng.choice(n, size=2, replace=False).tolist())
            if (u, v) not in pre and (u, v) not in fresh:
                fresh.append((u, v))
        x = int(some_pre[0][0])  # active node with pre-window edges
        batches = [
            # duplicates inside one list + fresh inserts + pre deletes
            UpdateBatch(insert_edges=fresh[:3] + fresh[:1],
                        delete_edges=some_pre[:2] + some_pre[:1]),
            # insert→delete (fresh[0] dies in-window), delete→reinsert
            # (some_pre[0] resurrected in-window), depart x
            UpdateBatch(insert_edges=[some_pre[0]],
                        delete_edges=[fresh[0]],
                        departures=[x]),
            # x re-arrives and picks up one fresh edge; more churn
            UpdateBatch(insert_edges=fresh[3:] + [tuple(sorted((x, (x + 1) % n)))],
                        delete_edges=some_pre[2:4],
                        arrivals=[x]),
        ]

        seq = DynamicColoring((n, edges), cfg)
        for batch in batches:
            seq.apply_batch(batch)

        merged_engine = DynamicColoring((n, edges), cfg)
        merged = coalesce_batches(merged_engine.net, batches)

        # Minimality against the pre-window CSR: no op apply_delta
        # would ignore.
        ins = [tuple(e) for e in merged.insert_edges.tolist()]
        dels = [tuple(e) for e in merged.delete_edges.tolist()]
        assert len(set(ins)) == len(ins) and len(set(dels)) == len(dels)
        assert not (set(ins) & set(dels))
        for e in ins:
            assert tuple(sorted(e)) not in pre
        for e in dels:
            assert tuple(sorted(e)) in pre

        # Spy on apply_delta to read the DeltaReport the engine consumes.
        deltas = []
        orig = merged_engine.net.apply_delta

        def spy(*a, **kw):
            rep = orig(*a, **kw)
            deltas.append(rep)
            return rep

        merged_engine.net.apply_delta = spy
        merged_engine.apply_batch(merged)
        assert sum(r.ignored for r in deltas) == 0

        def topo(engine):
            return sorted(map(tuple, engine.net.undirected_edges().tolist()))

        assert topo(merged_engine) == topo(seq)
        assert merged_engine.active.tolist() == seq.active.tolist()

        # Traffic equality with the hand-built true diff: inserts are
        # after−before, deletes are before−after minus departure-incident
        # ones (the engine's own expansion regenerates those, silently).
        after = set(topo(seq))
        dep = set(merged.departures.tolist())
        true_ins = sorted(after - pre)
        true_del = sorted(e for e in pre - after if not (set(e) & dep))
        ref = DynamicColoring((n, edges), cfg)
        ref.apply_batch(UpdateBatch(
            insert_edges=true_ins, delete_edges=true_del,
            arrivals=merged.arrivals.tolist(),
            departures=merged.departures.tolist(),
        ))
        got = merged_engine.net.metrics.phases["dynamic/delta"]
        want = ref.net.metrics.phases["dynamic/delta"]
        assert got.as_dict() == want.as_dict()

    def test_departure_expands_window_local_edges(self):
        # Edge (4,5) exists only inside the window; 4 then departs.  The
        # replay expands the departure against the window-local edge, and
        # CSR cancellation then drops the delete: the engine's CSR never
        # held (4,5), so an explicit delete would be pure announcement
        # noise (apply_delta would ignore it after charging traffic).
        n = 10
        engine = DynamicColoring(
            (n, np.array([[0, 1]])), ColoringConfig.practical(seed=0)
        )
        merged = coalesce_batches(
            engine.net,
            [UpdateBatch(insert_edges=[[4, 5]]),
             UpdateBatch(departures=[4])],
        )
        assert [4, 5] not in merged.delete_edges.tolist()
        assert merged.departures.tolist() == [4]
        assert merged.insert_edges.size == 0


class TestSnapshot:
    def make_run(self, seed=1):
        schedule = make_churn("gnp-churn", 200, 8.0, seed, batches=6,
                              churn_fraction=0.06)
        cfg = ColoringConfig.practical(seed=seed)
        return schedule, cfg

    @pytest.mark.parametrize("cut", [0, 2, 5])
    def test_restore_equals_never_crashed(self, cut, tmp_path):
        schedule, cfg = self.make_run()
        batches = list(schedule)

        reference = DynamicColoring(schedule.initial, cfg)
        for batch in batches:
            reference.apply_batch(batch)

        engine = DynamicColoring(schedule.initial, cfg)
        for batch in batches[:cut]:
            engine.apply_batch(batch)
        path = tmp_path / "state.npz"
        info = save_snapshot(engine, path)
        assert info.batch_index == cut

        restored = restore_engine(path)
        assert restored.batch_index == cut
        assert restored.colors.tolist() == engine.colors.tolist()
        for batch in batches[cut:]:
            restored.apply_batch(batch)

        assert restored.colors.tolist() == reference.colors.tolist()
        assert restored.active.tolist() == reference.active.tolist()
        assert restored.batch_index == reference.batch_index

    def test_snapshot_metadata_and_atomicity(self, tmp_path):
        schedule, cfg = self.make_run()
        engine = DynamicColoring(schedule.initial, cfg)
        path = tmp_path / "state.npz"
        info = save_snapshot(engine, path)
        assert info.n == engine.n
        assert info.bytes == path.stat().st_size
        assert not path.with_name("state.npz.tmp").exists()
        loaded, arrays = load_snapshot(path)
        assert loaded.config == cfg
        assert arrays["colors"].tolist() == engine.colors.tolist()
        # Overwrite keeps exactly one file.
        engine.apply_batch(list(schedule)[0])
        info2 = save_snapshot(engine, path)
        assert info2.batch_index == 1

    def test_future_format_rejected(self, tmp_path):
        import json

        schedule, cfg = self.make_run()
        engine = DynamicColoring(schedule.initial, cfg)
        path = tmp_path / "state.npz"
        save_snapshot(engine, path)
        _, arrays = load_snapshot(path)
        meta = {"format": 99, "n": engine.n, "m": 0, "batch_index": 0,
                "config": {}}
        np.savez(path, meta=np.frombuffer(json.dumps(meta).encode(),
                                          dtype=np.uint8), **arrays)
        with pytest.raises(ValueError, match="format"):
            load_snapshot(path)

    def test_unknown_config_field_rejected(self, tmp_path):
        import dataclasses
        import json

        schedule, cfg = self.make_run()
        engine = DynamicColoring(schedule.initial, cfg)
        path = tmp_path / "state.npz"
        save_snapshot(engine, path)
        _, arrays = load_snapshot(path)
        bad_cfg = dict(dataclasses.asdict(cfg), not_a_knob=1)
        meta = {"format": 1, "n": engine.n, "m": 0, "batch_index": 0,
                "config": bad_cfg}
        np.savez(path, meta=np.frombuffer(json.dumps(meta).encode(),
                                          dtype=np.uint8), **arrays)
        with pytest.raises(ValueError, match="not_a_knob"):
            load_snapshot(path)


# ----------------------------------------------------------------------
# Live daemon tests (subprocess behind a unix socket)
# ----------------------------------------------------------------------
def spawn_server(tmp_path, *extra):
    socket_path = str(tmp_path / "serve.sock")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", socket_path, *extra],
        env={**os.environ},
        stderr=subprocess.PIPE,
    )
    return proc, socket_path


def stop(proc):
    if proc.poll() is None:
        proc.kill()
    proc.stderr.close()
    proc.wait(timeout=10)


class TestLiveServer:
    def test_end_to_end_matches_in_process(self, tmp_path):
        seed = 2
        schedule = make_churn("mobile", 250, 8.0, seed, batches=5,
                              churn_fraction=0.2)
        n, edges = schedule.initial
        proc, sock = spawn_server(tmp_path, "--coalesce-max", "1")
        try:
            with ServeClient(socket_path=sock) as client:
                assert client.welcome.v == wire.PROTOCOL_VERSION
                loaded = client.load_graph(n, edges, seed=seed)
                assert loaded.n == n and loaded.initial == "pipeline"
                for batch in schedule:
                    report = client.update_batch(batch)
                    assert report.coalesced == 1
                    assert report.report["proper"]
                final = client.query_colors()
                stats = client.stats()
                client.shutdown()
            proc.wait(timeout=20)
            assert proc.returncode == 0
        finally:
            stop(proc)

        engine = DynamicColoring(schedule.initial,
                                 ColoringConfig.practical(seed=seed))
        for batch in schedule:
            engine.apply_batch(batch)
        assert final.colors == engine.colors.tolist()
        assert final.proper and final.complete
        assert stats["batches_applied"] == schedule.num_batches
        assert stats["batch_index"] == schedule.num_batches

    def test_kill_then_restore_from_snapshot(self, tmp_path):
        seed = 4
        schedule = make_churn("gnp-churn", 200, 8.0, seed, batches=6,
                              churn_fraction=0.06)
        n, edges = schedule.initial
        batches = list(schedule)
        cut = 3
        snap = str(tmp_path / "serve.npz")

        proc, sock = spawn_server(tmp_path, "--coalesce-max", "1",
                                  "--snapshot-path", snap)
        try:
            with ServeClient(socket_path=sock) as client:
                client.load_graph(n, edges, seed=seed)
                for batch in batches[:cut]:
                    client.update_batch(batch)
                saved = client.snapshot()
                assert saved.batch_index == cut
                os.kill(proc.pid, signal.SIGKILL)  # no goodbye, no flush
            proc.wait(timeout=10)
        finally:
            stop(proc)

        proc, sock = spawn_server(tmp_path, "--coalesce-max", "1",
                                  "--restore", snap)
        try:
            with ServeClient(socket_path=sock) as client:
                stats = client.stats()
                assert stats["graph_loaded"] and stats["initial"] == "restored"
                assert stats["batch_index"] == cut
                for batch in batches[cut:]:
                    client.update_batch(batch)
                final = client.query_colors()
                client.shutdown()
            proc.wait(timeout=20)
        finally:
            stop(proc)

        reference = DynamicColoring(schedule.initial,
                                    ColoringConfig.practical(seed=seed))
        for batch in batches:
            reference.apply_batch(batch)
        assert final.colors == reference.colors.tolist()

    def test_backpressure_queue_full_with_retry_after(self, tmp_path):
        seed = 5
        n, edges = make_graph("gnp", 400, 12.0, seed)
        rng = np.random.default_rng(seed)
        proc, sock = spawn_server(tmp_path, "--queue-max", "2",
                                  "--coalesce-max", "1")
        try:
            with ServeClient(socket_path=sock) as client:
                client.load_graph(n, edges, seed=seed)
                batches = random_batches(n, edges, rng, count=60, events=30)
                ids = [client.submit_batch(b) for b in batches]  # flood
                rejected, reported = [], set()
                deadline = time.monotonic() + 60
                while len(rejected) + len(reported) < len(ids):
                    assert time.monotonic() < deadline, "flood never resolved"
                    frame = client.recv()
                    assert frame is not None
                    if isinstance(frame, wire.ErrorFrame):
                        assert frame.code == "queue-full"
                        assert frame.retry_after and frame.retry_after > 0
                        rejected.append(frame.id)
                    else:
                        assert isinstance(frame, wire.BatchReportFrame)
                        reported |= set(frame.ids)
                assert rejected, "queue never overflowed — no backpressure seen"
                # Accepted work still finished properly under the flood.
                final = client.query_colors()
                assert final.proper and final.complete
                stats = client.stats()
                assert stats["rejected_batches"] == len(rejected)
                client.shutdown()
            proc.wait(timeout=20)
        finally:
            stop(proc)

    def test_hello_rules_and_errors(self, tmp_path):
        proc, sock = spawn_server(tmp_path)
        try:
            # No hello → everything but hello is rejected.
            client = ServeClient(socket_path=sock)
            client.send(wire.StatsRequest(id=1))
            reply = client.recv()
            assert isinstance(reply, wire.ErrorFrame)
            assert reply.code == "hello-required"
            client.close()

            # Unknown version → bad-version.
            client = ServeClient(socket_path=sock)
            client.send(wire.Hello(id=1, versions=[999]))
            reply = client.recv()
            assert isinstance(reply, wire.ErrorFrame)
            assert reply.code == "bad-version"
            client.close()

            with ServeClient(socket_path=sock) as client:
                # Queries before load_graph → no-graph.
                with pytest.raises(wire.ProtocolError) as err:
                    client.query_colors()
                assert err.value.code == "no-graph"
                # Malformed payload survives the connection.
                client.send(wire.LoadGraph(id=9, n=4, edges=[[0, 9]]))
                reply = client.recv()
                assert isinstance(reply, wire.ErrorFrame)
                assert reply.code == "bad-payload" and reply.id == 9
                # Connection still usable afterwards.
                loaded = client.load_graph(4, [[0, 1], [2, 3]], seed=1)
                assert loaded.m == 2
                # Regression (ISSUE 10 satellite): a self-loop in a raw
                # update_batch frame must map to bad-payload at admission
                # (UpdateBatch construction), not slip through the
                # single-batch coalesce fast path into apply_delta.
                client.send(wire.UpdateBatchFrame(id=11, insert_edges=[[2, 2]]))
                reply = client.recv()
                assert isinstance(reply, wire.ErrorFrame)
                assert reply.code == "bad-payload" and reply.id == 11
                assert "self-loop" in reply.message
                client.shutdown()
            proc.wait(timeout=20)
        finally:
            stop(proc)

    def test_sharded_backend(self, tmp_path):
        """backend="sharded" installs the delta-routed sharded
        maintenance engine (ISSUE 10 tentpole's serve surface)."""
        seed = 9
        schedule = make_churn("gnp-churn", 240, 8.0, seed, batches=4,
                              churn_fraction=0.1)
        n, edges = schedule.initial
        proc, sock = spawn_server(tmp_path, "--coalesce-max", "1")
        try:
            with ServeClient(socket_path=sock) as client:
                loaded = client.load_graph(
                    n, edges, seed=seed, backend="sharded", shard_k=3
                )
                assert loaded.backend == "sharded"
                assert loaded.initial == "sharded"
                for batch in schedule:
                    report = client.update_batch(batch)
                    assert report.report["proper"]
                final = client.query_colors()
                assert final.proper and final.complete
                stats = client.stats()
                assert stats["backend"] == "sharded"
                # 'initial' only applies to the single engine.
                with pytest.raises(wire.ProtocolError) as err:
                    client.load_graph(
                        n, edges, backend="sharded", initial="pipeline"
                    )
                assert err.value.code == "bad-payload"
                with pytest.raises(wire.ProtocolError) as err:
                    client.load_graph(n, edges, backend="bogus")
                assert err.value.code == "bad-payload"
                client.shutdown()
            proc.wait(timeout=20)
        finally:
            stop(proc)

    def test_sharded_initial_and_palette(self, tmp_path):
        seed = 6
        n, edges = make_graph("gnp", 300, 10.0, seed)
        proc, sock = spawn_server(tmp_path)
        try:
            with ServeClient(socket_path=sock) as client:
                loaded = client.load_graph(
                    n, edges, seed=seed, initial="sharded", shard_k=3
                )
                assert loaded.initial == "sharded"
                assert loaded.backend == "single"
                assert loaded.colors_used <= loaded.delta + 1
                colors = client.query_colors()
                assert colors.proper and colors.complete
                pal = client.query_palette(0)
                assert pal.num_colors == loaded.delta + 1
                # free = not held by any neighbor, so in a proper coloring
                # the node's own color is always free.
                assert pal.color in pal.free
                subset = client.query_colors(nodes=[0])
                assert subset.colors == [pal.color]
                client.shutdown()
            proc.wait(timeout=20)
        finally:
            stop(proc)
