"""Trial specifications: the unit of work of the experiment runner.

A :class:`TrialSpec` names one execution — (graph family, n, avg_degree,
seed, config preset + overrides, algorithm) — and nothing else.  Its
:func:`spec_key` is a content hash of that description, so two specs with
the same fields always collide in the :class:`~repro.runner.store.ResultStore`
(that is what makes re-runs skip already-computed trials) and a changed
field always misses.

Randomness is derived, never stored: :meth:`TrialSpec.graph_seed` and
:meth:`TrialSpec.algo_seed` feed the user-facing ``seed`` through
:class:`repro.simulator.rng.SeedSequencer`, keyed so that every algorithm
run under one (family, n, avg_degree, seed) sees the *same* graph — the
property ``repro compare`` relies on — while distinct algorithms draw
independent coins.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.graphs.families import CHURN_FAMILIES, FAMILIES, split_family
from repro.simulator.rng import SeedSequencer

__all__ = [
    "ALGORITHMS",
    "TrialSpec",
    "TrialResult",
    "spec_key",
    "expand_matrix",
    "load_matrix",
    "dedupe",
]

ALGORITHMS = (
    "broadcast",
    "johansson",
    "luby",
    "greedy",
    "dynamic",
    "dynamic_shard",
    "shard",
)

_MATRIX_FIELDS = ("family", "n", "avg_degree", "algorithm", "preset")


@dataclass(frozen=True)
class TrialSpec:
    """One experiment trial, fully determined by its fields."""

    family: str = "gnp"
    n: int = 1000
    avg_degree: float = 20.0
    seed: int = 0
    algorithm: str = "broadcast"
    preset: str = "practical"
    overrides: tuple[tuple[str, Any], ...] = ()
    """Config overrides applied on top of the preset, as sorted
    (name, value) pairs — a tuple so the spec stays hashable."""

    def __post_init__(self) -> None:
        base, arg = split_family(self.family)
        if base not in FAMILIES and base not in CHURN_FAMILIES:
            raise ValueError(f"unknown family: {self.family!r}")
        if arg is not None and base != "edgelist":
            # Only the file-backed family carries a ':' argument; letting
            # others through would content-hash 'gnp:x' apart from 'gnp'
            # while running the identical trial.
            raise ValueError(f"family {base!r} takes no ':' argument")
        if self.algorithm not in ALGORITHMS:
            raise ValueError(f"unknown algorithm: {self.algorithm!r}")
        if base in CHURN_FAMILIES and self.algorithm not in (
            "dynamic", "dynamic_shard"
        ):
            raise ValueError(
                f"churn family {self.family!r} requires algorithm='dynamic' "
                f"or 'dynamic_shard'"
            )
        if self.preset not in ("practical", "paper"):
            raise ValueError(f"unknown preset: {self.preset!r}")
        object.__setattr__(
            self, "overrides", tuple(sorted((str(k), v) for k, v in self.overrides))
        )

    # -- canonical serialisation ---------------------------------------
    def as_dict(self) -> dict[str, Any]:
        return {
            "family": self.family,
            "n": int(self.n),
            "avg_degree": float(self.avg_degree),
            "seed": int(self.seed),
            "algorithm": self.algorithm,
            "preset": self.preset,
            "overrides": {k: v for k, v in self.overrides},
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "TrialSpec":
        return cls(
            family=d.get("family", "gnp"),
            n=int(d.get("n", 1000)),
            avg_degree=float(d.get("avg_degree", 20.0)),
            seed=int(d.get("seed", 0)),
            algorithm=d.get("algorithm", "broadcast"),
            preset=d.get("preset", "practical"),
            overrides=tuple(sorted(dict(d.get("overrides") or {}).items())),
        )

    @property
    def key(self) -> str:
        # Cached on first access: file-backed families hash the snapshot
        # file's bytes, and the key must stay stable for this instance's
        # lifetime (the runner indexes by it before and after execution)
        # even if the file changes mid-run.
        cached = getattr(self, "_cached_key", None)
        if cached is None:
            cached = spec_key(self)
            object.__setattr__(self, "_cached_key", cached)
        return cached

    # -- derived randomness --------------------------------------------
    def graph_seed(self) -> int:
        """Seed for the graph generator.  Independent of the algorithm so
        every algorithm compared under one spec family sees the same graph."""
        seq = SeedSequencer(self.seed)
        return seq.derive_seed("graph", self.family, self.n, repr(float(self.avg_degree)))

    def algo_seed(self) -> int:
        """Root seed for the algorithm's own coins."""
        seq = SeedSequencer(self.seed)
        return seq.derive_seed("algo", self.algorithm, self.preset)

    def with_seed(self, seed: int) -> "TrialSpec":
        return replace(self, seed=int(seed))


def spec_key(spec: TrialSpec) -> str:
    """Content-hash key: 128-bit blake2b over the canonical JSON form.

    File-backed families (``edgelist:PATH``) fold the *file contents*
    into the hash, not just the path — editing the snapshot must miss
    the store, or cached results would go silently stale.  A missing
    file hashes as such (the store lookup then consistently misses
    fresh runs, which will fail loudly when the loader runs)."""
    blob = json.dumps(spec.as_dict(), sort_keys=True, separators=(",", ":"))
    base, arg = split_family(spec.family)
    if base == "edgelist" and arg:
        try:
            digest = hashlib.blake2b(
                Path(arg).read_bytes(), digest_size=16
            ).hexdigest()
        except OSError:
            digest = "missing"
        blob += f"|edgelist-content:{digest}"
    return hashlib.blake2b(blob.encode(), digest_size=16).hexdigest()


@dataclass
class TrialResult:
    """What one trial produced.

    ``payload`` holds only deterministic measurements — a pure function of
    the spec — so result rows are byte-identical no matter how many
    workers computed them or whether they came from the cache.  Wall-clock
    timing lives in ``elapsed_s``, outside the payload, and is never part
    of aggregation output.
    """

    spec: TrialSpec
    status: str = "ok"  # "ok" | "error" | "timeout"
    payload: dict[str, Any] = field(default_factory=dict)
    elapsed_s: float = 0.0
    error: str | None = None
    cached: bool = False
    """True when this result was served from the store, not computed."""
    timings: dict[str, float] = field(default_factory=dict)
    """Wall-clock seconds per algorithm phase (empty for baselines).  Like
    ``elapsed_s`` this lives *outside* the payload: it is machine-dependent
    and never feeds deterministic aggregation — only the perf trajectories
    (``BENCH_*.json``, see EXPERIMENTS.md)."""
    stored_key: str | None = None
    """The content-hash key recorded when this result was computed.
    Results loaded from a store keep it so file-backed specs
    (``edgelist:PATH``) whose file changed since *miss* the store —
    recomputing the key on load would silently re-index stale results
    under the new contents' hash."""
    guard: str = "none"
    """Which timeout guard covered this trial: ``"sigalrm"`` (worker-side
    alarm was armed), ``"wallclock"`` (the pool driver's deadline fired —
    the worker never reported), or ``"none"`` (no timeout requested, or
    no usable guard — e.g. SIGALRM off the main thread / off POSIX).
    Surfacing this closes a silent hole: a ``timeout_s`` that quietly
    guarded nothing looked identical to one that did."""

    @property
    def key(self) -> str:
        return self.stored_key if self.stored_key is not None else self.spec.key

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def record(self) -> dict[str, Any]:
        """The JSON-lines record persisted by the store (``cached`` is a
        runtime flag and deliberately not serialised)."""
        return {
            "key": self.key,
            "spec": self.spec.as_dict(),
            "status": self.status,
            "payload": self.payload,
            "elapsed_s": round(float(self.elapsed_s), 6),
            "error": self.error,
            "timings": {k: round(float(v), 6) for k, v in self.timings.items()},
            "guard": self.guard,
        }

    @classmethod
    def from_record(cls, rec: Mapping[str, Any]) -> "TrialResult":
        return cls(
            spec=TrialSpec.from_dict(rec["spec"]),
            status=rec.get("status", "ok"),
            payload=dict(rec.get("payload") or {}),
            elapsed_s=float(rec.get("elapsed_s", 0.0)),
            error=rec.get("error"),
            timings={
                str(k): float(v) for k, v in dict(rec.get("timings") or {}).items()
            },
            stored_key=rec.get("key"),
            guard=str(rec.get("guard", "none")),
        )


# ----------------------------------------------------------------------
# Spec matrices (the `repro bench` input format)
# ----------------------------------------------------------------------
def _as_list(value: Any) -> list:
    if isinstance(value, (list, tuple)):
        return list(value)
    return [value]


def expand_matrix(matrix: Mapping[str, Any]) -> list[TrialSpec]:
    """Cross-product expansion of a matrix description into specs.

    Every field of :data:`_MATRIX_FIELDS` accepts a scalar or a list.
    Seeds come either from ``seeds`` (an int: seeds ``0..seeds-1``) or
    ``seed`` (scalar or explicit list).  Example::

        {"family": ["gnp", "blobs"], "n": [256, 512],
         "avg_degree": 16, "seeds": 3, "algorithm": ["broadcast", "johansson"]}

    expands to 2 * 2 * 1 * 3 * 2 = 24 specs, in deterministic
    (family, n, avg_degree, seed, algorithm, preset) nesting order.
    """
    unknown = set(matrix) - set(_MATRIX_FIELDS) - {"seed", "seeds", "overrides"}
    if unknown:
        raise ValueError(f"unknown matrix fields: {sorted(unknown)}")
    if "seeds" in matrix and "seed" in matrix:
        raise ValueError("give either 'seeds' (a count) or 'seed' (values), not both")
    if "seeds" in matrix:
        seeds = list(range(int(matrix["seeds"])))
    else:
        seeds = [int(s) for s in _as_list(matrix.get("seed", 0))]
    overrides = tuple(sorted(dict(matrix.get("overrides") or {}).items()))
    specs = []
    for family in _as_list(matrix.get("family", "gnp")):
        for n in _as_list(matrix.get("n", 1000)):
            for deg in _as_list(matrix.get("avg_degree", 20.0)):
                for seed in seeds:
                    for algo in _as_list(matrix.get("algorithm", "broadcast")):
                        for preset in _as_list(matrix.get("preset", "practical")):
                            specs.append(
                                TrialSpec(
                                    family=str(family),
                                    n=int(n),
                                    avg_degree=float(deg),
                                    seed=int(seed),
                                    algorithm=str(algo),
                                    preset=str(preset),
                                    overrides=overrides,
                                )
                            )
    return specs


def load_matrix(path: str | Path) -> list[TrialSpec]:
    """Load a spec matrix from a TOML or JSON file.

    The file holds either a ``[matrix]`` table (cross-product expanded via
    :func:`expand_matrix`), a list of explicit ``[[trial]]`` tables, or
    both (trials are appended after the matrix expansion).
    """
    path = Path(path)
    if path.suffix.lower() == ".toml":
        import tomllib

        with path.open("rb") as fh:
            doc = tomllib.load(fh)
    else:
        with path.open("r", encoding="utf-8") as fh:
            doc = json.load(fh)
    if not isinstance(doc, Mapping):
        raise ValueError(f"{path}: expected a table/object at top level")
    specs: list[TrialSpec] = []
    if "matrix" in doc:
        specs.extend(expand_matrix(doc["matrix"]))
    for trial in doc.get("trial", []) or []:
        specs.extend(expand_matrix(trial))
    if not specs:
        raise ValueError(f"{path}: no [matrix] table and no [[trial]] entries")
    return specs


def dedupe(specs: Iterable[TrialSpec]) -> list[TrialSpec]:
    """Drop duplicate specs, keeping first-occurrence order."""
    seen: dict[str, TrialSpec] = {}
    for s in specs:
        seen.setdefault(s.key, s)
    return list(seen.values())
