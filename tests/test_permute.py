"""Tests for distributed permutation sampling (Algorithms 4–5, §4)."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.config import ColoringConfig
from repro.core.permute import (
    permute_constant,
    permute_loglog,
    sample_permutation,
)
from repro.graphs.generators import clique_blob_graph, complete_graph
from repro.simulator.network import BroadcastNetwork
from repro.simulator.rng import SeedSequencer


@pytest.fixture
def cfg():
    return ColoringConfig.practical()


@pytest.fixture
def net(cfg):
    n = 80
    return BroadcastNetwork(complete_graph(n), bandwidth_bits=cfg.bandwidth_bits(n))


@pytest.mark.parametrize("permute_fn", [permute_loglog, permute_constant])
class TestBothAlgorithms:
    def test_output_is_bijection(self, cfg, net, permute_fn):
        members = np.arange(80)
        subset = np.arange(0, 80, 2)
        res = permute_fn(net, members, subset, cfg, SeedSequencer(1))
        assert res.validate()
        assert np.array_equal(np.sort(res.pi), np.arange(subset.size))

    def test_subset_equals_members(self, cfg, net, permute_fn):
        members = np.arange(80)
        res = permute_fn(net, members, members, cfg, SeedSequencer(2))
        assert res.validate()

    def test_empty_subset(self, cfg, net, permute_fn):
        res = permute_fn(net, np.arange(80), np.empty(0, dtype=np.int64), cfg, SeedSequencer(3))
        assert res.pi.size == 0
        assert res.rounds == 0

    def test_singleton_subset(self, cfg, net, permute_fn):
        res = permute_fn(net, np.arange(80), np.array([5]), cfg, SeedSequencer(4))
        assert res.pi.tolist() == [0]

    def test_deterministic(self, cfg, net, permute_fn):
        members = np.arange(80)
        subset = np.arange(40)
        a = permute_fn(net, members, subset, cfg, SeedSequencer(7)).pi
        b = permute_fn(net, members, subset, cfg, SeedSequencer(7)).pi
        assert np.array_equal(a, b)

    def test_seed_changes_permutation(self, cfg, net, permute_fn):
        members = np.arange(80)
        subset = np.arange(40)
        a = permute_fn(net, members, subset, cfg, SeedSequencer(8)).pi
        b = permute_fn(net, members, subset, cfg, SeedSequencer(9)).pi
        assert not np.array_equal(a, b)

    def test_account_false_no_rounds(self, cfg, net, permute_fn):
        members = np.arange(80)
        permute_fn(
            net, members, members[:30], cfg, SeedSequencer(5), phase="px", account=False
        )
        assert net.metrics.rounds_in("px") == 0

    def test_rounds_positive_when_accounting(self, cfg, net, permute_fn):
        members = np.arange(80)
        res = permute_fn(net, members, members[:30], cfg, SeedSequencer(6), phase="py")
        assert res.rounds > 0
        assert net.metrics.rounds_in("py") > 0

    def test_works_on_blob_clique(self, cfg, permute_fn):
        g = clique_blob_graph(1, 60, anti_edges_per_clique=100, seed=2)
        net = BroadcastNetwork(g, bandwidth_bits=cfg.bandwidth_bits(60))
        members = np.arange(60)
        res = permute_fn(net, members, members[5:55], cfg, SeedSequencer(10))
        assert res.validate()


class TestUniformity:
    def test_positions_approximately_uniform(self, cfg, net):
        """Lemma 4.4/4.5: each node's position is near-uniform.  Chi-square
        over many samples for a fixed node's position."""
        members = np.arange(80)
        subset = np.arange(8)
        counts = np.zeros(8, dtype=np.int64)
        trials = 400
        for s in range(trials):
            res = sample_permutation(net, members, subset, cfg, SeedSequencer(s))
            counts[res.pi[0]] += 1
        _, p_value = scipy_stats.chisquare(counts)
        assert p_value > 1e-4  # not obviously non-uniform

    def test_all_permutations_reachable_small(self, cfg, net):
        members = np.arange(80)
        subset = np.arange(3)
        seen = set()
        for s in range(120):
            res = sample_permutation(net, members, subset, cfg, SeedSequencer(s))
            seen.add(tuple(res.pi.tolist()))
        assert len(seen) == 6  # all 3! permutations occur


class TestDispatch:
    def test_dispatch_follows_config(self, net):
        members = np.arange(80)
        subset = np.arange(20)
        cfg5 = ColoringConfig.practical(permute_constant_round=True)
        cfg4 = ColoringConfig.practical(permute_constant_round=False)
        r5 = sample_permutation(net, members, subset, cfg5, SeedSequencer(1))
        r4 = sample_permutation(net, members, subset, cfg4, SeedSequencer(1))
        assert r5.validate() and r4.validate()

    def test_loglog_has_no_leftover_field_use(self, cfg, net):
        res = permute_loglog(net, np.arange(80), np.arange(20), cfg, SeedSequencer(2))
        assert res.leftover == 0
