"""repro.obs — the unified telemetry plane.

Zero-dependency tracing + metrics for every subsystem (kernels,
dynamic, shard, serve, runner, faults).  Three pieces:

* a **span tracer** (:func:`span`, :func:`start_span`/:func:`end_span`)
  producing nested, thread/process-aware spans that worker processes
  ship back to the driver inside ordinary result payloads
  (:func:`drain_spans` / :func:`adopt_spans`), exportable as JSONL or
  Chrome/Perfetto ``trace_event`` JSON (:mod:`repro.obs.export`,
  ``repro trace export``);
* a **metrics registry** (:func:`count`, :func:`gauge_set`,
  :func:`observe`) of counters/gauges/log2-bucket histograms rendered
  in Prometheus text format (:func:`render_metrics`, ``repro serve
  --metrics-port``, ``repro top``);
* an **armed-state switch** (:func:`enable`/:func:`disable`) copying
  the ``repro.faults`` pattern: disarmed, every hook is one global
  load + ``is None`` test (~100 ns, gated by
  ``benchmarks/bench_obs.py``).

Tracing is off by default; arm it per-run with
``ColoringConfig(obs_trace=True)`` (engines arm the plane themselves,
including in pool workers, since the config already crosses the pipe)
or ``repro ... --trace out.json``.  Instrumentation never touches any
RNG: colorings are byte-identical with tracing on or off.
"""

from .export import (
    read_jsonl,
    spans_to_perfetto,
    spans_to_tree,
    validate_perfetto,
    write_jsonl,
    write_perfetto,
)
from .plane import (
    DEFAULT_TRACE_BUFFER,
    ObsState,
    adopt_spans,
    count,
    disable,
    drain_spans,
    enable,
    enable_from_config,
    enabled,
    end_span,
    gauge_set,
    metrics_enabled,
    observe,
    registry,
    render_metrics,
    span,
    start_span,
    tracing_enabled,
)
from .registry import (
    NUM_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_bounds,
    bucket_index,
)

__all__ = [
    "DEFAULT_TRACE_BUFFER",
    "NUM_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsState",
    "adopt_spans",
    "bucket_bounds",
    "bucket_index",
    "count",
    "disable",
    "drain_spans",
    "enable",
    "enable_from_config",
    "enabled",
    "end_span",
    "gauge_set",
    "metrics_enabled",
    "observe",
    "read_jsonl",
    "registry",
    "render_metrics",
    "span",
    "spans_to_perfetto",
    "spans_to_tree",
    "start_span",
    "tracing_enabled",
    "validate_perfetto",
    "write_jsonl",
    "write_perfetto",
]
