"""Tests for the vectorized MultiTrial engine and its batched PRG.

Three contracts from DESIGN.md §4:

1. **broadcaster/listener symmetry** — the batched (vectorized) seed
   derivation and expansion agree entry-for-entry with the scalar item
   path a single listener would compute;
2. **engine equivalence** — the edge-wise vectorized adoption rule and
   the per-node reference loop produce identical colorings and identical
   per-phase round counts/bits, for every sampler, including on the full
   E1 quick matrix;
3. **stream regression** — ``multitrial_sampler="prg"`` still reproduces
   the pre-vectorization color streams byte for byte.
"""

import json

import numpy as np
import pytest

from repro.config import ColoringConfig
from repro.core.algorithm import BroadcastColoring
from repro.core.multitrial import multitrial
from repro.core.state import ColoringState
from repro.graphs.families import make_graph
from repro.graphs.generators import complete_graph, gnp_graph, ring_graph
from repro.hashing.prg import (
    derive_seed_item,
    derive_seeds_batch,
    expand_indices,
    expand_indices_batch,
    expand_indices_item,
)
from repro.simulator.network import BroadcastNetwork
from repro.simulator.rng import SeedSequencer


class TestBatchedPRG:
    def test_seed_batch_matches_item_path(self):
        ids = np.array([0, 1, 7, 123456, (1 << 62) + 13], dtype=np.int64)
        base = 0x1234ABCD5678
        batch = derive_seeds_batch(ids, base)
        for i, v in enumerate(ids):
            assert int(batch[i]) == derive_seed_item(int(v), base)

    def test_expansion_batch_matches_item_path_for_every_node(self):
        """Broadcaster/listener symmetry: the row a node computes inside the
        batch equals what any listener computes for that seed alone."""
        rng = np.random.default_rng(0)
        seeds = rng.integers(0, 1 << 63, size=64, dtype=np.int64)
        widths = np.concatenate(
            [rng.integers(1, 1000, size=62, dtype=np.int64), [1, 10**12]]
        )
        batch = expand_indices_batch(seeds, 9, widths)
        for i in range(seeds.size):
            item = expand_indices_item(int(seeds[i]), 9, int(widths[i]))
            assert np.array_equal(batch[i], item)
            assert (batch[i] < widths[i]).all() and (batch[i] >= 0).all()

    def test_empty_width_rows_are_sentinel(self):
        batch = expand_indices_batch(
            np.array([5, 6], dtype=np.int64), 4, np.array([0, 3], dtype=np.int64)
        )
        assert (batch[0] == -1).all()
        assert (batch[1] >= 0).all()

    def test_seeds_differ_across_nodes_and_bases(self):
        ids = np.arange(1000, dtype=np.int64)
        a = derive_seeds_batch(ids, 1)
        b = derive_seeds_batch(ids, 2)
        assert np.unique(a).size == ids.size
        assert not np.array_equal(a, b)

    def test_batched_expansion_roughly_uniform(self):
        seeds = derive_seeds_batch(np.arange(2000, dtype=np.int64), 42)
        vals = expand_indices_batch(seeds, 8, np.full(2000, 10, dtype=np.int64))
        counts = np.bincount(vals.ravel(), minlength=10)
        assert counts.min() > 0.8 * vals.size / 10
        assert counts.max() < 1.2 * vals.size / 10

    def test_legacy_prg_stream_regression(self):
        """The pre-refactor PCG64 counter-mode streams, pinned."""
        assert expand_indices(12345, 8, 100).tolist() == [69, 22, 78, 31, 20, 79, 64, 67]
        assert expand_indices(1, 5, 7).tolist() == [3, 3, 5, 6, 0]
        assert expand_indices(987654321, 6, 1000003).tolist() == [
            812775, 284600, 777331, 171867, 921304, 198880,
        ]


# Pre-refactor multitrial output on gnp(80, 0.05, seed=3) with
# SeedSequencer(11) and the then-default sampler ("prg"): captured from the
# per-node implementation before the vectorized engine landed.
GOLDEN_PRG_COLORS = [
    5, 3, 9, 7, 8, 0, 5, 7, 8, 3, 4, 0, 5, 0, 6, 0, 2, 1, 4, 2, 3, 2, 6, 1,
    0, 9, 6, 5, 4, 3, 5, 8, 8, 2, 7, 9, 9, 3, 3, 5, 3, 2, 0, 5, 9, 0, 1, 0,
    4, 3, 1, 3, 2, 5, 3, 9, 8, 3, 6, 6, 1, 5, 7, 8, 9, 6, 7, 9, 1, 9, 3, 7,
    6, 0, 2, 9, 4, 5, 6, 8,
]


def _run_multitrial(graph, sampler, engine, seed=11, num_colors=None):
    net = BroadcastNetwork(graph)
    state = ColoringState(net, num_colors=num_colors)
    cfg = ColoringConfig.practical(multitrial_sampler=sampler)
    mask = np.ones(net.n, dtype=bool)
    lo = np.zeros(net.n, dtype=np.int64)
    hi = np.full(net.n, state.num_colors, dtype=np.int64)
    rep = multitrial(state, mask, lo, hi, cfg, SeedSequencer(seed), "mt", engine=engine)
    return state, rep


class TestEngineEquivalence:
    @pytest.mark.parametrize("sampler", ["prg", "batched", "expander"])
    @pytest.mark.parametrize(
        "graph",
        [
            gnp_graph(200, 0.03, seed=1),
            gnp_graph(60, 0.2, seed=2),
            complete_graph(12),
            ring_graph(30),
        ],
        ids=["gnp-sparse", "gnp-dense", "clique", "ring"],
    )
    def test_vectorized_equals_pernode(self, sampler, graph):
        s1, r1 = _run_multitrial(graph, sampler, "pernode")
        s2, r2 = _run_multitrial(graph, sampler, "vectorized")
        assert np.array_equal(s1.colors, s2.colors)
        assert r1.per_iteration == r2.per_iteration
        s2.verify()

    def test_prg_reproduces_pre_refactor_stream(self):
        for engine in ("pernode", "vectorized"):
            state, rep = _run_multitrial(gnp_graph(80, 0.05, seed=3), "prg", engine)
            assert state.colors.tolist() == GOLDEN_PRG_COLORS, engine
            assert rep.iterations == 2

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            _run_multitrial(ring_graph(8), "batched", "gpu")

    def test_batched_default_colors_with_slack(self):
        state, rep = _run_multitrial(gnp_graph(400, 0.01, seed=5), "batched", None)
        assert rep.engine == "vectorized"
        assert rep.remaining == 0
        state.verify()


# The E1 quick matrix cells (benchmarks/specs/quick.toml) that exercise the
# broadcast pipeline.
QUICK_CELLS = [
    (family, n, seed)
    for family in ("gnp", "blobs")
    for n in (128, 256)
    for seed in (0, 1)
]


def _pipeline(family, n, seed, sampler, engine, monkeypatch):
    monkeypatch.setenv("REPRO_MULTITRIAL_ENGINE", engine)
    graph = make_graph(family, n, 16.0, seed)
    cfg = ColoringConfig.practical(seed=seed, multitrial_sampler=sampler)
    return BroadcastColoring(graph, cfg).run()


class TestQuickMatrixEquivalence:
    @pytest.mark.parametrize("family,n,seed", QUICK_CELLS)
    def test_round_counts_identical_across_engines(self, family, n, seed, monkeypatch):
        """With the stream-compatible "prg" sampler, the vectorized engine
        leaves every observable untouched: per-phase round counts, total
        bits, and the coloring itself are byte-identical to the per-node
        reference on the whole quick matrix."""
        a = _pipeline(family, n, seed, "prg", "pernode", monkeypatch)
        b = _pipeline(family, n, seed, "prg", "vectorized", monkeypatch)
        assert a.phase_rounds == b.phase_rounds
        assert a.total_bits == b.total_bits
        assert a.rounds_total == b.rounds_total
        assert np.array_equal(a.colors, b.colors)

    @pytest.mark.parametrize("family,n,seed", QUICK_CELLS)
    def test_batched_default_proper_and_complete(self, family, n, seed, monkeypatch):
        res = _pipeline(family, n, seed, "batched", "vectorized", monkeypatch)
        assert res.proper and res.complete
        # Round accounting structure is engine- and sampler-agnostic:
        # batched changes the tried colors, never the round/bit schedule
        # per iteration (one seed round + one adoption round).
        assert res.max_message_bits <= ColoringConfig.practical().bandwidth_bits(n)


class TestPerfTracking:
    def test_phase_seconds_populated(self):
        res = BroadcastColoring(gnp_graph(150, 0.05, seed=2)).run()
        assert res.phase_seconds
        assert all(v >= 0.0 for v in res.phase_seconds.values())
        assert set(res.phase_seconds) >= {"setup", "sparse", "cleanup"}

    def test_trajectory_roundtrip(self, tmp_path):
        from repro.runner.benchtrack import append_entry, load_trajectory

        path = tmp_path / "BENCH_x.json"
        append_entry(path, {"speedup": 5.0}, label="a")
        data = append_entry(path, {"speedup": 6.0}, label="b")
        assert [e["label"] for e in data["entries"]] == ["a", "b"]
        again = load_trajectory(path)
        assert again["entries"][1]["speedup"] == 6.0
        assert "recorded_at" in again["entries"][0]

    def test_trajectory_tolerates_corrupt_file(self, tmp_path):
        from repro.runner.benchtrack import load_trajectory

        path = tmp_path / "BENCH_y.json"
        path.write_text("{not json")
        assert load_trajectory(path) == {"benchmark": "BENCH_y", "entries": []}

    def test_append_preserves_corrupt_file(self, tmp_path):
        from repro.runner.benchtrack import append_entry

        path = tmp_path / "BENCH_z.json"
        path.write_text("{not json")
        data = append_entry(path, {"speedup": 3.0}, label="fresh")
        assert len(data["entries"]) == 1
        assert (tmp_path / "BENCH_z.json.corrupt").read_text() == "{not json"

    def test_runner_timings_survive_store_roundtrip(self, tmp_path):
        from repro.runner import ParallelRunner, ResultStore, TrialSpec, mean_timings

        spec = TrialSpec(family="gnp", n=64, avg_degree=8.0, seed=0)
        store = ResultStore(tmp_path / "r.jsonl")
        run = ParallelRunner(workers=1, store=store).run([spec])
        assert run.results[0].timings
        cached = ParallelRunner(workers=1, store=ResultStore(tmp_path / "r.jsonl")).run(
            [spec]
        )
        assert cached.results[0].cached
        assert cached.results[0].timings  # timings of the computing run
        means = mean_timings(run.results)
        assert ("gnp", "broadcast", 64) in means

    def test_bench_track_flag(self, tmp_path, capsys):
        from repro.cli import main

        specfile = tmp_path / "m.json"
        specfile.write_text(
            json.dumps({"matrix": {"family": "gnp", "n": 64, "avg_degree": 8,
                                   "seeds": 1, "algorithm": "broadcast"}})
        )
        track = tmp_path / "BENCH_t.json"
        rc = main(["bench", str(specfile), "--track", str(track), "--json"])
        assert rc == 0
        data = json.loads(track.read_text())
        assert len(data["entries"]) == 1
        rows = data["entries"][0]["timings"]
        assert rows and rows[0]["algorithm"] == "broadcast"
        assert rows[0]["phase_seconds"]
