"""BCStream (§5): BCONGEST with streaming message consumption and
poly(log n) node memory.

* :mod:`repro.bcstream.memory` — the word-level memory meter and the
  poly(log n) ceiling of Definition 5.1.
* :mod:`repro.bcstream.stream` — one-pass consumption of a round's inbox
  through a bounded-state reducer.
* :mod:`repro.bcstream.prefix_sums` — the §5.1 group-merge prefix sums
  (Lemmas 5.2–5.4): O(log log n) merge iterations, O(1) rounds each.
* :mod:`repro.bcstream.palette_stream` — finding the i-th color of the
  clique palette by descending the merge hierarchy with O(1) extra words.
* :mod:`repro.bcstream.pipeline` — the full coloring pipeline with a
  per-phase memory audit (Theorem 2).
"""

from repro.bcstream.memory import MemoryMeter, MemoryExceeded
from repro.bcstream.stream import stream_reduce
from repro.bcstream.prefix_sums import streaming_prefix_sums, PrefixSumResult
from repro.bcstream.palette_stream import streaming_palette_lookup
from repro.bcstream.pipeline import bcstream_coloring, BCStreamResult

__all__ = [
    "MemoryMeter",
    "MemoryExceeded",
    "stream_reduce",
    "streaming_prefix_sums",
    "PrefixSumResult",
    "streaming_palette_lookup",
    "bcstream_coloring",
    "BCStreamResult",
]
