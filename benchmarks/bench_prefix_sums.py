"""E11 — streaming prefix sums (§5.1, Lemmas 5.2–5.4).

Paper claim: all prefix sums over k spanning groups are computable in
O(log log n) merge iterations of O(1) BCStream rounds each, with
poly(log n) memory and no double counting.  Measured: iterations and
rounds vs k (the log log shape), peak memory vs the z₀ = C log n stage-0
bound, and exactness against cumsum.
"""

from __future__ import annotations

import numpy as np
import pytest

from _common import print_table
from repro.analysis.fitting import growth_fit
from repro.bcstream.prefix_sums import streaming_prefix_sums
from repro.config import ColoringConfig
from repro.simulator.rng import SeedSequencer


@pytest.mark.benchmark(group="E11-prefix-sums")
def test_e11_iterations_loglog_in_k(benchmark):
    cfg = ColoringConfig.practical()
    n = 1 << 20
    rows = []
    ks = [16, 64, 256, 1024, 4096, 16384]
    iters = []
    for k in ks:
        rng = np.random.default_rng(k)
        vals = rng.integers(0, 50, size=k)
        res = streaming_prefix_sums(vals, np.full(k, 24), cfg, n=n)
        expected = np.concatenate([[0], np.cumsum(vals)[:-1]])
        assert np.array_equal(res.prefix, expected)
        iters.append(res.iterations)
        rows.append((k, res.iterations, res.rounds, res.peak_words, res.chief_failures))
    print_table(
        "E11 prefix sums: merge iterations vs group count (n = 2^20)",
        ["k groups", "iterations", "rounds", "peak words", "chief failures"],
        rows,
    )
    fit = growth_fit(ks, iters)
    print(f"shape fit: {fit.best}")
    # 1024x more groups cost at most a couple extra iterations.
    assert iters[-1] - iters[0] <= 3
    benchmark.pedantic(
        lambda: streaming_prefix_sums(
            np.ones(1024, dtype=np.int64), np.full(1024, 24), cfg, n=n
        ),
        rounds=3,
        iterations=1,
    )


@pytest.mark.benchmark(group="E11-prefix-sums")
def test_e11_memory_tracks_z0(benchmark):
    """Peak memory is dominated by the stage-0 range of z₀ = C log n
    values — it grows with log n, not with k."""
    cfg = ColoringConfig.practical()
    rows = []
    peaks = []
    for n in [1 << 10, 1 << 14, 1 << 18, 1 << 22]:
        res = streaming_prefix_sums(
            np.ones(2048, dtype=np.int64), np.full(2048, 24), cfg, n=n
        )
        z0 = int(np.ceil(cfg.log_threshold(n)))
        peaks.append(res.peak_words)
        rows.append((n, z0, res.peak_words))
        assert res.peak_words <= 4 * z0
    print_table(
        "E11 peak memory vs n (k = 2048 fixed)",
        ["n", "z0 = C log n", "peak words"],
        rows,
    )
    benchmark.pedantic(
        lambda: streaming_prefix_sums(
            np.ones(2048, dtype=np.int64), np.full(2048, 24), cfg, n=1 << 18
        ),
        rounds=3,
        iterations=1,
    )


@pytest.mark.benchmark(group="E11-prefix-sums")
def test_e11_chief_sampling_reliability(benchmark):
    """Lemma 5.4's w.h.p. clause: with group sizes ≥ z^{1/2}·C the random
    chief assignment covers every term — count failures across seeds."""
    cfg = ColoringConfig.practical()
    n = 1 << 16
    k = 1024
    failures = []
    for seed in range(10):
        vals = np.ones(k, dtype=np.int64)
        res = streaming_prefix_sums(
            vals, np.full(k, 48), cfg, n=n, seq=SeedSequencer(seed)
        )
        failures.append(res.chief_failures)
    rows = [(s, f) for s, f in enumerate(failures)]
    print_table("E11 chief-sampling failures per run", ["seed", "failures"], rows)
    assert np.mean(failures) <= 2.0
    benchmark.pedantic(
        lambda: streaming_prefix_sums(
            np.ones(k, dtype=np.int64), np.full(k, 48), cfg, n=n
        ),
        rounds=3,
        iterations=1,
    )
