"""Worker-side trial execution.

:func:`run_trial` is the pure function at the heart of the runner: spec in,
deterministic payload out.  It is module-level (picklable) so
``ProcessPoolExecutor`` workers can import and run it, and it carries its
own timeout guard (SIGALRM on POSIX) so a runaway trial kills itself
inside the worker instead of wedging the pool.
"""

from __future__ import annotations

import math
import signal
import threading
import time
import traceback
from contextlib import contextmanager
from typing import Any

from repro import obs
from repro.baselines.greedy import greedy_coloring
from repro.baselines.johansson import johansson_coloring
from repro.baselines.luby import luby_coloring
from repro.config import ColoringConfig
from repro.core.algorithm import BroadcastColoring
from repro.dynamic.engine import DynamicColoring
from repro.faults import plan as faults
from repro.graphs.families import make_churn, make_graph
from repro.runner.spec import TrialResult, TrialSpec
from repro.shard.dynamic import ShardedDynamicColoring
from repro.shard.engine import ShardedColoring
from repro.simulator.network import BroadcastNetwork

__all__ = ["run_trial", "TrialTimeout"]


class TrialTimeout(Exception):
    """Raised inside a worker when a trial exceeds its wall-clock budget."""


def _alarm_usable(timeout_s: float | None) -> bool:
    """Whether the SIGALRM guard can actually arm *here*: a positive
    budget, a POSIX platform, and the main thread of the process
    (``signal.setitimer`` is main-thread-only).  Pool workers qualify —
    each worker process runs trials on its own main thread — but a trial
    driven from a non-main thread silently has no worker-side guard,
    which is why :class:`TrialResult` surfaces ``guard`` and the pool
    driver keeps its own wall-clock deadline as a backstop."""
    return (
        timeout_s is not None
        and timeout_s > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


@contextmanager
def _alarm(timeout_s: float | None):
    """SIGALRM-based timeout; a no-op when :func:`_alarm_usable` is false."""
    if not _alarm_usable(timeout_s):
        yield
        return

    def _raise(signum, frame):
        raise TrialTimeout(f"trial exceeded {timeout_s}s")

    previous = signal.signal(signal.SIGALRM, _raise)
    signal.setitimer(signal.ITIMER_REAL, float(timeout_s))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _config_for(spec: TrialSpec) -> ColoringConfig:
    base = ColoringConfig.paper if spec.preset == "paper" else ColoringConfig.practical
    return base(seed=spec.algo_seed(), **{k: v for k, v in spec.overrides})


def _measure(spec: TrialSpec) -> tuple[dict[str, Any], dict[str, float]]:
    """Execute the algorithm named by the spec; return (payload, timings).

    The payload is deterministic; ``timings`` (wall-clock seconds per
    phase, broadcast algorithm only) ride alongside for the perf
    trajectories and never enter the payload."""
    if spec.algorithm in ("dynamic", "dynamic_shard"):
        payload, timings = _measure_dynamic(spec)
        _check_finite(payload)
        return payload, timings
    if spec.algorithm == "shard":
        payload, timings = _measure_shard(spec)
        _check_finite(payload)
        return payload, timings
    graph = make_graph(spec.family, spec.n, spec.avg_degree, spec.graph_seed())
    algo = None
    if spec.algorithm == "broadcast":
        # Let the algorithm build (and configure) its own network, then
        # read the graph stats from it — one construction, no duplicated
        # bandwidth policy.
        algo = BroadcastColoring(graph, _config_for(spec))
        net = algo.net
    else:
        net = BroadcastNetwork(graph)
    payload: dict[str, Any] = {
        **spec.as_dict(),
        "n_actual": int(net.n),
        "m": int(net.m),
        "delta": int(net.delta),
    }
    timings: dict[str, float] = {}
    if algo is not None:
        res = algo.run()
        timings = dict(res.phase_seconds)
        payload.update(
            rounds=int(res.rounds_algorithm),
            rounds_total=int(res.rounds_total),
            rounds_cleanup=int(res.rounds_cleanup),
            proper=bool(res.proper),
            complete=bool(res.complete),
            num_colors_used=int(res.num_colors_used),
            total_bits=int(res.total_bits),
            bits_per_node=float(res.total_bits / max(res.n, 1)),
        )
    elif spec.algorithm in ("johansson", "luby"):
        fn = johansson_coloring if spec.algorithm == "johansson" else luby_coloring
        res = fn(net, seed=spec.algo_seed())
        colors = res.colors
        payload.update(
            rounds=int(res.rounds),
            proper=bool(res.proper),
            complete=bool(res.complete),
            num_colors_used=int(len({int(c) for c in colors if c >= 0})),
            total_bits=int(res.total_bits),
            bits_per_node=float(res.total_bits / max(net.n, 1)),
        )
    elif spec.algorithm == "greedy":
        colors = greedy_coloring(net, smallest_last=True)
        und = net.undirected_edges()
        proper = bool((colors[und[:, 0]] != colors[und[:, 1]]).all()) if net.m else True
        payload.update(
            rounds=int(net.n),  # sequential: one node per "round"
            proper=bool(proper),
            complete=bool((colors >= 0).all()),
            num_colors_used=int(colors.max()) + 1 if colors.size else 0,
            total_bits=0,
            bits_per_node=0.0,
        )
    else:  # pragma: no cover - guarded by TrialSpec.__post_init__
        raise ValueError(f"unknown algorithm: {spec.algorithm!r}")
    _check_finite(payload)
    return payload, timings


def _check_finite(payload: dict[str, Any]) -> None:
    for value in payload.values():
        if isinstance(value, float) and not math.isfinite(value):
            raise ValueError(f"non-finite measurement in payload: {payload}")


def _measure_dynamic(spec: TrialSpec) -> tuple[dict[str, Any], dict[str, float]]:
    """Churn trial: a schedule from the spec's (churn or static) family,
    maintained by the incremental engine — the single-process one for
    ``algorithm="dynamic"``, the delta-routed sharded driver for
    ``algorithm="dynamic_shard"`` (k/strategy from the ``shard_*``
    knobs).  Schedule shape comes from the config's
    ``dynamic_batches``/``dynamic_churn_fraction`` knobs, so it rides
    spec overrides — and the content hash — like any other tunable."""
    cfg = _config_for(spec)
    schedule = make_churn(
        spec.family,
        spec.n,
        spec.avg_degree,
        spec.graph_seed(),
        batches=cfg.dynamic_batches,
        churn_fraction=cfg.dynamic_churn_fraction,
    )
    if spec.algorithm == "dynamic_shard":
        engine = ShardedDynamicColoring(schedule, cfg)
    else:
        engine = DynamicColoring(schedule, cfg)
    result = engine.run(schedule)
    summary = result.summary()
    net = engine.net
    total_bits = net.metrics.total_bits
    payload: dict[str, Any] = {
        **spec.as_dict(),
        "n_actual": int(net.n),
        "m": int(net.m),
        "delta": int(net.delta),
        "rounds": summary["total_rounds"],
        "rounds_initial": summary["initial_rounds"],
        "proper": summary["proper_all"],
        "complete": summary["complete_all"],
        "colors_within_budget": summary["colors_within_budget"],
        "num_colors_used": engine.colors_used(),
        "batches": summary["batches"],
        "fallbacks": summary["fallbacks"],
        "mean_conflict_fraction": summary["mean_conflict_fraction"],
        "mean_recolored_fraction": summary["mean_recolored_fraction"],
        "max_recolored_fraction": summary["max_recolored_fraction"],
        "total_bits": int(total_bits),
        "bits_per_node": float(total_bits / max(net.n, 1)),
    }
    if isinstance(engine, ShardedDynamicColoring):
        routes = engine.route_summary()
        payload.update(
            k=int(engine.k),
            strategy=engine.strategy,
            mean_shards_touched=float(routes["mean_shards_touched"]),
            mean_reconcile_sweeps=float(routes["mean_sweeps"]),
            reconcile_touched=int(routes["reconcile_touched"]),
            max_reconcile_touched_fraction=float(
                routes["max_reconcile_touched_fraction"]
            ),
        )
    timings = {
        name: float(secs) for name, secs in net.metrics.phase_seconds.items()
    }
    return payload, timings


def _measure_shard(spec: TrialSpec) -> tuple[dict[str, Any], dict[str, float]]:
    """Sharded trial: partition strategy and k come from the config's
    ``shard_*`` knobs, so they ride spec overrides — and the content hash
    — like any other tunable.  Shards color inline (``workers=1``): the
    trial itself already runs inside a pool worker, and a sharded run is a
    pure function of the spec at any worker count."""
    cfg = _config_for(spec)
    graph = make_graph(spec.family, spec.n, spec.avg_degree, spec.graph_seed())
    engine = ShardedColoring(graph, cfg)
    res = engine.run()
    net = engine.net
    payload: dict[str, Any] = {
        **spec.as_dict(),
        "n_actual": int(net.n),
        "m": int(net.m),
        "delta": int(net.delta),
        "k": res.k,
        "strategy": res.strategy,
        "transport": res.transport,
        "rounds": int(res.rounds_total),
        "rounds_interior": int(res.rounds_interior),
        "proper": bool(res.proper),
        "complete": bool(res.complete),
        "num_colors_used": int(res.num_colors_used),
        "cut_edges": int(res.cut_edges),
        "cut_fraction": float(res.cut_fraction),
        "boundary_nodes": int(res.boundary_nodes),
        "initial_conflicts": int(res.initial_conflicts),
        "reconcile_touched": int(res.reconcile_touched),
        "touched_fraction": float(res.touched_fraction),
        "reconcile_rounds": int(res.reconcile_rounds),
        "reconcile_iterations": int(res.reconcile_iterations),
        "unresolved_conflicts": int(res.unresolved_conflicts),
        "total_bits": int(res.total_bits),
        "bits_per_node": float(res.total_bits / max(net.n, 1)),
    }
    timings = {name: float(secs) for name, secs in res.phase_seconds.items()}
    return payload, timings


def run_trial(spec: TrialSpec, timeout_s: float | None = None) -> TrialResult:
    """Execute one trial, never raising: failures become status records.

    ``guard`` on the result names the timeout protection that was live:
    ``"sigalrm"`` when the in-worker alarm armed, ``"none"`` when it
    could not (no budget, non-POSIX, non-main thread — the pool driver's
    wall-clock deadline is then the only backstop).
    """
    start = time.perf_counter()
    guard = "sigalrm" if _alarm_usable(timeout_s) else "none"
    try:
        # Chaos site: an injected crash here becomes a clean status=error
        # record; an injected *hang* outlives the alarm (it fires before
        # the guard arms), exercising the driver's wall-clock backstop.
        faults.inject("runner.trial", algorithm=spec.algorithm, seed=int(spec.seed))
        obs.count("repro_runner_trials_total", algorithm=spec.algorithm)
        with _alarm(timeout_s):
            with obs.span(
                "runner.trial", algorithm=spec.algorithm, seed=int(spec.seed)
            ):
                payload, timings = _measure(spec)
        obs.observe(
            "repro_runner_trial_us",
            (time.perf_counter() - start) * 1e6,
            algorithm=spec.algorithm,
        )
        return TrialResult(
            spec=spec, status="ok", payload=payload,
            elapsed_s=time.perf_counter() - start,
            timings=timings,
            guard=guard,
        )
    except TrialTimeout as exc:
        return TrialResult(
            spec=spec, status="timeout", error=str(exc),
            elapsed_s=time.perf_counter() - start,
            guard=guard,
        )
    except Exception:
        return TrialResult(
            spec=spec, status="error",
            error=traceback.format_exc(limit=8),
            elapsed_s=time.perf_counter() - start,
            guard=guard,
        )


def _pool_entry(spec_dict: dict, timeout_s: float | None) -> dict:
    """ProcessPool entry point: dict in, dict out (cheap, stable pickling)."""
    result = run_trial(TrialSpec.from_dict(spec_dict), timeout_s=timeout_s)
    return result.record()
