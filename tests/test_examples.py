"""Smoke tests: every example script runs to completion.

Examples are user-facing documentation; a broken example is a broken
deliverable.  Each runs as a subprocess with small arguments.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "400", "20", "1")
        assert "proper coloring : True" in out
        assert "rounds" in out

    def test_frequency_assignment(self):
        out = run_example("frequency_assignment.py", "400", "0.08", "1", "3")
        assert "interference-free" in out
        assert "broadcast (maintained)" in out
        assert "channels maintained in place" in out
        # Three movement steps → three maintained-plan rows.
        assert out.count("%") >= 3

    def test_scaling_study(self):
        out = run_example("scaling_study.py", "9", "1")
        assert "shape fits" in out

    def test_streaming_demo(self):
        out = run_example("streaming_demo.py", "300", "0.08", "1", "3")
        assert "streaming mobility batches" in out
        assert "proper=True complete=True" in out
        assert "bit-identical to the in-process engine" in out
        assert "clean shutdown" in out

    def test_decomposition_tour(self):
        out = run_example("decomposition_tour.py", "1")
        assert "pipeline walk-through" in out
        assert "proper=True" in out
