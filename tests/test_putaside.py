"""Tests for put-aside sets (Lemma 3.4, Algorithm 6, Lemmas 3.10–3.13)."""

import numpy as np
import pytest

from repro.config import ColoringConfig
from repro.core.cliques import compute_clique_info
from repro.core.putaside import (
    color_putaside_sets,
    compress_try,
    select_putaside_sets,
)
from repro.core.state import ColoringState
from repro.decomposition.acd import AlmostCliqueDecomposition
from repro.graphs.generators import clique_blob_graph
from repro.simulator.network import BroadcastNetwork
from repro.simulator.rng import SeedSequencer


def full_blob_setup(num=3, size=40, ext=5, seed=0, **cfg_kw):
    """Blobs dense enough that every clique classifies as *full*."""
    cfg = ColoringConfig.practical(**cfg_kw)
    g = clique_blob_graph(num, size, anti_edges_per_clique=4, external_edges_per_clique=ext, seed=seed)
    net = BroadcastNetwork(g, bandwidth_bits=cfg.bandwidth_bits(g[0]))
    labels = np.arange(net.n) // size
    acd = AlmostCliqueDecomposition(labels=labels, eps=cfg.eps)
    state = ColoringState(net)
    info = compute_clique_info(net, acd, cfg, num_colors=state.num_colors)
    return cfg, net, state, info


class TestSelection:
    def test_sets_are_inliers_of_full_cliques(self):
        cfg, net, state, info = full_blob_setup()
        aside, rep = select_putaside_sets(state, info, cfg, SeedSequencer(1))
        assert rep.cliques_with_sets > 0
        for c, nodes in aside.items():
            assert info.kind[c] == "full"
            assert (info.labels[nodes] == c).all()
            assert not info.outlier_mask[nodes].any()

    def test_no_edges_between_putaside_sets(self):
        # The Lemma 3.4 invariant, checked exhaustively.
        for seed in range(5):
            cfg, net, state, info = full_blob_setup(ext=30, seed=seed)
            aside, _ = select_putaside_sets(state, info, cfg, SeedSequencer(seed))
            all_nodes = {}
            for c, nodes in aside.items():
                for v in nodes:
                    all_nodes[int(v)] = c
            for v, c in all_nodes.items():
                for u in net.neighbors(v):
                    u = int(u)
                    if u in all_nodes and all_nodes[u] != c:
                        pytest.fail(f"edge ({v},{u}) joins two put-aside sets")

    def test_target_size_respected(self):
        cfg, net, state, info = full_blob_setup()
        aside, _ = select_putaside_sets(state, info, cfg, SeedSequencer(2))
        target = cfg.putaside_size(net.n)
        for nodes in aside.values():
            assert nodes.size <= target

    def test_rounds_charged(self):
        cfg, net, state, info = full_blob_setup()
        select_putaside_sets(state, info, cfg, SeedSequencer(3), phase="ps")
        assert net.metrics.rounds_in("ps") == 2

    def test_no_full_cliques_no_sets(self):
        # Heavy anti-edges → closed cliques → no put-aside sets.
        cfg = ColoringConfig.practical(c_log=0.2)
        g = clique_blob_graph(2, 40, anti_edges_per_clique=300, seed=4)
        net = BroadcastNetwork(g, bandwidth_bits=cfg.bandwidth_bits(g[0]))
        labels = np.arange(net.n) // 40
        acd = AlmostCliqueDecomposition(labels=labels, eps=cfg.eps)
        state = ColoringState(net)
        info = compute_clique_info(net, acd, cfg, num_colors=state.num_colors)
        if "full" not in info.kind:
            aside, rep = select_putaside_sets(state, info, cfg, SeedSequencer(4))
            assert aside == {}


class TestCompressTry:
    def test_colors_are_from_lists_and_palettes(self):
        cfg, net, state, info = full_blob_setup(seed=5)
        members = info.members(0)
        s_nodes = members[:6]
        lists = {int(v): np.arange(state.num_colors, dtype=np.int64) for v in s_nodes}
        nodes, colors = compress_try(state, s_nodes, lists, cfg, SeedSequencer(5))
        for v, c in zip(nodes, colors):
            assert c in lists[v]
            assert c in state.palette(v)

    def test_no_color_reuse_within_instance(self):
        cfg, net, state, info = full_blob_setup(seed=6)
        s_nodes = info.members(0)[:8]
        lists = {int(v): np.arange(state.num_colors, dtype=np.int64) for v in s_nodes}
        nodes, colors = compress_try(state, s_nodes, lists, cfg, SeedSequencer(6))
        assert len(set(colors)) == len(colors)

    def test_processes_in_id_order(self):
        cfg, net, state, info = full_blob_setup(seed=7)
        s_nodes = info.members(0)[:5]
        lists = {int(v): np.array([0], dtype=np.int64) for v in s_nodes}
        nodes, colors = compress_try(state, s_nodes, lists, cfg, SeedSequencer(7))
        # Only the smallest-ID node can take the single shared color.
        assert nodes == [int(np.min(s_nodes))]

    def test_empty_lists_color_nothing(self):
        cfg, net, state, info = full_blob_setup(seed=8)
        s_nodes = info.members(0)[:4]
        lists = {int(v): np.empty(0, dtype=np.int64) for v in s_nodes}
        nodes, colors = compress_try(state, s_nodes, lists, cfg, SeedSequencer(8))
        assert nodes == []

    def test_nothing_adopted_by_compress_try_itself(self):
        cfg, net, state, info = full_blob_setup(seed=9)
        s_nodes = info.members(0)[:4]
        lists = {int(v): np.arange(10, dtype=np.int64) for v in s_nodes}
        compress_try(state, s_nodes, lists, cfg, SeedSequencer(9))
        assert (state.colors < 0).all()


class TestColoringPutAside:
    def _run(self, seed, **cfg_kw):
        cfg, net, state, info = full_blob_setup(seed=seed, **cfg_kw)
        aside, _ = select_putaside_sets(state, info, cfg, SeedSequencer(seed))
        # Color everything else greedily (simulating the rest of the pipeline).
        aside_mask = np.zeros(net.n, dtype=bool)
        for nodes in aside.values():
            aside_mask[nodes] = True
        for v in range(net.n):
            if not aside_mask[v]:
                pal = state.palette(v)
                state.adopt(np.array([v]), np.array([pal[0]]))
        rep = color_putaside_sets(state, info, aside, cfg, SeedSequencer(seed + 100))
        return cfg, net, state, info, aside, rep

    def test_colors_all_putaside_nodes(self):
        cfg, net, state, info, aside, rep = self._run(seed=10)
        assert state.is_complete()
        state.verify()
        assert rep.left_uncolored == 0

    def test_works_across_seeds(self):
        for seed in range(5):
            _, _, state, _, _, rep = self._run(seed=20 + seed)
            assert rep.left_uncolored == 0
            state.verify()

    def test_rounds_constant_scale(self):
        cfg, net, state, info, aside, rep = self._run(seed=30)
        assert rep.compress_rounds <= 8
        assert rep.finish_rounds <= 4

    def test_empty_putaside_noop(self):
        cfg, net, state, info = full_blob_setup(seed=31)
        rep = color_putaside_sets(state, info, {}, cfg, SeedSequencer(31))
        assert rep.colored == 0
        assert rep.left_uncolored == 0
