#!/usr/bin/env python3
"""A guided tour of the algorithm's anatomy on one graph.

Walks a dense-plus-sparse instance through every phase of Algorithm 1,
printing what each phase saw and did: the almost-clique decomposition
(Lemma 2.5), slack generation (Lemma 2.12), the colorful matching
(Lemma 2.9), put-aside sets (Lemma 3.4), the synchronized color trial
(Lemma 3.5), MultiTrial (Lemma 2.14) and the put-aside finish (§3.3).

Run:  python examples/decomposition_tour.py [seed]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import BroadcastColoring, ColoringConfig
from repro.decomposition import decompose_distributed, validate_decomposition
from repro.graphs import hard_mix_graph, summarize_graph
from repro.simulator.network import BroadcastNetwork


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    cfg = ColoringConfig.practical(seed=seed)

    graph = hard_mix_graph(
        num_cliques=6,
        clique_size=72,
        sparse_nodes=1200,
        sparse_p=0.015,
        bridge_edges=300,
        seed=seed,
    )
    net = BroadcastNetwork(graph, bandwidth_bits=cfg.bandwidth_bits(graph[0]))
    s = summarize_graph(net)
    print(f"instance: n={s.n}, m={s.m}, Δ={s.delta} (6 dense blobs in a sparse sea)")

    # --- the decomposition on its own ----------------------------------
    acd = decompose_distributed(net, cfg)
    report = validate_decomposition(net, acd, check_sparsity=False)
    print(f"\nε-almost-clique decomposition (ε={cfg.eps}):")
    print(f"  {acd.num_cliques} almost-cliques, {acd.sparse_nodes.size} sparse nodes, "
          f"{acd.rounds_used} rounds")
    print(f"  Definition 2.2 validator: ok={report.ok}")
    sizes = [acd.members(c).size for c in range(acd.num_cliques)]
    print(f"  clique sizes: {sizes}")

    # --- the full pipeline with phase commentary ------------------------
    result = BroadcastColoring(graph, cfg).run()
    r = result.reports
    print("\npipeline walk-through:")
    ci = r["clique_info"]
    print(f"  setup      : {ci['num_cliques']} cliques "
          f"({ci['kinds']}), {ci['outliers']} outliers")
    print(f"  slack      : {r['slack']['participants']} participants, "
          f"{r['slack']['colored']} colored (p_s = {cfg.slack_probability})")
    m = r["matching"]
    print(f"  matching   : {m['total_pairs']} anti-edge pairs across "
          f"{m['cliques']} gated cliques in {m['rounds']} rounds")
    ps = r["putaside_select"]
    print(f"  put-aside  : {ps['total_selected']} nodes parked in "
          f"{ps['cliques_with_sets']} full cliques")
    print(f"  sparse     : MultiTrial colored {r['sparse']['colored']} "
          f"in {r['sparse']['iterations']} iterations")
    sct = r["sct"]
    print(f"  SCT        : {sct['tried']} permutation trials, {sct['colored']} colored; "
          f"permute ≤ {sct['permute_rounds_max']} rounds")
    print(f"  inliers    : MultiTrial on reserved prefixes colored "
          f"{r['inliers']['colored']}")
    pa = r["putaside"]
    print(f"  put-aside  : CompressTry+finish colored {pa['colored']} "
          f"({pa['compress_rounds']}+{pa['finish_rounds']} rounds)")
    print(f"  cleanup    : {r['cleanup']['rounds']} rounds")

    print(f"\nresult: proper={result.proper}, complete={result.complete}, "
          f"{result.num_colors_used}/{result.delta + 1} colors, "
          f"{result.rounds_total} total rounds, "
          f"max message {result.max_message_bits} bits")


if __name__ == "__main__":
    main()
