"""EA — ablations of the design choices DESIGN.md calls out.

Not paper tables: these isolate *why* each pipeline piece exists, by
removing it and measuring what breaks (always gracefully — the cleanup
safety net keeps the output proper, and its rounds expose the cost).

EA1: colorful matching off → closed cliques run out of clique palette.
EA2: put-aside sets off → full cliques lose their ℓ of temporary slack.
EA3: representative-set sampler — counter-mode PRG vs the [HN23]
     expander walk (results should agree; the device is interchangeable).
EA4: reserved prefix x(K) scaled to ~0 → MultiTrial's inlier lists decay.
"""

from __future__ import annotations

import numpy as np
import pytest

from _common import print_table
from repro.config import ColoringConfig
from repro.core.algorithm import BroadcastColoring
from repro.graphs.generators import clique_blob_graph


def closed_blobs(seed):
    # Heavy anti-degree → closed cliques (a_K large), and |K| > Δ+1 so the
    # clique palette genuinely runs short without the matching's surplus.
    return clique_blob_graph(4, 64, 300, 20, seed=seed)


def full_blobs(seed):
    return clique_blob_graph(4, 64, 8, 8, seed=seed)


def _run(graph, pinned_acd=False, **cfg_kw):
    cfg = ColoringConfig.practical(c_log=0.3, **cfg_kw)
    decomposition = "distributed"
    if pinned_acd:
        # High anti-degree blobs sit at the edge of Definition 2.2(2b); pin
        # the ground-truth decomposition so the ablation measures the
        # matching, not the ACD's eviction choices.
        from repro.decomposition.acd import AlmostCliqueDecomposition

        n = graph[0]
        decomposition = AlmostCliqueDecomposition(
            labels=np.arange(n, dtype=np.int64) // 64, eps=cfg.eps
        )
    res = BroadcastColoring(graph, cfg, decomposition=decomposition).run()
    assert res.proper and res.complete
    return res


@pytest.mark.benchmark(group="EA-ablation")
def test_ea1_matching_ablation(benchmark):
    rows = []
    for seed in range(3):
        on = _run(closed_blobs(seed), pinned_acd=True, seed=seed)
        off = _run(closed_blobs(seed), pinned_acd=True, seed=seed, enable_matching=False)
        rows.append(
            (
                seed,
                on.reports["sct"]["palette_deficits"],
                off.reports["sct"]["palette_deficits"],
                on.rounds_cleanup,
                off.rounds_cleanup,
            )
        )
    print_table(
        "EA1 colorful matching on/off (closed cliques, a_K ≈ 19)",
        ["seed", "palette deficits (on)", "(off)", "cleanup rounds (on)", "(off)"],
        rows,
    )
    # Without the matching, strictly more cliques run out of palette
    # (Claim 2.8's surplus is gone) — measured via deficits + cleanup.
    deficits_on = sum(r[1] for r in rows)
    deficits_off = sum(r[2] for r in rows)
    assert deficits_off >= deficits_on
    benchmark.pedantic(
        lambda: _run(closed_blobs(9), pinned_acd=True, seed=9), rounds=1, iterations=1
    )


@pytest.mark.benchmark(group="EA-ablation")
def test_ea2_putaside_ablation(benchmark):
    rows = []
    worse = 0
    for seed in range(3):
        on = _run(full_blobs(seed), seed=seed)
        off = _run(full_blobs(seed), seed=seed, enable_putaside=False)
        # Without P_K the inlier MultiTrial loses its ℓ of temporary slack:
        # more inliers fall through to the full-range retry / cleanup.
        spill_on = on.reports.get("inliers_fullrange", {}).get("colored", 0) + (
            on.rounds_cleanup
        )
        spill_off = off.reports.get("inliers_fullrange", {}).get("colored", 0) + (
            off.rounds_cleanup
        )
        worse += spill_off >= spill_on
        rows.append((seed, spill_on, spill_off, on.rounds_total, off.rounds_total))
    print_table(
        "EA2 put-aside sets on/off (full cliques)",
        ["seed", "spillover (on)", "spillover (off)", "rounds (on)", "rounds (off)"],
        rows,
    )
    assert worse >= 2  # the ablation hurts (or ties) in most seeds
    benchmark.pedantic(lambda: _run(full_blobs(9), seed=9), rounds=1, iterations=1)


@pytest.mark.benchmark(group="EA-ablation")
def test_ea3_sampler_ablation(benchmark):
    rows = []
    for seed in range(3):
        prg = _run(full_blobs(seed), seed=seed, multitrial_sampler="prg")
        exp = _run(full_blobs(seed), seed=seed, multitrial_sampler="expander")
        rows.append(
            (
                seed,
                prg.rounds_algorithm,
                exp.rounds_algorithm,
                prg.rounds_cleanup,
                exp.rounds_cleanup,
            )
        )
    print_table(
        "EA3 representative-set device: counter-mode PRG vs expander walk",
        ["seed", "PRG rounds", "expander rounds", "PRG cleanup", "expander cleanup"],
        rows,
    )
    # Interchangeable devices: round counts within a small factor.
    for _, a, b, _, _ in rows:
        assert abs(a - b) <= max(a, b) * 0.5 + 4
    benchmark.pedantic(
        lambda: _run(full_blobs(8), seed=8, multitrial_sampler="expander"),
        rounds=1,
        iterations=1,
    )


@pytest.mark.benchmark(group="EA-ablation")
def test_ea4_reserved_prefix_ablation(benchmark):
    """Shrink x(K) to ~nothing: the SCT gets more palette (fewer deficits)
    but the inliers' MultiTrial lists [x(v)] collapse — the reserve is a
    *trade*, and Eq. (5) sizes it so both sides work."""
    rows = []
    for seed in range(3):
        normal = _run(full_blobs(seed), seed=seed)
        tiny = _run(full_blobs(seed), seed=seed, x_full_factor=0.02)
        inlier_mt_normal = normal.reports.get("inliers", {}).get("colored", 0)
        inlier_mt_tiny = tiny.reports.get("inliers", {}).get("colored", 0)
        rows.append(
            (
                seed,
                inlier_mt_normal,
                inlier_mt_tiny,
                normal.rounds_cleanup,
                tiny.rounds_cleanup,
            )
        )
    print_table(
        "EA4 reserved prefix x(K): Eq. (5) vs ~0",
        ["seed", "inlier-MT colored (normal)", "(tiny x)", "cleanup (normal)", "(tiny x)"],
        rows,
    )
    benchmark.pedantic(lambda: _run(full_blobs(7), seed=7), rounds=1, iterations=1)
