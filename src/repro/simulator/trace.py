"""Round-by-round execution traces.

A :class:`TraceRecorder` subscribes to the metrics' round stream and
snapshots progress (uncolored count) per synchronous round.  Traces power
the per-phase progress plots of the experiment harness and give tests a
way to assert dynamic invariants — e.g. that the uncolored count is
non-increasing over the whole run (monotone colorings never release a
node).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = ["TraceEvent", "TraceRecorder"]


@dataclass(frozen=True)
class TraceEvent:
    index: int  # global round index (0-based)
    phase: str
    uncolored: int
    messages: int  # broadcasts in this round

    def as_tuple(self) -> tuple:
        return (self.index, self.phase, self.uncolored, self.messages)


class TraceRecorder:
    """Collects one :class:`TraceEvent` per round.

    ``progress_probe`` is called at recording time and must return the
    current number of uncolored nodes (the algorithm installs a closure
    over its state).
    """

    def __init__(self, progress_probe: Callable[[], int]):
        self._probe = progress_probe
        self.events: list[TraceEvent] = []

    def record(self, phase: str, messages: int) -> None:
        self.events.append(
            TraceEvent(
                index=len(self.events),
                phase=phase,
                uncolored=int(self._probe()),
                messages=int(messages),
            )
        )

    # -- analysis helpers -------------------------------------------------
    def uncolored_series(self) -> list[int]:
        return [e.uncolored for e in self.events]

    def phases_seen(self) -> list[str]:
        out: list[str] = []
        for e in self.events:
            if not out or out[-1] != e.phase:
                out.append(e.phase)
        return out

    def rounds_in_phase(self, phase: str) -> int:
        return sum(1 for e in self.events if e.phase == phase)

    def is_monotone(self) -> bool:
        series = self.uncolored_series()
        return all(b <= a for a, b in zip(series, series[1:]))

    def as_rows(self) -> list[tuple]:
        return [e.as_tuple() for e in self.events]
