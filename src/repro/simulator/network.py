"""The communication graph and the synchronous broadcast round engine.

``BroadcastNetwork`` wraps the input graph in CSR form (``indptr`` /
``indices``) and provides the two execution styles described in DESIGN.md:

* :meth:`broadcast_round` — explicit message delivery: a dict of per-node
  :class:`~repro.simulator.messages.Broadcast` objects in, a dict of
  per-node inboxes out.  Used by the clique-internal protocols (Relabel,
  Permute, CompressTry, LearnPalette) where the message content *is* the
  protocol.
* vectorized neighbor primitives (:meth:`neighbor_min`, edge arrays, ...)
  used by whole-graph rounds (TryColor, slack generation, MultiTrial) whose
  per-node messages are single colors/seeds; those rounds account bits
  analytically via :meth:`RoundMetrics.add_uniform_round`.

Both styles enforce the BCONGEST bandwidth cap: any message above
``bandwidth_bits`` raises :class:`BandwidthExceeded`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.simulator.messages import Broadcast
from repro.simulator.metrics import RoundMetrics

__all__ = [
    "BroadcastNetwork",
    "BandwidthExceeded",
    "DeltaReport",
    "ShardView",
    "gather_csr_rows",
    "shard_view_from_csr",
]


def gather_csr_rows(
    indptr: np.ndarray, indices: np.ndarray, rows: np.ndarray
) -> np.ndarray:
    """Concatenated CSR adjacency of ``rows`` (one fancy-index gather, no
    per-row python loop).  Works on any CSR buffer pair — including
    read-only shared-memory attachments."""
    starts = indptr[rows]
    counts = indptr[rows + 1] - starts
    total = int(counts.sum())
    if not total:
        return np.empty(0, dtype=indices.dtype)
    # Position j of the output reads indices[starts[r] + (j - row_base[r])]
    # for the row r that owns j.
    row_base = np.concatenate(([0], np.cumsum(counts)[:-1]))
    idx = np.arange(total, dtype=np.int64) + np.repeat(starts - row_base, counts)
    return indices[idx]


class BandwidthExceeded(RuntimeError):
    """A broadcast exceeded the model's per-round bit budget."""


@dataclass
class DeltaReport:
    """What one :meth:`BroadcastNetwork.apply_delta` call changed.

    ``edges_added``/``edges_removed`` count *undirected* edges that
    actually changed (no-op insertions of existing edges and deletions of
    absent edges are dropped, and reported separately as ``ignored``).
    ``rounds`` is the announcement cost charged to the metrics: a node
    with c incident changes pipelines one O(log n)-bit announcement per
    round, so the batch lands in max-c rounds.
    """

    edges_added: int = 0
    edges_removed: int = 0
    ignored: int = 0
    rounds: int = 0
    messages: int = 0
    bits_per_message: int = 0
    delta_before: int = 0
    delta_after: int = 0

    def as_dict(self) -> dict:
        return {
            "edges_added": self.edges_added,
            "edges_removed": self.edges_removed,
            "ignored": self.ignored,
            "rounds": self.rounds,
            "messages": self.messages,
            "bits_per_message": self.bits_per_message,
            "delta_before": self.delta_before,
            "delta_after": self.delta_after,
        }


@dataclass
class ShardView:
    """One shard's worker-visible slice of a partitioned graph — everything
    a :mod:`repro.shard` worker is allowed to see (DESIGN.md §7).

    The *interior* (``nodes`` + ``interior_edges``) is the worker's to
    color.  The *frontier* (``ghost_nodes`` + ``cut_edges``) is strictly
    read-only: ghost nodes belong to other shards, their state is never
    known during interior coloring and never written by anyone but their
    owner.  The frontier arrays are handed out with ``writeable=False`` so
    a buggy worker mutating its ghosts fails loudly instead of silently
    corrupting the distributed invariant.
    """

    shard: int
    n_global: int
    nodes: np.ndarray
    """Global ids of the interior nodes, sorted ascending; local id i is
    ``nodes[i]`` (the relabeling every other array uses)."""
    interior_edges: np.ndarray
    """(m_i, 2) interior-interior undirected edges in *local* ids."""
    ghost_nodes: np.ndarray
    """Global ids of the cut neighbors (frontier), sorted; read-only."""
    cut_edges: np.ndarray
    """(m_c, 2) cut edges as (local interior id, ghost index into
    ``ghost_nodes``); read-only."""

    @property
    def n_interior(self) -> int:
        return int(self.nodes.size)

    @property
    def n_ghost(self) -> int:
        return int(self.ghost_nodes.size)

    def interior_graph(self) -> tuple[int, np.ndarray]:
        """The ``(n, edges)`` pair of the interior-induced subgraph, the
        worker's coloring instance."""
        return self.n_interior, self.interior_edges

    def cut_degrees(self) -> np.ndarray:
        """Per interior node, its number of cut (ghost) neighbors."""
        out = np.zeros(self.n_interior, dtype=np.int64)
        if self.cut_edges.size:
            out += np.bincount(self.cut_edges[:, 0], minlength=self.n_interior)
        return out


def shard_view_from_csr(
    n: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    members: np.ndarray,
    assignment: np.ndarray,
    local: np.ndarray,
    shard: int,
) -> ShardView:
    """Build one shard's :class:`ShardView` straight from CSR buffers —
    the zero-copy twin of :meth:`BroadcastNetwork.induced_subgraph`.

    Where ``induced_subgraph`` scans the full undirected edge array per
    shard (O(m) each, O(m·k) across a partition), this gathers only the
    *members'* CSR rows — O(vol(shard)) — and works equally on in-process
    arrays and read-only ``multiprocessing.shared_memory`` attachments,
    which is how ``shard_transport="shm"`` workers reconstruct their view
    without ever receiving O(n + m) pickled bytes.  Output arrays are
    bit-identical to ``induced_subgraph``'s (same contents, same order):
    members ascend and CSR rows are sorted, so interior edges fall out
    already in undirected (u, v)-lexicographic order; cut edges get one
    small lexsort over the cut only to match the reference order.

    ``members`` must be the shard's sorted global ids, ``assignment`` the
    full shard-id-per-node array, and ``local`` the per-node local rank
    (:meth:`repro.shard.partition.Partition.local_ids`).
    """
    members = np.asarray(members, dtype=np.int64)
    nb = gather_csr_rows(indptr, indices, members)
    if nb.size:
        deg = indptr[members + 1] - indptr[members]
        src = np.repeat(members, deg)
        inside = assignment[nb] == shard
        keep = inside & (src < nb)
        interior = np.stack([local[src[keep]], local[nb[keep]]], axis=1)
        cross = ~inside
        inner_end, ghost_end = src[cross], nb[cross]
        ghost_nodes = np.unique(ghost_end)
        # Reference order: undirected edges sorted by (min, max).
        order = np.lexsort(
            (
                np.maximum(inner_end, ghost_end),
                np.minimum(inner_end, ghost_end),
            )
        )
        inner_end, ghost_end = inner_end[order], ghost_end[order]
        cut = np.stack(
            [local[inner_end], np.searchsorted(ghost_nodes, ghost_end)],
            axis=1,
        )
    else:
        interior = np.empty((0, 2), dtype=np.int64)
        ghost_nodes = np.empty(0, dtype=np.int64)
        cut = np.empty((0, 2), dtype=np.int64)
    ghost_nodes.flags.writeable = False
    cut.flags.writeable = False
    return ShardView(
        shard=int(shard),
        n_global=int(n),
        nodes=members,
        interior_edges=interior,
        ghost_nodes=ghost_nodes,
        cut_edges=cut,
    )


def _edges_from_input(graph) -> tuple[int, np.ndarray]:
    """Normalize the input into (n, undirected edge array of shape (m, 2)).

    Accepts a networkx graph or an (n, edge-iterable) pair.
    """
    # networkx graph?
    if hasattr(graph, "number_of_nodes") and hasattr(graph, "edges"):
        nodes = list(graph.nodes())
        n = len(nodes)
        relabel = {v: i for i, v in enumerate(nodes)}
        edges = np.array(
            [(relabel[u], relabel[v]) for u, v in graph.edges() if u != v],
            dtype=np.int64,
        ).reshape(-1, 2)
        return n, edges
    # (n, edges) pair — fast path for numpy arrays (the generators' output).
    n, edge_iter = graph
    if isinstance(edge_iter, np.ndarray) and edge_iter.ndim == 2:
        edges = edge_iter.astype(np.int64, copy=False)
        edges = edges[edges[:, 0] != edges[:, 1]]
    else:
        edges = np.array(
            [(int(u), int(v)) for u, v in edge_iter if u != v], dtype=np.int64
        )
        edges = edges.reshape(-1, 2)
    if edges.size and (edges.min() < 0 or edges.max() >= n):
        raise ValueError("edge endpoint out of range")
    return int(n), edges


class BroadcastNetwork:
    """The n-node communication graph G = (V, E) plus the round engine.

    Parameters
    ----------
    graph:
        A ``networkx.Graph`` or an ``(n, edges)`` pair.  Self-loops are
        dropped; parallel edges collapse.
    bandwidth_bits:
        The per-message bit budget (BCONGEST's O(log n)).  ``None`` disables
        enforcement (useful for baselines run in LOCAL for comparison).
    metrics:
        Optional shared :class:`RoundMetrics`; a fresh one by default.
    """

    def __init__(
        self,
        graph,
        bandwidth_bits: int | None = None,
        metrics: RoundMetrics | None = None,
    ) -> None:
        n, edges = _edges_from_input(graph)
        self.n = n
        # One lexsort over the 2m directed pairs builds everything: the CSR
        # arrays, the deduplication (adjacent-equal pairs in sorted order),
        # and the undirected edge list (the src < dst half of the CSR order
        # is exactly the (lo, hi)-sorted unique edge array).  No second
        # sort of data the CSR sort already ordered.
        if edges.size:
            src = np.concatenate([edges[:, 0], edges[:, 1]])
            dst = np.concatenate([edges[:, 1], edges[:, 0]])
            order = np.lexsort((dst, src))
            src, dst = src[order], dst[order]
            keep = np.empty(src.size, dtype=bool)
            keep[0] = True
            np.logical_or(src[1:] != src[:-1], dst[1:] != dst[:-1], out=keep[1:])
            src, dst = src[keep], dst[keep]
        else:
            src = np.empty(0, dtype=np.int64)
            dst = np.empty(0, dtype=np.int64)
        self.bandwidth_bits = bandwidth_bits
        self.metrics = metrics if metrics is not None else RoundMetrics()
        self._set_csr(src, dst)

    @classmethod
    def from_sorted_pairs(
        cls,
        n: int,
        src: np.ndarray,
        dst: np.ndarray,
        bandwidth_bits: int | None = None,
        metrics: RoundMetrics | None = None,
    ) -> "BroadcastNetwork":
        """Build a network from directed pairs already lexsorted by
        (src, dst), deduplicated, and free of self-loops — skipping
        ``__init__``'s O(m log m) lexsort.  This is the trusted fast path
        for callers that *derived* the pairs from an existing CSR (shard
        workers slicing their interior out of the shared global graph);
        the contract is not checked."""
        net = cls.__new__(cls)
        net.n = int(n)
        net.bandwidth_bits = bandwidth_bits
        net.metrics = metrics if metrics is not None else RoundMetrics()
        net._set_csr(
            np.ascontiguousarray(src, dtype=np.int64),
            np.ascontiguousarray(dst, dtype=np.int64),
        )
        return net

    @classmethod
    def from_csr(
        cls,
        n: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        bandwidth_bits: int | None = None,
        metrics: RoundMetrics | None = None,
    ) -> "BroadcastNetwork":
        """Build a network over existing CSR buffers (e.g. read-only
        shared-memory attachments) without re-sorting: ``indices`` must be
        row-sorted and deduplicated, as every CSR this module emits is."""
        indptr = np.asarray(indptr, dtype=np.int64)
        degrees = np.diff(indptr)
        src = np.repeat(np.arange(int(n), dtype=np.int64), degrees)
        return cls.from_sorted_pairs(
            n, src, indices, bandwidth_bits=bandwidth_bits, metrics=metrics
        )

    def _set_csr(self, src: np.ndarray, dst: np.ndarray) -> None:
        """(Re)build every derived array from sorted unique directed pairs.

        ``src``/``dst`` must already be lexsorted by (src, dst) and free of
        duplicates and self-loops — the contract both ``__init__`` and
        :meth:`apply_delta` establish before calling."""
        n = self.n
        self.indices = dst
        self.indptr = np.zeros(n + 1, dtype=np.int64)
        if src.size:
            np.cumsum(np.bincount(src, minlength=n), out=self.indptr[1:])
        # Edge-source array aligned with ``indices``: indices[k] is a
        # neighbor of edge_src[k].
        self.edge_src = src
        und_half = src < dst
        self._und_edges = np.stack([src[und_half], dst[und_half]], axis=1)
        self.m = self._und_edges.shape[0]

        self.degrees = np.diff(self.indptr).astype(np.int64)
        self.delta = int(self.degrees.max()) if n else 0
        self._adj_sets: list[set[int]] | None = None

    # ------------------------------------------------------------------
    # Topology access
    # ------------------------------------------------------------------
    def neighbors(self, v: int) -> np.ndarray:
        """Neighbor ids of v as an array view (sorted)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def degree(self, v: int) -> int:
        return int(self.degrees[v])

    def adjacency_set(self, v: int) -> set[int]:
        """Neighbor set of v (cached)."""
        if self._adj_sets is None:
            self._adj_sets = [set() for _ in range(self.n)]
            for u in range(self.n):
                self._adj_sets[u] = set(self.neighbors(u).tolist())
        return self._adj_sets[v]

    def has_edge(self, u: int, v: int) -> bool:
        return v in self.adjacency_set(u)

    def undirected_edges(self) -> np.ndarray:
        """(m, 2) array of unique undirected edges (u < v)."""
        return self._und_edges

    def subgraph_degrees(self, members: np.ndarray) -> np.ndarray:
        """For each node, its number of neighbors inside ``members`` (bool
        mask over V).  Vectorized over the CSR arrays (segment-wise
        ``reduceat`` — the ``.at`` ufunc form is ~10× slower)."""
        mask = np.asarray(members, dtype=bool)
        out = np.zeros(self.n, dtype=np.int64)
        if self.indices.size:
            inside = mask[self.indices].astype(np.int64)
            has = self.degrees > 0
            out[has] = np.add.reduceat(inside, self.indptr[:-1][has])
        return out

    def induced_subgraph(self, members: np.ndarray, shard: int = 0) -> ShardView:
        """Extract the induced subgraph of ``members`` (bool mask or id
        array) with *frontier ghosting* — the :class:`ShardView` a
        :mod:`repro.shard` worker receives.

        Interior-interior edges are relabeled into local ids
        ``0..|members|-1`` (the worker's coloring instance); edges with
        exactly one endpoint inside become cut edges against the ghost
        frontier (the outside endpoints, deduplicated).  The frontier
        arrays come back write-protected — the ghost contract is enforced
        by numpy, not by convention.
        """
        mask = np.asarray(members)
        if mask.dtype != np.bool_:
            idx = np.asarray(members, dtype=np.int64)
            mask = np.zeros(self.n, dtype=bool)
            mask[idx] = True
        nodes = np.flatnonzero(mask).astype(np.int64)
        local = np.full(self.n, -1, dtype=np.int64)
        local[nodes] = np.arange(nodes.size, dtype=np.int64)
        und = self._und_edges
        if und.size:
            in_u, in_v = mask[und[:, 0]], mask[und[:, 1]]
            both = in_u & in_v
            interior = np.stack(
                [local[und[both, 0]], local[und[both, 1]]], axis=1
            )
            cross = in_u ^ in_v
            ce = und[cross]
            inner_end = np.where(in_u[cross], ce[:, 0], ce[:, 1])
            ghost_end = np.where(in_u[cross], ce[:, 1], ce[:, 0])
            ghost_nodes = np.unique(ghost_end)
            cut = np.stack(
                [local[inner_end], np.searchsorted(ghost_nodes, ghost_end)],
                axis=1,
            )
        else:
            interior = np.empty((0, 2), dtype=np.int64)
            ghost_nodes = np.empty(0, dtype=np.int64)
            cut = np.empty((0, 2), dtype=np.int64)
        ghost_nodes.flags.writeable = False
        cut.flags.writeable = False
        return ShardView(
            shard=int(shard),
            n_global=self.n,
            nodes=nodes,
            interior_edges=interior,
            ghost_nodes=ghost_nodes,
            cut_edges=cut,
        )

    # ------------------------------------------------------------------
    # Dynamic topology (the repro.dynamic substrate)
    # ------------------------------------------------------------------
    def _normalize_delta_edges(self, edges: np.ndarray | None) -> np.ndarray:
        """Undirected pair array → sorted unique *directed* key array
        ``src·n + dst`` (both orientations, self-loops dropped)."""
        if edges is None:
            return np.empty(0, dtype=np.int64)
        arr = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        arr = arr[arr[:, 0] != arr[:, 1]]
        if arr.size and (arr.min() < 0 or arr.max() >= self.n):
            raise ValueError("delta edge endpoint out of range")
        if not arr.size:
            return np.empty(0, dtype=np.int64)
        keys = np.concatenate(
            [arr[:, 0] * self.n + arr[:, 1], arr[:, 1] * self.n + arr[:, 0]]
        )
        return np.unique(keys)

    def apply_delta(
        self,
        insert_edges: np.ndarray | None = None,
        delete_edges: np.ndarray | None = None,
        phase: str = "dynamic/delta",
        silent_nodes: np.ndarray | None = None,
    ) -> DeltaReport:
        """Mutate the topology by a batch of edge deletions + insertions.

        The update is one *sorted merge*: only the delta (size k) is
        sorted; the 2m unchanged directed pairs keep the CSR order they
        already have and are merged in O(m + k) — never re-lexsorted
        (DESIGN.md §6).  Deletions are applied before insertions, so a
        same-batch delete+insert of one edge is a net no-op.

        Announcement traffic is charged through the shared metrics: each
        endpoint of a changed edge broadcasts one ``⌈log₂ n⌉+1``-bit
        (neighbor id, add/remove flag) message; a node with c incident
        changes pipelines them, so the batch costs max-c rounds.  No-op
        changes (inserting an existing edge, deleting an absent one) are
        dropped before accounting.  ``silent_nodes`` (e.g. nodes powering
        down in a departure) cannot broadcast: their announcements are
        not charged — their neighbors still announce the shared edge's
        other orientation.
        """
        old_keys = self.edge_src * self.n + self.indices  # sorted, unique
        del_keys = self._normalize_delta_edges(delete_edges)
        ins_keys = self._normalize_delta_edges(insert_edges)
        ignored = 0

        keep = np.ones(old_keys.size, dtype=bool)
        if del_keys.size:
            pos = np.searchsorted(old_keys, del_keys)
            ok = pos < old_keys.size
            ok[ok] = old_keys[pos[ok]] == del_keys[ok]
            ignored += int((~ok).sum()) // 2
            keep[pos[ok]] = False
        kept = old_keys[keep]

        if ins_keys.size:
            pos = np.searchsorted(kept, ins_keys)
            ok = pos < kept.size
            present = np.zeros(ins_keys.size, dtype=bool)
            present[ok] = kept[pos[ok]] == ins_keys[ok]
            ignored += int(present.sum()) // 2
            ins_keys = ins_keys[~present]
            merged = np.insert(kept, np.searchsorted(kept, ins_keys), ins_keys)
        else:
            merged = kept

        removed = int((~keep).sum()) // 2
        added = ins_keys.size // 2
        delta_before = self.delta

        # Announcement accounting: every applied directed change is one
        # message from its source endpoint.  The bandwidth check runs
        # *before* the topology mutates, so a rejected delta leaves the
        # network untouched.
        changed_src = np.concatenate(
            [old_keys[~keep] // self.n, ins_keys // self.n]
        )
        if silent_nodes is not None and changed_src.size:
            silent = np.zeros(self.n, dtype=bool)
            silent[np.asarray(silent_nodes, dtype=np.int64)] = True
            changed_src = changed_src[~silent[changed_src]]
        bits = int(math.ceil(math.log2(max(self.n, 2)))) + 1
        if (
            changed_src.size
            and self.bandwidth_bits is not None
            and bits > self.bandwidth_bits
        ):
            raise BandwidthExceeded(
                f"delta announcement of {bits} bits exceeds cap "
                f"{self.bandwidth_bits}"
            )
        self._set_csr(merged // self.n, merged % self.n)
        if changed_src.size:
            rounds = int(np.bincount(changed_src, minlength=self.n).max())
            self.metrics.add_bulk_rounds(
                rounds, int(changed_src.size), bits, phase=phase
            )
        else:
            rounds = 0
        return DeltaReport(
            edges_added=added,
            edges_removed=removed,
            ignored=ignored,
            rounds=rounds,
            messages=int(changed_src.size),
            bits_per_message=bits if changed_src.size else 0,
            delta_before=delta_before,
            delta_after=self.delta,
        )

    # ------------------------------------------------------------------
    # The round engine (message-level)
    # ------------------------------------------------------------------
    def _check_bandwidth(self, msg: Broadcast) -> None:
        if self.bandwidth_bits is not None and msg.bits > self.bandwidth_bits:
            raise BandwidthExceeded(
                f"broadcast '{msg.tag}' is {msg.bits} bits; "
                f"bandwidth cap is {self.bandwidth_bits} bits"
            )

    def broadcast_round(
        self,
        outgoing: Mapping[int, Broadcast],
        phase: str | None = None,
        restrict_to: Sequence[int] | None = None,
    ) -> dict[int, list[tuple[int, Broadcast]]]:
        """Execute one synchronous round.

        ``outgoing`` maps node → its broadcast (nodes absent stay silent).
        Returns node → list of (sender, message) over all its *broadcasting*
        neighbors.  When ``restrict_to`` is given, only those nodes'
        inboxes are materialized (a pure optimization — delivery semantics
        are unchanged; every neighbor still "hears" the broadcast).
        """
        bits = []
        for v, msg in outgoing.items():
            if not 0 <= v < self.n:
                raise ValueError(f"unknown sender {v}")
            self._check_bandwidth(msg)
            bits.append(msg.bits)
        self.metrics.add_round(bits, phase=phase)

        if restrict_to is None:
            receivers: Iterable[int] = range(self.n)
        else:
            receivers = restrict_to
        inboxes: dict[int, list[tuple[int, Broadcast]]] = {}
        for v in receivers:
            inbox = []
            for u in self.neighbors(v):
                u = int(u)
                if u in outgoing:
                    inbox.append((u, outgoing[u]))
            inboxes[v] = inbox
        return inboxes

    # ------------------------------------------------------------------
    # Vectorized collectives (whole-graph single-word rounds)
    # ------------------------------------------------------------------
    def account_vector_round(
        self, num_broadcasters: int, bits_per_message: int, phase: str | None = None
    ) -> None:
        """Account one vectorized round (bits checked against the cap)."""
        if self.bandwidth_bits is not None and bits_per_message > self.bandwidth_bits:
            raise BandwidthExceeded(
                f"vectorized round message of {bits_per_message} bits exceeds "
                f"cap {self.bandwidth_bits}"
            )
        self.metrics.add_uniform_round(num_broadcasters, bits_per_message, phase=phase)

    def account_vector_rounds(
        self,
        num_rounds: int,
        num_broadcasters: int,
        bits_per_message: int,
        phase: str | None = None,
    ) -> None:
        """Bulk-account ``num_rounds`` identical vectorized rounds (one cap
        check, closed-form accounting — see
        :meth:`RoundMetrics.add_uniform_rounds`)."""
        if self.bandwidth_bits is not None and bits_per_message > self.bandwidth_bits:
            raise BandwidthExceeded(
                f"vectorized round message of {bits_per_message} bits exceeds "
                f"cap {self.bandwidth_bits}"
            )
        self.metrics.add_uniform_rounds(
            num_rounds, num_broadcasters, bits_per_message, phase=phase
        )

    def neighbor_min(self, values: np.ndarray, default: float | int) -> np.ndarray:
        """Per-node min over neighbor values (one broadcast round's worth of
        information).  ``default`` fills isolated nodes."""
        vals = np.asarray(values)
        out = np.full(self.n, default, dtype=vals.dtype)
        if self.indices.size:
            gathered = vals[self.indices]
            has = self.degrees > 0
            mins = np.minimum.reduceat(gathered, self.indptr[:-1][has])
            out[has] = mins
        return out

    def neighbor_sum(self, values: np.ndarray) -> np.ndarray:
        """Per-node sum over neighbor values (segment-wise ``reduceat`` on
        the CSR arrays, like :meth:`neighbor_min`)."""
        vals = np.asarray(values)
        out = np.zeros(self.n, dtype=vals.dtype if vals.dtype.kind == "f" else np.int64)
        if self.indices.size:
            gathered = vals[self.indices].astype(out.dtype, copy=False)
            has = self.degrees > 0
            out[has] = np.add.reduceat(gathered, self.indptr[:-1][has])
        return out

    def neighbor_any(self, flags: np.ndarray) -> np.ndarray:
        """Per-node OR over neighbor boolean flags."""
        return self.neighbor_sum(np.asarray(flags, dtype=np.int64)) > 0
