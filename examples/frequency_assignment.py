#!/usr/bin/env python3
"""Frequency assignment on a *mobile* wireless network — the paper's
motivating scenario (§1), extended to the regime broadcasts are really
for: the interference graph keeps changing.

Access points scattered over the unit square interfere within a radius;
interference = edges of a geometric graph; a proper coloring is an
interference-free channel plan.  Transmitters then move (and a few
hand off: power down, re-appear elsewhere), so the plan must be
*maintained*, not recomputed: the `repro.dynamic` engine detects the
handful of newly conflicting links after each movement step and
re-assigns only those channels, with the rest of the deployment keeping
its frequencies.

Run:  python examples/frequency_assignment.py [num_aps] [radius] [seed] [steps]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import ColoringConfig, DynamicColoring
from repro.baselines import greedy_coloring, johansson_coloring
from repro.graphs import summarize_graph
from repro.graphs.churn import mobile_geometric_churn
from repro.simulator.network import BroadcastNetwork


def channel_plan_report(name: str, colors: np.ndarray) -> None:
    colored = colors[colors >= 0]
    channels = np.unique(colored).size
    # Spectrum utilization: how balanced is channel usage?
    counts = np.bincount(colored)
    counts = counts[counts > 0]
    balance = counts.min() / counts.max() if counts.size else 0.0
    print(f"  {name:<22} channels={channels:<4} balance={balance:.2f}")


def main() -> None:
    num_aps = int(sys.argv[1]) if len(sys.argv) > 1 else 1500
    radius = float(sys.argv[2]) if len(sys.argv) > 2 else 0.045
    seed = int(sys.argv[3]) if len(sys.argv) > 3 else 1
    steps = int(sys.argv[4]) if len(sys.argv) > 4 else 6

    schedule = mobile_geometric_churn(
        num_aps, radius, steps, step=0.25 * radius, seed=seed,
        handoff_fraction=0.01,
    )
    net0 = BroadcastNetwork(schedule.initial)
    s = summarize_graph(net0)
    print(
        f"wireless deployment: {s.n} access points, interference degree "
        f"max Δ={s.delta}, avg {s.avg_degree:.1f}"
    )

    cfg = ColoringConfig.practical(seed=seed)
    engine = DynamicColoring(schedule, cfg)
    assert engine.is_proper() and engine.is_complete()
    print(
        f"\ninitial plan (broadcast algorithm): {engine.initial_rounds} rounds; "
        f"all links interference-free"
    )

    print(f"\ntransmitters move for {steps} steps; channels maintained in place:")
    print("  step  moved-links  conflicts  re-assigned  share   channels  rounds")
    for report in (engine.apply_batch(b) for b in schedule):
        assert report.proper and report.complete
        assert report.colors_used <= report.delta + 1
        print(
            f"  {report.index:4d}  {report.edges_added + report.edges_removed:11d}  "
            f"{report.conflicts:9d}  {report.recolored:11d}  "
            f"{report.recolored_fraction:6.2%}  {report.colors_used:8d}  "
            f"{report.rounds:6d}"
        )

    print("\nfinal channel plans (all interference-free):")
    channel_plan_report("broadcast (maintained)", engine.colors)
    final_net = engine.net
    active = np.flatnonzero(engine.active)
    base = johansson_coloring(final_net, seed=seed)
    greedy = greedy_coloring(final_net, smallest_last=True)
    channel_plan_report("johansson (from scratch)", base.colors[active])
    channel_plan_report("greedy (centralized)", greedy[active])

    print(
        f"\nnote: the distributed plans use at most Δ+1 = {final_net.delta + 1} "
        "channels; re-assigning only conflicted transmitters is what keeps "
        "hand-offs cheap — a from-scratch recolor would touch every AP."
    )


if __name__ == "__main__":
    main()
