"""Streaming lookup of the i-th color of the clique palette (§5).

After the synchronized color trial's permutation, node v only needs *one*
color — the π(v)-th free color of Ψ(K) — but cannot store the whole
palette (up to Δ+1 bits... fine, but the per-range free-counts it would
need to locate the color are Θ(Δ/log n) words).  The paper reuses the
prefix-sum machinery: the color space is split into C log n-sized ranges,
each range's free-count is a group value, and the merge hierarchy built by
:func:`repro.bcstream.prefix_sums.streaming_prefix_sums` lets v *descend*:
at every level v listens to the segment totals in stream order, keeping
only a running cumulative count (O(1) words), until it lands in a single
range — whose C log n-bit free-bitmap it can afford to materialize.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bcstream.memory import MemoryMeter
from repro.bcstream.prefix_sums import PrefixSumResult, streaming_prefix_sums
from repro.config import ColoringConfig
from repro.simulator.rng import SeedSequencer

__all__ = ["PaletteLookupResult", "streaming_palette_lookup"]


@dataclass
class PaletteLookupResult:
    colors: np.ndarray  # resolved colors per query (-1: index out of range)
    rounds: int
    iterations: int
    peak_words: int

    def as_dict(self) -> dict:
        return {
            "rounds": self.rounds,
            "iterations": self.iterations,
            "peak_words": self.peak_words,
        }


def streaming_palette_lookup(
    free_mask: np.ndarray,
    query_indices: np.ndarray,
    cfg: ColoringConfig,
    n: int,
    seq: SeedSequencer | None = None,
    meter: MemoryMeter | None = None,
) -> PaletteLookupResult:
    """Resolve, for every query p, the p-th set bit of ``free_mask`` (the
    clique palette as a boolean mask over the color space), the BCStream
    way: per-range counts → merge hierarchy → O(1)-word descent → one
    range bitmap.

    Queries beyond the number of free colors resolve to -1 (the SCT simply
    gives those nodes no color to try — Lemma 3.6 bounds how often that
    can happen).
    """
    free_mask = np.asarray(free_mask, dtype=bool)
    queries = np.asarray(query_indices, dtype=np.int64)
    meter = meter if meter is not None else MemoryMeter()
    seq = seq if seq is not None else SeedSequencer(cfg.seed)

    num_colors = free_mask.size
    range_len = max(2, int(np.ceil(cfg.log_threshold(n))))
    starts = np.arange(0, num_colors, range_len)
    counts = np.array(
        [int(free_mask[s : s + range_len].sum()) for s in starts], dtype=np.int64
    )
    # Group sizes: every range is handled by a spanning group of ~C log n
    # nodes (Lemma 4.1); the audit uses that scale.
    group_sizes = np.full(counts.size, range_len, dtype=np.int64)
    ps = streaming_prefix_sums(counts, group_sizes, cfg, n, seq=seq, meter=meter)

    out = np.full(queries.size, -1, dtype=np.int64)
    for qi, p in enumerate(queries):
        p = int(p)
        if p < 0 or p >= int(counts.sum()):
            continue
        # Descend the hierarchy: at each level keep one running count.
        lo_group, hi_group = 0, counts.size
        offset = 0
        for level in reversed(ps.levels):
            # Segments of this level that lie inside the current window.
            running = offset
            for (s, e), tot in zip(level.boundaries, level.totals):
                if e <= lo_group or s >= hi_group:
                    continue
                if running + tot > p:
                    lo_group, hi_group = max(s, lo_group), min(e, hi_group)
                    offset = running
                    break
                running += tot
            meter.touch(int(queries[qi]) % max(num_colors, 1), 3)
        # Now a single range (or a residual window): scan group by group.
        running = offset
        for g in range(lo_group, hi_group):
            if running + counts[g] > p:
                # Materialize this one range's bitmap: range_len bits.
                meter.touch(int(queries[qi]) % max(num_colors, 1), range_len // 64 + 1)
                base = int(starts[g])
                local = free_mask[base : base + range_len]
                idx = np.flatnonzero(local)
                out[qi] = base + int(idx[p - running])
                break
            running += counts[g]

    return PaletteLookupResult(
        colors=out,
        rounds=ps.rounds,
        iterations=ps.iterations,
        peak_words=meter.peak_words(),
    )
