"""Shared helpers for the experiment harness.

Every bench prints the measured rows (the "tables" of this theory paper's
claims — see EXPERIMENTS.md for the claim-by-claim index) and uses
pytest-benchmark to time one representative unit of work.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["print_table", "ratio", "GEOM_SEEDS"]

GEOM_SEEDS = [101, 202, 303]


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Fixed-width table to stdout (visible with pytest -s; captured into
    the bench logs either way)."""
    rows = [tuple(str(c) for c in r) for r in rows]
    widths = [len(h) for h in headers]
    for r in rows:
        for i, c in enumerate(r):
            widths[i] = max(widths[i], len(c))
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(c.ljust(w) for c, w in zip(r, widths)))


def ratio(a: float, b: float) -> float:
    """a/b guarded against zero."""
    return float(a) / max(float(b), 1e-12)
