"""The fault plane and the supervision it exercises (`repro.faults`).

Four layers, in test-speed order:

* **the plan**: seeded, content-hashable, TOML-round-tripping fault
  schedules whose coins (``prob``) and caps (``max_fires``) are
  deterministic; the disarmed :func:`~repro.faults.inject` hook is a
  no-op.
* **shard supervision**: crashing, hanging and repeatedly-failing shard
  workers are retried (with deterministic backoff), demoted to inline
  execution, or surfaced as :class:`~repro.shard.ShardWorkerError` — and
  every recovery converges on **byte-identical** colors.
* **snapshot hardening**: rotated generations, torn-write fallback,
  corrupt-file normalization to ``ValueError``, stale-tmp sweeping —
  plus the serve client's capped deterministic backoff and typed
  retry-exhaustion, and error-frame round-trips for every code.
* **the live daemon**: ping, idle-timeout disconnects, startup tmp
  sweep, and client reconnect across a kill -9 + ``--restore`` restart.

The chaos campaigns (`repro chaos`) tie it together: workload + armed
plan + recovery must equal the never-failed run, byte for byte.
"""

import io
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.config import ColoringConfig
from repro.dynamic import DynamicColoring
from repro.faults import (
    FaultInjected,
    FaultPlan,
    FaultRule,
    chaos_dynamic,
    chaos_shard,
    plan as fplan,
)
from repro.graphs.families import make_churn, make_graph
from repro.runner.runner import ParallelRunner
from repro.runner.spec import TrialResult, TrialSpec
from repro.runner.execute import run_trial
from repro.serve import protocol as wire
from repro.serve.client import RetriesExhausted, ServeClient, _backoff_delay
from repro.serve.snapshot import (
    load_snapshot,
    restore_engine,
    save_snapshot,
    snapshot_generations,
    sweep_stale_tmp,
)
from repro.shard.engine import ShardedColoring, ShardWorkerError


@pytest.fixture(autouse=True)
def always_disarmed():
    """No test may leak an armed plan into the rest of the suite."""
    fplan.disarm()
    yield
    fplan.disarm()


def crash_rule(**match):
    return FaultRule(site="shard.worker", kind="crash", match=match)


# ----------------------------------------------------------------------
# Layer 1: the plan itself
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_dict_round_trip(self):
        plan = FaultPlan(
            name="p", seed=4,
            rules=(
                FaultRule(site="shard.worker", kind="hang", seconds=0.5,
                          match={"shard": 1}, prob=0.25, max_fires=3),
                FaultRule(site="serve.snapshot.write", kind="torn-write",
                          hard=True),
            ),
        )
        assert FaultPlan.from_dict(plan.as_dict()) == plan

    def test_toml_round_trip_and_key_stability(self, tmp_path):
        plan = FaultPlan(
            name="p", seed=9,
            rules=(crash_rule(shard=2, attempt=1),
                   FaultRule(site="runner.trial", kind="slow",
                             seconds=0.1, factor=3.0, prob=0.5)),
        )
        path = tmp_path / "plan.toml"
        plan.save(path)
        loaded = FaultPlan.load(path)
        assert loaded == plan
        assert loaded.key == plan.key
        # Any edit must miss: same rules, different seed.
        assert FaultPlan(name="p", seed=10, rules=plan.rules).key != plan.key

    def test_match_accepts_mapping_and_pairs(self):
        a = FaultRule(site="shard.worker", kind="crash",
                      match={"shard": 1, "attempt": 2})
        b = FaultRule(site="shard.worker", kind="crash",
                      match=(("attempt", 2), ("shard", 1)))
        assert a == b
        assert a.matches({"shard": 1, "attempt": 2, "extra": "x"})
        assert not a.matches({"shard": 1, "attempt": 3})
        assert not a.matches({"shard": 1})  # missing key ≠ wildcard

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultRule(site="nope", kind="crash")
        with pytest.raises(ValueError):
            FaultRule(site="shard.worker", kind="nope")
        with pytest.raises(ValueError):
            FaultRule(site="shard.worker", kind="crash", prob=1.5)

    def test_fault_injected_pickle_round_trip(self):
        """A soft crash crosses the process-pool result pipe as a pickle;
        an exception that cannot unpickle escalates into a
        BrokenProcessPool for every in-flight shard (regression)."""
        import pickle

        exc = FaultInjected("shard.worker", "crash", "boom")
        again = pickle.loads(pickle.dumps(exc))
        assert again.site == "shard.worker"
        assert again.kind == "crash"
        assert str(again) == str(exc)

    def test_disarmed_inject_is_none(self):
        assert fplan.armed_plan() is None
        assert fplan.inject("shard.worker", shard=0, attempt=1) is None
        assert fplan.fault_events() == []

    def test_soft_crash_raises_and_logs(self):
        plan = FaultPlan(name="p", rules=(crash_rule(shard=1),))
        fplan.arm(plan)
        assert fplan.inject("shard.worker", shard=0, attempt=1) is None
        with pytest.raises(FaultInjected) as err:
            fplan.inject("shard.worker", shard=1, attempt=1)
        assert err.value.site == "shard.worker"
        assert err.value.kind == "crash"
        events = fplan.fault_events()
        assert len(events) == 1
        assert events[0]["context"] == {"shard": 1, "attempt": 1}

    def test_max_fires_caps(self):
        plan = FaultPlan(
            name="p",
            rules=(FaultRule(site="runner.trial", kind="torn-write",
                             max_fires=2),),
        )
        fplan.arm(plan)
        fired = sum(
            fplan.inject("runner.trial", algorithm="x", seed=i) is not None
            for i in range(10)
        )
        assert fired == 2

    def test_prob_is_deterministic_thinning(self):
        plan = FaultPlan(
            name="p", seed=21,
            rules=(FaultRule(site="runner.trial", kind="torn-write",
                             prob=0.5, max_fires=0),),
        )

        def campaign():
            fplan.arm(plan)
            hits = [
                fplan.inject("runner.trial", seed=i) is not None
                for i in range(200)
            ]
            fplan.disarm()
            return hits

        first, second = campaign(), campaign()
        assert first == second  # same seed → same coins
        assert 40 < sum(first) < 160  # actually thinning, not constant

    def test_suppressed_restores(self):
        plan = FaultPlan(name="p", rules=(crash_rule(),))
        fplan.arm(plan)
        with fplan.suppressed():
            assert fplan.inject("shard.worker", shard=0, attempt=1) is None
        with pytest.raises(FaultInjected):
            fplan.inject("shard.worker", shard=0, attempt=1)

    def test_hang_and_slow_sleep(self):
        plan = FaultPlan(
            name="p",
            rules=(FaultRule(site="serve.connection", kind="hang",
                             seconds=0.05, max_fires=1),
                   FaultRule(site="serve.connection", kind="slow",
                             seconds=0.02, factor=2.0, max_fires=1)),
        )
        fplan.arm(plan)
        t0 = time.perf_counter()
        fault = fplan.inject("serve.connection", session=1)
        assert fault is not None and fault.kind == "hang"
        fault = fplan.inject("serve.connection", session=1)
        assert fault is not None and fault.kind == "slow"
        assert time.perf_counter() - t0 >= 0.05 + 0.04


# ----------------------------------------------------------------------
# Layer 2: shard supervision
# ----------------------------------------------------------------------
def shard_setup(seed=5, n=600, retries=2, **over):
    cfg = ColoringConfig.practical(
        seed=seed, shard_k=4, shard_retry_backoff_s=0.01,
        shard_max_retries=retries, **over,
    )
    graph = make_graph("geometric", n, 10.0, seed)
    with fplan.suppressed():
        reference = ShardedColoring(graph, cfg, workers=1).run()
    return graph, cfg, reference


class TestShardSupervision:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_soft_crash_retry_is_byte_identical(self, workers):
        graph, cfg, reference = shard_setup()
        plan = FaultPlan(name="p", rules=(crash_rule(shard=1, attempt=1),))
        fplan.arm(plan)
        try:
            res = ShardedColoring(graph, cfg, workers=workers).run()
        finally:
            fplan.disarm()
        assert res.faults["worker_crashes"] >= 1
        assert res.faults["retries"] >= 1
        assert res.faults["inline_fallbacks"] == 0
        np.testing.assert_array_equal(res.colors, reference.colors)
        assert res.proper and res.complete

    @pytest.mark.parametrize("workers", [1, 2])
    def test_persistent_crash_degrades_inline(self, workers):
        graph, cfg, reference = shard_setup(retries=1)
        # max_fires=0: crash shard 1 on *every* attempt.
        plan = FaultPlan(
            name="p",
            rules=(FaultRule(site="shard.worker", kind="crash",
                             match={"shard": 1}, max_fires=0),),
        )
        fplan.arm(plan)
        try:
            res = ShardedColoring(graph, cfg, workers=workers).run()
        finally:
            fplan.disarm()
        assert res.faults["inline_fallbacks"] == 1
        np.testing.assert_array_equal(res.colors, reference.colors)

    def test_fallback_disabled_raises_worker_error(self):
        graph, cfg, _ = shard_setup(retries=1, shard_inline_fallback=False)
        plan = FaultPlan(
            name="p",
            rules=(FaultRule(site="shard.worker", kind="crash",
                             match={"shard": 1}, max_fires=0),),
        )
        fplan.arm(plan)
        try:
            with pytest.raises(ShardWorkerError) as err:
                ShardedColoring(graph, cfg, workers=1).run()
        finally:
            fplan.disarm()
        assert err.value.shard == 1
        assert err.value.attempts == 2  # 1 + shard_max_retries

    def test_hard_crash_breaks_pool_and_recovers(self):
        """A hard crash (`os._exit`) kills a real pool worker: the
        supervisor must survive BrokenProcessPool, rebuild the pool and
        still converge byte-identically (satellite: BrokenProcessPool
        propagation)."""
        graph, cfg, reference = shard_setup()
        plan = FaultPlan(
            name="p",
            rules=(FaultRule(site="shard.worker", kind="crash", hard=True,
                             match={"shard": 2, "attempt": 1}),),
        )
        fplan.arm(plan)
        try:
            res = ShardedColoring(graph, cfg, workers=2).run()
        finally:
            fplan.disarm()
        assert res.faults["worker_crashes"] >= 1
        np.testing.assert_array_equal(res.colors, reference.colors)

    def test_hung_worker_times_out_and_recovers(self):
        graph, cfg, reference = shard_setup(shard_worker_timeout_s=0.3)
        plan = FaultPlan(
            name="p",
            rules=(FaultRule(site="shard.worker", kind="hang", seconds=5.0,
                             match={"shard": 0, "attempt": 1}),),
        )
        fplan.arm(plan)
        t0 = time.perf_counter()
        try:
            res = ShardedColoring(graph, cfg, workers=2).run()
        finally:
            fplan.disarm()
        assert time.perf_counter() - t0 < 5.0  # did not wait out the hang
        assert res.faults["worker_timeouts"] >= 1
        np.testing.assert_array_equal(res.colors, reference.colors)

    def test_fault_account_rides_result_dict(self):
        graph, cfg, _ = shard_setup()
        plan = FaultPlan(name="p", rules=(crash_rule(shard=1, attempt=1),))
        fplan.arm(plan)
        try:
            res = ShardedColoring(graph, cfg, workers=1).run()
        finally:
            fplan.disarm()
        d = res.as_dict()
        assert d["faults"]["retries"] >= 1
        assert d["faults"]["time_lost_s"] >= 0.0


# ----------------------------------------------------------------------
# Layer 3a: snapshot hardening
# ----------------------------------------------------------------------
def churn_engine(seed=3, n=200, batches=6):
    cfg = ColoringConfig.practical(seed=seed)
    schedule = make_churn("gnp-churn", n, 6.0, seed, batches=batches,
                          churn_fraction=0.1)
    return DynamicColoring(schedule.initial, cfg), list(schedule)


class TestSnapshotHardening:
    def test_rotation_keeps_generations(self, tmp_path):
        engine, batches = churn_engine()
        snap = tmp_path / "s.npz"
        for batch in batches[:4]:
            engine.apply_batch(batch)
            save_snapshot(engine, snap, keep=3)
        gens = snapshot_generations(snap)
        assert [p.name for p in gens] == ["s.npz", "s.npz.1", "s.npz.2"]
        indices = [load_snapshot(p)[0].batch_index for p in gens]
        assert indices == [4, 3, 2]  # newest first

    def test_keep_one_rotates_nothing(self, tmp_path):
        engine, batches = churn_engine()
        snap = tmp_path / "s.npz"
        for batch in batches[:3]:
            engine.apply_batch(batch)
            save_snapshot(engine, snap, keep=1)
        assert snapshot_generations(snap) == [snap]

    def test_truncated_npz_is_value_error(self, tmp_path):
        engine, _ = churn_engine()
        snap = tmp_path / "s.npz"
        save_snapshot(engine, snap)
        payload = snap.read_bytes()
        snap.write_bytes(payload[: len(payload) // 3])
        with pytest.raises(ValueError, match="corrupt or unreadable"):
            load_snapshot(snap)

    def test_garbage_bytes_is_value_error(self, tmp_path):
        snap = tmp_path / "s.npz"
        snap.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(ValueError):
            load_snapshot(snap)
        # Missing file stays FileNotFoundError (a different operator story).
        with pytest.raises(FileNotFoundError):
            load_snapshot(tmp_path / "missing.npz")

    def test_restore_falls_back_a_generation(self, tmp_path):
        engine, batches = churn_engine()
        snap = tmp_path / "s.npz"
        for batch in batches[:3]:
            engine.apply_batch(batch)
            save_snapshot(engine, snap, keep=2)
        # Corrupt the current generation; .1 (batch_index=2) survives.
        snap.write_bytes(snap.read_bytes()[:100])
        restored = restore_engine(snap)
        assert restored.batch_index == 2
        # Replaying the missing suffix reproduces the exact colors.
        for batch in batches[2:3]:
            restored.apply_batch(batch)
        np.testing.assert_array_equal(restored.colors, engine.colors)

    def test_restore_all_bad_reraises_first_error(self, tmp_path):
        engine, batches = churn_engine()
        snap = tmp_path / "s.npz"
        for batch in batches[:2]:
            engine.apply_batch(batch)
            save_snapshot(engine, snap, keep=2)
        snap.write_bytes(b"junk-current")
        (tmp_path / "s.npz.1").write_bytes(b"junk-previous")
        with pytest.raises(ValueError, match=r"s\.npz "):
            restore_engine(snap)

    def test_restore_no_fallback_uses_only_current(self, tmp_path):
        engine, batches = churn_engine()
        snap = tmp_path / "s.npz"
        for batch in batches[:2]:
            engine.apply_batch(batch)
            save_snapshot(engine, snap, keep=2)
        snap.write_bytes(b"junk")
        with pytest.raises(ValueError):
            restore_engine(snap, fallback=False)

    def test_torn_write_fault_promotes_and_falls_back(self, tmp_path):
        engine, batches = churn_engine()
        snap = tmp_path / "s.npz"
        engine.apply_batch(batches[0])
        save_snapshot(engine, snap, keep=2)
        engine.apply_batch(batches[1])
        plan = FaultPlan(
            name="p",
            rules=(FaultRule(site="serve.snapshot.write", kind="torn-write",
                             match={"batch_index": 2}),),
        )
        fplan.arm(plan)
        try:
            with pytest.raises(FaultInjected):
                save_snapshot(engine, snap, keep=2)
        finally:
            fplan.disarm()
        # Current generation is torn bytes; restore falls back to gen 1.
        with pytest.raises(ValueError):
            load_snapshot(snap)
        assert restore_engine(snap).batch_index == 1

    def test_sweep_stale_tmp(self, tmp_path):
        snap = tmp_path / "s.npz"
        engine, _ = churn_engine()
        save_snapshot(engine, snap)
        stale = [tmp_path / "s.npz.tmp", tmp_path / "s.npz.1.tmp"]
        for p in stale:
            p.write_bytes(b"dead write")
        (tmp_path / "unrelated.tmp").write_bytes(b"not ours")
        removed = sweep_stale_tmp(snap)
        assert sorted(removed) == sorted(str(p) for p in stale)
        assert not any(p.exists() for p in stale)
        assert (tmp_path / "unrelated.tmp").exists()
        assert snap.exists()


# ----------------------------------------------------------------------
# Layer 3b: client backoff + error frames
# ----------------------------------------------------------------------
class TestClientBackoff:
    def test_delay_is_deterministic_and_jittered(self):
        a = _backoff_delay(0.05, 2.0, 3, "queue-full", 17)
        b = _backoff_delay(0.05, 2.0, 3, "queue-full", 17)
        assert a == b
        # Jitter in [0.5, 1.0) of the exponential step.
        assert 0.5 * 0.4 <= a < 0.4
        # Distinct keys decorrelate.
        assert a != _backoff_delay(0.05, 2.0, 3, "queue-full", 18)

    def test_delay_grows_then_caps(self):
        delays = [_backoff_delay(0.05, 0.4, k, "x") for k in range(12)]
        assert all(d < 0.4 for d in delays)
        # Far past the cap the un-jittered step is constant at the cap.
        assert all(0.2 <= d < 0.4 for d in delays[5:])

    def test_retries_exhausted_is_protocol_error(self):
        exc = RetriesExhausted("queue-full", "gave up", attempts=7,
                               total_wait=1.25)
        assert isinstance(exc, wire.ProtocolError)
        assert exc.code == "queue-full"
        assert exc.attempts == 7 and exc.total_wait == 1.25

    @pytest.mark.parametrize("code", wire.ERROR_CODES)
    def test_every_error_code_round_trips(self, code):
        retry = 0.5 if code == "queue-full" else None
        frame = wire.ErrorFrame(id=3, code=code, message="boom",
                                retry_after=retry)
        raw = wire.encode_frame(frame)
        decoded = wire.read_frame(io.BytesIO(raw))
        assert decoded == frame
        exc = decoded.to_exception()
        assert isinstance(exc, wire.ProtocolError)
        assert exc.code == code and exc.id == 3
        assert exc.retry_after == retry


# ----------------------------------------------------------------------
# Layer 3c: runner guard surfacing
# ----------------------------------------------------------------------
class TestRunnerGuard:
    def test_sigalrm_guard_reported_inline(self):
        spec = TrialSpec(family="gnp", n=64, avg_degree=4.0,
                         algorithm="greedy", seed=0)
        res = run_trial(spec, timeout_s=30.0)
        assert res.ok and res.guard == "sigalrm"
        assert run_trial(spec).guard == "none"  # no budget → no guard

    def test_guard_survives_record_round_trip(self):
        spec = TrialSpec(family="gnp", n=64, avg_degree=4.0,
                         algorithm="greedy", seed=0)
        res = run_trial(spec, timeout_s=30.0)
        again = TrialResult.from_record(res.record())
        assert again.guard == "sigalrm"
        # Legacy records (no guard key) default to "none".
        rec = res.record()
        del rec["guard"]
        assert TrialResult.from_record(rec).guard == "none"

    def test_pool_wallclock_backstop_catches_hung_trial(self):
        """A trial hanging *before* the SIGALRM guard arms (the
        `runner.trial` site fires first) must be abandoned by the pool
        driver's wall-clock deadline, not wedge the run (the satellite
        fix: the old guard was a silent no-op off the main thread)."""
        hang_seed = 424242
        plan = FaultPlan(
            name="p",
            rules=(FaultRule(site="runner.trial", kind="hang", seconds=8.0,
                             match={"seed": hang_seed}),),
        )
        specs = [
            TrialSpec(family="gnp", n=64, avg_degree=4.0,
                      algorithm="greedy", seed=hang_seed),
            TrialSpec(family="gnp", n=64, avg_degree=4.0,
                      algorithm="greedy", seed=1),
        ]
        # Linux forks pool workers, so arming in the parent arms them.
        fplan.arm(plan)
        t0 = time.perf_counter()
        try:
            report = ParallelRunner(workers=2, timeout_s=0.5).run(specs)
        finally:
            fplan.disarm()
        by_seed = {r.spec.seed: r for r in report.results}
        hung = by_seed[hang_seed]
        assert hung.status == "timeout" and hung.guard == "wallclock"
        assert "abandoned" in hung.error
        assert by_seed[1].ok
        # Abandonment happened at the ~1.75s grace, long before the 8s
        # hang (pool teardown then waits for the worker to die off).
        assert hung.elapsed_s < 4.0


# ----------------------------------------------------------------------
# Layer 4: the live daemon
# ----------------------------------------------------------------------
def spawn_server(tmp_path, *extra):
    socket_path = str(tmp_path / "serve.sock")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", socket_path,
         *extra],
        env={**os.environ},
        stderr=subprocess.PIPE,
    )
    return proc, socket_path


def stop(proc):
    if proc.poll() is None:
        proc.kill()
    proc.stderr.close()
    proc.wait(timeout=10)


class TestLiveDaemon:
    def test_ping(self, tmp_path):
        proc, sock = spawn_server(tmp_path)
        try:
            with ServeClient(socket_path=sock) as client:
                pong = client.ping()
                assert pong.TYPE == "pong"
                client.shutdown()
            proc.wait(timeout=20)
            assert proc.returncode == 0
        finally:
            stop(proc)

    def test_idle_timeout_disconnects_session(self, tmp_path):
        proc, sock = spawn_server(tmp_path, "--idle-timeout", "0.3")
        try:
            with ServeClient(socket_path=sock) as client:
                client.ping()  # activity refreshes the window
                time.sleep(1.0)  # exceed the idle budget
                with pytest.raises((ConnectionError, OSError,
                                    wire.ProtocolError)):
                    client.stats()
            # The daemon itself is still alive and accepts new sessions.
            with ServeClient(socket_path=sock) as client:
                assert client.stats()["idle_disconnects"] >= 1
                client.shutdown()
            proc.wait(timeout=20)
        finally:
            stop(proc)

    def test_startup_sweeps_stale_tmp(self, tmp_path):
        snap = tmp_path / "serve.npz"
        stale = tmp_path / "serve.npz.tmp"
        stale.write_bytes(b"dead write")
        proc, sock = spawn_server(tmp_path, "--snapshot-path", str(snap))
        try:
            with ServeClient(socket_path=sock) as client:
                client.shutdown()
            proc.wait(timeout=20)
            assert not stale.exists()
            stderr = proc.stderr.read().decode()
            assert "swept 1 stale snapshot tmp file" in stderr
        finally:
            stop(proc)

    def test_client_reconnects_after_daemon_restart(self, tmp_path):
        seed = 6
        schedule = make_churn("gnp-churn", 200, 6.0, seed, batches=6,
                              churn_fraction=0.1)
        n, edges = schedule.initial
        batches = list(schedule)
        reference = DynamicColoring(schedule.initial,
                                    ColoringConfig.practical(seed=seed))
        for batch in batches:
            reference.apply_batch(batch)

        snap = tmp_path / "serve.npz"
        proc, sock = spawn_server(
            tmp_path, "--coalesce-max", "1", "--seed", str(seed),
            "--snapshot-path", str(snap), "--snapshot-every", "1",
        )
        try:
            with ServeClient(socket_path=sock) as client:
                client.load_graph(n, edges, seed=seed)
                for batch in batches[:3]:
                    client.update_batch(batch)
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)
        finally:
            stop(proc)

        proc, sock = spawn_server(
            tmp_path, "--coalesce-max", "1", "--seed", str(seed),
            "--restore", str(snap),
        )
        try:
            # connect() retries with backoff while the daemon boots.
            with ServeClient(socket_path=sock) as client:
                resumed = int(client.stats()["batch_index"])
                for batch in batches[resumed:]:
                    client.update_batch(batch)
                final = client.query_colors()
                client.shutdown()
            proc.wait(timeout=20)
        finally:
            stop(proc)
        assert final.colors == reference.colors.tolist()


# ----------------------------------------------------------------------
# The chaos campaigns (the oracle the CI smoke job gates on)
# ----------------------------------------------------------------------
class TestChaosCampaigns:
    def test_shard_campaign(self):
        plan = FaultPlan(
            name="crash-and-burn", seed=7,
            rules=(crash_rule(shard=1, attempt=1),
                   FaultRule(site="shard.worker", kind="crash", hard=True,
                             match={"shard": 2, "attempt": 1})),
        )
        report = chaos_shard(plan, n=600, workers=2)
        assert report["oracle_ok"], report
        assert report["colors_equal"]
        assert report["faults"]["worker_crashes"] >= 2

    def test_dynamic_campaign(self):
        plan = FaultPlan(
            name="torn-twice", seed=13,
            rules=(FaultRule(site="serve.snapshot.write", kind="torn-write",
                             match={"batch_index": 2}, max_fires=1),
                   FaultRule(site="serve.snapshot.write", kind="torn-write",
                             match={"batch_index": 4}, max_fires=1)),
        )
        report = chaos_dynamic(plan, n=300, batches=6)
        assert report["oracle_ok"], report
        assert report["restores"] == 2
        assert report["snapshot_faults"] == 2

    def test_serve_campaign_survives_hard_kill(self):
        from repro.faults import chaos_serve

        plan = FaultPlan(
            name="kill-mid-snapshot", seed=11,
            rules=(FaultRule(site="serve.snapshot.write", kind="torn-write",
                             hard=True, match={"batch_index": 2},
                             max_fires=1),),
        )
        report = chaos_serve(plan, n=200, batches=5)
        assert report["oracle_ok"], report
        assert report["daemon_crashed"]
        assert report["daemon_exit_code"] == fplan._EXIT_CODE
        assert report["resumed_from_batch"] is not None
