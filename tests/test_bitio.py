"""Unit tests for the bit-size codecs (repro.util.bitio)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bitio import (
    bitmap_bits,
    bits_for_color,
    bits_for_color_list,
    bits_for_count,
    bits_for_id,
    bits_for_int,
    bits_for_label_list,
    pack_bitmap,
    unpack_bitmap,
)


class TestScalarCodecs:
    def test_bits_for_int_minimum_one(self):
        assert bits_for_int(0) == 1
        assert bits_for_int(1) == 1
        assert bits_for_int(2) == 1

    def test_bits_for_int_values(self):
        assert bits_for_int(256) == 8
        assert bits_for_int(257) == 9

    def test_color_includes_bottom(self):
        # Δ+1 colors plus the ⊥ codepoint.
        assert bits_for_color(0) == 1  # universe {c0, ⊥}
        assert bits_for_color(2) == 2  # {c0,c1,c2,⊥}
        assert bits_for_color(14) == 4

    def test_id_bits_logarithmic(self):
        assert bits_for_id(1024) == 10
        assert bits_for_id(1025) == 11

    def test_count_bits(self):
        assert bits_for_count(7) == 3
        assert bits_for_count(8) == 4

    def test_color_list_bits(self):
        assert bits_for_color_list(5, 14) == 5 * 4

    def test_label_list_bits(self):
        # 10 labels from a 64-value universe: 10 * 6 bits.
        assert bits_for_label_list(10, 64) == 60

    def test_empty_lists_cost_at_least_one_bit(self):
        assert bits_for_color_list(0, 10) >= 1
        assert bits_for_label_list(0, 10) >= 1

    @given(st.integers(min_value=1, max_value=10**6))
    def test_id_fits_universe(self, n):
        assert 2 ** bits_for_id(n) >= n


class TestBitmaps:
    def test_bitmap_bits_is_length(self):
        assert bitmap_bits(100) == 100

    def test_bitmap_bits_minimum(self):
        assert bitmap_bits(0) == 1

    def test_pack_and_unpack_roundtrip(self):
        positions = [0, 3, 7]
        bm = pack_bitmap(positions, 8)
        assert unpack_bitmap(bm) == positions

    def test_pack_empty(self):
        bm = pack_bitmap([], 5)
        assert not bm.any()
        assert unpack_bitmap(bm) == []

    def test_pack_out_of_range_raises(self):
        with pytest.raises(ValueError):
            pack_bitmap([8], 8)
        with pytest.raises(ValueError):
            pack_bitmap([-1], 8)

    def test_pack_returns_bool_array(self):
        bm = pack_bitmap([1], 4)
        assert bm.dtype == bool
        assert bm.size == 4

    @given(st.lists(st.integers(min_value=0, max_value=63), unique=True), st.just(64))
    def test_roundtrip_property(self, positions, length):
        bm = pack_bitmap(positions, length)
        assert unpack_bitmap(bm) == sorted(positions)

    def test_unpack_accepts_lists(self):
        assert unpack_bitmap([True, False, True]) == [0, 2]

    def test_unpack_accepts_int_arrays(self):
        assert unpack_bitmap(np.array([1, 0, 1])) == [0, 2]
