"""Tests for the ε-almost-clique decomposition (Definition 2.2, Lemma 2.5)."""

import numpy as np
import pytest

from repro.config import ColoringConfig
from repro.decomposition.acd import (
    SPARSE,
    AlmostCliqueDecomposition,
    decompose_distributed,
    decompose_exact,
)
from repro.decomposition.minhash import compute_sketches, estimate_edge_similarity
from repro.decomposition.validation import validate_decomposition
from repro.graphs.generators import complete_graph, gnp_graph, planted_acd_graph, ring_graph
from repro.simulator.network import BroadcastNetwork


@pytest.fixture
def cfg():
    return ColoringConfig.practical()


def planted(cfg, num=4, size=40, sparse=40, seed=7):
    g = planted_acd_graph(num, size, cfg.eps, sparse_nodes=sparse, seed=seed)
    return BroadcastNetwork(g, bandwidth_bits=cfg.bandwidth_bits(g[0]))


class TestExactDecomposition:
    def test_recovers_planted_cliques(self, cfg):
        net = planted(cfg)
        acd = decompose_exact(net, cfg)
        assert acd.num_cliques == 4
        # Ground truth: blocks of 40.
        for c in range(4):
            members = acd.members(c)
            assert np.unique(members // 40).size == 1

    def test_sparse_periphery_stays_sparse(self, cfg):
        net = planted(cfg)
        acd = decompose_exact(net, cfg)
        assert (acd.labels[160:] == SPARSE).all()

    def test_validates(self, cfg):
        net = planted(cfg)
        report = validate_decomposition(net, decompose_exact(net, cfg))
        assert report.ok, report.details

    def test_gnp_all_sparse(self, cfg):
        net = BroadcastNetwork(gnp_graph(200, 0.05, seed=1))
        acd = decompose_exact(net, cfg)
        assert acd.num_cliques == 0
        assert acd.sparse_nodes.size == 200

    def test_single_clique(self, cfg):
        net = BroadcastNetwork(complete_graph(30))
        acd = decompose_exact(net, cfg)
        assert acd.num_cliques == 1
        assert acd.members(0).size == 30

    def test_ring_all_sparse(self, cfg):
        net = BroadcastNetwork(ring_graph(30))
        acd = decompose_exact(net, cfg)
        assert acd.num_cliques == 0

    def test_empty_graph(self, cfg):
        net = BroadcastNetwork((10, []))
        acd = decompose_exact(net, cfg)
        assert acd.num_cliques == 0
        assert acd.sparse_nodes.size == 10


class TestDistributedDecomposition:
    def test_matches_exact_on_planted(self, cfg):
        net = planted(cfg)
        exact = decompose_exact(net, cfg)
        dist = decompose_distributed(net, cfg)
        # Same clustering up to clique relabeling.
        assert dist.num_cliques == exact.num_cliques
        for c in range(dist.num_cliques):
            members = dist.members(c)
            assert np.unique(exact.labels[members]).size == 1

    def test_validates(self, cfg):
        net = planted(cfg, seed=11)
        report = validate_decomposition(net, decompose_distributed(net, cfg))
        assert report.ok, report.details

    def test_rounds_accounted(self, cfg):
        net = planted(cfg)
        acd = decompose_distributed(net, cfg)
        assert acd.rounds_used > 0
        assert net.metrics.rounds_in("acd/sketch") > 0

    def test_bandwidth_respected(self, cfg):
        net = planted(cfg)
        decompose_distributed(net, cfg)
        assert net.metrics.max_message_bits <= net.bandwidth_bits

    def test_deterministic_given_seed(self, cfg):
        net1 = planted(cfg)
        net2 = planted(cfg)
        a = decompose_distributed(net1, cfg)
        b = decompose_distributed(net2, cfg)
        assert np.array_equal(a.labels, b.labels)


class TestSimilaritySketches:
    def test_estimates_close_to_truth_in_clique(self, cfg):
        net = BroadcastNetwork(
            complete_graph(20), bandwidth_bits=cfg.bandwidth_bits(20)
        )
        sk = compute_sketches(net, 256, 2, salt=1)
        est = estimate_edge_similarity(net, sk)
        # True closed-neighborhood Jaccard = 1 inside a clique.
        assert est.min() > 0.9

    def test_low_similarity_across_sparse_graph(self, cfg):
        net = BroadcastNetwork(ring_graph(40), bandwidth_bits=cfg.bandwidth_bits(40))
        sk = compute_sketches(net, 256, 2, salt=2)
        est = estimate_edge_similarity(net, sk)
        # Ring edges share 0 of 5 closed-union nodes → Jaccard 2/4 = 0.5.
        assert est.mean() < 0.75

    def test_round_count_scales_with_samples(self, cfg):
        net = BroadcastNetwork(ring_graph(16), bandwidth_bits=32)
        sk = compute_sketches(net, 64, 2, salt=0)
        # 32 bits/round at 2 bits/sample → 16 samples per round → 4 rounds.
        assert sk.rounds_used == 4


class TestDecompositionObject:
    def test_members_and_cache_invalidation(self):
        labels = np.array([0, 0, SPARSE, 1])
        acd = AlmostCliqueDecomposition(labels=labels, eps=0.1)
        assert acd.num_cliques == 2
        assert acd.members(0).tolist() == [0, 1]
        assert acd.sparse_nodes.tolist() == [2]
        acd.labels[2] = 1
        acd.invalidate_cache()
        assert acd.members(1).tolist() == [2, 3]

    def test_empty_labels(self):
        acd = AlmostCliqueDecomposition(labels=np.full(3, SPARSE), eps=0.1)
        assert acd.num_cliques == 0
        assert acd.cliques == []


class TestJoinAdmission:
    """The vectorized (2c) quota admission (`_admit_joins`)."""

    def _admit(self, cands, quota):
        from repro.decomposition.acd import _admit_joins

        v = np.array([c[0] for c in cands], dtype=np.int64)
        c = np.array([c[1] for c in cands], dtype=np.int64)
        cnt = np.array([c[2] for c in cands], dtype=np.int64)
        jv, jc = _admit_joins(v, c, cnt, np.asarray(quota, dtype=np.int64))
        return dict(zip(jv.tolist(), jc.tolist()))

    def test_best_count_wins_under_quota(self):
        joined = self._admit([(1, 0, 5), (2, 0, 7), (3, 0, 6)], [2])
        assert joined == {2: 0, 3: 0}

    def test_fallback_to_next_clique_when_best_is_full(self):
        # Node 1's best clique (0) has no headroom; the old sequential scan
        # joined it to clique 1 instead — so must the vectorized join.
        joined = self._admit([(1, 0, 6), (1, 1, 5)], [0, 2])
        assert joined == {1: 1}

    def test_fallback_after_losing_rank_race(self):
        # Clique 0 has one slot: node 2 (count 7) takes it; node 1 falls
        # back to clique 1.
        joined = self._admit([(1, 0, 6), (2, 0, 7), (1, 1, 4)], [1, 1])
        assert joined == {2: 0, 1: 1}

    def test_no_admission_when_all_full(self):
        assert self._admit([(1, 0, 6), (2, 1, 5)], [0, 0]) == {}

    def test_each_node_joins_at_most_once(self):
        joined = self._admit([(1, 0, 6), (1, 1, 6), (1, 2, 6)], [3, 3, 3])
        assert len(joined) == 1


class TestValidator:
    def test_flags_oversized_clique(self, cfg):
        # Claim a huge "clique" over a sparse gnp graph: must fail 2a/2b.
        net = BroadcastNetwork(gnp_graph(50, 0.1, seed=0))
        labels = np.zeros(50, dtype=np.int64)
        acd = AlmostCliqueDecomposition(labels=labels, eps=cfg.eps)
        report = validate_decomposition(net, acd, check_sparsity=False)
        assert not report.ok
        assert report.violations_member_degree > 0

    def test_flags_nonsparse_eviction(self, cfg):
        # Mark clique members sparse: property (1) must flag them.
        net = BroadcastNetwork(complete_graph(20))
        acd = AlmostCliqueDecomposition(labels=np.full(20, SPARSE), eps=cfg.eps)
        report = validate_decomposition(net, acd)
        assert report.violations_sparsity == 20

    def test_ok_report_dict(self, cfg):
        net = planted(cfg)
        report = validate_decomposition(net, decompose_exact(net, cfg))
        d = report.as_dict()
        assert d["ok"] is True
        assert d["num_cliques"] == 4
