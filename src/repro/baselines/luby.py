"""Luby-style random-priority coloring — the second classic O(log n)
broadcast baseline [Lub86, ABI86].

Per round every uncolored node draws a random priority and broadcasts it;
local maxima among uncolored neighbors pick the smallest free color and
broadcast the choice.  Priorities are O(log n)-bit numbers, colors
O(log Δ) bits — BCONGEST-compliant.  An independent set of local maxima is
colored per round, so the algorithm finishes in O(log n) rounds w.h.p.,
with the greedy's color economy (it often uses far fewer than Δ+1 colors).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.johansson import BaselineResult
from repro.core.state import ColoringState
from repro.simulator.metrics import RoundMetrics
from repro.simulator.network import BroadcastNetwork
from repro.simulator.rng import SeedSequencer
from repro.util.bitio import bits_for_color, bits_for_id

__all__ = ["luby_coloring"]


def luby_coloring(
    graph,
    seed: int = 0,
    max_rounds: int = 100_000,
    bandwidth_bits: int | None = None,
) -> BaselineResult:
    metrics = RoundMetrics()
    net = (
        graph
        if isinstance(graph, BroadcastNetwork)
        else BroadcastNetwork(graph, bandwidth_bits=bandwidth_bits, metrics=metrics)
    )
    if net.metrics is not metrics:
        metrics = net.metrics
    metrics.begin_phase("luby")
    state = ColoringState(net)
    seq = SeedSequencer(seed)
    rounds = 0
    while state.num_uncolored() and rounds < max_rounds:
        pending_mask = state.colors < 0
        pending = np.flatnonzero(pending_mask)
        rng = seq.stream("luby", rounds)
        prio = np.full(state.n, -1.0)
        prio[pending] = rng.random(pending.size)
        # Local maxima among uncolored neighbors win (ties by id).
        src, dst = net.edge_src, net.indices
        beaten = np.zeros(state.n, dtype=bool)
        rel = pending_mask[src] & pending_mask[dst]
        worse = rel & (
            (prio[dst] > prio[src]) | ((prio[dst] == prio[src]) & (dst < src))
        )
        np.logical_or.at(beaten, src[worse], True)
        winners = pending[~beaten[pending]]
        nodes, cols = [], []
        for v in winners:
            v = int(v)
            used = set(int(c) for c in state.colors[net.neighbors(v)] if c >= 0)
            c = 0
            while c in used:
                c += 1
            if c < state.num_colors:
                nodes.append(v)
                cols.append(c)
        if nodes:
            state.adopt(np.asarray(nodes), np.asarray(cols))
        # Two broadcasts: priority, then the chosen color.
        net.account_vector_round(int(pending.size), bits_for_id(net.n), phase="luby")
        net.account_vector_round(len(nodes), bits_for_color(state.delta), phase="luby")
        rounds += 1
    state.verify()
    return BaselineResult(
        colors=state.colors.copy(),
        rounds=rounds,
        proper=state.is_proper(),
        complete=state.is_complete(),
        max_message_bits=metrics.max_message_bits,
        total_bits=metrics.total_bits,
    )
