"""Tests for the TryColor primitive and proposal resolution (Lemma 2.13)."""

import numpy as np
import pytest

from repro.core.state import ColoringState
from repro.core.trycolor import (
    interval_sampler,
    palette_interval_sampler,
    palette_sampler,
    resolve_proposals,
    try_color_round,
)
from repro.graphs.generators import complete_graph, gnp_graph
from repro.simulator.network import BroadcastNetwork
from repro.simulator.rng import SeedSequencer


@pytest.fixture
def seq():
    return SeedSequencer(99)


class TestSamplers:
    def test_interval_sampler_bounds(self, seq):
        nodes = np.arange(10)
        lo = np.full(20, 3, dtype=np.int64)
        hi = np.full(20, 7, dtype=np.int64)
        out = interval_sampler(lo, hi)(nodes, seq.stream("s"))
        assert (out >= 3).all() and (out < 7).all()

    def test_interval_sampler_scalar_bounds(self, seq):
        out = interval_sampler(0, 5)(np.arange(100), seq.stream("s"))
        assert (out >= 0).all() and (out < 5).all()
        assert np.unique(out).size > 1  # actually random

    def test_palette_sampler_respects_palette(self, seq):
        net = BroadcastNetwork(complete_graph(4))
        state = ColoringState(net)
        state.adopt(np.array([1, 2]), np.array([0, 1]))
        out = palette_sampler(state)(np.array([0]), seq.stream("p"))
        assert out[0] in (2, 3)

    def test_palette_interval_sampler_intersection(self, seq):
        net = BroadcastNetwork(complete_graph(4))
        state = ColoringState(net)
        state.adopt(np.array([1]), np.array([2]))
        lo = np.zeros(net.n, dtype=np.int64)
        hi = np.full(net.n, 3, dtype=np.int64)  # interval [0,3)
        out = palette_interval_sampler(state, lo, hi)(np.array([0]), seq.stream("q"))
        assert out[0] in (0, 1)  # 2 excluded by palette, 3 by interval

    def test_palette_interval_sampler_empty_gives_minus_one(self, seq):
        net = BroadcastNetwork(complete_graph(3))
        state = ColoringState(net)
        state.adopt(np.array([1, 2]), np.array([0, 1]))
        lo = np.zeros(net.n, dtype=np.int64)
        hi = np.full(net.n, 2, dtype=np.int64)
        out = palette_interval_sampler(state, lo, hi)(np.array([0]), seq.stream("q"))
        assert out[0] == -1


class TestTryColorRound:
    def test_progress_on_clique(self, seq):
        net = BroadcastNetwork(complete_graph(8))
        state = ColoringState(net)
        total = 0
        for r in range(200):
            colored = try_color_round(
                state, state.uncolored_nodes(), palette_sampler(state), seq, "t", r
            )
            total += colored
            if state.num_uncolored() == 0:
                break
        assert state.num_uncolored() == 0
        assert total == 8
        state.verify()

    def test_min_id_always_succeeds_from_palette(self, seq):
        # Priority rule: the globally smallest-ID node can't be killed.
        net = BroadcastNetwork(complete_graph(5))
        state = ColoringState(net)
        colored = try_color_round(
            state, state.uncolored_nodes(), palette_sampler(state), seq, "t", 0
        )
        assert colored >= 1
        assert state.colors[0] >= 0 or colored >= 1

    def test_colored_neighbor_blocks(self, seq):
        net = BroadcastNetwork((2, [(0, 1)]))
        state = ColoringState(net)
        state.adopt(np.array([0]), np.array([1]))
        # Force node 1 to try color 1 (its only choice from [1,2)).
        colored = try_color_round(
            state, np.array([1]), interval_sampler(1, 2), seq, "t", 0
        )
        assert colored == 0
        assert state.colors[1] < 0

    def test_already_colored_skipped(self, seq):
        net = BroadcastNetwork((2, [(0, 1)]))
        state = ColoringState(net)
        state.adopt(np.array([0]), np.array([0]))
        colored = try_color_round(
            state, np.array([0, 1]), palette_sampler(state), seq, "t", 0
        )
        assert state.colors[0] == 0  # unchanged

    def test_rounds_accounted(self, seq):
        net = BroadcastNetwork(complete_graph(4))
        state = ColoringState(net)
        try_color_round(state, state.uncolored_nodes(), palette_sampler(state), seq, "abc", 0)
        assert net.metrics.rounds_in("abc") == 1

    def test_empty_participants_counts_round(self, seq):
        net = BroadcastNetwork(complete_graph(3))
        state = ColoringState(net)
        colored = try_color_round(
            state, np.empty(0, dtype=np.int64), palette_sampler(state), seq, "e", 0
        )
        assert colored == 0
        assert net.metrics.rounds_in("e") == 1

    def test_deterministic_given_seed(self):
        def run(seed):
            net = BroadcastNetwork(gnp_graph(40, 0.2, seed=5))
            state = ColoringState(net)
            s = SeedSequencer(seed)
            for r in range(5):
                try_color_round(
                    state, state.uncolored_nodes(), palette_sampler(state), s, "t", r
                )
            return state.colors.copy()

        assert np.array_equal(run(3), run(3))
        assert not np.array_equal(run(3), run(4))


class TestResolveProposals:
    def test_smaller_id_wins_tie(self):
        net = BroadcastNetwork((2, [(0, 1)]))
        state = ColoringState(net)
        proposals = np.array([1, 1])
        colored = resolve_proposals(state, proposals, "r")
        assert colored == 1
        assert state.colors[0] == 1 and state.colors[1] < 0

    def test_non_adjacent_both_win(self):
        net = BroadcastNetwork((3, [(0, 1)]))
        state = ColoringState(net)
        proposals = np.array([-1, 1, 1])
        colored = resolve_proposals(state, proposals, "r")
        assert colored == 2

    def test_colored_neighbor_blocks(self):
        net = BroadcastNetwork((2, [(0, 1)]))
        state = ColoringState(net)
        state.adopt(np.array([0]), np.array([1]))
        colored = resolve_proposals(state, np.array([-1, 1]), "r")
        assert colored == 0

    def test_distinct_colors_all_win(self):
        net = BroadcastNetwork(complete_graph(3))
        state = ColoringState(net)
        colored = resolve_proposals(state, np.array([0, 1, 2]), "r")
        assert colored == 3
        state.verify()

    def test_result_always_proper(self):
        rng = np.random.default_rng(0)
        net = BroadcastNetwork(gnp_graph(50, 0.2, seed=8))
        state = ColoringState(net)
        proposals = rng.integers(0, state.num_colors, size=net.n)
        resolve_proposals(state, proposals, "r")
        state.verify()
