"""The ``repro serve`` wire protocol: frames, framing, validation.

This module is the *normative registry* the documentation is linted
against (docs/PROTOCOL.md, enforced by tests/test_docs.py): every frame
type the service speaks is a dataclass registered in
:data:`MESSAGE_TYPES`, every error code the server can emit is listed in
:data:`ERROR_CODES`.  Change either and the docs-lint CI step fails
until the spec is updated.

Framing (docs/PROTOCOL.md §Framing)
-----------------------------------
A frame is a length-prefixed JSON line::

    +----------------+----------------------------------+
    | 4 bytes, u32BE | <length> bytes of UTF-8 JSON     |
    +----------------+----------------------------------+

The JSON payload is one object terminated by ``\\n`` (the newline is
included in the length, so a captured stream is also valid JSON lines).
Frames larger than :data:`MAX_FRAME_BYTES` are rejected with
``frame-too-large``.

Every payload carries ``"type"`` (a :data:`MESSAGE_TYPES` key) and
``"id"`` — the client-chosen correlation id echoed on the response.
The pushed :class:`BatchReportFrame` is the one exception: it answers
*one or more* requests (coalescing), so it carries ``"ids"`` instead.

Validation happens at decode time: :func:`decode_payload` dispatches on
``"type"`` and each frame's ``from_payload`` checks field presence and
types, raising :class:`ProtocolError` with the error code the server
echoes back in an ``error`` frame.
"""

from __future__ import annotations

import asyncio
import json
import struct
from dataclasses import dataclass, field, fields
from typing import BinaryIO, ClassVar

from repro.dynamic.events import UpdateBatch

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "Frame",
    "Hello",
    "LoadGraph",
    "UpdateBatchFrame",
    "QueryColors",
    "QueryPalette",
    "StatsRequest",
    "MetricsRequest",
    "SnapshotRequest",
    "Ping",
    "Shutdown",
    "Welcome",
    "Pong",
    "GraphLoaded",
    "BatchReportFrame",
    "ColorsReply",
    "PaletteReply",
    "StatsReply",
    "MetricsReply",
    "SnapshotSaved",
    "Goodbye",
    "ErrorFrame",
    "REQUEST_TYPES",
    "RESPONSE_TYPES",
    "MESSAGE_TYPES",
    "ERROR_CODES",
    "encode_frame",
    "decode_payload",
    "read_frame",
    "write_frame",
    "read_frame_async",
]

PROTOCOL_VERSION = 1
"""The wire-protocol version this build speaks.  Negotiated in
``hello``/``welcome``: the client offers a list, the server picks the
highest it shares or rejects with ``bad-version``."""

MAX_FRAME_BYTES = 1 << 26
"""Hard ceiling on one frame's JSON payload (64 MiB) — a corrupted or
hostile length prefix must not make the peer allocate unboundedly."""

_HEADER = struct.Struct(">I")

ERROR_CODES = (
    "bad-frame",
    "frame-too-large",
    "bad-type",
    "bad-payload",
    "bad-version",
    "hello-required",
    "no-graph",
    "queue-full",
    "snapshot-failed",
    "internal",
)
"""Every ``code`` an ``error`` frame can carry (docs/PROTOCOL.md §Errors)."""


class ProtocolError(Exception):
    """A frame violated the wire contract.

    ``code`` is one of :data:`ERROR_CODES`; the server maps the exception
    onto an ``error`` frame (echoing ``id`` when the offending request's
    id was parseable) and, for framing-level codes (``bad-frame``,
    ``frame-too-large``), closes the connection — after a broken length
    prefix there is no way to resynchronize the stream.
    """

    def __init__(
        self,
        code: str,
        message: str,
        *,
        id: int | None = None,
        retry_after: float | None = None,
    ) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message
        self.id = id
        self.retry_after = retry_after


# ----------------------------------------------------------------------
# Payload field validation helpers
# ----------------------------------------------------------------------
def _require(payload: dict, key: str, types: tuple[type, ...], what: str):
    if key not in payload:
        raise ProtocolError("bad-payload", f"{what}: missing field {key!r}")
    value = payload[key]
    if not isinstance(value, types) or isinstance(value, bool) and bool not in types:
        names = "/".join(t.__name__ for t in types)
        raise ProtocolError(
            "bad-payload",
            f"{what}: field {key!r} must be {names}, got {type(value).__name__}",
        )
    return value


def _optional(payload: dict, key: str, types: tuple[type, ...], what: str, default=None):
    if key not in payload or payload[key] is None:
        return default
    return _require(payload, key, types, what)


def _frame_id(payload: dict, what: str) -> int:
    return int(_require(payload, "id", (int,), what))


def _edge_list(payload: dict, key: str, what: str) -> list:
    value = _optional(payload, key, (list,), what, default=[])
    for pair in value:
        if (
            not isinstance(pair, (list, tuple))
            or len(pair) != 2
            or not all(isinstance(x, int) and not isinstance(x, bool) for x in pair)
        ):
            raise ProtocolError(
                "bad-payload", f"{what}: {key!r} entries must be [u, v] int pairs"
            )
    return [list(pair) for pair in value]


def _node_list(payload: dict, key: str, what: str) -> list:
    value = _optional(payload, key, (list,), what, default=[])
    for x in value:
        if not isinstance(x, int) or isinstance(x, bool):
            raise ProtocolError(
                "bad-payload", f"{what}: {key!r} entries must be ints"
            )
    return list(value)


# ----------------------------------------------------------------------
# Frame dataclasses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Frame:
    """Base class: a typed wire message.

    Subclasses set ``TYPE`` (the registry key) and implement
    ``to_payload``/``from_payload``.  All fields are plain JSON-safe
    python values — conversions to numpy live at the edges
    (:meth:`UpdateBatchFrame.batch`), so round-tripping a frame through
    :func:`encode_frame`/:func:`decode_payload` is exact equality.
    """

    TYPE: ClassVar[str] = ""
    id: int = 0

    def to_payload(self) -> dict:
        """The JSON object this frame serializes to."""
        out: dict = {"type": self.TYPE}
        for f in fields(self):
            out[f.name] = getattr(self, f.name)
        return out

    @classmethod
    def from_payload(cls, payload: dict) -> "Frame":
        return cls(id=_frame_id(payload, cls.TYPE))


# -- requests (client → server) ----------------------------------------
@dataclass(frozen=True)
class Hello(Frame):
    """Session opener; MUST be the first frame on a connection.

    ``versions`` lists every protocol version the client can speak; the
    server answers :class:`Welcome` with its pick, or ``bad-version``.
    """

    TYPE: ClassVar[str] = "hello"
    versions: list = field(default_factory=lambda: [PROTOCOL_VERSION])
    client: str = ""

    @classmethod
    def from_payload(cls, payload: dict) -> "Hello":
        versions = _require(payload, "versions", (list,), cls.TYPE)
        for v in versions:
            if not isinstance(v, int) or isinstance(v, bool):
                raise ProtocolError(
                    "bad-payload", "hello: 'versions' entries must be ints"
                )
        return cls(
            id=_frame_id(payload, cls.TYPE),
            versions=list(versions),
            client=_optional(payload, "client", (str,), cls.TYPE, default=""),
        )


@dataclass(frozen=True)
class LoadGraph(Frame):
    """Install the graph the service maintains (replacing any previous
    one): ``n`` nodes, an explicit undirected edge list, and optional
    :class:`~repro.config.ColoringConfig` field overrides (``seed``,
    ``shard_k``, ...).  Two reserved keys ride in ``config`` without
    being config fields: ``initial`` (``"pipeline"``/``"sharded"`` —
    which engine pays the initial coloring of the single maintenance
    engine) and ``backend`` (``"single"``/``"sharded"`` — whether churn
    is maintained by :class:`~repro.dynamic.DynamicColoring` or the
    delta-routed :class:`~repro.shard.ShardedDynamicColoring`)."""

    TYPE: ClassVar[str] = "load_graph"
    n: int = 0
    edges: list = field(default_factory=list)
    config: dict = field(default_factory=dict)

    @classmethod
    def from_payload(cls, payload: dict) -> "LoadGraph":
        n = _require(payload, "n", (int,), cls.TYPE)
        if n <= 0:
            raise ProtocolError("bad-payload", "load_graph: n must be positive")
        config = _optional(payload, "config", (dict,), cls.TYPE, default={})
        if not all(isinstance(k, str) for k in config):
            raise ProtocolError(
                "bad-payload", "load_graph: config keys must be strings"
            )
        return cls(
            id=_frame_id(payload, cls.TYPE),
            n=n,
            edges=_edge_list(payload, "edges", cls.TYPE),
            config=dict(config),
        )


@dataclass(frozen=True)
class UpdateBatchFrame(Frame):
    """One :class:`~repro.dynamic.UpdateBatch` of topology churn to
    ingest.  Answered asynchronously by a :class:`BatchReportFrame`
    whose ``ids`` covers this frame's ``id`` — or immediately by a
    ``queue-full`` error when admission control rejects it."""

    TYPE: ClassVar[str] = "update_batch"
    insert_edges: list = field(default_factory=list)
    delete_edges: list = field(default_factory=list)
    arrivals: list = field(default_factory=list)
    departures: list = field(default_factory=list)

    @classmethod
    def from_payload(cls, payload: dict) -> "UpdateBatchFrame":
        return cls(
            id=_frame_id(payload, cls.TYPE),
            insert_edges=_edge_list(payload, "insert_edges", cls.TYPE),
            delete_edges=_edge_list(payload, "delete_edges", cls.TYPE),
            arrivals=_node_list(payload, "arrivals", cls.TYPE),
            departures=_node_list(payload, "departures", cls.TYPE),
        )

    @property
    def batch(self) -> UpdateBatch:
        """The numpy event object the engine consumes (may raise
        ``ValueError`` for e.g. a node arriving and departing at once —
        the server maps that onto ``bad-payload``)."""
        return UpdateBatch.from_payload(
            {
                "insert_edges": self.insert_edges,
                "delete_edges": self.delete_edges,
                "arrivals": self.arrivals,
                "departures": self.departures,
            }
        )

    @classmethod
    def from_batch(cls, batch: UpdateBatch, id: int = 0) -> "UpdateBatchFrame":
        """Wrap an in-memory :class:`UpdateBatch` for the wire."""
        p = batch.as_payload()
        return cls(
            id=id,
            insert_edges=p["insert_edges"],
            delete_edges=p["delete_edges"],
            arrivals=p["arrivals"],
            departures=p["departures"],
        )


@dataclass(frozen=True)
class QueryColors(Frame):
    """Read the maintained coloring: all n entries (``nodes`` null) or
    the listed subset.  Departed nodes read as -1."""

    TYPE: ClassVar[str] = "query_colors"
    nodes: list | None = None

    @classmethod
    def from_payload(cls, payload: dict) -> "QueryColors":
        nodes = None
        if payload.get("nodes") is not None:
            nodes = _node_list(payload, "nodes", cls.TYPE)
        return cls(id=_frame_id(payload, cls.TYPE), nodes=nodes)


@dataclass(frozen=True)
class QueryPalette(Frame):
    """Read one node's color and its free palette under the current
    [Δ_t+1] color space (free = not held by any colored neighbor)."""

    TYPE: ClassVar[str] = "query_palette"
    node: int = 0

    @classmethod
    def from_payload(cls, payload: dict) -> "QueryPalette":
        return cls(
            id=_frame_id(payload, cls.TYPE),
            node=_require(payload, "node", (int,), cls.TYPE),
        )


@dataclass(frozen=True)
class StatsRequest(Frame):
    """Ask for the service counters (queue depth, applied/coalesced/
    rejected batches, fallbacks, invariants, round/bit totals)."""

    TYPE: ClassVar[str] = "stats"


@dataclass(frozen=True)
class MetricsRequest(Frame):
    """Ask for the Prometheus text exposition of the server's
    :mod:`repro.obs` registry — the same text ``--metrics-port`` serves
    over HTTP, for clients already speaking the framed protocol
    (``repro top`` in daemon mode)."""

    TYPE: ClassVar[str] = "metrics"


@dataclass(frozen=True)
class SnapshotRequest(Frame):
    """Force a snapshot now, to ``path`` or the server's configured
    ``--snapshot-path``."""

    TYPE: ClassVar[str] = "snapshot"
    path: str | None = None

    @classmethod
    def from_payload(cls, payload: dict) -> "SnapshotRequest":
        return cls(
            id=_frame_id(payload, cls.TYPE),
            path=_optional(payload, "path", (str,), cls.TYPE),
        )


@dataclass(frozen=True)
class Ping(Frame):
    """Liveness probe / idle-timeout heartbeat.  Costs the server nothing
    (answered inline by :class:`Pong`, never queued) and counts as
    session activity: a client that pings inside the server's
    ``--idle-timeout`` window keeps an otherwise quiet connection open."""

    TYPE: ClassVar[str] = "ping"


@dataclass(frozen=True)
class Shutdown(Frame):
    """Stop the service: the server stops accepting work, drains the
    ingest queue, writes a final snapshot when configured, answers
    :class:`Goodbye`, and exits."""

    TYPE: ClassVar[str] = "shutdown"


# -- responses (server → client) ---------------------------------------
@dataclass(frozen=True)
class Welcome(Frame):
    """Successful :class:`Hello`: the negotiated version plus what the
    server already holds (``n`` null until ``load_graph``)."""

    TYPE: ClassVar[str] = "welcome"
    v: int = PROTOCOL_VERSION
    server: str = ""
    n: int | None = None

    @classmethod
    def from_payload(cls, payload: dict) -> "Welcome":
        return cls(
            id=_frame_id(payload, cls.TYPE),
            v=_require(payload, "v", (int,), cls.TYPE),
            server=_optional(payload, "server", (str,), cls.TYPE, default=""),
            n=_optional(payload, "n", (int,), cls.TYPE),
        )


@dataclass(frozen=True)
class GraphLoaded(Frame):
    """Successful :class:`LoadGraph`: the installed graph's shape and the
    cost of the initial coloring (``initial`` names which engine paid it:
    ``"pipeline"`` or ``"sharded"``; ``backend`` names the maintenance
    engine that now holds the graph: ``"single"`` or ``"sharded"``)."""

    TYPE: ClassVar[str] = "graph_loaded"
    n: int = 0
    m: int = 0
    delta: int = 0
    colors_used: int = 0
    initial_rounds: int = 0
    seconds: float = 0.0
    initial: str = "pipeline"
    backend: str = "single"

    @classmethod
    def from_payload(cls, payload: dict) -> "GraphLoaded":
        return cls(
            id=_frame_id(payload, cls.TYPE),
            n=_require(payload, "n", (int,), cls.TYPE),
            m=_require(payload, "m", (int,), cls.TYPE),
            delta=_require(payload, "delta", (int,), cls.TYPE),
            colors_used=_require(payload, "colors_used", (int,), cls.TYPE),
            initial_rounds=_require(payload, "initial_rounds", (int,), cls.TYPE),
            seconds=float(_require(payload, "seconds", (int, float), cls.TYPE)),
            initial=_optional(payload, "initial", (str,), cls.TYPE, default="pipeline"),
            backend=_optional(payload, "backend", (str,), cls.TYPE, default="single"),
        )


@dataclass(frozen=True)
class BatchReportFrame(Frame):
    """Pushed after the worker applies one engine batch: the
    :meth:`~repro.dynamic.BatchReport.as_dict` payload, the request ids
    it covers (> 1 when coalesced), and how many requests were merged.
    ``id`` is fixed at -1 — correlation runs through ``ids``."""

    TYPE: ClassVar[str] = "batch_report"
    id: int = -1
    ids: list = field(default_factory=list)
    coalesced: int = 1
    report: dict = field(default_factory=dict)

    @classmethod
    def from_payload(cls, payload: dict) -> "BatchReportFrame":
        return cls(
            ids=_node_list(payload, "ids", cls.TYPE),
            coalesced=_require(payload, "coalesced", (int,), cls.TYPE),
            report=_require(payload, "report", (dict,), cls.TYPE),
        )


@dataclass(frozen=True)
class ColorsReply(Frame):
    """Answer to :class:`QueryColors`: colors aligned with ``nodes``
    (or with 0..n-1 when ``nodes`` is null), plus the two invariant
    bits every read can be checked against."""

    TYPE: ClassVar[str] = "colors"
    nodes: list | None = None
    colors: list = field(default_factory=list)
    proper: bool = True
    complete: bool = True

    @classmethod
    def from_payload(cls, payload: dict) -> "ColorsReply":
        nodes = None
        if payload.get("nodes") is not None:
            nodes = _node_list(payload, "nodes", cls.TYPE)
        return cls(
            id=_frame_id(payload, cls.TYPE),
            nodes=nodes,
            colors=_node_list(payload, "colors", cls.TYPE),
            proper=bool(_require(payload, "proper", (bool,), cls.TYPE)),
            complete=bool(_require(payload, "complete", (bool,), cls.TYPE)),
        )


@dataclass(frozen=True)
class PaletteReply(Frame):
    """Answer to :class:`QueryPalette`."""

    TYPE: ClassVar[str] = "palette"
    node: int = 0
    color: int = -1
    num_colors: int = 0
    free: list = field(default_factory=list)

    @classmethod
    def from_payload(cls, payload: dict) -> "PaletteReply":
        return cls(
            id=_frame_id(payload, cls.TYPE),
            node=_require(payload, "node", (int,), cls.TYPE),
            color=_require(payload, "color", (int,), cls.TYPE),
            num_colors=_require(payload, "num_colors", (int,), cls.TYPE),
            free=_node_list(payload, "free", cls.TYPE),
        )


@dataclass(frozen=True)
class StatsReply(Frame):
    """Answer to :class:`StatsRequest`: one flat dict of counters
    (docs/PROTOCOL.md lists every key)."""

    TYPE: ClassVar[str] = "stats_report"
    stats: dict = field(default_factory=dict)

    @classmethod
    def from_payload(cls, payload: dict) -> "StatsReply":
        return cls(
            id=_frame_id(payload, cls.TYPE),
            stats=_require(payload, "stats", (dict,), cls.TYPE),
        )


@dataclass(frozen=True)
class MetricsReply(Frame):
    """Answer to :class:`MetricsRequest`: the Prometheus text exposition
    format 0.0.4 payload, verbatim (``''`` when the registry is
    disarmed — never the case for a running daemon)."""

    TYPE: ClassVar[str] = "metrics_report"
    text: str = ""

    @classmethod
    def from_payload(cls, payload: dict) -> "MetricsReply":
        return cls(
            id=_frame_id(payload, cls.TYPE),
            text=_optional(payload, "text", (str,), cls.TYPE, default=""),
        )


@dataclass(frozen=True)
class SnapshotSaved(Frame):
    """Answer to :class:`SnapshotRequest`: where the snapshot landed and
    the batch index it captures (restores resume from there)."""

    TYPE: ClassVar[str] = "snapshot_saved"
    path: str = ""
    batch_index: int = 0
    bytes: int = 0

    @classmethod
    def from_payload(cls, payload: dict) -> "SnapshotSaved":
        return cls(
            id=_frame_id(payload, cls.TYPE),
            path=_require(payload, "path", (str,), cls.TYPE),
            batch_index=_require(payload, "batch_index", (int,), cls.TYPE),
            bytes=_require(payload, "bytes", (int,), cls.TYPE),
        )


@dataclass(frozen=True)
class Pong(Frame):
    """Answer to :class:`Ping`, echoing its ``id`` — receipt proves the
    server's event loop is alive (not just the TCP/unix socket)."""

    TYPE: ClassVar[str] = "pong"


@dataclass(frozen=True)
class Goodbye(Frame):
    """Answer to :class:`Shutdown` — the last frame the server sends."""

    TYPE: ClassVar[str] = "goodbye"


@dataclass(frozen=True)
class ErrorFrame(Frame):
    """Any request can fail with this instead of its success reply.
    ``code`` ∈ :data:`ERROR_CODES`; ``retry_after`` (seconds) is set for
    ``queue-full`` — the backpressure contract: wait, then resubmit."""

    TYPE: ClassVar[str] = "error"
    id: int | None = None
    code: str = "internal"
    message: str = ""
    retry_after: float | None = None

    @classmethod
    def from_payload(cls, payload: dict) -> "ErrorFrame":
        code = _require(payload, "code", (str,), cls.TYPE)
        if code not in ERROR_CODES:
            raise ProtocolError("bad-payload", f"error: unknown code {code!r}")
        id_ = payload.get("id")
        if id_ is not None and (not isinstance(id_, int) or isinstance(id_, bool)):
            raise ProtocolError("bad-payload", "error: 'id' must be int or null")
        retry = payload.get("retry_after")
        if retry is not None and not isinstance(retry, (int, float)):
            raise ProtocolError("bad-payload", "error: 'retry_after' must be a number")
        return cls(
            id=id_,
            code=code,
            message=_optional(payload, "message", (str,), cls.TYPE, default=""),
            retry_after=float(retry) if retry is not None else None,
        )

    def to_exception(self) -> ProtocolError:
        """The exception form a client raises on receipt."""
        return ProtocolError(
            self.code, self.message, id=self.id, retry_after=self.retry_after
        )


# ----------------------------------------------------------------------
# Registries
# ----------------------------------------------------------------------
REQUEST_TYPES: dict[str, type[Frame]] = {
    cls.TYPE: cls
    for cls in (
        Hello,
        LoadGraph,
        UpdateBatchFrame,
        QueryColors,
        QueryPalette,
        StatsRequest,
        MetricsRequest,
        SnapshotRequest,
        Ping,
        Shutdown,
    )
}
"""Frames a client may send (the ten verbs of the service)."""

RESPONSE_TYPES: dict[str, type[Frame]] = {
    cls.TYPE: cls
    for cls in (
        Welcome,
        GraphLoaded,
        BatchReportFrame,
        ColorsReply,
        PaletteReply,
        StatsReply,
        MetricsReply,
        SnapshotSaved,
        Pong,
        Goodbye,
        ErrorFrame,
    )
}
"""Frames a server may send (one success shape per verb, plus the pushed
batch report and the error frame)."""

MESSAGE_TYPES: dict[str, type[Frame]] = {**REQUEST_TYPES, **RESPONSE_TYPES}
"""The complete registry — the docs-lint source of truth."""


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode_frame(frame: Frame) -> bytes:
    """Serialize ``frame`` to its length-prefixed wire bytes."""
    body = json.dumps(frame.to_payload(), separators=(",", ":")).encode() + b"\n"
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            "frame-too-large",
            f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}",
        )
    return _HEADER.pack(len(body)) + body


def decode_payload(raw: bytes) -> Frame:
    """Parse one frame body (the bytes after the length prefix) into its
    typed dataclass, validating as it goes."""
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("bad-frame", f"frame body is not JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("bad-frame", "frame body must be a JSON object")
    kind = payload.get("type")
    if not isinstance(kind, str):
        raise ProtocolError("bad-payload", "frame is missing the 'type' field")
    cls = MESSAGE_TYPES.get(kind)
    if cls is None:
        raise ProtocolError(
            "bad-type",
            f"unknown message type {kind!r}",
            id=payload.get("id") if isinstance(payload.get("id"), int) else None,
        )
    return cls.from_payload(payload)


def _check_length(header: bytes) -> int:
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            "frame-too-large",
            f"announced frame of {length} bytes exceeds {MAX_FRAME_BYTES}",
        )
    return length


def write_frame(fp: BinaryIO, frame: Frame) -> None:
    """Blocking send of one frame onto a file-like byte stream."""
    fp.write(encode_frame(frame))
    fp.flush()


def read_frame(fp: BinaryIO) -> Frame | None:
    """Blocking receive of one frame; ``None`` on clean EOF (the peer
    closed between frames).  A mid-frame EOF is ``bad-frame``."""
    header = fp.read(_HEADER.size)
    if not header:
        return None
    if len(header) < _HEADER.size:
        raise ProtocolError("bad-frame", "truncated frame header")
    length = _check_length(header)
    body = fp.read(length)
    if len(body) < length:
        raise ProtocolError("bad-frame", "truncated frame body")
    return decode_payload(body)


async def read_frame_async(reader: asyncio.StreamReader) -> Frame | None:
    """Asyncio twin of :func:`read_frame` (the server's receive path)."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("bad-frame", "truncated frame header") from exc
    length = _check_length(header)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("bad-frame", "truncated frame body") from exc
    return decode_payload(body)
