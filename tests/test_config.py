"""Tests for ColoringConfig: presets, derived quantities, Eq. (3)/(5)."""

import math

import pytest

from repro.config import ColoringConfig


class TestPresets:
    def test_practical_is_default_dataclass(self):
        assert ColoringConfig.practical() == ColoringConfig()

    def test_paper_constants(self):
        cfg = ColoringConfig.paper()
        assert cfg.eps == 1e-5
        assert cfg.beta == 401.0
        assert cfg.slack_probability == pytest.approx(1 / 200)
        assert cfg.x_full_factor == 200.0
        assert cfg.x_closed_factor == 400.0
        assert cfg.putaside_factor == 201.0
        assert cfg.permute_ac_eps == pytest.approx(1 / 12)

    def test_overrides(self):
        cfg = ColoringConfig.practical(eps=0.2, beta=5.0)
        assert cfg.eps == 0.2 and cfg.beta == 5.0

    def test_paper_overrides(self):
        cfg = ColoringConfig.paper(eps=0.01)
        assert cfg.eps == 0.01
        assert cfg.beta == 401.0

    def test_with_seed(self):
        cfg = ColoringConfig.practical().with_seed(99)
        assert cfg.seed == 99

    def test_frozen(self):
        cfg = ColoringConfig.practical()
        with pytest.raises(Exception):
            cfg.eps = 0.5


class TestDerived:
    def test_ell_formula(self):
        cfg = ColoringConfig.practical(ell_factor=2.0, ell_exponent=1.1)
        n = 1 << 10
        assert cfg.ell(n) == math.ceil(2.0 * 10 ** 1.1)

    def test_ell_minimum_one(self):
        assert ColoringConfig.practical().ell(1) >= 1

    def test_log_threshold(self):
        cfg = ColoringConfig.practical(c_log=3.0)
        assert cfg.log_threshold(1 << 8) == pytest.approx(24.0)

    def test_putaside_size_scales_with_ell(self):
        cfg = ColoringConfig.practical(putaside_factor=2.0)
        n = 1 << 12
        assert cfg.putaside_size(n) == math.ceil(2.0 * cfg.ell(n))

    def test_bandwidth_bits(self):
        cfg = ColoringConfig.practical(bandwidth_factor=16.0)
        assert cfg.bandwidth_bits(1 << 10) == 160

    def test_bandwidth_floor(self):
        assert ColoringConfig.practical().bandwidth_bits(2) >= 8


class TestClassification:
    def test_full_requires_small_a_plus_e(self):
        cfg = ColoringConfig.practical()
        n = 1 << 12
        ell = cfg.ell(n)
        assert cfg.classify_clique(n, ell / 4, ell / 4) == "full"

    def test_open_requires_dominant_e(self):
        cfg = ColoringConfig.practical()
        n = 1 << 12
        ell = cfg.ell(n)
        assert cfg.classify_clique(n, 1.0, 3.0 * ell) == "open"

    def test_closed_otherwise(self):
        cfg = ColoringConfig.practical()
        n = 1 << 12
        ell = cfg.ell(n)
        assert cfg.classify_clique(n, 2.0 * ell, ell) == "closed"

    def test_x_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            ColoringConfig.practical().x_of_clique("weird", 100, 1.0, 1.0)

    def test_x_open_minimum_one(self):
        cfg = ColoringConfig.practical()
        assert cfg.x_of_clique("open", 100, 0.0, 0.0) >= 1
