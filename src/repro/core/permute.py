"""Distributed permutation sampling (Algorithms 4 and 5, §4).

The synchronized color trial needs a (near-)uniform random permutation of
the uncolored clique members, computed with O(log n)-bit broadcasts.  Both
algorithms share the skeleton *rough-bucket → relabel → permute within
buckets → prefix offsets*:

* **Algorithm 4** (O(log log n) rounds): one level of random buckets of
  ~C log n nodes; the max-ID node of each bucket gathers the
  O(log log n)-bit labels, samples a uniform permutation of its bucket and
  ships it — Θ(log n · log log n) bits, i.e. O(log log n) rounds.
* **Algorithm 5** (O(1) rounds): a second, finer bucketing splits each
  bucket into ~log n/log log n-sized sub-buckets whose permutations fit in
  *one* message; sub-buckets that fail the AC-preservation test
  (Definition 4.6) fall into a leftover set R, permuted via Many-to-All
  broadcast of random priorities (Claim 3.11).

Output: π, a bijection S → [|S|]; node v tries the π(v)-th color of the
clique palette (§3.2).  Lemma 4.4/4.5 say π is within 1/poly(n) of
uniform — the test suite checks bijectivity exactly and uniformity
statistically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import ColoringConfig
from repro.core.relabel import relabel
from repro.simulator.network import BroadcastNetwork
from repro.simulator.rng import SeedSequencer
from repro.util.bitio import bits_for_count, bits_for_id, bits_for_int

__all__ = ["PermutationResult", "permute_loglog", "permute_constant", "sample_permutation"]


@dataclass
class PermutationResult:
    nodes: np.ndarray  # S, the permuted set
    pi: np.ndarray  # pi[i] = position of nodes[i]; a bijection onto [|S|]
    rounds: int
    leftover: int = 0  # |R| (Algorithm 5 only)
    relabel_failures: int = 0
    buckets: int = 0

    def position_of(self) -> dict[int, int]:
        return {int(v): int(p) for v, p in zip(self.nodes, self.pi)}

    def validate(self) -> bool:
        return (
            np.sort(self.pi).tolist() == list(range(self.nodes.size))
            if self.nodes.size
            else True
        )


def _bucket_count(net: BroadcastNetwork, cfg: ColoringConfig, size: int) -> int:
    """k = ⌊Δ/(C log n)⌋ rough buckets (Lemma 4.1), clamped to the set."""
    k = int(net.delta // max(cfg.log_threshold(net.n), 1.0))
    return int(np.clip(k, 1, max(size, 1)))


def _many_to_all_rounds(
    net: BroadcastNetwork,
    cfg: ColoringConfig,
    num_messages: int,
    bits: int,
    phase: str,
    account: bool = True,
) -> int:
    """Claim 3.11: O(Δ/log n) messages disseminate clique-wide in O(1)
    rounds (everyone re-broadcasts a random received message).  More
    messages cost proportionally more rounds."""
    if num_messages <= 0:
        return 0
    capacity = max(1, int(net.delta // max(cfg.log_threshold(net.n), 1.0)))
    waves = int(np.ceil(num_messages / capacity))
    rounds = 2 * waves  # send + relay per wave
    if account:
        for _ in range(waves):
            net.account_vector_round(min(num_messages, capacity), bits, phase=phase)
            net.account_vector_round(min(num_messages, capacity), bits, phase=phase)
    return rounds


def permute_loglog(
    net: BroadcastNetwork,
    clique_members: np.ndarray,
    subset: np.ndarray,
    cfg: ColoringConfig,
    seq: SeedSequencer,
    phase: str = "sct/permute4",
    tag: object = 0,
    account: bool = True,
) -> PermutationResult:
    """Algorithm 4: the O(log log n)-round permutation of ``subset`` ⊆ K."""
    members = np.asarray(clique_members, dtype=np.int64)
    subset = np.asarray(subset, dtype=np.int64)
    s = subset.size
    if s == 0:
        return PermutationResult(nodes=subset, pi=np.empty(0, dtype=np.int64), rounds=0)

    rng = seq.stream("permute4", phase, tag)
    k = _bucket_count(net, cfg, members.size)
    t_members = rng.integers(0, k, size=members.size)
    member_bucket = {int(v): int(b) for v, b in zip(members, t_members)}
    buckets: list[list[int]] = [[] for _ in range(k)]
    for v in subset:
        buckets[member_bucket[int(v)]].append(int(v))

    # Step 2 — counting buckets: aggregate + disseminate along depth-2 BFS.
    cnt_bits = bits_for_count(members.size)
    if account:
        net.account_vector_round(members.size, cnt_bits, phase=phase)
        net.account_vector_round(k, cnt_bits, phase=phase)
    rounds = 2

    # Step 3 — Relabel, all buckets in parallel (each node broadcasts once).
    relabel_results = []
    relabel_failures = 0
    max_relabel_rounds = 0
    for i, bucket in enumerate(buckets):
        rr = relabel(
            net,
            np.asarray(bucket, dtype=np.int64),
            cfg,
            seq.spawn("relabel", phase, tag, i),
            phase=phase,
            account=False,
        )
        relabel_results.append(rr)
        relabel_failures += 0 if rr.succeeded else 1
        max_relabel_rounds = max(max_relabel_rounds, rr.rounds)
    if account:
        for _ in range(max_relabel_rounds):
            net.account_vector_round(s, net.bandwidth_bits or 64, phase=phase)
    rounds += max_relabel_rounds

    # Step 4 — the max-ID node of each bucket gathers the new labels,
    # samples ρ_i and broadcasts it: Θ(log n) labels of Θ(log log n) bits,
    # paced by the bandwidth — the O(log log n) of the name.
    pi = np.empty(s, dtype=np.int64)
    pos = {int(v): idx for idx, v in enumerate(subset)}
    offset = 0
    max_leader_rounds = 0
    for i, bucket in enumerate(buckets):
        b = len(bucket)
        if b == 0:
            continue
        rr = relabel_results[i]
        rho = seq.stream("rho", phase, tag, i).permutation(b)
        for local_idx, v in enumerate(bucket):
            pi[pos[v]] = offset + int(rho[local_idx])
        label_bits = rr.label_bits if rr.nodes.size else 1
        payload = b * max(label_bits, 1)
        budget = net.bandwidth_bits or payload
        max_leader_rounds = max(max_leader_rounds, int(np.ceil(payload / budget)))
        offset += b
    if account:
        for _ in range(max_leader_rounds):
            net.account_vector_round(k, net.bandwidth_bits or 64, phase=phase)
    rounds += max_leader_rounds

    return PermutationResult(
        nodes=subset,
        pi=pi,
        rounds=rounds,
        relabel_failures=relabel_failures,
        buckets=k,
    )


def permute_constant(
    net: BroadcastNetwork,
    clique_members: np.ndarray,
    subset: np.ndarray,
    cfg: ColoringConfig,
    seq: SeedSequencer,
    phase: str = "sct/permute5",
    tag: object = 0,
    account: bool = True,
) -> PermutationResult:
    """Algorithm 5: the O(1)-round permutation of ``subset`` ⊆ K."""
    members = np.asarray(clique_members, dtype=np.int64)
    subset = np.asarray(subset, dtype=np.int64)
    s = subset.size
    if s == 0:
        return PermutationResult(nodes=subset, pi=np.empty(0, dtype=np.int64), rounds=0)

    rng = seq.stream("permute5", phase, tag)
    eps2 = cfg.permute_ac_eps  # ε'' of Algorithm 5 (paper: 1/12)
    k = _bucket_count(net, cfg, members.size)
    k_fine = max(1, int(np.ceil(cfg.c_log * np.log2(max(np.log2(max(net.n, 4)), 2.0)))))

    # Step 1 — rough bucketing of all of K.
    t_members = rng.integers(0, k, size=members.size)
    # Step 2 — counting |T_i|, |S_i|: 2 rounds.
    cnt_bits = bits_for_count(members.size)
    if account:
        net.account_vector_round(members.size, 2 * cnt_bits, phase=phase)
        net.account_vector_round(k, 2 * cnt_bits, phase=phase)
    rounds = 2

    member_bucket = {int(v): int(b) for v, b in zip(members, t_members)}
    t_buckets: list[list[int]] = [[] for _ in range(k)]  # T_i over K
    for v in members:
        t_buckets[member_bucket[int(v)]].append(int(v))
    s_buckets: list[list[int]] = [[] for _ in range(k)]  # S_i = T_i ∩ S
    for v in subset:
        s_buckets[member_bucket[int(v)]].append(int(v))

    # Step 3 — Relabel (parallel across buckets): 2 shared rounds.
    relabel_failures = 0
    for i in range(k):
        rr = relabel(
            net,
            np.asarray(s_buckets[i], dtype=np.int64),
            cfg,
            seq.spawn("relabel", phase, tag, i),
            phase=phase,
            account=False,
        )
        relabel_failures += 0 if rr.succeeded else 1
    if account:
        net.account_vector_round(s, net.bandwidth_bits or 64, phase=phase)
        net.account_vector_round(s, net.bandwidth_bits or 64, phase=phase)
    rounds += 2

    in_member = np.zeros(net.n, dtype=bool)
    in_member[members] = True

    pi = np.empty(s, dtype=np.int64)
    pos = {int(v): idx for idx, v in enumerate(subset)}
    leftover_entries: list[tuple[int, int, int]] = []  # (i, i', v)
    offset = 0
    # Steps 4a–4c per rough bucket.
    fine_assign: dict[int, int] = {}
    local_perm: dict[tuple[int, int], list[int]] = {}
    preserved_flags: dict[tuple[int, int], bool] = {}
    for i in range(k):
        t_i = t_buckets[i]
        s_i = s_buckets[i]
        if not s_i:
            continue
        sub_rng = seq.stream("fine", phase, tag, i)
        tprime = sub_rng.integers(0, k_fine, size=len(t_i))
        for v, b in zip(t_i, tprime):
            fine_assign[v] = int(b)
        # AC-preservation check (Definition 4.6) per fine bucket: every
        # v ∈ T_i must see ≈ |N(v)∩T_i|/k' neighbors in T_{i,i'}.
        t_i_mask = np.zeros(net.n, dtype=bool)
        t_i_mask[np.asarray(t_i, dtype=np.int64)] = True
        for i2 in range(k_fine):
            fine_nodes = [v for v in t_i if fine_assign[v] == i2]
            s_fine = [v for v in s_i if fine_assign[v] == i2]
            if not s_fine:
                continue
            fine_mask = np.zeros(net.n, dtype=bool)
            fine_mask[np.asarray(fine_nodes, dtype=np.int64)] = True
            preserved = True
            for v in t_i:
                nb = net.neighbors(v)
                in_ti = int(t_i_mask[nb].sum())
                in_fine = int(fine_mask[nb].sum())
                target = in_ti / k_fine
                if not (1 - eps2) * target <= in_fine <= (1 + eps2) * target:
                    preserved = False
                    break
            preserved_flags[(i, i2)] = preserved
            if preserved:
                rho = seq.stream("rho5", phase, tag, i, i2).permutation(len(s_fine))
                local_perm[(i, i2)] = [int(p) for p in rho]
            else:
                for v in s_fine:
                    leftover_entries.append((i, i2, v))
    # Step 4b/4c accounting: fine counts + the one-message permutations.
    if account:
        net.account_vector_round(members.size, bits_for_int(max(k_fine, 2)), phase=phase)
        net.account_vector_round(
            len(local_perm), net.bandwidth_bits or 64, phase=phase
        )
    rounds += 2

    # Step 5 — leftover R: (ID, t, t', r) tuples via Many-to-All broadcast,
    # then in-bucket ordering by the random priorities r.
    r_bits = max(16, (net.bandwidth_bits or 64) // 2)
    tuple_bits = (
        bits_for_id(net.n)
        + bits_for_int(max(k, 2))
        + bits_for_int(max(k_fine, 2))
        + r_bits
    )
    rounds += _many_to_all_rounds(
        net,
        cfg,
        len(leftover_entries),
        min(tuple_bits, net.bandwidth_bits or tuple_bits),
        phase,
        account=account,
    )
    leftover_rank: dict[tuple[int, int], list[int]] = {}
    prio_rng = seq.stream("prio", phase, tag)
    prio = {v: int(prio_rng.integers(0, 1 << 62)) for (_, _, v) in leftover_entries}
    for (i, i2, v) in leftover_entries:
        leftover_rank.setdefault((i, i2), []).append(v)
    for key, vs in leftover_rank.items():
        vs.sort(key=lambda v: (prio[v], v))
        local_perm[key] = list(range(len(vs)))

    # Step 6 — output: global offset = Σ_{j<i}|S_j| + Σ_{j'<i'}|S_{i,j'}|.
    offset = 0
    for i in range(k):
        s_i = s_buckets[i]
        if not s_i:
            continue
        fine_groups: list[list[int]] = [[] for _ in range(k_fine)]
        for v in s_i:
            fine_groups[fine_assign[v]].append(v)
        inner_offset = 0
        for i2 in range(k_fine):
            group = fine_groups[i2]
            if not group:
                continue
            key = (i, i2)
            if key in leftover_rank:
                ordered = leftover_rank[key]
                for rank, v in enumerate(ordered):
                    pi[pos[v]] = offset + inner_offset + rank
            else:
                rho = local_perm[key]
                for local_idx, v in enumerate(group):
                    pi[pos[v]] = offset + inner_offset + rho[local_idx]
            inner_offset += len(group)
        offset += len(s_i)

    return PermutationResult(
        nodes=subset,
        pi=pi,
        rounds=rounds,
        leftover=len(leftover_entries),
        relabel_failures=relabel_failures,
        buckets=k,
    )


def sample_permutation(
    net: BroadcastNetwork,
    clique_members: np.ndarray,
    subset: np.ndarray,
    cfg: ColoringConfig,
    seq: SeedSequencer,
    phase: str = "sct/permute",
    tag: object = 0,
    account: bool = True,
) -> PermutationResult:
    """Dispatch on ``cfg.permute_constant_round`` (Algorithm 5 vs 4)."""
    fn = permute_constant if cfg.permute_constant_round else permute_loglog
    return fn(net, clique_members, subset, cfg, seq, phase=phase, tag=tag, account=account)
