"""E9 — MultiTrial (Lemma 2.14): O(log* n) coloring under slack.

Paper claim: with lists satisfying |L(v) ∩ Ψ(v)| ≥ 2d̂(v) (+ an ℓ-sized
floor), MultiTrial colors everything in O(log* n) rounds while each node
broadcasts only a seed per round.  Measured: iterations-to-done vs n on
high-slack workloads (flat in n, ≤ a small constant) and the contrast
with plain one-color TryColor on the same instances.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np
import pytest

from _common import print_table
from repro.analysis.fitting import growth_fit
from repro.config import ColoringConfig
from repro.core.multitrial import multitrial
from repro.core.state import ColoringState
from repro.core.trycolor import palette_sampler, try_color_round
from repro.graphs.generators import gnp_graph
from repro.runner.benchtrack import append_entry
from repro.simulator.network import BroadcastNetwork
from repro.simulator.rng import SeedSequencer

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY = REPO_ROOT / "BENCH_multitrial.json"


def high_slack_graph(n, seed):
    # Expected degree ~n·p with Δ+1 palette ⇒ slack ≈ Δ − d ≈ Δ/2-ish.
    return gnp_graph(n, 24.0 / n, seed=seed)


@pytest.mark.benchmark(group="E9-multitrial")
def test_e9_iterations_flat_in_n(benchmark):
    cfg = ColoringConfig.practical()
    rows = []
    ns = [512, 1024, 2048, 4096, 8192, 16384]
    series = []
    for n in ns:
        iters = []
        for seed in range(3):
            net = BroadcastNetwork(high_slack_graph(n, seed))
            state = ColoringState(net)
            mask = np.ones(n, dtype=bool)
            lo = np.zeros(n, dtype=np.int64)
            hi = np.full(n, state.num_colors, dtype=np.int64)
            rep = multitrial(state, mask, lo, hi, cfg, SeedSequencer(seed), "mt")
            assert rep.remaining == 0
            iters.append(rep.iterations)
        series.append(np.mean(iters))
        rows.append((n, f"{np.mean(iters):.1f}", int(np.max(iters))))
    print_table(
        "E9 MultiTrial iterations vs n (high-slack G(n, 24/n))",
        ["n", "mean iterations", "max"],
        rows,
    )
    fit = growth_fit(ns, series)
    print(f"shape fit: {fit.best}")
    assert max(series) - min(series) <= 2.5
    assert max(series) <= 8  # log*-flavored constant
    benchmark.pedantic(lambda: _mt_once(2048, 7), rounds=1, iterations=1)


def _mt_once(n, seed):
    cfg = ColoringConfig.practical()
    net = BroadcastNetwork(high_slack_graph(n, seed))
    state = ColoringState(net)
    mask = np.ones(n, dtype=bool)
    lo = np.zeros(n, dtype=np.int64)
    hi = np.full(n, state.num_colors, dtype=np.int64)
    return multitrial(state, mask, lo, hi, cfg, SeedSequencer(seed), "mt")


@pytest.mark.benchmark(group="E9-multitrial")
def test_e9_multitrial_vs_single_trycolor(benchmark):
    """On the same instance, MultiTrial needs fewer rounds than one-color-
    per-round TryColor (the multi-try advantage slack buys)."""
    cfg = ColoringConfig.practical()
    rows = []
    for n in [1024, 4096]:
        mt_rounds, tc_rounds = [], []
        for seed in range(3):
            net = BroadcastNetwork(high_slack_graph(n, seed))
            state = ColoringState(net)
            mask = np.ones(n, dtype=bool)
            lo = np.zeros(n, dtype=np.int64)
            hi = np.full(n, state.num_colors, dtype=np.int64)
            rep = multitrial(state, mask, lo, hi, cfg, SeedSequencer(seed), "mt")
            mt_rounds.append(rep.iterations)

            net2 = BroadcastNetwork(high_slack_graph(n, seed))
            state2 = ColoringState(net2)
            seq2 = SeedSequencer(seed)
            r = 0
            while state2.num_uncolored() and r < 500:
                try_color_round(
                    state2, state2.uncolored_nodes(), palette_sampler(state2), seq2, "tc", r
                )
                r += 1
            tc_rounds.append(r)
        rows.append((n, f"{np.mean(mt_rounds):.1f}", f"{np.mean(tc_rounds):.1f}"))
        assert np.mean(mt_rounds) <= np.mean(tc_rounds) + 1
    print_table(
        "E9 MultiTrial iterations vs TryColor rounds to completion",
        ["n", "MultiTrial", "TryColor"],
        rows,
    )
    benchmark.pedantic(lambda: _mt_once(1024, 3), rounds=1, iterations=1)


@pytest.mark.benchmark(group="E9-multitrial")
def test_e9_vectorized_speedup_tracked(benchmark):
    """The tracked perf baseline: MultiTrial at n≈20k (G(n, 24/n) — the
    sparse-phase workload) under the pre-vectorization configuration
    (per-node engine, "prg" sampler) vs the vectorized default (edge-wise
    engine, "batched" counter-mode sampler).  Appends both wall-clocks and
    the speedup to ``BENCH_multitrial.json`` at the repo root; CI uploads
    the file and fails when the benchmarked path is not the vectorized
    engine (the per-node loop would silently eat the speedup).
    """
    n = int(os.environ.get("REPRO_BENCH_MT_N", "20000"))
    reps = int(os.environ.get("REPRO_BENCH_MT_REPS", "3"))
    graph = high_slack_graph(n, 7)

    def run_once(sampler: str, engine: str) -> tuple[float, object]:
        net = BroadcastNetwork(graph)
        state = ColoringState(net)
        cfg = ColoringConfig.practical(multitrial_sampler=sampler)
        mask = np.ones(n, dtype=bool)
        lo = np.zeros(n, dtype=np.int64)
        hi = np.full(n, state.num_colors, dtype=np.int64)
        t0 = time.perf_counter()
        rep = multitrial(state, mask, lo, hi, cfg, SeedSequencer(1), "mt", engine=engine)
        elapsed = time.perf_counter() - t0
        assert rep.remaining == 0
        return elapsed, rep

    legacy_s = min(run_once("prg", "pernode")[0] for _ in range(reps))
    vec_times, vec_rep = [], None
    for _ in range(reps):
        elapsed, vec_rep = run_once("batched", "vectorized")
        vec_times.append(elapsed)
    vectorized_s = min(vec_times)
    speedup = legacy_s / max(vectorized_s, 1e-9)

    rows = [
        ("per-node engine + prg sampler (pre-refactor)", f"{legacy_s:.3f}"),
        ("vectorized engine + batched sampler (default)", f"{vectorized_s:.4f}"),
        ("speedup", f"{speedup:.1f}x"),
    ]
    print_table(f"E9 vectorized MultiTrial speedup (n={n})", ["path", "seconds"], rows)

    assert vec_rep.engine == "vectorized", "benchmarked path fell back to the per-node loop"
    append_entry(
        TRAJECTORY,
        {
            "n": n,
            "family": "gnp-24/n",
            "engine": vec_rep.engine,
            "sampler": "batched",
            "iterations": vec_rep.iterations,
            "legacy_s": round(legacy_s, 4),
            "vectorized_s": round(vectorized_s, 4),
            "speedup": round(speedup, 2),
        },
        label=f"multitrial-n{n}",
    )
    # Generous sanity floor (CI hardware varies); the tracked trajectory
    # carries the real number — locally this measures >10x.
    assert speedup >= 2.0
    benchmark.pedantic(lambda: _mt_once(4096, 5), rounds=1, iterations=1)


@pytest.mark.benchmark(group="E9-multitrial")
def test_e9_seed_bandwidth(benchmark):
    """The whole point of representative sets: bits per round stay one
    seed (+ the adopted color), independent of how many colors are tried."""
    cfg = ColoringConfig.practical(multitrial_cap=64)
    n = 2048
    net = BroadcastNetwork(high_slack_graph(n, 1))
    net.bandwidth_bits = cfg.bandwidth_bits(n)
    state = ColoringState(net)
    mask = np.ones(n, dtype=bool)
    lo = np.zeros(n, dtype=np.int64)
    hi = np.full(n, state.num_colors, dtype=np.int64)
    multitrial(state, mask, lo, hi, cfg, SeedSequencer(1), "mt")
    stats = net.metrics.phases["mt"]
    naive_bits = 64 * int(np.ceil(np.log2(state.num_colors)))  # explicit list
    rows = [
        ("max message bits (ours)", stats.max_message_bits),
        ("explicit 64-color list would be", naive_bits),
        ("bandwidth cap", net.bandwidth_bits),
    ]
    print_table("E9 seed-broadcast bandwidth", ["quantity", "bits"], rows)
    assert stats.max_message_bits <= net.bandwidth_bits
    assert stats.max_message_bits < naive_bits
    benchmark.pedantic(lambda: _mt_once(2048, 2), rounds=1, iterations=1)
