"""Algorithm configuration: every constant of the paper in one place.

The paper (Eq. (3)) fixes ``ε = 10⁻⁵``, ``β = 401``, ``ℓ = C·log^{1.1} n``
and a "large enough" constant ``C``.  Those values make the union bounds go
through for asymptotic n but mean the dense-clique machinery only activates
at astronomically large inputs.  As DESIGN.md §2 documents, the reproduction
therefore ships two presets:

* :meth:`ColoringConfig.paper` — the published constants, used when checking
  formulas and for documentation parity;
* :meth:`ColoringConfig.practical` — structurally identical but scaled so
  that every phase (almost-cliques, colorful matching, put-aside sets,
  synchronized color trial, MultiTrial) actually executes at simulable
  sizes (n up to ~10⁵).  All experiments state which preset they use.

Nothing else in the code base hard-codes a threshold; change the config and
the whole pipeline follows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any

from repro.util.mathx import poly_log

__all__ = ["ColoringConfig"]


@dataclass(frozen=True)
class ColoringConfig:
    """All tunables of the reproduction.

    Attributes mirror the paper's notation where one exists; the docstring
    of each field points at the defining equation.
    """

    # --- almost-clique decomposition (Definition 2.2, Lemma 2.5) ---
    eps: float = 0.1
    """ε of the ε-almost-clique decomposition.  Paper: 10⁻⁵."""

    acd_minhash_samples: int = 256
    """Number of b-bit minhash samples per edge-similarity estimate."""

    acd_minhash_bits: int = 2
    """b of b-bit minwise hashing (fingerprint width)."""

    acd_sketch_engine: str = "packed"
    """Similarity-estimator engine for the ACD sketches: "packed" (b-bit
    fingerprints packed ⌊64/b⌋ per uint64 word, per-edge XOR + branch-free
    SWAR zero-field count, chunked over edges — the fast default, see
    DESIGN.md §4) or "unpacked" (the (T × m) fingerprint-matrix comparison
    kept as the reference).  Both engines return bit-identical similarity
    estimates; the choice never affects rounds, bits, or the decomposition."""

    acd_friend_slack: float = 1.5
    """Friend threshold: uv is a friend edge when the estimated Jaccard
    similarity of closed neighborhoods is at least ``1 - friend_slack*eps``."""

    acd_repair_iterations: int = 4
    """Max peeling passes enforcing Def. 2.2(2b) on candidate cliques."""

    # --- slack generation (Lemma 2.12) ---
    slack_probability: float = 1.0 / 200.0
    """p_s: probability a node participates in slack generation.  Paper: 1/200."""

    # --- colorful matching (Lemma 2.9, Eq. (3)) ---
    beta: float = 2.0
    """β: target matching size is β·a_K.  Paper: 401 (with ε=10⁻⁵)."""

    matching_round_factor: float = 6.0
    """The matching loop runs at most ``ceil(matching_round_factor * beta)``
    rounds — the O(β) bound of Lemma 2.9."""

    # --- thresholds of the form C·log n and ℓ = C·log^{1.1} n (Eq. (3)) ---
    c_log: float = 1.0
    """The ubiquitous ``C`` multiplying ``log n`` thresholds (a_K ≥ C log n
    for the colorful matching, group sizes in §4, ...).  Paper: "large
    enough"."""

    ell_factor: float = 1.0
    """C of ``ℓ = C·log^{1.1} n``."""

    ell_exponent: float = 1.1
    """The 1.1 of ``ℓ = C·log^{1.1} n``."""

    # --- reserved color prefix x(K) (Eq. (5)) ---
    x_full_factor: float = 4.0
    """x(K) = x_full_factor·ℓ for full cliques.  Paper: 200·ℓ."""

    x_closed_factor: float = 4.0
    """x(K) = x_closed_factor·a_K for closed cliques.  Paper: 400·a_K."""

    x_open_factor: float = 0.5
    """x(K) = x_open_factor·e_K for open cliques.  Paper: γε/8·e_K."""

    # --- outliers (Definition 3.1) ---
    outlier_factor: float = 30.0
    """v is an outlier when e_v ≥ outlier_factor·ē_K or a_v ≥ outlier_factor·ā_K.
    Paper: 30."""

    # --- put-aside sets (Lemma 3.4, §3.3, Appendix B) ---
    putaside_factor: float = 1.0
    """|P_K| = ceil(putaside_factor·ℓ).  Paper: 201·ℓ."""

    compress_try_colors: int = 8
    """k: colors each put-aside node pre-samples in CompressTry (Alg. 6).
    Paper: ceil(C log n / log² log n)."""

    compress_try_repeats: int = 4
    """Independent CompressTry instances run in parallel (§3.3 runs
    Θ(log log n) of them)."""

    # --- synchronized color trial (§4) ---
    group_size_target: float = 2.0
    """Rough buckets aim for ``group_size_target·C·log n`` nodes per bucket
    (the ∆/(C log n) bucketing of Lemma 4.1, inverted)."""

    permute_constant_round: bool = False
    """Use Algorithm 5 (O(1) rounds) instead of Algorithm 4 (O(log log n)).
    The paper notes Algorithm 4 "suffices for Theorems 1 and 2"; Algorithm
    5's advantage is asymptotic (its leftover-set dissemination needs
    Δ ≫ log³ n to be cheap), so the practical preset defaults to 4 and the
    paper preset to 5.  Bench E7 measures the crossover."""

    permute_ac_eps: float = 1.0 / 3.0
    """ε'' of Algorithm 5's AC-preservation test (Definition 4.6).  Paper:
    1/12 — meaningful when buckets hold Θ(log n) ≫ 1 nodes; the practical
    preset relaxes it so small fine-buckets don't all fall into R."""

    sct_extra_trycolor_rounds: int = 3
    """Extra TryColor rounds in open cliques after SCT (proof of Lemma 3.7:
    "O(1) additional rounds")."""

    # --- MultiTrial (Lemma 2.14) ---
    multitrial_initial: int = 2
    """Colors tried in the first MultiTrial iteration."""

    multitrial_growth: float = 2.0
    """Geometric growth of tries per iteration (the log* engine)."""

    multitrial_cap: int = 64
    """Upper bound on colors tried per iteration (seed expansion length)."""

    multitrial_max_iters: int = 24
    """Safety bound on MultiTrial iterations before falling back."""

    multitrial_sampler: str = "batched"
    """Seed-expansion device for representative sets: "batched" (vectorized
    counter-mode splitmix64 — one numpy call expands every active node's
    seed, see DESIGN.md §4), "prg" (per-node counter-mode PCG64, the
    pre-vectorization default, kept for stream-level reproducibility) or
    "expander" (the [HN23] construction itself: deterministic walks on a
    Margulis–Gabber–Galil expander over the color space).  All three keep
    the broadcaster/listener symmetry of Lemma 2.14: the expansion is a
    pure function of (seed, list)."""

    # --- dynamic graphs / incremental recoloring (repro.dynamic, DESIGN.md §6) ---
    dynamic_fallback_fraction: float = 0.25
    """Full-recolor fallback trigger: when the conflicted fraction of
    active nodes after a batch exceeds this, the incremental engine drops
    the maintained coloring and re-runs the whole pipeline.  ≥ 1.0 never
    falls back (repair-only); < 0.0 always falls back (the
    recolor-from-scratch baseline the bench compares against)."""

    dynamic_repair_use_multitrial: bool = True
    """Repair engine: seed the conflict set through MultiTrial (geometric
    try growth, seed broadcasts) before the TryColor mop-up.  Off = plain
    TryColor rounds only — the right choice for tiny conflict sets, and
    the ablation axis of bench_dynamic."""

    dynamic_repair_multitrial_min: int = 8
    """Conflict sets smaller than this skip MultiTrial and go straight to
    TryColor (a 2-node repair does not need seed machinery)."""

    dynamic_batches: int = 8
    """Default churn-schedule length for runner trials (algorithm
    "dynamic") — each batch is one :class:`repro.dynamic.UpdateBatch`."""

    dynamic_churn_fraction: float = 0.05
    """Default per-batch churn intensity for generated schedules: the
    fraction of current edges resampled (sliding-window families) or the
    mobility step scale (mobile geometric)."""

    conflict_victim: str = "id"
    """Victim selection for monochromatic-edge repair (shared by the
    dynamic engine's conflict detector and the shard reconciler): "id"
    uncolors the larger-ID endpoint (the original rule), "slack" uncolors
    the endpoint with the larger palette — the node with more free colors
    re-colors fastest, so the more constrained endpoint (smaller palette
    slack) keeps its color and repair rounds shrink (ROADMAP item)."""

    # --- multi-shard partitioned coloring (repro.shard, DESIGN.md §7) ---
    shard_k: int = 4
    """Number of shards the node universe is partitioned into for
    ``algorithm="shard"`` runs (k=1 degenerates to the single-process
    pipeline, bit for bit)."""

    shard_strategy: str = "contiguous"
    """Partition strategy: "contiguous" (balanced node-id blocks),
    "random" (seeded permutation blocks) or "greedy" (METIS-like greedy
    balanced graph growing, minimizing the cut on graphs with locality).
    See :data:`repro.shard.partition.STRATEGIES`."""

    shard_reconcile_max_iters: int = 10
    """Upper bound on detect→repair sweeps of the cross-shard
    reconciliation loop.  One sweep suffices when the repair kernel fully
    re-colors its victims (adoption is proper by construction); extra
    sweeps only fire when a repair stalls at the round cap."""

    shard_worker_timeout_s: float = 0.0
    """Per-shard wall-clock deadline for pool workers (seconds): a shard
    whose worker has not returned within this budget counts as a
    ``worker_timeout`` fault and is retried/degraded by the supervisor
    (DESIGN.md §9).  0 disables the deadline.  Inline execution
    (``workers=1``) cannot be deadlined — the driver would be
    interrupting itself."""

    shard_max_retries: int = 2
    """How many times the shard supervisor re-submits a failed shard
    (crash, ``BrokenProcessPool``, deadline overrun) before degrading.
    Retries replay the *same* derived per-shard seed, so a recovered run
    is bit-identical to a fault-free one."""

    shard_retry_backoff_s: float = 0.05
    """Base of the supervisor's capped exponential backoff between
    retries of one shard: attempt ``a`` waits
    ``base · 2^(a-1) · jitter`` with a deterministic jitter in
    [0.5, 1.0) derived from the run's seed sequencer."""

    shard_inline_fallback: bool = True
    """Graceful degradation: when a shard exhausts its retries, color it
    inline in the driver (with any armed fault plan suppressed) instead
    of failing the run.  Off = raise
    :class:`repro.shard.engine.ShardWorkerError` — the fail-fast mode
    the ``BrokenProcessPool`` propagation test pins."""

    shard_transport: str = "shm"
    """How shard workers receive their view of the graph. ``"shm"``
    (default): the driver packs the global CSR + partition index + colors
    into one ``multiprocessing.shared_memory`` arena
    (:class:`repro.shard.shm.ShmArena`) and workers attach zero-copy —
    the argument pipe carries a descriptor of a few hundred bytes and
    per-worker memory scales with interior + ghost size, not n.
    ``"pickle"``: the legacy path — each worker receives its full
    :class:`~repro.simulator.network.ShardView` pickled through the pool
    pipe (O(n_i + m_i) bytes per worker).  Results are byte-identical
    either way; the tests pin that."""

    shard_start_method: str = "default"
    """Multiprocessing start method for the shard worker pool:
    ``"default"`` (the platform's — fork on linux, fast), ``"fork"``,
    ``"forkserver"`` or ``"spawn"``.  Results are identical under all of
    them (the fault plan and every task ride the argument pipe
    explicitly).  ``"spawn"`` matters for *measurement*: forked workers
    inherit the driver's whole address space copy-on-write, so their RSS
    reflects the driver, not the shard — spawned workers start from a
    bare interpreter and fault in only the shared-memory pages they
    touch, which is how the per-worker ``peak_rss_mb`` ∝ interior+ghost
    claim is benchmarked."""

    shard_repair_pool_min: int = 20000
    """Dispatch a reconciliation sweep to the worker pool only when its
    repair set (monochromatic cut edges + uncolored stragglers) is at
    least this many nodes; smaller sweeps run inline in the driver.
    Boundary repair is cut-sized, so below this scale pool dispatch —
    worker boot under ``shard_start_method="spawn"`` especially — costs
    more than the repair itself.  Inline and pooled repair are the same
    pure function, so this knob never changes the coloring, only where
    it is computed.  0 forces the pool path (the tests use it)."""

    dynamic_shard_resketch: bool = True
    """Delta-aware ACD maintenance in
    :class:`~repro.shard.dynamic.ShardedDynamicColoring` (k > 1): the
    driver caches the minhash fingerprint grid under a fixed salt and, on
    fallback, re-sketches only nodes whose closed neighborhood changed
    since the last sketch
    (:func:`~repro.hashing.fingerprints.refresh_minwise_fingerprints`)
    instead of paying the full ``O(T·(n+m))`` sketch — the refreshed grid
    is byte-identical to a from-scratch sketch of the current topology,
    and only the changed fingerprints are re-broadcast.  ``False``
    recomputes the decomposition from scratch inside the fallback
    pipeline (the unsharded engine's discipline)."""

    # --- streaming service (repro.serve, DESIGN.md §8) ---
    serve_queue_max: int = 64
    """Admission control for ``repro serve``: the bounded depth of the
    ingest queue, in ``update_batch`` requests.  When the queue is full
    the server *rejects* the batch with a ``queue-full`` error frame
    carrying ``retry_after`` — it never blocks the socket reader, so a
    slow engine degrades into explicit backpressure instead of unbounded
    buffering (docs/PROTOCOL.md §Backpressure)."""

    serve_coalesce_max: int = 8
    """Batch coalescing under load: when the serve worker dequeues, it
    drains up to this many queued ``update_batch`` requests and merges
    them into one :class:`~repro.dynamic.UpdateBatch` (exact last-op-wins
    replay, :func:`repro.serve.coalesce.coalesce_batches`) before paying
    one detect/repair cycle.  1 disables coalescing — every request is
    applied individually (required when bit-exact equivalence with an
    in-process run matters, e.g. the E2E equivalence test)."""

    serve_snapshot_every: int = 0
    """Crash-recovery cadence for ``repro serve``: write a snapshot of the
    engine state (CSR + colors + active mask + batch index, see
    :mod:`repro.serve.snapshot`) after every N applied batches.  0
    disables periodic snapshots; a clean shutdown still writes a final
    one when ``--snapshot-path`` is configured."""

    serve_retry_after_s: float = 0.05
    """The ``retry_after`` hint (seconds) carried by ``queue-full`` error
    frames — the client-visible half of the admission-control contract.
    Clients should wait at least this long before resubmitting."""

    serve_snapshot_keep: int = 2
    """Snapshot rotation depth for ``repro serve``: how many snapshot
    generations exist on disk (the current file plus ``.1``, ``.2``, …
    predecessors).  A torn or corrupt current snapshot falls back to the
    previous generation on restore (:func:`repro.serve.snapshot.restore_engine`).
    1 keeps only the current file — the pre-rotation behavior."""

    serve_idle_timeout_s: float = 0.0
    """Per-session idle timeout for ``repro serve`` (seconds): a
    connection that sends no frame for this long is closed by the
    server, reclaiming sessions abandoned by crashed clients.  Clients
    that idle legitimately keep the session alive with the ``ping``
    heartbeat verb.  0 disables the timeout."""

    # --- observability (repro.obs, DESIGN.md §10) ---
    obs_trace: bool = False
    """On = engines arm the :mod:`repro.obs` span tracer for this run
    (driver *and* pool workers — the config crosses the argument pipe,
    so workers arm themselves and ship their span buffers back inside
    ordinary result payloads).  Off (the default) leaves every
    instrumentation hook on its disarmed ~100 ns fast path.
    Tracing never touches any RNG: colorings are byte-identical with
    this knob on or off (pinned by tests/test_obs.py)."""

    obs_metrics: bool = False
    """On = engines arm the :mod:`repro.obs` metrics registry
    (counters/gauges/histograms) for this run.  ``repro serve`` arms it
    unconditionally — a daemon is what the registry is for; this knob
    covers one-shot runs (``repro top``, traced benches)."""

    obs_trace_buffer: int = 100_000
    """Cap on buffered spans per process before new spans are dropped
    (drops are counted in ``repro_obs_spans_dropped_total``).  Bounds
    tracer memory on long runs; 100k spans ≈ 20 MB of dicts."""

    # --- ablation switches (DESIGN.md design-choice experiments) ---
    enable_matching: bool = True
    """Off = skip the colorful matching (Lemma 2.9).  Ablation EA1: closed
    cliques then run out of clique palette and lean on the cleanup."""

    enable_putaside: bool = True
    """Off = skip put-aside sets (Lemma 3.4).  Ablation EA2: full cliques
    lose the ℓ of temporary slack that MultiTrial's Property 3 needs."""

    record_trace: bool = False
    """On = the run records a per-round trace (phase, uncolored count)."""

    # --- model / simulator ---
    bandwidth_factor: float = 32.0
    """Messages may carry at most ``bandwidth_factor·ceil(log2 n)`` bits —
    the O(log n) of BCONGEST with an explicit constant."""

    max_cleanup_rounds: int = 10_000
    """Hard cap for the fallback cleanup phase (always terminates first)."""

    seed: int = 0
    """Root seed; a run is a pure function of (graph, config, seed)."""

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def ell(self, n: int) -> int:
        """ℓ = C·log^{1.1} n (Eq. (3)), at least 1."""
        return max(1, int(math.ceil(poly_log(n, self.ell_exponent, self.ell_factor))))

    def log_threshold(self, n: int) -> float:
        """The ``C log n`` threshold used all over §3–§4."""
        return self.c_log * max(math.log2(max(n, 2)), 1.0)

    def putaside_size(self, n: int) -> int:
        """|P_K| for full cliques (Lemma 3.4; paper: 201ℓ)."""
        return max(1, int(math.ceil(self.putaside_factor * self.ell(n))))

    def bandwidth_bits(self, n: int) -> int:
        """Per-round broadcast budget in bits."""
        return max(8, int(math.ceil(self.bandwidth_factor * max(math.log2(max(n, 2)), 1.0))))

    def x_of_clique(self, kind: str, n: int, a_k: float, e_k: float) -> int:
        """x(K) of Eq. (5): the reserved color prefix for clique class
        ``kind`` in {"full", "open", "closed"}."""
        if kind == "full":
            return int(math.ceil(self.x_full_factor * self.ell(n)))
        if kind == "closed":
            return int(math.ceil(self.x_closed_factor * max(a_k, 1.0)))
        if kind == "open":
            return max(1, int(math.ceil(self.x_open_factor * max(e_k, 1.0))))
        raise ValueError(f"unknown clique kind: {kind!r}")

    def classify_clique(self, n: int, a_k: float, e_k: float) -> str:
        """Definition 3.3: full if a_K+e_K < ℓ; open if 2a_K < e_K; else closed."""
        if a_k + e_k < self.ell(n):
            return "full"
        if 2.0 * a_k < e_k:
            return "open"
        return "closed"

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def paper(cls, **overrides: Any) -> "ColoringConfig":
        """The published constants (Eq. (3)–(5)).  Mostly documentation: at
        simulable n these thresholds keep the dense machinery dormant."""
        cfg = cls(
            eps=1e-5,
            slack_probability=1.0 / 200.0,
            beta=401.0,
            ell_factor=1.0,
            ell_exponent=1.1,
            x_full_factor=200.0,
            x_closed_factor=400.0,
            x_open_factor=1e-5 / 8.0,  # γε/8 with γ≈1
            outlier_factor=30.0,
            putaside_factor=201.0,
            permute_ac_eps=1.0 / 12.0,
            permute_constant_round=True,
        )
        return replace(cfg, **overrides) if overrides else cfg

    @classmethod
    def practical(cls, **overrides: Any) -> "ColoringConfig":
        """Scaled constants under which every phase runs at n ≤ ~10⁵.

        The structure (which colors are reserved, who is an outlier, when a
        clique is full/open/closed, how many rounds each loop takes) is
        identical to the paper; only multiplicative constants shrink.
        """
        cfg = cls()  # the dataclass defaults *are* the practical preset
        return replace(cfg, **overrides) if overrides else cfg

    def with_seed(self, seed: int) -> "ColoringConfig":
        """Copy of this config with a different root seed."""
        return replace(self, seed=seed)
