"""Multi-shard partitioned coloring (DESIGN.md §7).

The first layer where the proper-coloring invariant is a *distributed*
property: the node universe is split across k workers, each colors its
shard's interior on the induced CSR (plus a read-only ghost frontier of
cut neighbors), and the shards themselves re-establish propriety across the cut with the
boundary-exchange protocol (:mod:`repro.shard.boundary`) — by protocol,
not by construction.  Workers receive the graph zero-copy through a
shared-memory arena (:mod:`repro.shard.shm`) by default.  Partitioners
in :mod:`repro.shard.partition`, driver in :mod:`repro.shard.engine`,
surface via ``repro shard`` and the runner's ``algorithm="shard"``
trials.
"""

from repro.shard.boundary import CutPlan, repair_boundary
from repro.shard.dynamic import ShardedDynamicColoring
from repro.shard.engine import (
    TRANSPORTS,
    ShardedColoring,
    ShardedResult,
    ShardReport,
)
from repro.shard.partition import (
    STRATEGIES,
    Partition,
    build_shard_views,
    partition_nodes,
)
from repro.shard.shm import ArenaDescriptor, ShmArena, leaked_segments

__all__ = [
    "ArenaDescriptor",
    "CutPlan",
    "Partition",
    "STRATEGIES",
    "ShardReport",
    "ShardedColoring",
    "ShardedDynamicColoring",
    "ShardedResult",
    "ShmArena",
    "TRANSPORTS",
    "build_shard_views",
    "leaked_segments",
    "partition_nodes",
    "repair_boundary",
]
