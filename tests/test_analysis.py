"""Tests for the analysis helpers (verify, fitting, stats)."""

import math

import numpy as np
import pytest

from repro.analysis.fitting import CANDIDATE_SHAPES, growth_fit
from repro.analysis.stats import SweepResult, run_seeds, success_rate, summarize
from repro.analysis.verify import (
    assert_proper_coloring,
    coloring_summary,
    verify_coloring,
)
from repro.graphs.generators import complete_graph, ring_graph
from repro.simulator.network import BroadcastNetwork


class TestVerify:
    def test_proper_coloring_passes(self):
        net = BroadcastNetwork(ring_graph(6))
        colors = np.array([0, 1, 0, 1, 0, 1])
        audit = verify_coloring(net, colors)
        assert audit["proper"] and audit["complete"]
        assert audit["colors_used"] == 2

    def test_monochromatic_edge_detected(self):
        net = BroadcastNetwork((2, [(0, 1)]))
        audit = verify_coloring(net, np.array([3, 3]), num_colors=5)
        assert not audit["proper"]
        assert audit["monochromatic_edges"] == 1

    def test_incomplete_detected(self):
        net = BroadcastNetwork((3, [(0, 1)]))
        audit = verify_coloring(net, np.array([0, 1, -1]))
        assert audit["proper"] and not audit["complete"]

    def test_palette_bound_checked(self):
        net = BroadcastNetwork((2, [(0, 1)]))
        audit = verify_coloring(net, np.array([0, 5]), num_colors=3)
        assert not audit["within_palette"]

    def test_assert_raises_on_bad(self):
        net = BroadcastNetwork((2, [(0, 1)]))
        with pytest.raises(AssertionError):
            assert_proper_coloring(net, np.array([1, 1]))

    def test_wrong_length_raises(self):
        net = BroadcastNetwork((3, []))
        with pytest.raises(ValueError):
            verify_coloring(net, np.array([0]))

    def test_summary_has_context(self):
        net = BroadcastNetwork(complete_graph(4))
        s = coloring_summary(net, np.array([0, 1, 2, 3]))
        assert s["delta_plus_one"] == 4
        assert s["n"] == 4


class TestGrowthFit:
    NS = [2**k for k in range(8, 17)]

    def test_recovers_log(self):
        vals = [4 * math.log2(n) + 2 for n in self.NS]
        assert growth_fit(self.NS, vals).best == "log n"

    def test_recovers_constant(self):
        assert growth_fit(self.NS, [7.0] * len(self.NS)).best == "constant"

    def test_recovers_loglog(self):
        vals = [10 * math.log2(math.log2(n)) for n in self.NS]
        fit = growth_fit(self.NS, vals)
        assert fit.best in ("log log n", "log^3 log n")  # close shapes

    def test_log_beats_flat_for_growing_data(self):
        vals = [math.log2(n) for n in self.NS]
        fit = growth_fit(self.NS, vals)
        assert fit.rmse["log n"] < fit.rmse["constant"]

    def test_noise_tolerance(self):
        rng = np.random.default_rng(1)
        vals = [3 * math.log2(n) + rng.normal(0, 0.3) for n in self.NS]
        assert growth_fit(self.NS, vals).best == "log n"

    def test_too_few_points_raises(self):
        with pytest.raises(ValueError):
            growth_fit([10], [1.0])

    def test_all_candidate_shapes_evaluated(self):
        fit = growth_fit(self.NS, [1.0] * len(self.NS))
        assert set(fit.rmse) == set(CANDIDATE_SHAPES)


class TestStats:
    def test_sweep_result_stats(self):
        s = SweepResult(values=[1.0, 2.0, 3.0])
        assert s.mean == 2.0
        assert s.min == 1.0 and s.max == 3.0
        assert s.quantile(0.5) == 2.0

    def test_empty_sweep_nan(self):
        assert math.isnan(SweepResult().mean)

    def test_run_seeds(self):
        out = run_seeds(lambda s: float(s * s), range(4))
        assert out.values == [0.0, 1.0, 4.0, 9.0]

    def test_success_rate(self):
        assert success_rate(lambda s: s % 2 == 0, range(10)) == 0.5

    def test_success_rate_empty(self):
        assert math.isnan(success_rate(lambda s: True, []))

    def test_summarize(self):
        rows = [{"a": 1.0, "b": 2.0}, {"a": 3.0}]
        out = summarize(rows, ["a", "b"])
        assert out["a"]["mean"] == 2.0
        assert out["b"]["count"] == 1
