"""Chaos campaigns: real workloads under a fault plan, checked against
the byte-equality oracle (``repro chaos``).

Every engine in this repo is a pure function of ``(graph, config,
seed)`` — that is the determinism contract the whole test suite leans
on.  The chaos harness turns it into a *recovery* oracle: run a workload
twice, once clean and once under an armed
:class:`~repro.faults.FaultPlan`, and require the post-recovery colors
to be **byte-identical** to the never-failed run (plus the standing
invariants: proper, complete, ≤ Δ+1 colors).  Any supervision bug that
loses, duplicates or re-randomizes work shows up as a diff, not a
flake.

Three campaign drivers, one per supervised subsystem:

* :func:`chaos_shard` — partitioned coloring with crashing / hanging
  shard workers (``shard.worker`` site, supervised by
  :meth:`~repro.shard.ShardedColoring._run_interiors`);
* :func:`chaos_dynamic` — churn with snapshot-per-batch persistence and
  torn snapshot writes (``serve.snapshot.write`` site), recovering via
  :func:`~repro.serve.snapshot.restore_engine`'s generation fallback;
* :func:`chaos_serve` — the live daemon as a subprocess, killed mid-
  snapshot by a *hard* fault and restarted with ``--restore``.

Each returns a JSON-safe report dict whose ``oracle_ok`` is the
pass/fail bit the CLI (and the CI ``chaos-smoke`` job) gates on.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.config import ColoringConfig
from repro.dynamic.engine import DynamicColoring
from repro.faults import plan as faults
from repro.graphs.families import make_churn, make_graph

__all__ = ["chaos_shard", "chaos_dynamic", "chaos_serve"]


def _oracle(report: dict, chaos_colors, ref_colors, proper: bool,
            complete: bool, num_colors: int, budget: int) -> dict:
    """Fold the shared oracle checks into ``report`` and set
    ``oracle_ok``: byte-equal colors vs the fault-free reference, a
    proper and complete coloring, and ≤ Δ_t+1 colors."""
    chaos_colors = np.asarray(chaos_colors)
    ref_colors = np.asarray(ref_colors)
    colors_equal = bool(
        chaos_colors.shape == ref_colors.shape
        and (chaos_colors == ref_colors).all()
    )
    report.update(
        colors_equal=colors_equal,
        proper=bool(proper),
        complete=bool(complete),
        num_colors_used=int(num_colors),
        color_budget=int(budget),
        within_budget=bool(num_colors <= budget),
    )
    report["oracle_ok"] = bool(
        colors_equal and proper and complete and num_colors <= budget
    )
    return report


def chaos_shard(
    plan: faults.FaultPlan,
    *,
    family: str = "geometric",
    n: int = 2000,
    avg_degree: float = 12.0,
    seed: int = 7,
    k: int = 4,
    workers: int = 2,
    strategy: str = "contiguous",
) -> dict:
    """Partitioned coloring under crashing/hanging shard workers.

    The reference run executes with the plan suppressed (``workers`` is
    irrelevant to the result — sharded runs are worker-count-invariant);
    the chaos run arms ``plan`` and lets the supervisor retry, rebuild
    pools and degrade to inline execution.  The oracle then demands the
    recovered coloring be byte-identical to the clean one — and, because
    the shm transport owns kernel-named ``/dev/shm`` segments, that no
    arena survived the faults (``leaked_shm_segments`` must be empty).
    """
    from repro.shard.engine import ShardedColoring
    from repro.shard.shm import leaked_segments

    cfg = ColoringConfig.practical(
        seed=seed, shard_k=k, shard_strategy=strategy
    )
    graph = make_graph(family, n, avg_degree, seed)

    with faults.suppressed():
        reference = ShardedColoring(graph, cfg, workers=1).run()

    faults.arm(plan)
    try:
        chaos = ShardedColoring(graph, cfg, workers=workers).run()
        events = list(faults.fault_events())
    finally:
        faults.disarm()

    report = {
        "target": "shard",
        "plan": plan.name,
        "plan_key": plan.key,
        "family": family,
        "n": int(chaos.n),
        "k": int(chaos.k),
        "workers": int(workers),
        "seed": int(seed),
        "faults": dict(chaos.faults),
        "driver_fault_events": events,
        "unresolved_conflicts": int(chaos.unresolved_conflicts),
        "seconds_reference": round(float(reference.seconds), 6),
        "seconds_chaos": round(float(chaos.seconds), 6),
        "leaked_shm_segments": leaked_segments(),
    }
    report = _oracle(
        report,
        chaos.colors,
        reference.colors,
        chaos.proper,
        chaos.complete,
        chaos.num_colors_used,
        chaos.delta + 1,
    )
    report["oracle_ok"] = bool(
        report["oracle_ok"]
        and chaos.unresolved_conflicts == 0
        and not report["leaked_shm_segments"]
    )
    return report


def chaos_dynamic(
    plan: faults.FaultPlan,
    *,
    family: str = "gnp-churn",
    n: int = 800,
    avg_degree: float = 8.0,
    seed: int = 3,
    batches: int = 8,
    churn_fraction: float = 0.08,
    snapshot_keep: int = 2,
    workdir: str | os.PathLike | None = None,
) -> dict:
    """Churn with snapshot-per-batch persistence under torn writes.

    The chaos loop snapshots after every applied batch; when the armed
    ``serve.snapshot.write`` fault tears (or fails) a write, the engine
    is *thrown away* and rebuilt from the newest readable snapshot
    generation, then replays from that ``batch_index``.  Because the
    per-batch seed streams are pure in ``(seed, batch_index)``, replay
    converges on exactly the never-failed colors.
    """
    from repro.serve.snapshot import restore_engine, save_snapshot

    cfg = ColoringConfig.practical(seed=seed)
    schedule = make_churn(
        family, n, avg_degree, seed, batches=batches,
        churn_fraction=churn_fraction,
    )
    batch_list = list(schedule)

    reference = DynamicColoring(schedule.initial, cfg)
    with faults.suppressed():
        for batch in batch_list:
            reference.apply_batch(batch)

    with tempfile.TemporaryDirectory() as tmp:
        snap = Path(workdir or tmp) / "chaos-dynamic.npz"
        engine = DynamicColoring(schedule.initial, cfg)
        with faults.suppressed():
            # Seed generation 0 so even a first-write tear has somewhere
            # to fall back to.
            save_snapshot(engine, snap, keep=snapshot_keep)
        restores = 0
        snapshot_faults = 0
        faults.arm(plan)
        try:
            while engine.batch_index < len(batch_list):
                try:
                    engine.apply_batch(batch_list[engine.batch_index])
                    save_snapshot(engine, snap, keep=snapshot_keep)
                except faults.FaultInjected:
                    snapshot_faults += 1
                    with faults.suppressed():
                        engine = restore_engine(snap)
                    restores += 1
            events = list(faults.fault_events())
        finally:
            faults.disarm()
        final = engine

    report = {
        "target": "dynamic",
        "plan": plan.name,
        "plan_key": plan.key,
        "family": family,
        "n": int(final.n),
        "batches": len(batch_list),
        "seed": int(seed),
        "snapshot_keep": int(snapshot_keep),
        "snapshot_faults": snapshot_faults,
        "restores": restores,
        "driver_fault_events": events,
    }
    return _oracle(
        report,
        final.colors,
        reference.colors,
        final.is_proper() and reference.is_proper(),
        final.is_complete(),
        final.colors_used(),
        int(final.net.delta) + 1,
    )


def chaos_serve(
    plan: faults.FaultPlan,
    *,
    family: str = "gnp-churn",
    n: int = 300,
    avg_degree: float = 8.0,
    seed: int = 5,
    batches: int = 8,
    churn_fraction: float = 0.08,
    workdir: str | os.PathLike | None = None,
) -> dict:
    """The live daemon under a plan, restarted from its snapshot.

    Spawns ``repro serve`` as a real subprocess with ``--fault-plan``
    and snapshot-every-batch; streams churn at it until a *hard* fault
    (e.g. torn-write ``hard=true`` — the SIGKILL-mid-snapshot
    simulation) kills the process mid-conversation.  The daemon is then
    restarted **without** the plan, ``--restore``\\ d from the surviving
    snapshot, and the unacknowledged batch suffix is resubmitted.  The
    oracle compares the final streamed colors against an in-process
    engine that never crashed.
    """
    from repro.serve import protocol as wire
    from repro.serve.client import ServeClient

    cfg = ColoringConfig.practical(seed=seed)
    schedule = make_churn(
        family, n, avg_degree, seed, batches=batches,
        churn_fraction=churn_fraction,
    )
    n0, edges0 = schedule.initial
    batch_list = list(schedule)

    reference = DynamicColoring(schedule.initial, cfg)
    with faults.suppressed():
        for batch in batch_list:
            reference.apply_batch(batch)

    def spawn(tmp: Path, *extra: str) -> tuple[subprocess.Popen, str]:
        sock = str(tmp / "chaos.sock")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--socket", sock,
                "--snapshot-path", str(tmp / "chaos.npz"),
                "--snapshot-every", "1",
                "--coalesce-max", "1",
                "--seed", str(seed),
                *extra,
            ],
            env={**os.environ},
            stderr=subprocess.PIPE,
        )
        return proc, sock

    with tempfile.TemporaryDirectory() as tmpname:
        tmp = Path(workdir or tmpname)
        plan_path = tmp / "chaos-plan.toml"
        plan.save(plan_path)

        crashed = False
        exit_code = None
        acked = 0
        proc, sock = spawn(tmp, "--fault-plan", str(plan_path))
        try:
            try:
                with ServeClient(socket_path=sock) as client:
                    client.load_graph(n0, edges0, seed=seed)
                    for batch in batch_list:
                        client.update_batch(batch)
                        acked += 1
                    reply = client.query_colors()
                    final_colors = reply.colors
                    final_proper = reply.proper
                    final_complete = reply.complete
                    client.shutdown()
            except (ConnectionError, OSError, wire.ProtocolError):
                crashed = True
            proc.wait(timeout=60)
            exit_code = proc.returncode
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.stderr.close()
            proc.wait(timeout=30)

        resumed_from = None
        if crashed:
            # Restart clean (no plan), warm-started from the snapshot
            # that survived the kill, and replay the unacked suffix.
            proc, sock = spawn(tmp, "--restore", str(tmp / "chaos.npz"))
            try:
                with ServeClient(socket_path=sock) as client:
                    stats = client.stats()
                    resumed_from = int(stats["batch_index"])
                    for batch in batch_list[resumed_from:]:
                        client.update_batch(batch)
                    reply = client.query_colors()
                    final_colors = reply.colors
                    final_proper = reply.proper
                    final_complete = reply.complete
                    client.shutdown()
                proc.wait(timeout=60)
            finally:
                if proc.poll() is None:
                    proc.kill()
                proc.stderr.close()
                proc.wait(timeout=30)

    report = {
        "target": "serve",
        "plan": plan.name,
        "plan_key": plan.key,
        "family": family,
        "n": int(n0),
        "batches": len(batch_list),
        "seed": int(seed),
        "daemon_crashed": crashed,
        "daemon_exit_code": exit_code,
        "acked_before_crash": acked,
        "resumed_from_batch": resumed_from,
    }
    return _oracle(
        report,
        np.asarray(final_colors, dtype=np.int64),
        reference.colors,
        bool(final_proper),
        bool(final_complete),
        len({int(c) for c in final_colors if c >= 0}),
        int(reference.net.delta) + 1,
    )
