"""Tests for the quick experiment reporter (repro.analysis.report)."""

from repro.analysis.report import ExperimentReport, build_report
from repro.config import ColoringConfig


class TestBuildReport:
    def test_quick_report_builds(self):
        report = build_report(ns=[128, 256], seeds=[1])
        assert "E1 round complexity (bench_round_complexity.py)" in report.sections
        assert "E2 bandwidth (bench_bandwidth.py)" in report.sections
        assert "E10 BCStream (bench_bcstream.py)" in report.sections

    def test_bandwidth_section_compliant(self):
        report = build_report(ns=[128, 256], seeds=[1])
        assert report.sections["E2 bandwidth (bench_bandwidth.py)"]["compliant"]

    def test_bcstream_section_within_memory(self):
        report = build_report(ns=[128, 256], seeds=[1])
        assert report.sections["E10 BCStream (bench_bcstream.py)"]["within memory"]

    def test_markdown_rendering(self):
        report = ExperimentReport(sections={"S": {"k": 1}})
        md = report.to_markdown()
        assert "## S" in md and "**k**: 1" in md

    def test_fits_present_with_multiple_ns(self):
        report = build_report(ns=[128, 256, 512], seeds=[1])
        sec = report.sections["E1 round complexity (bench_round_complexity.py)"]
        assert "fit ours" in sec and "fit johansson" in sec

    def test_custom_config(self):
        cfg = ColoringConfig.practical(multitrial_sampler="expander")
        report = build_report(ns=[128, 256], seeds=[1], config=cfg)
        assert report.sections
