"""Validation of Definition 2.2 and the Lemma 2.4 audit.

The validator is the single arbiter of decomposition quality used by tests
and experiments: given any labeling it checks

  (1)  V_sparse nodes are Ω(ε²Δ)-sparse (constant exposed as a parameter,
       since the paper's Ω hides one);
  (2a) |K| ≤ (1+ε)Δ;
  (2b) |N(v) ∩ K| ≥ (1−ε)Δ for every member v;
  (2c) |N(v) ∩ K| ≤ (1−ε/2)Δ for every non-member v;

and, as the Lemma 2.4 audit, that every member v of a clique is
(ε/2 · e_v)-sparse.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.decomposition.acd import AlmostCliqueDecomposition, _neighbor_label_counts
from repro.decomposition.sparsity import local_sparsity
from repro.simulator.network import BroadcastNetwork

__all__ = ["DecompositionReport", "validate_decomposition"]


@dataclass
class DecompositionReport:
    """Violation counts per property; ``ok`` when all are zero."""

    n: int
    num_cliques: int
    sparse_count: int
    violations_sparsity: int = 0  # property (1)
    violations_size: int = 0  # property (2a)
    violations_member_degree: int = 0  # property (2b)
    violations_outsider_degree: int = 0  # property (2c)
    lemma_2_4_violations: int = 0
    details: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            self.violations_sparsity == 0
            and self.violations_size == 0
            and self.violations_member_degree == 0
            and self.violations_outsider_degree == 0
        )

    def as_dict(self) -> dict:
        return {
            "n": self.n,
            "num_cliques": self.num_cliques,
            "sparse_count": self.sparse_count,
            "violations_sparsity": self.violations_sparsity,
            "violations_size": self.violations_size,
            "violations_member_degree": self.violations_member_degree,
            "violations_outsider_degree": self.violations_outsider_degree,
            "lemma_2_4_violations": self.lemma_2_4_violations,
            "ok": self.ok,
        }


def validate_decomposition(
    net: BroadcastNetwork,
    acd: AlmostCliqueDecomposition,
    sparsity_constant: float = 1.0 / 64.0,
    check_sparsity: bool = True,
    check_lemma_2_4: bool = True,
    max_details: int = 20,
) -> DecompositionReport:
    """Check Definition 2.2 for ``acd`` on ``net``.

    ``sparsity_constant`` is the hidden constant of property (1): sparse
    nodes must have ζ_v ≥ sparsity_constant · ε² · Δ.  Pass
    ``check_sparsity=False`` to skip the (expensive, centralized) triangle
    counting when only the structural properties matter.
    """
    labels = acd.labels
    eps = acd.eps
    delta = max(net.delta, 1)
    n = net.n
    report = DecompositionReport(
        n=n,
        num_cliques=acd.num_cliques,
        sparse_count=int((labels < 0).sum()),
    )
    counts = _neighbor_label_counts(net, labels)
    k = acd.num_cliques

    # (2a) clique sizes.
    if k:
        sizes = np.bincount(labels[labels >= 0], minlength=k)
        over = np.flatnonzero(sizes > (1.0 + eps) * delta)
        report.violations_size = int(over.size)
        for c in over[:max_details]:
            report.details.append(f"clique {c} has size {sizes[c]} > (1+eps)Δ")

    # (2b) member inside-degrees.
    member = labels >= 0
    if member.any() and k:
        mem_idx = np.flatnonzero(member)
        own = np.asarray(counts[mem_idx, labels[mem_idx]]).ravel()
        bad = own < (1.0 - eps) * delta
        report.violations_member_degree = int(bad.sum())
        for v in mem_idx[bad][:max_details]:
            report.details.append(
                f"node {v} in clique {labels[v]} has inside degree below (1-eps)Δ"
            )

    # (2c) outsider inside-degrees.
    if k:
        coo = counts.tocoo()
        outsider = labels[coo.row] != coo.col
        too_high = coo.data > (1.0 - eps / 2.0) * delta
        bad_mask = outsider & too_high
        report.violations_outsider_degree = int(bad_mask.sum())
        for v, c in list(zip(coo.row[bad_mask], coo.col[bad_mask]))[:max_details]:
            report.details.append(
                f"outsider {v} sees more than (1-eps/2)Δ of clique {c}"
            )

    sparsity = None
    if check_sparsity and (labels < 0).any():
        sparsity = local_sparsity(net)
        threshold = sparsity_constant * eps * eps * delta
        sparse_idx = np.flatnonzero(labels < 0)
        bad = sparsity[sparse_idx] < threshold
        report.violations_sparsity = int(bad.sum())
        for v in sparse_idx[bad][:max_details]:
            report.details.append(
                f"sparse node {v} has sparsity {sparsity[v]:.2f} < {threshold:.2f}"
            )

    if check_lemma_2_4 and k:
        if sparsity is None:
            sparsity = local_sparsity(net)
        # e_v = |N(v) \ K| for members.
        mem_idx = np.flatnonzero(member)
        own = np.asarray(counts[mem_idx, labels[mem_idx]]).ravel()
        ev = net.degrees[mem_idx] - own
        # Lemma 2.4: members are (eps/2 · e_v)-sparse.
        bad = sparsity[mem_idx] + 1e-9 < (eps / 2.0) * ev
        report.lemma_2_4_violations = int(bad.sum())
        for v in mem_idx[bad][:max_details]:
            report.details.append(f"member {v} violates the Lemma 2.4 sparsity bound")

    return report
