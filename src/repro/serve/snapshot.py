"""Snapshot/restore of the serving engine's state (crash recovery).

A snapshot is everything :class:`~repro.dynamic.DynamicColoring` needs
to resume as if it had never stopped (DESIGN.md §8):

* the current topology — the undirected edge list behind the CSR;
* the maintained ``colors`` array and the ``active`` mask;
* the ``batch_index`` (next timestep), because every per-batch seed
  stream is a pure function of ``(config.seed, batch_index)``;
* the full :class:`~repro.config.ColoringConfig` as a dict, so the
  restored engine repairs with identical knobs.

That makes restore ≡ never-crashed an *exact* property — a restored
engine replays byte-identical colors for the remaining batches — which
tests/test_serve.py pins (both in-process and through a killed server).

Format: a single ``.npz`` (numpy's zip container) holding the three
arrays plus a JSON metadata blob; written atomically (temp file +
``os.replace``) so a crash mid-write never leaves a torn snapshot, only
the previous one.  ``SNAPSHOT_FORMAT`` gates forward compatibility:
readers reject snapshots from a newer writer.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.config import ColoringConfig
from repro.dynamic.engine import DynamicColoring

__all__ = ["SNAPSHOT_FORMAT", "SnapshotInfo", "save_snapshot", "load_snapshot",
           "restore_engine"]

SNAPSHOT_FORMAT = 1
"""Version stamp inside every snapshot; bumped on incompatible layout
changes.  ``load_snapshot`` refuses snapshots with a larger stamp."""


@dataclass(frozen=True)
class SnapshotInfo:
    """What a snapshot on disk contains (the metadata half)."""

    path: str
    format: int
    n: int
    m: int
    batch_index: int
    bytes: int
    config: ColoringConfig

    def as_dict(self) -> dict:
        out = {
            "path": self.path,
            "format": self.format,
            "n": self.n,
            "m": self.m,
            "batch_index": self.batch_index,
            "bytes": self.bytes,
        }
        return out


def save_snapshot(engine: DynamicColoring, path: str | os.PathLike) -> SnapshotInfo:
    """Persist ``engine``'s resumable state to ``path``, atomically.

    The write goes to ``<path>.tmp`` in the same directory and is
    ``os.replace``d into place, so concurrent readers (and a crash at
    any byte) see either the old snapshot or the new one, never a mix.
    """
    path = Path(path)
    edges = engine.net.undirected_edges()
    meta = {
        "format": SNAPSHOT_FORMAT,
        "n": int(engine.n),
        "m": int(edges.shape[0]),
        "batch_index": int(engine.batch_index),
        "config": dataclasses.asdict(engine.cfg),
    }
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as f:
        np.savez_compressed(
            f,
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
            edges=edges,
            colors=engine.colors,
            active=engine.active,
        )
    os.replace(tmp, path)
    return SnapshotInfo(
        path=str(path),
        format=SNAPSHOT_FORMAT,
        n=meta["n"],
        m=meta["m"],
        batch_index=meta["batch_index"],
        bytes=int(path.stat().st_size),
        config=engine.cfg,
    )


def load_snapshot(path: str | os.PathLike) -> tuple[SnapshotInfo, dict]:
    """Read a snapshot without instantiating an engine.

    Returns ``(info, arrays)`` where ``arrays`` holds ``edges``,
    ``colors`` and ``active``.  Raises ``ValueError`` for a snapshot
    written by a newer format or with unknown config fields (a snapshot
    is a contract, not a suggestion — silently dropping knobs would
    break the restore ≡ never-crashed guarantee).
    """
    path = Path(path)
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"]).decode())
        arrays = {
            "edges": data["edges"].astype(np.int64, copy=True),
            "colors": data["colors"].astype(np.int64, copy=True),
            "active": data["active"].astype(bool, copy=True),
        }
    fmt = int(meta.get("format", 0))
    if fmt > SNAPSHOT_FORMAT:
        raise ValueError(
            f"snapshot {path} has format {fmt}; this build reads ≤ {SNAPSHOT_FORMAT}"
        )
    known = {f.name for f in dataclasses.fields(ColoringConfig)}
    unknown = set(meta["config"]) - known
    if unknown:
        raise ValueError(
            f"snapshot {path} carries unknown config fields {sorted(unknown)}"
        )
    cfg = ColoringConfig(**meta["config"])
    info = SnapshotInfo(
        path=str(path),
        format=fmt,
        n=int(meta["n"]),
        m=int(meta["m"]),
        batch_index=int(meta["batch_index"]),
        bytes=int(path.stat().st_size),
        config=cfg,
    )
    return info, arrays


def restore_engine(path: str | os.PathLike) -> DynamicColoring:
    """Rebuild the serving engine from a snapshot — the warm-restart /
    crash-recovery entry point (``repro serve --restore``).

    The returned engine's next :meth:`~DynamicColoring.apply_batch`
    behaves exactly as the snapshotted engine's would have: same
    topology, same colors, same batch index, same derived seed streams.
    """
    info, arrays = load_snapshot(path)
    return DynamicColoring(
        (info.n, arrays["edges"]),
        info.config,
        initial_colors=arrays["colors"],
        active=arrays["active"],
        batch_index=info.batch_index,
    )
