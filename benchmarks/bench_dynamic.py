"""E14 — dynamic churn: incremental repair vs recolor-from-scratch.

The claim the `repro.dynamic` subsystem makes (DESIGN.md §6): under
realistic churn, maintaining the coloring incrementally touches a small
fraction of the graph per batch, so both the wall-clock and the
recolored-node count sit far below recoloring from scratch — while the
maintained coloring stays proper and within the Δ_t+1 budget after every
batch.

Tracked measurements (→ ``BENCH_dynamic.json`` at the repo root):

* recolored-nodes-per-batch fraction (mean/max) under repair mode;
* repair wall-clock per batch vs the full-recolor baseline (the same
  engine with ``dynamic_fallback_fraction < 0``, i.e. every batch falls
  back) on the identical schedule;
* ``BroadcastNetwork.apply_delta`` vs building a fresh network from the
  post-batch edge list — the sorted-merge claim, measured at n ≥ 10⁴.

Quick mode: ``REPRO_BENCH_DYN_N`` / ``REPRO_BENCH_DYN_DEG`` /
``REPRO_BENCH_DYN_BATCHES`` shrink the workload for CI smoke runs (n
stays ≥ 10⁴ so the build-vs-merge comparison keeps its contract).
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from _common import print_table, run_matrix
from repro.config import ColoringConfig
from repro.dynamic import DynamicColoring
from repro.graphs.families import make_churn
from repro.runner.benchtrack import append_entry
from repro.runner.spec import load_matrix
from repro.simulator.network import BroadcastNetwork

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY = REPO_ROOT / "BENCH_dynamic.json"
SPECS = REPO_ROOT / "benchmarks" / "specs" / "churn_quick.toml"


def _workload():
    n = int(os.environ.get("REPRO_BENCH_DYN_N", "10000"))
    deg = float(os.environ.get("REPRO_BENCH_DYN_DEG", "30"))
    batches = int(os.environ.get("REPRO_BENCH_DYN_BATCHES", "6"))
    return n, deg, batches


@pytest.mark.benchmark(group="E14-dynamic")
def test_e14_incremental_vs_full_tracked(benchmark):
    """The tracked trajectory entry: one schedule, two engines.

    Repair mode must never fall back on this workload (a fallback here
    means the incremental path silently degraded — CI gates on it), must
    recolor < 20% of nodes per batch, and ``apply_delta`` must beat a
    fresh ``BroadcastNetwork`` build at n ≥ 10⁴.
    """
    n, deg, batches = _workload()
    schedule = make_churn(
        "gnp-churn", n, deg, seed=11, batches=batches, churn_fraction=0.03
    )

    repair_cfg = ColoringConfig.practical(seed=5, dynamic_fallback_fraction=1.5)
    engine = DynamicColoring(schedule, repair_cfg)
    repair = engine.run(schedule)
    rs = repair.summary()

    full_cfg = ColoringConfig.practical(seed=5, dynamic_fallback_fraction=-1.0)
    baseline = DynamicColoring(schedule, full_cfg).run(schedule)
    fs = baseline.summary()

    repair_batch_s = sum(r.seconds for r in repair.reports) / max(batches, 1)
    full_batch_s = sum(r.seconds for r in baseline.reports) / max(batches, 1)
    speedup = full_batch_s / max(repair_batch_s, 1e-9)

    # apply_delta (sorted merge) vs a fresh CSR build of the same result.
    batch0 = schedule.batches[0]
    merge_s, build_s = [], []
    for _ in range(3):
        net = BroadcastNetwork(schedule.initial)
        t0 = time.perf_counter()
        net.apply_delta(batch0.insert_edges, batch0.delete_edges)
        merge_s.append(time.perf_counter() - t0)
        edges_after = net.undirected_edges().copy()
        t0 = time.perf_counter()
        BroadcastNetwork((n, edges_after))
        build_s.append(time.perf_counter() - t0)
    apply_delta_s, fresh_build_s = min(merge_s), min(build_s)
    build_speedup = fresh_build_s / max(apply_delta_s, 1e-9)

    print_table(
        f"E14 incremental vs full (n={n}, avg_degree={deg:g}, "
        f"batches={batches}, churn=3%)",
        ["quantity", "repair", "full-recolor"],
        [
            ("mean recolored fraction",
             f"{rs['mean_recolored_fraction']:.4f}",
             f"{fs['mean_recolored_fraction']:.4f}"),
            ("max recolored fraction",
             f"{rs['max_recolored_fraction']:.4f}",
             f"{fs['max_recolored_fraction']:.4f}"),
            ("seconds / batch", f"{repair_batch_s:.3f}", f"{full_batch_s:.3f}"),
            ("rounds / batch",
             f"{rs['total_rounds'] / max(batches, 1):.1f}",
             f"{fs['total_rounds'] / max(batches, 1):.1f}"),
            ("batch speedup", f"{speedup:.1f}x", ""),
            ("apply_delta vs fresh build",
             f"{apply_delta_s:.4f}s", f"{fresh_build_s:.4f}s"),
        ],
    )

    assert rs["proper_all"] and rs["complete_all"], rs
    assert rs["colors_within_budget"], rs
    assert rs["fallbacks"] == 0, "incremental engine silently fell back"
    assert fs["fallbacks"] == batches, "baseline must recolor every batch"
    assert rs["mean_recolored_fraction"] < 0.20, rs
    if n >= 10_000:
        assert apply_delta_s < fresh_build_s, (
            f"sorted merge ({apply_delta_s:.4f}s) not faster than fresh "
            f"build ({fresh_build_s:.4f}s) at n={n}"
        )

    append_entry(
        TRAJECTORY,
        {
            "n": n,
            "avg_degree": deg,
            "family": "gnp-churn",
            "batches": batches,
            "churn_fraction": 0.03,
            "mode": "incremental",
            "fallbacks": rs["fallbacks"],
            "mean_recolored_fraction": round(rs["mean_recolored_fraction"], 4),
            "max_recolored_fraction": round(rs["max_recolored_fraction"], 4),
            "full_recolored_fraction": round(fs["mean_recolored_fraction"], 4),
            "repair_batch_s": round(repair_batch_s, 4),
            "full_batch_s": round(full_batch_s, 4),
            "speedup": round(speedup, 2),
            "apply_delta_s": round(apply_delta_s, 5),
            "fresh_build_s": round(fresh_build_s, 5),
            "build_speedup": round(build_speedup, 2),
            "repair_rounds_per_batch": round(rs["total_rounds"] / max(batches, 1), 1),
            "full_rounds_per_batch": round(fs["total_rounds"] / max(batches, 1), 1),
        },
        label=f"dynamic-n{n}-d{deg:g}-b{batches}",
    )
    # Time one incremental batch apply, not the initial from-scratch
    # coloring — the engine is built outside the measured callable.
    bench_engine = DynamicColoring(schedule, repair_cfg)
    benchmark.pedantic(
        lambda: bench_engine.apply_batch(schedule.batches[0]),
        rounds=1,
        iterations=1,
    )


@pytest.mark.benchmark(group="E14-dynamic")
def test_e14_quick_churn_matrix(benchmark):
    """The churn acceptance matrix through the runner, unchanged: every
    churn family × size × seed stays repair-mode, proper, within the
    color budget, and under 20% recolored per batch."""
    payloads = run_matrix(load_matrix(SPECS)).payloads()
    rows = []
    for p in payloads:
        rows.append(
            (p["family"], p["n"], p["seed"], p["fallbacks"],
             f"{p['mean_recolored_fraction']:.4f}",
             f"{p['max_recolored_fraction']:.4f}")
        )
        assert p["proper"] and p["complete"], p
        assert p["colors_within_budget"], p
        assert p["fallbacks"] == 0, p
        assert p["mean_recolored_fraction"] < 0.20, p
    print_table(
        "E14 quick churn matrix (runner, algorithm=dynamic)",
        ["family", "n", "seed", "fallbacks", "mean recolored", "max recolored"],
        rows,
    )
    spec = load_matrix(SPECS)[0]
    from repro.runner.execute import run_trial

    benchmark.pedantic(lambda: run_trial(spec), rounds=1, iterations=1)
