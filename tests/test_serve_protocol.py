"""Wire-protocol unit tests: framing, round-trips, malformed rejection.

Every frame type registered in ``MESSAGE_TYPES`` must survive
encode → decode exactly (frames are plain-data dataclasses, so equality
is field equality), and every malformed input must be rejected with the
documented error code — these are the docs/PROTOCOL.md guarantees a
client is allowed to rely on.
"""

import io
import json
import struct

import pytest

from repro.dynamic.events import UpdateBatch
from repro.serve import protocol as wire


def roundtrip(frame: wire.Frame) -> wire.Frame:
    out = wire.read_frame(io.BytesIO(wire.encode_frame(frame)))
    assert out is not None
    return out


SAMPLE_FRAMES = [
    wire.Hello(id=1, versions=[1], client="test"),
    wire.LoadGraph(id=2, n=4, edges=[[0, 1], [2, 3]], config={"seed": 9}),
    wire.UpdateBatchFrame(
        id=3, insert_edges=[[0, 2]], delete_edges=[[2, 3]],
        arrivals=[1], departures=[3],
    ),
    wire.QueryColors(id=4, nodes=[0, 1]),
    wire.QueryColors(id=5, nodes=None),
    wire.QueryPalette(id=6, node=2),
    wire.StatsRequest(id=7),
    wire.MetricsRequest(id=21),
    wire.SnapshotRequest(id=8, path="/tmp/x.npz"),
    wire.SnapshotRequest(id=9, path=None),
    wire.Shutdown(id=10),
    wire.Ping(id=19),
    wire.Pong(id=20),
    wire.Welcome(id=11, v=1, server="repro-serve/x", n=4),
    wire.GraphLoaded(id=12, n=4, m=2, delta=1, colors_used=2,
                     initial_rounds=7, seconds=0.25, initial="sharded"),
    wire.BatchReportFrame(ids=[3, 4], coalesced=2, report={"mode": "repair"}),
    wire.ColorsReply(id=13, nodes=[0, 1], colors=[1, 0],
                     proper=True, complete=False),
    wire.PaletteReply(id=14, node=2, color=1, num_colors=3, free=[0, 2]),
    wire.StatsReply(id=15, stats={"batches_applied": 2}),
    wire.MetricsReply(id=22, text="# TYPE x counter\nx 1\n"),
    wire.SnapshotSaved(id=16, path="/tmp/x.npz", batch_index=5, bytes=1024),
    wire.Goodbye(id=17),
    wire.ErrorFrame(id=18, code="queue-full", message="full", retry_after=0.05),
    wire.ErrorFrame(id=None, code="internal", message="boom"),
]


class TestRegistry:
    def test_every_request_has_a_type(self):
        assert len(wire.REQUEST_TYPES) == 10
        assert all(cls.TYPE == key for key, cls in wire.REQUEST_TYPES.items())

    def test_every_response_has_a_type(self):
        assert len(wire.RESPONSE_TYPES) == 11
        assert all(cls.TYPE == key for key, cls in wire.RESPONSE_TYPES.items())

    def test_registries_are_disjoint_and_union(self):
        assert not set(wire.REQUEST_TYPES) & set(wire.RESPONSE_TYPES)
        assert wire.MESSAGE_TYPES == {**wire.REQUEST_TYPES, **wire.RESPONSE_TYPES}

    def test_samples_cover_every_type(self):
        covered = {f.TYPE for f in SAMPLE_FRAMES}
        assert covered == set(wire.MESSAGE_TYPES)

    def test_error_codes_are_unique(self):
        assert len(set(wire.ERROR_CODES)) == len(wire.ERROR_CODES)

    def test_protocol_error_rejects_unknown_code(self):
        with pytest.raises(ValueError):
            wire.ProtocolError("not-a-code", "x")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "frame", SAMPLE_FRAMES, ids=lambda f: f"{f.TYPE}-{f.id}"
    )
    def test_encode_decode_is_identity(self, frame):
        assert roundtrip(frame) == frame

    def test_wire_bytes_are_json_lines(self):
        raw = wire.encode_frame(wire.Hello(id=1))
        body = raw[4:]
        assert body.endswith(b"\n")
        assert json.loads(body)["type"] == "hello"
        assert struct.unpack(">I", raw[:4])[0] == len(body)

    def test_update_batch_frame_to_engine_batch(self):
        batch = UpdateBatch(insert_edges=[[0, 1]], departures=[5])
        frame = roundtrip(wire.UpdateBatchFrame.from_batch(batch, id=7))
        again = frame.batch
        assert again.insert_edges.tolist() == [[0, 1]]
        assert again.departures.tolist() == [5]

    def test_stream_of_frames(self):
        buf = io.BytesIO()
        for frame in SAMPLE_FRAMES:
            wire.write_frame(buf, frame)
        buf.seek(0)
        got = []
        while (frame := wire.read_frame(buf)) is not None:
            got.append(frame)
        assert got == SAMPLE_FRAMES

    def test_error_frame_to_exception(self):
        exc = wire.ErrorFrame(id=3, code="queue-full", retry_after=0.1).to_exception()
        assert exc.code == "queue-full"
        assert exc.retry_after == 0.1
        assert exc.id == 3


def encode_raw(obj) -> bytes:
    body = json.dumps(obj).encode() + b"\n"
    return struct.pack(">I", len(body)) + body


class TestMalformed:
    def expect(self, raw: bytes, code: str):
        with pytest.raises(wire.ProtocolError) as err:
            wire.read_frame(io.BytesIO(raw))
        assert err.value.code == code

    def test_truncated_header(self):
        self.expect(b"\x00\x00", "bad-frame")

    def test_truncated_body(self):
        raw = wire.encode_frame(wire.Hello(id=1))
        self.expect(raw[:-5], "bad-frame")

    def test_oversized_length_prefix(self):
        self.expect(struct.pack(">I", wire.MAX_FRAME_BYTES + 1), "frame-too-large")

    def test_body_not_json(self):
        body = b"this is not json\n"
        self.expect(struct.pack(">I", len(body)) + body, "bad-frame")

    def test_body_not_an_object(self):
        self.expect(encode_raw([1, 2, 3]), "bad-frame")

    def test_missing_type(self):
        self.expect(encode_raw({"id": 1}), "bad-payload")

    def test_unknown_type(self):
        self.expect(encode_raw({"type": "warp-core", "id": 1}), "bad-type")

    def test_missing_id(self):
        self.expect(encode_raw({"type": "hello", "versions": [1]}), "bad-payload")

    def test_wrong_field_type(self):
        self.expect(
            encode_raw({"type": "hello", "id": 1, "versions": "one"}), "bad-payload"
        )

    def test_bool_is_not_an_int(self):
        # JSON true must not satisfy an int-typed field.
        self.expect(
            encode_raw({"type": "query_palette", "id": 1, "node": True}),
            "bad-payload",
        )

    def test_bad_edge_pairs(self):
        self.expect(
            encode_raw({"type": "update_batch", "id": 1,
                        "insert_edges": [[0, 1, 2]]}),
            "bad-payload",
        )
        self.expect(
            encode_raw({"type": "update_batch", "id": 1,
                        "insert_edges": [[0, "x"]]}),
            "bad-payload",
        )

    def test_bad_node_list(self):
        self.expect(
            encode_raw({"type": "query_colors", "id": 1, "nodes": [1.5]}),
            "bad-payload",
        )

    def test_nonpositive_n(self):
        self.expect(encode_raw({"type": "load_graph", "id": 1, "n": 0}),
                    "bad-payload")

    def test_config_keys_must_be_strings(self):
        # json keys are always strings, but from_payload guards direct use.
        with pytest.raises(wire.ProtocolError) as err:
            wire.LoadGraph.from_payload(
                {"type": "load_graph", "id": 1, "n": 2, "config": {3: 4}}
            )
        assert err.value.code == "bad-payload"

    def test_unknown_error_code_on_wire(self):
        self.expect(
            encode_raw({"type": "error", "id": 1, "code": "nope"}), "bad-payload"
        )

    def test_oversized_frame_refused_on_encode(self):
        huge = wire.QueryColors(id=1, nodes=list(range(10_000_000)))
        with pytest.raises(wire.ProtocolError) as err:
            wire.encode_frame(huge)
        assert err.value.code == "frame-too-large"

    def test_clean_eof_is_none(self):
        assert wire.read_frame(io.BytesIO(b"")) is None
