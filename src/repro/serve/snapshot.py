"""Snapshot/restore of the serving engine's state (crash recovery).

A snapshot is everything :class:`~repro.dynamic.DynamicColoring` needs
to resume as if it had never stopped (DESIGN.md §8):

* the current topology — the undirected edge list behind the CSR;
* the maintained ``colors`` array and the ``active`` mask;
* the ``batch_index`` (next timestep), because every per-batch seed
  stream is a pure function of ``(config.seed, batch_index)``;
* the full :class:`~repro.config.ColoringConfig` as a dict, so the
  restored engine repairs with identical knobs.

That makes restore ≡ never-crashed an *exact* property — a restored
engine replays byte-identical colors for the remaining batches — which
tests/test_serve.py pins (both in-process and through a killed server).

Format: a single ``.npz`` (numpy's zip container) holding the three
arrays plus a JSON metadata blob; written atomically (temp file +
``os.replace``) so a crash mid-write never leaves a torn snapshot, only
the previous one.  ``SNAPSHOT_FORMAT`` gates forward compatibility:
readers reject snapshots from a newer writer.

Robustness (DESIGN.md §9): ``save_snapshot`` keeps ``keep`` rotated
generations (``path``, ``path.1``, ``path.2``, …) so that even a torn
*current* snapshot — e.g. a crash between ``os.replace`` calls on a
filesystem without atomic rename, or byte corruption at rest — leaves a
restorable previous generation; :func:`restore_engine` walks the
generations oldest-last and :func:`load_snapshot` converts every
corruption mode into ``ValueError`` so the fallback logic has a single
failure type to catch.  :func:`sweep_stale_tmp` removes ``*.tmp``
leftovers of writes that died before their ``os.replace``.
"""

from __future__ import annotations

import dataclasses
import io
import json
import os
import sys
import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.config import ColoringConfig
from repro.dynamic.engine import DynamicColoring
from repro.faults import plan as faults

__all__ = ["SNAPSHOT_FORMAT", "SnapshotInfo", "save_snapshot", "load_snapshot",
           "restore_engine", "snapshot_generations", "sweep_stale_tmp"]

SNAPSHOT_FORMAT = 1
"""Version stamp inside every snapshot; bumped on incompatible layout
changes.  ``load_snapshot`` refuses snapshots with a larger stamp."""


@dataclass(frozen=True)
class SnapshotInfo:
    """What a snapshot on disk contains (the metadata half)."""

    path: str
    format: int
    n: int
    m: int
    batch_index: int
    bytes: int
    config: ColoringConfig

    def as_dict(self) -> dict:
        out = {
            "path": self.path,
            "format": self.format,
            "n": self.n,
            "m": self.m,
            "batch_index": self.batch_index,
            "bytes": self.bytes,
        }
        return out


def _generation_path(path: Path, gen: int) -> Path:
    """Generation ``0`` is ``path`` itself; older ones append ``.1``,
    ``.2``, … (newest-first numbering, logrotate style)."""
    return path if gen == 0 else path.with_name(f"{path.name}.{gen}")


def snapshot_generations(path: str | os.PathLike, limit: int = 64) -> list[Path]:
    """The existing snapshot generations for ``path``, newest first
    (``path``, then ``path.1``, …).  Stops at the first gap — rotation
    never creates one — or at ``limit`` as a runaway guard."""
    path = Path(path)
    out: list[Path] = []
    for gen in range(limit):
        p = _generation_path(path, gen)
        if not p.exists():
            if gen > 0:
                break
            continue
        out.append(p)
    return out


def _rotate(path: Path, keep: int) -> None:
    """Shift generations down one slot before a new ``path`` lands:
    ``path.{keep-2}`` → ``path.{keep-1}``, …, ``path`` → ``path.1``.
    With ``keep <= 1`` there is nothing to preserve."""
    if keep <= 1 or not path.exists():
        return
    for gen in range(keep - 1, 0, -1):
        src = _generation_path(path, gen - 1)
        if src.exists():
            os.replace(src, _generation_path(path, gen))


def sweep_stale_tmp(path: str | os.PathLike) -> list[str]:
    """Remove leftover ``<path>*.tmp`` files from writes that died before
    their ``os.replace`` (startup hygiene for the daemon).  A stale tmp
    is harmless to correctness — restore never reads it — but it pins
    disk and confuses operators; returns the paths removed."""
    path = Path(path)
    removed: list[str] = []
    parent = path.parent if str(path.parent) else Path(".")
    for p in sorted(parent.glob(path.name + "*.tmp")):
        try:
            p.unlink()
            removed.append(str(p))
        except OSError:  # pragma: no cover - racing unlink
            pass
    return removed


def save_snapshot(
    engine: DynamicColoring, path: str | os.PathLike, keep: int = 1
) -> SnapshotInfo:
    """Persist ``engine``'s resumable state to ``path``, atomically.

    The write goes to ``<path>.tmp`` in the same directory and is
    ``os.replace``d into place, so concurrent readers (and a crash at
    any byte) see either the old snapshot or the new one, never a mix.
    ``keep > 1`` rotates previous snapshots to ``path.1`` … before the
    replace, so torn or corrupted *current* files still leave a
    restorable generation (:func:`restore_engine`).

    This function is also the ``serve.snapshot.write`` fault-injection
    site: an armed torn-write fault truncates the payload mid-write —
    ``hard`` faults then kill the process (SIGKILL-mid-write: a stale
    ``.tmp`` remains, ``path`` is untouched), soft ones promote the torn
    bytes to ``path`` and raise, exercising the generation fallback.
    """
    path = Path(path)
    edges = engine.net.undirected_edges()
    meta = {
        "format": SNAPSHOT_FORMAT,
        "n": int(engine.n),
        "m": int(edges.shape[0]),
        "batch_index": int(engine.batch_index),
        "config": dataclasses.asdict(engine.cfg),
    }
    buf = io.BytesIO()
    np.savez_compressed(
        buf,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        edges=edges,
        colors=engine.colors,
        active=engine.active,
    )
    payload = buf.getvalue()
    fault = faults.inject(
        "serve.snapshot.write", batch_index=int(engine.batch_index)
    )
    tmp = path.with_name(path.name + ".tmp")
    if fault is not None and fault.kind == "torn-write":
        torn = payload[: max(1, len(payload) // 3)]
        with open(tmp, "wb") as f:
            f.write(torn)
            f.flush()
            os.fsync(f.fileno())
        if fault.hard:
            # Simulated SIGKILL mid-write: the stale .tmp stays behind,
            # the previous snapshot at ``path`` is never touched.
            os._exit(faults._EXIT_CODE)
        # Soft torn write: the corrupt bytes *do* land at ``path`` (a
        # non-atomic-rename filesystem), so recovery must fall back to
        # the rotated previous generation.
        _rotate(path, keep)
        os.replace(tmp, path)
        raise faults.FaultInjected(
            "serve.snapshot.write", "torn-write",
            f"snapshot at {path} truncated to {len(torn)}/{len(payload)} bytes",
        )
    with open(tmp, "wb") as f:
        f.write(payload)
    _rotate(path, keep)
    os.replace(tmp, path)
    return SnapshotInfo(
        path=str(path),
        format=SNAPSHOT_FORMAT,
        n=meta["n"],
        m=meta["m"],
        batch_index=meta["batch_index"],
        bytes=int(path.stat().st_size),
        config=engine.cfg,
    )


def load_snapshot(path: str | os.PathLike) -> tuple[SnapshotInfo, dict]:
    """Read a snapshot without instantiating an engine.

    Returns ``(info, arrays)`` where ``arrays`` holds ``edges``,
    ``colors`` and ``active``.  Raises ``ValueError`` for a snapshot
    written by a newer format or with unknown config fields (a snapshot
    is a contract, not a suggestion — silently dropping knobs would
    break the restore ≡ never-crashed guarantee).  Every *corruption*
    mode — truncated zip, missing member, garbled JSON — is likewise
    normalized to ``ValueError`` so :func:`restore_engine` has a single
    failure type to fall back on; only a genuinely missing file keeps
    raising ``FileNotFoundError``.
    """
    path = Path(path)
    try:
        with np.load(path) as data:
            meta = json.loads(bytes(data["meta"]).decode())
            arrays = {
                "edges": data["edges"].astype(np.int64, copy=True),
                "colors": data["colors"].astype(np.int64, copy=True),
                "active": data["active"].astype(bool, copy=True),
            }
        if not isinstance(meta, dict):
            raise ValueError("snapshot meta is not a JSON object")
    except FileNotFoundError:
        raise
    except ValueError:
        raise ValueError(f"snapshot {path} is corrupt or unreadable") from None
    except (zipfile.BadZipFile, KeyError, EOFError, UnicodeDecodeError,
            json.JSONDecodeError, OSError) as exc:
        raise ValueError(f"snapshot {path} is corrupt or unreadable: {exc!r}") from exc
    fmt = int(meta.get("format", 0))
    if fmt > SNAPSHOT_FORMAT:
        raise ValueError(
            f"snapshot {path} has format {fmt}; this build reads ≤ {SNAPSHOT_FORMAT}"
        )
    known = {f.name for f in dataclasses.fields(ColoringConfig)}
    unknown = set(meta["config"]) - known
    if unknown:
        raise ValueError(
            f"snapshot {path} carries unknown config fields {sorted(unknown)}"
        )
    cfg = ColoringConfig(**meta["config"])
    info = SnapshotInfo(
        path=str(path),
        format=fmt,
        n=int(meta["n"]),
        m=int(meta["m"]),
        batch_index=int(meta["batch_index"]),
        bytes=int(path.stat().st_size),
        config=cfg,
    )
    return info, arrays


def restore_engine(
    path: str | os.PathLike, fallback: bool = True
) -> DynamicColoring:
    """Rebuild the serving engine from a snapshot — the warm-restart /
    crash-recovery entry point (``repro serve --restore``).

    The returned engine's next :meth:`~DynamicColoring.apply_batch`
    behaves exactly as the snapshotted engine's would have: same
    topology, same colors, same batch index, same derived seed streams.

    With ``fallback=True`` a torn or corrupt current snapshot falls back
    to the rotated previous generations (``path.1``, ``path.2``, … — see
    :func:`save_snapshot`'s ``keep``), newest first; restoring an older
    generation simply resumes from an earlier ``batch_index``, and
    replaying the missing batches reproduces the exact same colors.  If
    every generation is unreadable the *first* error is re-raised.
    """
    candidates = snapshot_generations(path) if fallback else [Path(path)]
    if not candidates:
        candidates = [Path(path)]  # let load_snapshot raise FileNotFoundError
    first_exc: Exception | None = None
    for i, candidate in enumerate(candidates):
        try:
            info, arrays = load_snapshot(candidate)
            if i > 0:
                print(
                    f"[serve] snapshot {path} unreadable; restored previous "
                    f"generation {candidate} (batch_index={info.batch_index})",
                    file=sys.stderr,
                )
            return DynamicColoring(
                (info.n, arrays["edges"]),
                info.config,
                initial_colors=arrays["colors"],
                active=arrays["active"],
                batch_index=info.batch_index,
            )
        except (ValueError, OSError) as exc:
            if first_exc is None:
                first_exc = exc
    assert first_exc is not None
    raise first_exc
