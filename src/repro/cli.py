"""Command-line interface: run the algorithm and its experiments without
writing Python.

    python -m repro color --family gnp --n 2000 --avg-degree 40
    python -m repro compare --family blobs --n 4096 --seeds 3
    python -m repro decompose --cliques 8 --size 56
    python -m repro sweep --family blobs --min-exp 8 --max-exp 12

Every subcommand prints a compact report; ``--json`` switches to
machine-readable output.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

import numpy as np

from repro.baselines.johansson import johansson_coloring
from repro.baselines.luby import luby_coloring
from repro.config import ColoringConfig
from repro.core.algorithm import BroadcastColoring
from repro.decomposition.acd import decompose_distributed
from repro.decomposition.validation import validate_decomposition
from repro.analysis.fitting import growth_fit
from repro.graphs.generators import (
    clique_blob_graph,
    geometric_graph,
    gnp_graph,
    hard_mix_graph,
    planted_acd_graph,
)
from repro.simulator.network import BroadcastNetwork

__all__ = ["main", "build_parser", "make_graph"]


def make_graph(family: str, n: int, avg_degree: float, seed: int):
    """Instantiate a workload by family name (shared by all subcommands)."""
    if family == "gnp":
        return gnp_graph(n, min(1.0, avg_degree / max(n, 2)), seed=seed)
    if family == "blobs":
        size = max(8, int(avg_degree))
        return clique_blob_graph(
            max(1, n // size),
            size,
            anti_edges_per_clique=max(1, size // 3),
            external_edges_per_clique=max(1, size // 6),
            seed=seed,
        )
    if family == "geometric":
        radius = float(np.sqrt(avg_degree / (np.pi * max(n, 2))))
        return geometric_graph(n, radius, seed=seed)
    if family == "hardmix":
        size = max(8, int(avg_degree))
        blobs = max(1, n // (4 * size))
        return hard_mix_graph(
            blobs, size, n - blobs * size, avg_degree / max(n, 2), n // 20, seed=seed
        )
    if family == "planted":
        size = max(8, int(avg_degree))
        return planted_acd_graph(
            max(1, n // size), size, 0.1, sparse_nodes=n // 5, seed=seed
        )
    raise SystemExit(f"unknown family: {family!r}")


def _emit(report: dict[str, Any], as_json: bool) -> None:
    if as_json:
        print(json.dumps(report, indent=2, default=str))
        return
    for key, value in report.items():
        if isinstance(value, dict):
            print(f"{key}:")
            for k2, v2 in value.items():
                print(f"  {k2}: {v2}")
        else:
            print(f"{key}: {value}")


def cmd_color(args: argparse.Namespace) -> int:
    graph = make_graph(args.family, args.n, args.avg_degree, args.seed)
    cfg = ColoringConfig.practical(seed=args.seed)
    if args.paper_constants:
        cfg = ColoringConfig.paper(seed=args.seed)
    result = BroadcastColoring(graph, cfg).run()
    report = result.as_dict()
    report["clique_summary"] = result.clique_summary
    _emit(report, args.json)
    return 0 if (result.proper and result.complete) else 1


def cmd_compare(args: argparse.Namespace) -> int:
    rows = []
    for seed in range(args.seeds):
        graph = make_graph(args.family, args.n, args.avg_degree, seed)
        ours = BroadcastColoring(graph, ColoringConfig.practical(seed=seed)).run()
        joh = johansson_coloring(graph, seed=seed)
        lub = luby_coloring(graph, seed=seed)
        rows.append(
            {
                "seed": seed,
                "ours_rounds": ours.rounds_algorithm,
                "johansson_rounds": joh.rounds,
                "luby_rounds": lub.rounds,
                "ours_bits_per_node": round(ours.total_bits / ours.n),
            }
        )
    report = {
        "family": args.family,
        "n": args.n,
        "runs": rows,
        "mean_ours": float(np.mean([r["ours_rounds"] for r in rows])),
        "mean_johansson": float(np.mean([r["johansson_rounds"] for r in rows])),
        "mean_luby": float(np.mean([r["luby_rounds"] for r in rows])),
    }
    _emit(report, args.json)
    return 0


def cmd_decompose(args: argparse.Namespace) -> int:
    cfg = ColoringConfig.practical(seed=args.seed)
    g = planted_acd_graph(
        args.cliques, args.size, cfg.eps, sparse_nodes=args.sparse, seed=args.seed
    )
    net = BroadcastNetwork(g, bandwidth_bits=cfg.bandwidth_bits(g[0]))
    acd = decompose_distributed(net, cfg)
    rep = validate_decomposition(net, acd)
    report = {
        "n": net.n,
        "delta": net.delta,
        "cliques_found": acd.num_cliques,
        "cliques_planted": args.cliques,
        "sparse_nodes": int(acd.sparse_nodes.size),
        "rounds": acd.rounds_used,
        "validator": rep.as_dict(),
    }
    _emit(report, args.json)
    return 0 if rep.ok else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    ns = [2**k for k in range(args.min_exp, args.max_exp + 1)]
    ours_series, base_series = [], []
    rows = []
    for n in ns:
        ours, base = [], []
        for seed in range(args.seeds):
            graph = make_graph(args.family, n, args.avg_degree, seed)
            res = BroadcastColoring(graph, ColoringConfig.practical(seed=seed)).run()
            ours.append(res.rounds_algorithm)
            base.append(johansson_coloring(graph, seed=seed).rounds)
        ours_series.append(float(np.mean(ours)))
        base_series.append(float(np.mean(base)))
        rows.append({"n": n, "ours": ours_series[-1], "johansson": base_series[-1]})
    report: dict[str, Any] = {"family": args.family, "rows": rows}
    if len(ns) >= 2:
        report["fit_ours"] = growth_fit(ns, ours_series).best
        report["fit_johansson"] = growth_fit(ns, base_series).best
    _emit(report, args.json)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Coloring Fast with Broadcasts (SPAA 2023) — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--family", default="gnp",
                       choices=["gnp", "blobs", "geometric", "hardmix", "planted"])
        p.add_argument("--n", type=int, default=2000)
        p.add_argument("--avg-degree", type=float, default=40.0)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--json", action="store_true")

    p_color = sub.add_parser("color", help="run the full pipeline on one graph")
    common(p_color)
    p_color.add_argument("--paper-constants", action="store_true",
                         help="use the published constants instead of the practical preset")
    p_color.set_defaults(fn=cmd_color)

    p_cmp = sub.add_parser("compare", help="ours vs Johansson vs Luby across seeds")
    common(p_cmp)
    p_cmp.add_argument("--seeds", type=int, default=3)
    p_cmp.set_defaults(fn=cmd_compare)

    p_dec = sub.add_parser("decompose", help="run + validate the ε-ACD on a planted graph")
    p_dec.add_argument("--cliques", type=int, default=6)
    p_dec.add_argument("--size", type=int, default=56)
    p_dec.add_argument("--sparse", type=int, default=100)
    p_dec.add_argument("--seed", type=int, default=0)
    p_dec.add_argument("--json", action="store_true")
    p_dec.set_defaults(fn=cmd_decompose)

    p_sweep = sub.add_parser("sweep", help="rounds vs n with growth-shape fits")
    common(p_sweep)
    p_sweep.add_argument("--min-exp", type=int, default=8)
    p_sweep.add_argument("--max-exp", type=int, default=12)
    p_sweep.add_argument("--seeds", type=int, default=2)
    p_sweep.set_defaults(fn=cmd_sweep)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
