"""Named workload families: one factory shared by the CLI, the runner and
the benches.

A *family* is a recipe turning ``(n, avg_degree, seed)`` into a concrete
graph.  Keeping the recipes here (rather than inside ``cli.py``, where
they historically lived) lets :mod:`repro.runner` worker processes build
the graph for a :class:`~repro.runner.spec.TrialSpec` without importing
argparse machinery.

Two registries:

* :data:`FAMILIES` — static graphs.  ``"edgelist"`` is special: it loads
  a whitespace/CSV edge-list file, with the path carried in the family
  string itself (``"edgelist:/path/to/snapshot.txt"``), so real-world
  snapshots ride every surface a generated family does.
* :data:`CHURN_FAMILIES` — dynamic workloads for :mod:`repro.dynamic`:
  :func:`make_churn` turns the same ``(n, avg_degree, seed)`` signature
  into a :class:`~repro.dynamic.events.ChurnSchedule`.  Any *static*
  family name is also accepted — it seeds a generic sliding-window churn
  over that family's initial graph.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.graphs.churn import (
    blob_merge_split_churn,
    mobile_geometric_churn,
    sliding_window_churn,
)
from repro.graphs.generators import (
    clique_blob_graph,
    geometric_graph,
    gnp_graph,
    hard_mix_graph,
    planted_acd_graph,
)

__all__ = [
    "FAMILIES",
    "CHURN_FAMILIES",
    "make_graph",
    "make_churn",
    "split_family",
    "load_edgelist",
]

FAMILIES = ("gnp", "blobs", "geometric", "hardmix", "planted", "edgelist")

CHURN_FAMILIES = ("gnp-churn", "mobile", "blobs-churn")


def split_family(family: str) -> tuple[str, str | None]:
    """``"edgelist:/path"`` → ``("edgelist", "/path")``; plain names pass
    through with ``None``.  The base name is what registries validate."""
    if ":" in family:
        base, arg = family.split(":", 1)
        return base, arg
    return family, None


def load_edgelist(path: str | Path, n: int | None = None) -> tuple[int, np.ndarray]:
    """Load a whitespace- or comma-separated edge-list file.

    Each non-empty, non-comment (``#``) line names one edge ``u v``.
    Node ids must be non-negative integers; ``n`` defaults to
    ``max id + 1`` and may be passed larger to keep isolated tail nodes.
    Returns the ``(n, edges)`` pair every generator produces.
    """
    path = Path(path)
    pairs: list[tuple[int, int]] = []
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.replace(",", " ").split()
            if len(parts) < 2:
                raise ValueError(f"{path}:{lineno}: expected 'u v', got {line!r}")
            u, v = int(parts[0]), int(parts[1])
            if u < 0 or v < 0:
                raise ValueError(f"{path}:{lineno}: negative node id")
            if u == v:
                raise ValueError(
                    f"{path}:{lineno}: self-loop edge {u} {v} — the model "
                    f"has no self-loops"
                )
            pairs.append((u, v))
    edges = np.array(pairs, dtype=np.int64).reshape(-1, 2)
    implied = int(edges.max()) + 1 if edges.size else 0
    if n is None:
        n = implied
    elif n < implied:
        raise ValueError(f"n={n} smaller than max node id {implied - 1}")
    return int(n), edges


def _split_checked(family: str) -> tuple[str, str | None]:
    base, arg = split_family(family)
    if arg is not None and base != "edgelist":
        raise ValueError(f"family {base!r} takes no ':' argument ({family!r})")
    return base, arg


def make_graph(family: str, n: int, avg_degree: float, seed: int):
    """Instantiate a workload by family name (shared by all subcommands)."""
    base, arg = _split_checked(family)
    if base == "gnp":
        return gnp_graph(n, min(1.0, avg_degree / max(n, 2)), seed=seed)
    if base == "blobs":
        size = max(8, int(avg_degree))
        return clique_blob_graph(
            max(1, n // size),
            size,
            anti_edges_per_clique=max(1, size // 3),
            external_edges_per_clique=max(1, size // 6),
            seed=seed,
        )
    if base == "geometric":
        radius = float(np.sqrt(avg_degree / (np.pi * max(n, 2))))
        return geometric_graph(n, radius, seed=seed)
    if base == "hardmix":
        size = max(8, int(avg_degree))
        blobs = max(1, n // (4 * size))
        return hard_mix_graph(
            blobs, size, n - blobs * size, avg_degree / max(n, 2), n // 20, seed=seed
        )
    if base == "planted":
        size = max(8, int(avg_degree))
        return planted_acd_graph(
            max(1, n // size), size, 0.1, sparse_nodes=n // 5, seed=seed
        )
    if base == "edgelist":
        if not arg:
            raise ValueError(
                "edgelist family needs a path: use 'edgelist:/path/to/file'"
            )
        return load_edgelist(arg)
    raise ValueError(f"unknown family: {family!r}")


def make_churn(
    family: str,
    n: int,
    avg_degree: float,
    seed: int,
    batches: int = 8,
    churn_fraction: float = 0.05,
):
    """Instantiate a churn workload (a ChurnSchedule) by family name.

    ``family`` is a :data:`CHURN_FAMILIES` name, or any static
    :data:`FAMILIES` name — the latter seeds a generic sliding-window
    churn over that family's initial graph (same graph the static run
    sees, per the shared seeding discipline).
    """
    base, _ = _split_checked(family)
    if base == "gnp-churn":
        initial = gnp_graph(n, min(1.0, avg_degree / max(n, 2)), seed=seed)
        return sliding_window_churn(
            initial, batches, churn_fraction, seed=seed + 1, family="gnp-churn"
        )
    if base == "mobile":
        radius = float(np.sqrt(avg_degree / (np.pi * max(n, 2))))
        return mobile_geometric_churn(
            n,
            radius,
            batches,
            step=churn_fraction * radius,
            seed=seed,
        )
    if base == "blobs-churn":
        size = max(8, int(avg_degree))
        return blob_merge_split_churn(max(2, n // size), size, batches, seed=seed)
    if base in FAMILIES:
        initial = make_graph(family, n, avg_degree, seed)
        return sliding_window_churn(
            initial, batches, churn_fraction, seed=seed + 1, family=f"{base}+sliding"
        )
    raise ValueError(f"unknown churn family: {family!r}")
