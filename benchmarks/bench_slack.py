"""E4 — slack generation (Lemma 2.12).

Paper claim: after one round in which every node tries a random color
w.p. p_s, a ζ-sparse node has slack ≥ γ·ζ with probability 1 − e^{−Θ(ζ)}.
Measured: average slack gained, bucketed by exact sparsity ζ_v, on a graph
with graded sparsity — the gain must increase with ζ and the γ-line
(gain ≥ γ·ζ for a small γ) must hold for the bucket means.
"""

from __future__ import annotations

import numpy as np
import pytest

from _common import print_table
from repro.config import ColoringConfig
from repro.core.slack import generate_slack
from repro.core.state import ColoringState
from repro.decomposition.sparsity import local_sparsity
from repro.graphs.generators import hard_mix_graph
from repro.simulator.network import BroadcastNetwork
from repro.simulator.rng import SeedSequencer


def graded_net():
    # Dense blobs (ζ ≈ 0) + sparse sea (ζ large) + bridges (intermediate).
    g = hard_mix_graph(6, 60, 2000, 0.015, 800, seed=3)
    return BroadcastNetwork(g)


@pytest.mark.benchmark(group="E4-slack")
def test_e4_slack_tracks_sparsity(benchmark):
    net = graded_net()
    zeta = local_sparsity(net)
    cfg = ColoringConfig.practical(slack_probability=0.25)

    gains = np.zeros(net.n)
    trials = 3
    for seed in range(trials):
        state = ColoringState(net)
        base_slack = state.slack()
        generate_slack(state, np.zeros(net.n, dtype=np.int64), cfg, SeedSequencer(seed))
        delta_slack = state.slack() - base_slack
        unc = state.colors < 0
        gains[unc] += delta_slack[unc] / trials

    # Bucket by explicit sparsity bands (quantiles collapse here: the
    # sparse sea is near-uniform in ζ, the blob cores near zero).
    edges = [0.25 * zeta.max(), 0.75 * zeta.max()]
    buckets = np.digitize(zeta, edges)
    labels = ["dense cores", "bridged", "sparse sea"]
    rows = []
    means = []
    for b, label in enumerate(labels):
        mask = buckets == b
        if not mask.any():
            continue
        rows.append(
            (
                label,
                f"{zeta[mask].mean():.1f}",
                int(mask.sum()),
                f"{gains[mask].mean():.2f}",
            )
        )
        means.append(gains[mask].mean())
    print_table(
        "E4 slack gained vs sparsity band (p_s=0.25, 3 seeds)",
        ["band", "mean ζ", "nodes", "mean slack gain"],
        rows,
    )
    # Monotone trend: the sparse sea gains more than the dense cores.
    assert means[-1] > means[0]
    # γ-line: top band's gain is a positive fraction of its ζ.
    top = buckets == len(labels) - 1
    gamma_hat = gains[top].mean() / max(zeta[top].mean(), 1e-9)
    print(f"empirical gamma (sparse band): {gamma_hat:.4f}")
    assert gamma_hat > 0.001

    cfg_small = ColoringConfig.practical()
    benchmark.pedantic(
        lambda: generate_slack(
            ColoringState(net), np.zeros(net.n, dtype=np.int64), cfg_small, SeedSequencer(9)
        ),
        rounds=1,
        iterations=1,
    )


@pytest.mark.benchmark(group="E4-slack")
def test_e4_single_round_cost(benchmark):
    """The step is one round of one color broadcast per participant."""
    net = graded_net()
    cfg = ColoringConfig.practical()
    state = ColoringState(net)
    generate_slack(state, np.zeros(net.n, dtype=np.int64), cfg, SeedSequencer(1), phase="sl")
    assert net.metrics.rounds_in("sl") == 1
    stats = net.metrics.phases["sl"]
    print(
        f"\nE4 cost: rounds=1, participants={stats.messages}, "
        f"max message={stats.max_message_bits} bits"
    )
    benchmark.pedantic(
        lambda: generate_slack(
            ColoringState(net), np.zeros(net.n, dtype=np.int64), cfg, SeedSequencer(2)
        ),
        rounds=1,
        iterations=1,
    )
