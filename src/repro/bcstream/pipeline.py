"""The full coloring pipeline under BCStream (Theorem 2).

§5's observation is that the algorithm is already *almost* streaming: all
color trials sample from publicly known sets, so a node only ever needs to
check its O(poly log n) sampled candidates against the stream of neighbor
announcements (O(1) words per candidate), and the two genuinely hard steps
— learning the clique palette and the permutation's prefix sums — have the
dedicated streaming implementations of §5.1.

``bcstream_coloring`` therefore runs the standard pipeline and produces,
per phase, the *working-set audit*: the number of words a BCStream node
must hold simultaneously in that phase, computed from the protocol
parameters actually used in the run (candidate counts, bitmap ranges,
prefix-sum stages).  The audit is checked against the poly(log n) ceiling;
exceeding it fails the run.  The streaming prefix-sum/palette machinery is
exercised for real on every clique the SCT touched.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.bcstream.memory import MemoryExceeded, MemoryMeter
from repro.bcstream.palette_stream import streaming_palette_lookup
from repro.config import ColoringConfig
from repro.core.algorithm import BroadcastColoring, ColoringResult
from repro.simulator.rng import SeedSequencer
from repro.util.mathx import poly_log

__all__ = ["BCStreamResult", "bcstream_coloring"]


@dataclass
class BCStreamResult:
    coloring: ColoringResult
    memory_ceiling_words: int
    phase_memory_words: dict[str, int] = field(default_factory=dict)
    peak_words: int = 0
    palette_lookup_rounds: int = 0
    within_memory: bool = True

    def as_dict(self) -> dict:
        d = self.coloring.as_dict()
        d.update(
            {
                "memory_ceiling_words": self.memory_ceiling_words,
                "peak_words": self.peak_words,
                "within_memory": self.within_memory,
                "phase_memory_words": dict(self.phase_memory_words),
            }
        )
        return d


def _phase_memory_audit(cfg: ColoringConfig, n: int, delta: int) -> dict[str, int]:
    """Words a BCStream node must hold per phase (Definition 5.1 audit).

    Derivations (all O(poly log n), independent of Δ):

    * acd — per round, ⌊B/b⌋ fingerprints of own sketch + the per-edge
      collision counters are maintained per *incident similarity decision*,
      processed one neighbor at a time: O(B/b) words live at once.
    * slack/trycolor — one candidate color + stream check: O(1).
    * matching — own proposal + pair bookkeeping: O(1).
    * multitrial — k_cap candidate colors + seed: O(k_cap).
    * learn-palette — own range bitmap (C log n bits) + assembled range:
      O(C log n / 64 + 1) words per range held one at a time.
    * permute — relabel candidates x ≈ C log n/log log n labels + bucket
      counters: O(x).
    * prefix-sums — stage-0 range of z0 = C log n values: O(z0).
    * putaside — k·repeats sampled colors + |P_K| list: O(k·r + ℓ).
    """
    log_n = max(math.log2(max(n, 2)), 1.0)
    z0 = int(math.ceil(cfg.log_threshold(n)))
    x_labels = max(1, int(math.ceil(cfg.log_threshold(n))))
    return {
        "acd": max(4, int(cfg.bandwidth_factor)),
        "slack": 2,
        "matching": 4,
        "multitrial": cfg.multitrial_cap + 2,
        "learn-palette": z0 // 64 + 2,
        "permute": x_labels + 4,
        "prefix-sums": z0 + 2,
        "putaside": cfg.compress_try_colors * max(1, cfg.compress_try_repeats)
        + cfg.putaside_size(n)
        + 2,
        "cleanup": 2,
    }


def bcstream_coloring(
    graph,
    config: ColoringConfig | None = None,
    decomposition: str = "distributed",
    memory_exponent: float = 3.0,
) -> BCStreamResult:
    """Run the coloring under the BCStream regime.

    ``memory_exponent`` is the c of the O(log^c n) ceiling (the paper's
    statements use poly(log n); Theorem 2's discussion mentions O(log³ n)
    for the representative-set machinery).
    """
    cfg = config or ColoringConfig.practical()
    algo = BroadcastColoring(graph, cfg, decomposition=decomposition)
    n = algo.net.n
    ceiling = max(64, int(poly_log(n, memory_exponent, 1.0)))
    meter = MemoryMeter(ceiling_words=ceiling)

    result = algo.run()

    # Static per-phase audit.
    audit = _phase_memory_audit(cfg, n, algo.net.delta)
    within = True
    for phase, words in audit.items():
        try:
            meter.touch(0, words)
        except MemoryExceeded:
            within = False

    # Dynamic: exercise the real streaming palette machinery on the
    # densest neighborhoods the run produced.
    lookup_rounds = 0
    seq = SeedSequencer(cfg.seed).spawn("bcstream")
    colors = result.colors
    if n:
        deg_order = np.argsort(-algo.net.degrees)
        probe = [int(v) for v in deg_order[: min(4, n)]]
        for v in probe:
            used = np.zeros(result.delta + 1, dtype=bool)
            nbr_colors = colors[algo.net.neighbors(v)]
            used[nbr_colors[(nbr_colors >= 0) & (nbr_colors <= result.delta)]] = True
            free = ~used
            free_total = int(free.sum())
            if free_total == 0:
                continue
            rng = seq.stream("probe", v)
            queries = rng.integers(0, free_total, size=min(4, free_total))
            try:
                lk = streaming_palette_lookup(free, queries, cfg, n, seq=seq, meter=meter)
            except MemoryExceeded:
                within = False
                break
            lookup_rounds = max(lookup_rounds, lk.rounds)
            # Cross-check the streaming lookup against the direct answer.
            direct = np.flatnonzero(free)
            for q, got in zip(queries, lk.colors):
                assert got == int(direct[int(q)]), "streaming lookup mismatch"

    return BCStreamResult(
        coloring=result,
        memory_ceiling_words=ceiling,
        phase_memory_words=audit,
        peak_words=meter.peak_words(),
        palette_lookup_rounds=lookup_rounds,
        within_memory=within,
    )
