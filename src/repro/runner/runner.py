"""The parallel trial runner: shard specs across processes, reuse the store.

Design invariants (the acceptance bar of the runner subsystem):

* **Determinism** — results are a pure function of each spec.  Output
  order follows *input spec order*, never completion order, so
  ``workers=4`` produces byte-identical result rows to ``workers=1``.
* **Resume** — specs whose key is already in the :class:`ResultStore`
  are served from it without spawning a worker; only ``ok`` results are
  persisted, so failures are retried on the next run.
* **Isolation** — each trial runs through
  :func:`repro.runner.execute.run_trial`, which converts exceptions and
  wall-clock overruns into status records instead of poisoning the pool.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.runner.execute import _pool_entry, run_trial
from repro.runner.spec import TrialResult, TrialSpec, dedupe
from repro.runner.store import ResultStore

__all__ = ["ParallelRunner", "RunReport", "default_workers"]

ProgressFn = Callable[[int, int, TrialResult], None]


def default_workers() -> int:
    """A conservative default: the machine's cores, capped at 8."""
    return max(1, min(8, os.cpu_count() or 1))


@dataclass
class RunReport:
    """Results of one :meth:`ParallelRunner.run` call, in spec order."""

    results: list[TrialResult] = field(default_factory=list)

    @property
    def ok(self) -> list[TrialResult]:
        return [r for r in self.results if r.ok]

    @property
    def failed(self) -> list[TrialResult]:
        return [r for r in self.results if not r.ok]

    @property
    def cached_count(self) -> int:
        return sum(1 for r in self.results if r.cached)

    @property
    def computed_count(self) -> int:
        return sum(1 for r in self.results if not r.cached)

    def payloads(self) -> list[dict]:
        """Deterministic payload rows of the successful trials."""
        return [r.payload for r in self.ok]

    def summary(self) -> dict:
        return {
            "trials": len(self.results),
            "ok": len(self.ok),
            "failed": len(self.failed),
            "cached": self.cached_count,
            "computed": self.computed_count,
        }


class ParallelRunner:
    """Run a spec matrix, sharded over a process pool.

    Parameters
    ----------
    workers:
        Pool size.  ``1`` (the default) executes inline in this process —
        no pool, no pickling — which is also the reference path the
        determinism tests compare multi-worker runs against.
    store:
        Optional :class:`ResultStore`; hits skip execution, successful
        misses are appended.
    timeout_s:
        Per-trial wall-clock budget, enforced inside the worker.
    progress:
        Optional ``f(done, total, result)`` callback, called once per
        trial in completion order (progress is about liveness; result
        ordering stays deterministic regardless).
    """

    def __init__(
        self,
        workers: int = 1,
        store: ResultStore | None = None,
        timeout_s: float | None = None,
        progress: ProgressFn | None = None,
    ):
        self.workers = max(1, int(workers))
        self.store = store
        self.timeout_s = timeout_s
        self.progress = progress

    # ------------------------------------------------------------------
    def run(self, specs: Iterable[TrialSpec]) -> RunReport:
        ordered = dedupe(specs)
        total = len(ordered)
        by_key: dict[str, TrialResult] = {}
        pending: list[TrialSpec] = []
        for spec in ordered:
            hit = self.store.lookup(spec) if self.store is not None else None
            if hit is not None and hit.ok:
                by_key[spec.key] = hit
            else:
                pending.append(spec)

        done = 0
        for result in by_key.values():  # report cache hits up-front
            done += 1
            self._tick(done, total, result)

        if pending:
            execute = (
                self._run_inline if self.workers == 1 else self._run_pool
            )
            for result in execute(pending):
                by_key[result.key] = result
                if self.store is not None and result.ok and not result.cached:
                    self.store.add(result)
                done += 1
                self._tick(done, total, result)

        return RunReport(results=[by_key[s.key] for s in ordered])

    # ------------------------------------------------------------------
    def _tick(self, done: int, total: int, result: TrialResult) -> None:
        if self.progress is not None:
            self.progress(done, total, result)

    def _run_inline(self, specs: Sequence[TrialSpec]):
        for spec in specs:
            yield run_trial(spec, timeout_s=self.timeout_s)

    def _run_pool(self, specs: Sequence[TrialSpec]):
        """Shard over a ProcessPoolExecutor, yielding in completion order.

        A bounded submission window (4 per worker) keeps memory flat on
        large matrices instead of materialising every future at once.

        When ``timeout_s`` is set, the driver also enforces a wall-clock
        deadline of ``timeout_s·1.5 + 1`` per submitted trial.  The
        worker-side SIGALRM guard is the primary mechanism, but it is a
        *cooperative* one — a trial wedged in a C extension, or running
        where :func:`~repro.runner.execute._alarm_usable` is false, never
        raises — so trials past the grace are abandoned and reported as
        ``status="timeout"`` with ``guard="wallclock"``.  The abandoned
        future keeps its pool slot until the worker returns (documented
        backstop, not a kill): throughput can degrade, results cannot
        hang forever.
        """
        window = self.workers * 4
        grace = (
            None if self.timeout_s is None else float(self.timeout_s) * 1.5 + 1.0
        )
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            queue = deque(specs)
            futures: dict = {}  # future -> (spec, submit_time)
            while queue or futures:
                while queue and len(futures) < window:
                    spec = queue.popleft()
                    fut = pool.submit(_pool_entry, spec.as_dict(), self.timeout_s)
                    futures[fut] = (spec, time.monotonic())
                finished, _ = wait(
                    futures,
                    timeout=None if grace is None else 0.25,
                    return_when=FIRST_COMPLETED,
                )
                for fut in finished:
                    spec, _submitted = futures.pop(fut)
                    try:
                        yield TrialResult.from_record(fut.result())
                    except Exception as exc:  # worker died (OOM, signal, ...)
                        yield TrialResult(
                            spec=spec, status="error",
                            error=f"worker failed: {exc!r}",
                        )
                if grace is None:
                    continue
                now = time.monotonic()
                overdue = [
                    fut
                    for fut, (_spec, submitted) in futures.items()
                    if now - submitted > grace
                ]
                for fut in overdue:
                    spec, submitted = futures.pop(fut)
                    fut.cancel()  # only helps if still queued
                    yield TrialResult(
                        spec=spec,
                        status="timeout",
                        guard="wallclock",
                        error=(
                            f"no result within {grace:.1f}s "
                            f"(timeout_s={self.timeout_s}); trial abandoned "
                            "by the pool driver"
                        ),
                        elapsed_s=now - submitted,
                    )
