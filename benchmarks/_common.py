"""Shared helpers for the experiment harness.

Every bench prints the measured rows (the "tables" of this theory paper's
claims — see EXPERIMENTS.md for the claim-by-claim index) and uses
pytest-benchmark to time one representative unit of work.

Benches that sweep a (family, n, seed, algorithm) grid should go through
:func:`run_matrix`, which routes the grid through :mod:`repro.runner` so
trials shard over ``REPRO_BENCH_WORKERS`` processes and land in the shared
``REPRO_BENCH_STORE`` result store — a second bench (or a `repro bench`
invocation) touching the same cells reuses them instead of recomputing.
"""

from __future__ import annotations

import os
from typing import Iterable, Mapping, Sequence

from repro.runner import ParallelRunner, ResultStore, TrialSpec, expand_matrix

__all__ = [
    "print_table",
    "ratio",
    "run_matrix",
    "matrix_payloads",
    "GEOM_SEEDS",
]

GEOM_SEEDS = [101, 202, 303]


def _bench_store() -> ResultStore | None:
    path = os.environ.get("REPRO_BENCH_STORE", "")
    return ResultStore(path) if path else None


def run_matrix(
    specs: Sequence[TrialSpec],
    workers: int | None = None,
    store: ResultStore | None = None,
    timeout_s: float | None = None,
):
    """Run a spec list through the parallel runner with the bench-suite
    defaults (``REPRO_BENCH_WORKERS`` processes, ``REPRO_BENCH_STORE``
    result reuse).  Returns the :class:`repro.runner.RunReport`."""
    if workers is None:
        workers = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
    if store is None:
        store = _bench_store()
    runner = ParallelRunner(workers=workers, store=store, timeout_s=timeout_s)
    report = runner.run(specs)
    failed = report.failed
    if failed:  # not an assert: must survive python -O
        raise RuntimeError(f"{len(failed)} trials failed; first: {failed[0].error}")
    return report


def matrix_payloads(matrix: Mapping, **kwargs) -> list[dict]:
    """Expand a matrix dict (same schema as `repro bench` spec files) and
    return the deterministic payload rows."""
    return run_matrix(expand_matrix(matrix), **kwargs).payloads()


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Fixed-width table to stdout (visible with pytest -s; captured into
    the bench logs either way)."""
    rows = [tuple(str(c) for c in r) for r in rows]
    widths = [len(h) for h in headers]
    for r in rows:
        for i, c in enumerate(r):
            widths[i] = max(widths[i], len(c))
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(c.ljust(w) for c, w in zip(r, widths)))


def ratio(a: float, b: float) -> float:
    """a/b guarded against zero."""
    return float(a) / max(float(b), 1e-12)
