"""Stress matrix: the full pipeline across a wide family × parameter ×
seed grid, with every hard invariant checked on every run.

These are the tests that earn trust: no mocks, no shortcuts — each cell
runs the complete algorithm and audits the output contract (proper,
complete, ≤ Δ+1 colors, bandwidth-compliant, deterministic, monotone
trace).
"""

import numpy as np
import pytest

from repro.analysis.verify import verify_coloring
from repro.config import ColoringConfig
from repro.core.algorithm import BroadcastColoring
from repro.extensions.degplusone import deg_plus_one_coloring
from repro.graphs.generators import (
    clique_blob_graph,
    complete_graph,
    geometric_graph,
    gnp_graph,
    hard_mix_graph,
    planted_acd_graph,
    random_regular_graph,
    ring_graph,
    star_graph,
)
from repro.simulator.network import BroadcastNetwork


GRID = [
    ("gnp-sparse", lambda s: gnp_graph(400, 0.01, seed=s)),
    ("gnp-mid", lambda s: gnp_graph(400, 0.05, seed=s)),
    ("gnp-dense", lambda s: gnp_graph(200, 0.3, seed=s)),
    ("regular", lambda s: random_regular_graph(300, 12, seed=s)),
    ("blobs-small", lambda s: clique_blob_graph(4, 24, 10, 6, seed=s)),
    ("blobs-holey", lambda s: clique_blob_graph(3, 48, 120, 20, seed=s)),
    ("blobs-linked", lambda s: clique_blob_graph(5, 32, 8, 40, seed=s)),
    ("planted", lambda s: planted_acd_graph(4, 36, 0.1, sparse_nodes=60, seed=s)),
    ("geom", lambda s: geometric_graph(300, 0.1, seed=s)),
    ("hardmix", lambda s: hard_mix_graph(3, 36, 200, 0.03, 60, seed=s)),
    ("ring", lambda s: ring_graph(200 + s)),
    ("star", lambda s: star_graph(150 + s)),
    ("clique", lambda s: complete_graph(50 + s)),
]


class TestPipelineMatrix:
    @pytest.mark.parametrize("name,make", GRID)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_full_contract(self, name, make, seed):
        graph = make(seed)
        cfg = ColoringConfig.practical(seed=seed, record_trace=True)
        res = BroadcastColoring(graph, cfg).run()

        net = BroadcastNetwork(graph)
        audit = verify_coloring(net, res.colors, num_colors=res.delta + 1)
        assert audit["proper"], (name, seed)
        assert audit["complete"], (name, seed)
        assert audit["within_palette"], (name, seed)
        assert res.max_message_bits <= cfg.bandwidth_bits(res.n), (name, seed)
        assert res.trace.is_monotone(), (name, seed)
        assert len(res.trace.events) == res.rounds_total

    @pytest.mark.parametrize(
        "name,make", [g for g in GRID if g[0] in ("gnp-mid", "blobs-small", "hardmix")]
    )
    def test_exact_decomposition_variant(self, name, make):
        res = BroadcastColoring(make(3), decomposition="exact").run()
        assert res.proper and res.complete

    @pytest.mark.parametrize("seed", range(4))
    def test_determinism_across_grid(self, seed):
        graph = clique_blob_graph(3, 32, 16, 8, seed=seed)
        cfg = ColoringConfig.practical(seed=seed)
        a = BroadcastColoring(graph, cfg).run()
        b = BroadcastColoring(graph, cfg).run()
        assert np.array_equal(a.colors, b.colors)
        assert a.rounds_total == b.rounds_total
        assert a.total_bits == b.total_bits


class TestDegPlusOneMatrix:
    @pytest.mark.parametrize(
        "name,make", [g for g in GRID if g[0] not in ("gnp-dense",)]
    )
    def test_deg_plus_one_contract(self, name, make):
        graph = make(1)
        res = deg_plus_one_coloring(graph)
        assert res.proper and res.complete and res.within_lists, name


class TestConfigVariantsMatrix:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"permute_constant_round": True},
            {"multitrial_sampler": "expander"},
            {"enable_matching": False},
            {"enable_putaside": False},
            {"multitrial_cap": 8},
            {"slack_probability": 0.1},
            {"eps": 0.05},
            {"beta": 0.5},
        ],
        ids=lambda o: next(iter(o.items()))[0],
    )
    def test_pipeline_robust_to_config_variants(self, overrides):
        cfg = ColoringConfig.practical(seed=7, **overrides)
        graph = hard_mix_graph(3, 40, 200, 0.03, 60, seed=7)
        res = BroadcastColoring(graph, cfg).run()
        assert res.proper and res.complete

    def test_tiny_bandwidth_still_finishes(self):
        """Shrinking the bandwidth constant slows protocols (more waves)
        but must never break them."""
        cfg = ColoringConfig.practical(bandwidth_factor=12.0, seed=1)
        graph = clique_blob_graph(3, 32, 12, 8, seed=1)
        res = BroadcastColoring(graph, cfg).run()
        assert res.proper and res.complete
        assert res.max_message_bits <= cfg.bandwidth_bits(res.n)

    def test_wide_bandwidth_fewer_or_equal_rounds(self):
        g = clique_blob_graph(3, 32, 12, 8, seed=2)
        narrow = BroadcastColoring(
            g, ColoringConfig.practical(bandwidth_factor=12.0, seed=2)
        ).run()
        wide = BroadcastColoring(
            g, ColoringConfig.practical(bandwidth_factor=64.0, seed=2)
        ).run()
        assert wide.rounds_total <= narrow.rounds_total + 2
