"""Tests for the CLI (python -m repro ...)."""

import json

import pytest

from repro.cli import build_parser, main, make_graph
from repro.simulator.network import BroadcastNetwork


class TestMakeGraph:
    @pytest.mark.parametrize(
        "family", ["gnp", "blobs", "geometric", "hardmix", "planted"]
    )
    def test_families_produce_valid_graphs(self, family):
        g = make_graph(family, 300, 24.0, seed=1)
        net = BroadcastNetwork(g)
        assert net.n >= 200
        assert net.m > 0

    def test_unknown_family_exits(self):
        with pytest.raises(SystemExit):
            make_graph("nope", 100, 10.0, 0)

    def test_deterministic(self):
        import numpy as np

        a = make_graph("gnp", 200, 20.0, seed=3)[1]
        b = make_graph("gnp", 200, 20.0, seed=3)[1]
        assert np.array_equal(a, b)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_color_defaults(self):
        args = build_parser().parse_args(["color"])
        assert args.family == "gnp"
        assert args.n == 2000

    def test_sweep_args(self):
        args = build_parser().parse_args(
            ["sweep", "--min-exp", "8", "--max-exp", "9", "--seeds", "1"]
        )
        assert args.min_exp == 8 and args.max_exp == 9


class TestCommands:
    def test_color_runs_and_succeeds(self, capsys):
        rc = main(["color", "--n", "300", "--avg-degree", "20", "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "rounds_total" in out

    def test_color_json_output(self, capsys):
        rc = main(["color", "--n", "200", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["proper"] and data["complete"]

    def test_color_paper_constants(self, capsys):
        rc = main(["color", "--n", "200", "--paper-constants", "--json"])
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["complete"]

    def test_compare(self, capsys):
        rc = main(
            ["compare", "--family", "blobs", "--n", "256", "--avg-degree", "32",
             "--seeds", "2", "--json"]
        )
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["runs"]) == 2
        assert data["mean_johansson"] > 0

    def test_decompose(self, capsys):
        rc = main(["decompose", "--cliques", "3", "--size", "40", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["cliques_found"] == 3
        assert data["validator"]["ok"]

    def test_sweep(self, capsys):
        rc = main(
            ["sweep", "--family", "gnp", "--avg-degree", "16",
             "--min-exp", "8", "--max-exp", "9", "--seeds", "1", "--json"]
        )
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["rows"]) == 2
        assert "fit_ours" in data
