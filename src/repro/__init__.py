"""repro — a reproduction of "Coloring Fast with Broadcasts" (SPAA 2023).

A (Δ+1)-coloring library for the BCONGEST model (every node broadcasts
one O(log n)-bit message per round) built around a round-accurate
simulator.  Quickstart:

>>> from repro import BroadcastColoring
>>> from repro.graphs import gnp_graph
>>> result = BroadcastColoring(gnp_graph(1000, 0.02, seed=7)).run()
>>> assert result.proper and result.complete
>>> result.rounds_total  # doctest: +SKIP

Public surface:

* :class:`repro.BroadcastColoring` / :class:`repro.ColoringResult` — the
  paper's algorithm (Theorem 1).
* :func:`repro.bcstream.bcstream_coloring` — the streaming variant
  (Theorem 2).
* :class:`repro.ColoringConfig` — every constant of the paper,
  ``paper()`` and ``practical()`` presets.
* :mod:`repro.dynamic` — churn workloads + the incremental recoloring
  engine (maintain a (Δ+1)-coloring while the graph changes).
* :mod:`repro.shard` — partitioned coloring: k shard workers + cut
  reconciliation.
* :mod:`repro.serve` — the streaming coloring service: ``repro serve``
  daemon, wire protocol (docs/PROTOCOL.md), snapshots, client.
* :mod:`repro.obs` — the unified telemetry plane: span tracer, metrics
  registry, Prometheus exposition and Perfetto trace export.
* :mod:`repro.graphs` — workload generators.
* :mod:`repro.baselines` — greedy / Johansson / Luby comparators.
* :mod:`repro.decomposition` — the ε-almost-clique decomposition.
* :mod:`repro.analysis` — verification and growth-shape fitting.
"""

from repro.config import ColoringConfig
from repro.core.algorithm import BroadcastColoring, ColoringResult
from repro.core.state import ColoringState
from repro.dynamic import ChurnSchedule, DynamicColoring, UpdateBatch
from repro.simulator.network import BroadcastNetwork

__version__ = "1.4.0"

__all__ = [
    "BroadcastColoring",
    "ColoringResult",
    "ColoringConfig",
    "ColoringState",
    "BroadcastNetwork",
    "ChurnSchedule",
    "DynamicColoring",
    "UpdateBatch",
    "__version__",
]
