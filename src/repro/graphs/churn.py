"""Churn workload generators: graphs that keep changing (DESIGN.md §6).

Three recipes, each producing a :class:`~repro.dynamic.events.ChurnSchedule`
(initial graph + stream of :class:`~repro.dynamic.events.UpdateBatch`):

* :func:`sliding_window_churn` — per batch, a fraction of the current
  edge set is resampled: random edges leave the window, fresh uniform
  pairs enter.  Applied to a G(n, p) start this is the classic
  sliding-window G(n,p) churn model; it works on *any* initial graph, so
  every static family gains a churn variant for free.
* :func:`mobile_geometric_churn` — transmitters random-walk on the unit
  square; the interference graph is re-derived geometrically each step,
  and the batch is the edge diff.  A hand-off fraction of nodes powers
  down (departure) and re-appears at a fresh position two batches later
  (arrival) — the OSERENA-style dense-wireless scenario.
* :func:`blob_merge_split_churn` — almost-clique blobs merge (all cross
  pairs inserted) and split back apart, driving large swings in Δ and in
  the dense-machinery workload.

Every generator is deterministic in its ``seed`` and tracks the evolving
edge set itself, so schedules are self-consistent: deletions always name
live edges, insertions never name existing ones.
"""

from __future__ import annotations

import numpy as np

from repro.dynamic.events import ChurnSchedule, UpdateBatch
from repro.graphs.generators import clique_blob_graph, geometric_edges, gnp_graph

__all__ = [
    "sliding_window_churn",
    "mobile_geometric_churn",
    "blob_merge_split_churn",
]


def _keys(edges: np.ndarray, n: int) -> np.ndarray:
    """(k, 2) undirected pairs → sorted unique keys lo·n + hi."""
    if not edges.size:
        return np.empty(0, dtype=np.int64)
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    return np.unique(lo * n + hi)


def _pairs(keys: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`_keys`."""
    return np.stack([keys // n, keys % n], axis=1).astype(np.int64)


def sliding_window_churn(
    initial: tuple[int, np.ndarray],
    num_batches: int,
    churn_fraction: float,
    seed: int = 0,
    family: str = "sliding-window",
) -> ChurnSchedule:
    """Resample ``churn_fraction`` of the current edges every batch.

    Deletions are a uniform sample of the live edge set; the same number
    of fresh uniform non-edges enters (rejection-sampled with a bounded
    guard, so extreme densities degrade to fewer insertions rather than
    spinning).  Edge count — and so average degree — stays ~constant
    while the graph's identity drifts completely over ``1/churn_fraction``
    batches: the sliding-window G(n,p) model when seeded with G(n,p).
    """
    n, edges = int(initial[0]), np.asarray(initial[1], dtype=np.int64)
    rng = np.random.default_rng(seed)
    current = _keys(edges.reshape(-1, 2), max(n, 1))
    batches = []
    for _ in range(int(num_batches)):
        k = int(round(churn_fraction * current.size))
        k = min(k, current.size)
        if k == 0 and churn_fraction > 0 and current.size:
            k = 1  # tiny-but-nonzero fractions still churn something
        drop_idx = rng.choice(current.size, size=k, replace=False) if k else []
        dropped = current[np.sort(drop_idx)] if k else np.empty(0, dtype=np.int64)
        survivors = np.delete(current, drop_idx) if k else current

        fresh = np.empty(0, dtype=np.int64)
        guard = 0
        while fresh.size < k and guard < 50 and n >= 2:
            guard += 1
            need = k - fresh.size
            u = rng.integers(0, n, size=2 * need + 4, dtype=np.int64)
            v = rng.integers(0, n, size=2 * need + 4, dtype=np.int64)
            ok = u != v
            cand = np.unique(np.minimum(u[ok], v[ok]) * n + np.maximum(u[ok], v[ok]))
            # Reject against the full pre-batch edge set (not just the
            # survivors): re-inserting a same-batch deletion would be a
            # hidden no-op, not churn.
            cand = cand[~np.isin(cand, current)]
            cand = cand[~np.isin(cand, fresh)]
            fresh = np.concatenate([fresh, cand[:need]])
        batches.append(
            UpdateBatch(
                insert_edges=_pairs(fresh, n), delete_edges=_pairs(dropped, n)
            )
        )
        current = np.unique(np.concatenate([survivors, fresh]))
    return ChurnSchedule(initial=(n, edges), batches=tuple(batches), family=family)


def mobile_geometric_churn(
    n: int,
    radius: float,
    num_batches: int,
    step: float,
    seed: int = 0,
    handoff_fraction: float = 0.02,
) -> ChurnSchedule:
    """Mobile transmitters: a random walk drives the interference graph.

    Each batch, every active node moves by a Gaussian step (σ = ``step``,
    reflected into the unit square) and the geometric graph at radius
    ``radius`` is re-derived; the batch carries the edge diff.  A
    ``handoff_fraction`` of active nodes departs per batch (power-down /
    hand-off) and re-arrives two batches later at a fresh position with
    its new interference edges in the same batch.
    """
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2))
    initial_edges = geometric_edges(pts, radius)
    active = np.ones(n, dtype=bool)
    away: dict[int, int] = {}  # node -> batch index it departed
    current = _keys(initial_edges, max(n, 1))
    batches = []
    for t in range(int(num_batches)):
        # Hand-offs: returning nodes first (fresh position), then new
        # departures from the still-active population.
        arrivals = np.array(
            sorted(v for v, t0 in away.items() if t - t0 >= 2), dtype=np.int64
        )
        for v in arrivals:
            del away[int(v)]
            pts[v] = rng.random(2)
            active[v] = True
        pool = np.flatnonzero(active)
        pool = pool[~np.isin(pool, arrivals)]
        h = min(int(round(handoff_fraction * n)), pool.size)
        departures = (
            np.sort(rng.choice(pool, size=h, replace=False))
            if h
            else np.empty(0, dtype=np.int64)
        )
        active[departures] = False
        for v in departures:
            away[int(v)] = t

        # Movement (active nodes only), reflected into [0, 1].
        moving = np.flatnonzero(active)
        pts[moving] += rng.normal(0.0, step, size=(moving.size, 2))
        pts = np.abs(pts)
        pts = np.where(pts > 1.0, 2.0 - pts, pts)
        pts = np.clip(pts, 0.0, 1.0)

        new_edges = geometric_edges(pts, radius)
        mask = active[new_edges[:, 0]] & active[new_edges[:, 1]] if new_edges.size else None
        new_keys = _keys(new_edges[mask] if new_edges.size else new_edges, max(n, 1))

        # Departure-incident deletions are implicit (the engine expands
        # departures); the explicit diff covers everything else.
        dep_mask = np.zeros(n, dtype=bool)
        dep_mask[departures] = True
        gone = current[~np.isin(current, new_keys)]
        if gone.size:
            gp = _pairs(gone, n)
            gone = gone[~(dep_mask[gp[:, 0]] | dep_mask[gp[:, 1]])]
        fresh = new_keys[~np.isin(new_keys, current)]
        batches.append(
            UpdateBatch(
                insert_edges=_pairs(fresh, n),
                delete_edges=_pairs(gone, n),
                arrivals=arrivals,
                departures=departures,
            )
        )
        current = new_keys
    return ChurnSchedule(
        initial=(n, initial_edges), batches=tuple(batches), family="mobile"
    )


def blob_merge_split_churn(
    num_cliques: int,
    clique_size: int,
    num_batches: int,
    seed: int = 0,
) -> ChurnSchedule:
    """Almost-clique blobs merging and splitting.

    Even batches (starting at t=0) merge a random pair of distinct blobs
    — every missing cross pair between them is inserted, roughly
    doubling the pair's degrees (and possibly Δ).  Odd batches split the
    oldest merged pair by deleting exactly the edges its merge inserted.
    This is the
    worst-case workload for an incremental engine: conflicts concentrate
    in one region and Δ_t swings both ways.
    """
    rng = np.random.default_rng(seed)
    s = int(clique_size)
    n = int(num_cliques) * s
    initial = clique_blob_graph(
        num_cliques,
        s,
        anti_edges_per_clique=max(1, s // 3),
        external_edges_per_clique=max(1, s // 6),
        seed=seed,
    )
    current = _keys(np.asarray(initial[1]), max(n, 1))
    merged: list[tuple[int, int, np.ndarray]] = []  # (a, b, inserted keys)
    batches = []
    for t in range(int(num_batches)):
        if merged and (t % 2 == 1 or len(merged) >= max(1, num_cliques // 2)):
            a, b, keys = merged.pop(0)
            batches.append(UpdateBatch(delete_edges=_pairs(keys, n)))
            current = current[~np.isin(current, keys)]
            continue
        taken = {k for pair in merged for k in pair[:2]}
        free = [k for k in range(num_cliques) if k not in taken]
        if len(free) < 2:
            batches.append(UpdateBatch())
            continue
        a, b = sorted(rng.choice(free, size=2, replace=False).tolist())
        ua = np.arange(a * s, (a + 1) * s, dtype=np.int64)
        ub = np.arange(b * s, (b + 1) * s, dtype=np.int64)
        cross = (
            np.minimum.outer(ua, ub) * n + np.maximum.outer(ua, ub)
        ).ravel()
        cross = np.unique(cross[~np.isin(cross, current)])
        merged.append((a, b, cross))
        batches.append(UpdateBatch(insert_edges=_pairs(cross, n)))
        current = np.unique(np.concatenate([current, cross]))
    return ChurnSchedule(initial=initial, batches=tuple(batches), family="blobs-churn")
