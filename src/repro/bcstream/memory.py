"""Word-level memory accounting for the BCStream model (Definition 5.1).

BCStream nodes read each round's incoming messages as a stream with only
``O(log^c n)`` bits of working memory — they can never buffer the
Θ(Δ log n) bits a round may deliver.  :class:`MemoryMeter` tracks working
memory in *words* (one word = one O(log n)-bit quantity: a color, an id, a
counter, a seed) per node, maintains peaks, and can enforce a ceiling:
exceeding it raises :class:`MemoryExceeded`, making accidental
Δ-sized buffering fail loudly exactly like the bandwidth cap does for
oversized messages.
"""

from __future__ import annotations

from collections import defaultdict

__all__ = ["MemoryMeter", "MemoryExceeded"]


class MemoryExceeded(RuntimeError):
    """A node's working memory went above the model ceiling."""


class MemoryMeter:
    """Tracks per-node working-memory words with peaks and a ceiling."""

    def __init__(self, ceiling_words: int | None = None):
        self.ceiling_words = ceiling_words
        self.current: dict[int, int] = defaultdict(int)
        self.peak: dict[int, int] = defaultdict(int)

    def alloc(self, node: int, words: int) -> None:
        """Node takes ``words`` more words of working memory."""
        if words < 0:
            raise ValueError("use free() to release memory")
        cur = self.current[node] + int(words)
        self.current[node] = cur
        if cur > self.peak[node]:
            self.peak[node] = cur
        if self.ceiling_words is not None and cur > self.ceiling_words:
            raise MemoryExceeded(
                f"node {node} uses {cur} words > ceiling {self.ceiling_words}"
            )

    def free(self, node: int, words: int | None = None) -> None:
        """Release ``words`` (default: everything) from the node."""
        if words is None:
            self.current[node] = 0
        else:
            self.current[node] = max(0, self.current[node] - int(words))

    def touch(self, node: int, words: int) -> None:
        """Transient usage: alloc then free — records the peak only."""
        self.alloc(node, words)
        self.free(node, words)

    def peak_words(self) -> int:
        """Max peak across nodes (0 if never used)."""
        return max(self.peak.values(), default=0)

    def peak_of(self, node: int) -> int:
        return self.peak.get(node, 0)

    def as_dict(self) -> dict:
        return {
            "peak_words": self.peak_words(),
            "ceiling_words": self.ceiling_words,
            "nodes_tracked": len(self.peak),
        }
