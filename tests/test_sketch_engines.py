"""Tests for the bit-packed SWAR sketch engine (DESIGN.md §4).

Covers the three contracts the `acd_sketch_engine` knob rests on:

1. packed and unpacked similarity estimates agree *exactly* (property
   test over graphs, fingerprint widths, and sample counts crossing word
   boundaries);
2. both engines converge to the brute-force Jaccard similarity of closed
   neighborhoods on small random graphs;
3. the packing layout, the round accounting, and the `acd/sketch` phase
   timing behave as documented.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.hashing.fingerprints as fingerprints_mod
from repro.config import ColoringConfig
from repro.decomposition.acd import decompose_distributed
from repro.decomposition.minhash import (
    SKETCH_ENGINES,
    SimilaritySketch,
    compute_sketches,
    estimate_edge_similarity,
)
from repro.hashing.fingerprints import (
    _padded_closed_adjacency,
    minwise_fingerprints,
    pack_fingerprints,
    packed_words_per_node,
)
from repro.graphs.generators import (
    complete_graph,
    gnp_graph,
    planted_acd_graph,
    ring_graph,
)
from repro.simulator.network import BroadcastNetwork


def sketch_pair(net, samples, bits, salt=0):
    """(packed estimate, unpacked estimate) for one workload."""
    ests = []
    for engine in SKETCH_ENGINES:
        fresh = BroadcastNetwork((net.n, net.undirected_edges()))
        sk = compute_sketches(fresh, samples, bits, salt=salt, engine=engine)
        ests.append(estimate_edge_similarity(fresh, sk))
    return ests


class TestEngineEquivalence:
    """Packed and unpacked estimators must agree bit for bit."""

    GRAPHS = {
        "gnp-dense": lambda: gnp_graph(80, 0.4, seed=3),
        "gnp-sparse": lambda: gnp_graph(120, 0.03, seed=4),
        "planted": lambda: planted_acd_graph(3, 24, 0.1, sparse_nodes=30, seed=5),
        "complete": lambda: complete_graph(25),
        "ring": lambda: ring_graph(40),
        "star": lambda: (60, [(0, i) for i in range(1, 60)]),
        "empty": lambda: (10, []),
    }

    @pytest.mark.parametrize("name", sorted(GRAPHS))
    @pytest.mark.parametrize("bits,samples", [(1, 64), (2, 256), (3, 40), (16, 7)])
    def test_bit_identical_estimates(self, name, bits, samples):
        net = BroadcastNetwork(self.GRAPHS[name]())
        packed, unpacked = sketch_pair(net, samples, bits, salt=2)
        assert np.array_equal(packed, unpacked)

    @given(
        n=st.integers(min_value=2, max_value=24),
        edges=st.lists(
            st.tuples(st.integers(0, 23), st.integers(0, 23)), max_size=60
        ),
        bits=st.sampled_from([1, 2, 3, 4, 5, 7, 8, 11, 16]),
        samples=st.integers(min_value=1, max_value=70),
    )
    @settings(max_examples=60, deadline=None)
    def test_bit_identical_property(self, n, edges, bits, samples):
        edges = [(u % n, v % n) for u, v in edges]
        net = BroadcastNetwork((n, edges))
        packed, unpacked = sketch_pair(net, samples, bits, salt=1)
        assert np.array_equal(packed, unpacked)

    def test_decomposition_identical_across_engines(self):
        g = planted_acd_graph(4, 30, 0.1, sparse_nodes=40, seed=9)
        labels = []
        for engine in SKETCH_ENGINES:
            cfg = ColoringConfig.practical(acd_sketch_engine=engine)
            net = BroadcastNetwork(g, bandwidth_bits=cfg.bandwidth_bits(g[0]))
            labels.append(decompose_distributed(net, cfg).labels)
        assert np.array_equal(labels[0], labels[1])

    def test_unknown_engine_rejected(self):
        net = BroadcastNetwork((4, [(0, 1)]))
        with pytest.raises(ValueError, match="sketch engine"):
            compute_sketches(net, 8, 2, salt=0, engine="simd")

    def test_padded_and_reduceat_paths_agree(self, monkeypatch):
        """The two gather strategies inside minwise_fingerprints are an
        internal choice; forcing the fallback must not change a bit."""
        g = gnp_graph(64, 0.2, seed=6)
        net = BroadcastNetwork(g)
        fast = minwise_fingerprints(net.indptr, net.indices, net.n, 50, 3, salt=4)
        monkeypatch.setattr(fingerprints_mod, "_PAD_ELEMENT_CAP", 0)
        slow = minwise_fingerprints(net.indptr, net.indices, net.n, 50, 3, salt=4)
        assert np.array_equal(fast, slow)

    def test_skewed_graph_uses_reduceat_fallback(self):
        # A star's Δ+1 = n padding would square the CSR size; the helper
        # must decline so the kernel takes the reduceat path.
        net = BroadcastNetwork((4000, [(0, i) for i in range(1, 4000)]))
        assert _padded_closed_adjacency(net.indptr, net.indices, net.n) is None


class TestJaccardConvergence:
    """Estimates from either engine converge to the brute-force Jaccard
    similarity of closed neighborhoods."""

    @staticmethod
    def brute_force(net):
        edges = net.undirected_edges()
        out = np.empty(edges.shape[0])
        closed = [
            set(net.neighbors(v).tolist()) | {v} for v in range(net.n)
        ]
        for i, (u, v) in enumerate(edges):
            a, b = closed[int(u)], closed[int(v)]
            out[i] = len(a & b) / len(a | b)
        return out

    @pytest.mark.parametrize("engine", SKETCH_ENGINES)
    @pytest.mark.parametrize("seed,p", [(0, 0.15), (1, 0.35)])
    def test_converges_on_gnp(self, engine, seed, p):
        net = BroadcastNetwork(gnp_graph(60, p, seed=seed))
        sk = compute_sketches(net, 2048, 4, salt=seed, engine=engine)
        est = estimate_edge_similarity(net, sk)
        true = self.brute_force(net)
        err = np.abs(est - true)
        assert err.max() < 0.12
        assert err.mean() < 0.03

    @pytest.mark.parametrize("engine", SKETCH_ENGINES)
    def test_clique_estimates_one(self, engine):
        net = BroadcastNetwork(complete_graph(16))
        sk = compute_sketches(net, 512, 2, salt=3, engine=engine)
        est = estimate_edge_similarity(net, sk)
        assert est.min() > 0.95


class TestPacking:
    def test_layout_field_positions(self):
        # 3 samples, b=4 → 16 fields/word: sample j at bit offset 4j.
        fps = np.array([[5], [9], [3]], dtype=np.uint16)
        packed = pack_fingerprints(fps, 4)
        assert packed.shape == (1, 1)
        assert int(packed[0, 0]) == 5 | (9 << 4) | (3 << 8)

    def test_word_boundary(self):
        # b=2 → 32 fields/word; 33 samples need 2 words, tail zero-padded.
        fps = np.full((33, 2), 3, dtype=np.uint16)
        packed = pack_fingerprints(fps, 2)
        assert packed.shape == (2, 2)
        assert int(packed[0, 0]) == (1 << 64) - 1
        assert int(packed[0, 1]) == 3  # single sample in field 0
        assert packed_words_per_node(33, 2) == 2

    def test_node_major_rows(self):
        fps = np.array([[1, 2], [3, 0]], dtype=np.uint16)
        packed = pack_fingerprints(fps, 2)
        assert packed.shape == (2, 1)
        assert int(packed[0, 0]) == 1 | (3 << 2)
        assert int(packed[1, 0]) == 2

    def test_rejects_overwide_values(self):
        fps = np.array([[4]], dtype=np.uint16)
        with pytest.raises(ValueError, match="exceeds"):
            pack_fingerprints(fps, 2)

    def test_lazy_packing_cached(self):
        fps = np.zeros((8, 3), dtype=np.uint16)
        sk = SimilaritySketch(
            fingerprints=fps, bits_per_sample=2, samples=8, rounds_used=0
        )
        assert sk.packed is sk.packed

    @given(
        n=st.integers(1, 6),
        samples=st.integers(1, 40),
        bits=st.sampled_from([1, 2, 3, 5, 8, 13, 16]),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_pack_roundtrip(self, n, samples, bits, seed):
        rng = np.random.default_rng(seed)
        fps = rng.integers(0, 1 << bits, size=(samples, n), dtype=np.uint16)
        packed = pack_fingerprints(fps, bits)
        fields = 64 // bits
        mask = np.uint64((1 << bits) - 1)
        for j in range(samples):
            w, f = divmod(j, fields)
            got = (packed[:, w] >> np.uint64(f * bits)) & mask
            assert np.array_equal(got.astype(np.uint16), fps[j])


class TestAccountingAndTiming:
    def test_closed_form_matches_per_round_loop(self):
        # 100 samples, 48-bit budget, b=2 → 24/round → 4 full + 1 partial.
        net = BroadcastNetwork(ring_graph(12), bandwidth_bits=48)
        compute_sketches(net, 100, 2, salt=0)
        stats = net.metrics.phases["acd/sketch"]
        assert stats.rounds == 5
        assert stats.messages == 5 * 12
        assert stats.total_bits == 12 * 100 * 2  # every sample shipped once
        assert stats.max_message_bits == 48

    def test_exact_multiple_no_partial_round(self):
        net = BroadcastNetwork(ring_graph(8), bandwidth_bits=32)
        sk = compute_sketches(net, 64, 2, salt=0)
        assert sk.rounds_used == 4
        assert net.metrics.phases["acd/sketch"].rounds == 4

    def test_sketch_phase_seconds_recorded(self):
        net = BroadcastNetwork(gnp_graph(80, 0.2, seed=0))
        net.metrics.begin_phase("setup")
        sk = compute_sketches(net, 64, 2, salt=0)
        estimate_edge_similarity(net, sk)
        net.metrics.stop_timer()
        assert net.metrics.phase_seconds["acd/sketch"] > 0
        # the nested timing was carved out of "setup", not double-counted
        assert "setup" in net.metrics.phase_seconds
