"""Zero-dependency metrics registry: counters, gauges, log2 histograms.

All instruments are keyed by ``(name, sorted(labels))`` and rendered in
the Prometheus text exposition format (version 0.0.4) — plain stdlib,
no client library.  Histograms use fixed log2 buckets (bucket *i*
covers values ``<= 2**i``) so bucket boundaries are exact, cheap to
compute, and identical across processes; latencies are observed in
microseconds by convention.

Thread safety: each instrument guards its mutable state with the
registry-wide lock; the hot increment path is one lock acquire + int
add.  Worker registries can be merged into the driver's with
:meth:`MetricsRegistry.absorb`.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NUM_BUCKETS",
    "bucket_index",
    "bucket_bounds",
]

#: Number of log2 histogram buckets.  Bucket i covers values <= 2**i
#: for i < NUM_BUCKETS-1; the last bucket is +Inf.  2**30 µs ≈ 18 min,
#: ample headroom for any latency this repo measures.
NUM_BUCKETS = 32


def bucket_index(value: float) -> int:
    """Index of the log2 bucket covering ``value``.

    ``value <= 1`` (including 0 and negatives) lands in bucket 0;
    otherwise the smallest i with ``value <= 2**i``, clamped to the
    +Inf bucket.
    """
    if value <= 1.0:
        return 0
    v = value
    i = 0
    bound = 1.0
    while bound < v and i < NUM_BUCKETS - 1:
        bound *= 2.0
        i += 1
    return i


def bucket_bounds() -> list[float]:
    """Upper bounds of every bucket; the last is ``float('inf')``."""
    bounds = [float(2**i) for i in range(NUM_BUCKETS - 1)]
    bounds.append(float("inf"))
    return bounds


def _label_key(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_labels(key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in key)
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("value", "_lock")

    def __init__(self, lock: threading.Lock) -> None:
        self.value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        with self._lock:
            self.value += amount


class Gauge:
    """Instantaneous value; also tracks its high-water mark."""

    __slots__ = ("value", "high_water", "_lock")

    def __init__(self, lock: threading.Lock) -> None:
        self.value = 0.0
        self.high_water = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        """Set the gauge, updating the high-water mark."""
        with self._lock:
            self.value = value
            if value > self.high_water:
                self.high_water = value

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (may be negative) to the gauge."""
        with self._lock:
            self.value += amount
            if self.value > self.high_water:
                self.high_water = self.value


class Histogram:
    """Fixed log2-bucket histogram with sum and count."""

    __slots__ = ("buckets", "total", "count", "_lock")

    def __init__(self, lock: threading.Lock) -> None:
        self.buckets = [0] * NUM_BUCKETS
        self.total = 0.0
        self.count = 0
        self._lock = lock

    def observe(self, value: float) -> None:
        """Record one observation."""
        idx = bucket_index(value)
        with self._lock:
            self.buckets[idx] += 1
            self.total += value
            self.count += 1


class MetricsRegistry:
    """Collection of named, labelled instruments.

    Instruments are created lazily on first access; accessing the same
    ``(name, labels)`` twice returns the same instrument.  A name is
    bound to one instrument kind — mixing kinds raises ``TypeError``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # name -> (kind, {label_key: instrument})
        self._families: dict[str, tuple[str, dict]] = {}

    def _instrument(self, kind: str, name: str, labels: dict[str, Any]):
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = (kind, {})
                self._families[name] = family
            elif family[0] != kind:
                raise TypeError(
                    f"metric {name!r} is a {family[0]}, not a {kind}"
                )
            series = family[1]
            inst = series.get(key)
            if inst is None:
                cls = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}[kind]
                inst = cls(self._lock)
                series[key] = inst
            return inst

    def counter(self, name: str, **labels: Any) -> Counter:
        """Get or create the counter ``name{labels}``."""
        return self._instrument("counter", name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """Get or create the gauge ``name{labels}``."""
        return self._instrument("gauge", name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        """Get or create the histogram ``name{labels}``."""
        return self._instrument("histogram", name, labels)

    def absorb(self, other: "MetricsRegistry") -> None:
        """Merge another registry's instruments into this one.

        Counters and histograms add; gauges take the other's value
        (last-writer-wins, high-water maxed).  Used to fold worker
        registries into the driver's.
        """
        with other._lock:
            snapshot = {
                name: (kind, dict(series))
                for name, (kind, series) in other._families.items()
            }
        for name, (kind, series) in snapshot.items():
            for key, inst in series.items():
                labels = dict(key)
                if kind == "counter":
                    self.counter(name, **labels).inc(inst.value)
                elif kind == "gauge":
                    mine = self.gauge(name, **labels)
                    mine.set(inst.value)
                    with self._lock:
                        if inst.high_water > mine.high_water:
                            mine.high_water = inst.high_water
                else:
                    mine = self.histogram(name, **labels)
                    with self._lock:
                        for i, c in enumerate(inst.buckets):
                            mine.buckets[i] += c
                        mine.total += inst.total
                        mine.count += inst.count

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict view of every instrument (for JSON/stats payloads)."""
        out: dict[str, Any] = {}
        with self._lock:
            for name, (kind, series) in sorted(self._families.items()):
                rows = []
                for key, inst in sorted(series.items()):
                    labels = dict(key)
                    if kind == "counter":
                        rows.append({"labels": labels, "value": inst.value})
                    elif kind == "gauge":
                        rows.append(
                            {
                                "labels": labels,
                                "value": inst.value,
                                "high_water": inst.high_water,
                            }
                        )
                    else:
                        rows.append(
                            {
                                "labels": labels,
                                "count": inst.count,
                                "sum": inst.total,
                                "buckets": list(inst.buckets),
                            }
                        )
                out[name] = {"kind": kind, "series": rows}
        return out

    def render(self) -> str:
        """Prometheus text exposition (format version 0.0.4)."""
        lines: list[str] = []
        with self._lock:
            families = {
                name: (kind, dict(series))
                for name, (kind, series) in sorted(self._families.items())
            }
        bounds = bucket_bounds()
        for name, (kind, series) in families.items():
            lines.append(f"# TYPE {name} {kind}")
            for key, inst in sorted(series.items()):
                labelstr = _render_labels(key)
                if kind == "counter":
                    lines.append(f"{name}{labelstr} {_fmt(inst.value)}")
                elif kind == "gauge":
                    lines.append(f"{name}{labelstr} {_fmt(inst.value)}")
                else:
                    cumulative = 0
                    for i, bound in enumerate(bounds):
                        cumulative += inst.buckets[i]
                        le = _render_labels(key + (("le", _fmt(bound)),))
                        lines.append(f"{name}_bucket{le} {cumulative}")
                    lines.append(
                        f"{name}_sum{labelstr} {_fmt(inst.total)}"
                    )
                    lines.append(
                        f"{name}_count{labelstr} {inst.count}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")
