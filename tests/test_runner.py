"""Tests for the parallel experiment runner (repro.runner).

The three properties the subsystem promises (DESIGN.md, "Experiment
runner"): determinism across worker counts, resume from a partial store,
and failure isolation (errors/timeouts become records, not crashes).
"""

from __future__ import annotations

import json

import pytest

from repro.runner import (
    ParallelRunner,
    ResultStore,
    TrialResult,
    TrialSpec,
    expand_matrix,
    fit_rounds,
    load_matrix,
    mean_by,
    run_trial,
    series,
    spec_key,
)

TINY_MATRIX = {
    "family": "gnp",
    "n": [96, 128],
    "avg_degree": 10,
    "seeds": 2,
    "algorithm": ["broadcast", "johansson"],
}


def tiny_specs() -> list[TrialSpec]:
    return expand_matrix(TINY_MATRIX)


def payload_bytes(report) -> bytes:
    return json.dumps(report.payloads(), sort_keys=True).encode()


class TestSpec:
    def test_key_is_stable_and_content_addressed(self):
        a = TrialSpec(family="gnp", n=100, seed=1)
        b = TrialSpec(family="gnp", n=100, seed=1)
        c = TrialSpec(family="gnp", n=100, seed=2)
        assert a.key == b.key == spec_key(a)
        assert a.key != c.key

    def test_overrides_are_canonicalised(self):
        a = TrialSpec(overrides=(("eps", 0.2), ("beta", 3.0)))
        b = TrialSpec(overrides=(("beta", 3.0), ("eps", 0.2)))
        assert a.key == b.key

    def test_round_trips_through_dict(self):
        spec = TrialSpec(family="blobs", n=64, avg_degree=16.0, seed=7,
                         algorithm="luby", overrides=(("eps", 0.2),))
        assert TrialSpec.from_dict(spec.as_dict()) == spec

    def test_rejects_unknown_algorithm_and_family(self):
        with pytest.raises(ValueError):
            TrialSpec(algorithm="magic")
        with pytest.raises(ValueError):
            TrialSpec(family="nope")

    def test_graph_seed_shared_across_algorithms(self):
        ours = TrialSpec(n=100, seed=3, algorithm="broadcast")
        base = TrialSpec(n=100, seed=3, algorithm="johansson")
        assert ours.graph_seed() == base.graph_seed()
        assert ours.algo_seed() != base.algo_seed()

    def test_expand_matrix_cross_product(self):
        specs = tiny_specs()
        assert len(specs) == 2 * 2 * 2  # n × seeds × algorithms
        assert len({s.key for s in specs}) == len(specs)

    def test_expand_matrix_rejects_unknown_fields(self):
        with pytest.raises(ValueError):
            expand_matrix({"family": "gnp", "banana": 1})
        with pytest.raises(ValueError):
            expand_matrix({"seed": [1], "seeds": 2})


class TestMatrixFiles:
    def test_toml_matrix(self, tmp_path):
        f = tmp_path / "m.toml"
        f.write_text(
            '[matrix]\nfamily = "gnp"\nn = [64, 96]\nseeds = 2\n'
            'algorithm = ["broadcast", "johansson"]\n'
        )
        specs = load_matrix(f)
        assert len(specs) == 8

    def test_json_matrix_with_explicit_trials(self, tmp_path):
        f = tmp_path / "m.json"
        f.write_text(json.dumps({
            "matrix": {"family": "gnp", "n": 64, "seeds": 1},
            "trial": [{"family": "blobs", "n": 128, "algorithm": "luby"}],
        }))
        specs = load_matrix(f)
        assert len(specs) == 2
        assert specs[1].family == "blobs" and specs[1].algorithm == "luby"

    def test_empty_file_rejected(self, tmp_path):
        f = tmp_path / "m.json"
        f.write_text("{}")
        with pytest.raises(ValueError):
            load_matrix(f)

    def test_repo_spec_files_load(self):
        from pathlib import Path

        specs_dir = Path(__file__).resolve().parent.parent / "benchmarks" / "specs"
        for spec_file in sorted(specs_dir.glob("*.toml")):
            assert load_matrix(spec_file), spec_file


class TestRunTrial:
    def test_broadcast_payload(self):
        res = run_trial(TrialSpec(family="gnp", n=80, avg_degree=8, seed=1))
        assert res.ok
        assert res.payload["proper"] and res.payload["complete"]
        assert res.payload["rounds"] >= 0
        assert res.payload["n"] == 80

    @pytest.mark.parametrize("algo", ["johansson", "luby", "greedy"])
    def test_baseline_payloads(self, algo):
        res = run_trial(TrialSpec(family="gnp", n=80, avg_degree=8,
                                  seed=1, algorithm=algo))
        assert res.ok and res.payload["proper"]
        assert res.payload["num_colors_used"] >= 1

    def test_pure_function_of_spec(self):
        spec = TrialSpec(family="blobs", n=96, avg_degree=16, seed=5)
        assert run_trial(spec).payload == run_trial(spec).payload

    def test_timeout_becomes_record(self):
        spec = TrialSpec(family="gnp", n=4096, avg_degree=32, seed=0)
        res = run_trial(spec, timeout_s=0.001)
        assert res.status == "timeout"
        assert not res.ok and res.payload == {}


class TestStore:
    def test_add_and_lookup(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        spec = TrialSpec(family="gnp", n=96, avg_degree=10, seed=0)
        result = run_trial(spec)
        store.add(result)
        reloaded = ResultStore(tmp_path / "s.jsonl")
        hit = reloaded.lookup(spec)
        assert hit is not None and hit.cached
        assert hit.payload == result.payload

    def test_tolerates_truncated_tail(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.add(run_trial(TrialSpec(family="gnp", n=96, avg_degree=10, seed=0)))
        with path.open("a") as fh:
            fh.write('{"key": "deadbeef", "spec": {"fam')  # simulated crash
        assert len(ResultStore(path)) == 1

    def test_no_resume_truncates(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.add(run_trial(TrialSpec(family="gnp", n=96, avg_degree=10, seed=0)))
        assert len(ResultStore(path, resume=False)) == 0
        assert path.read_text() == ""


class TestParallelRunner:
    def test_workers_4_byte_identical_to_workers_1(self):
        specs = tiny_specs()
        serial = ParallelRunner(workers=1).run(specs)
        parallel = ParallelRunner(workers=4).run(specs)
        assert payload_bytes(serial) == payload_bytes(parallel)
        assert [r.key for r in serial.results] == [r.key for r in parallel.results]

    def test_duplicate_specs_run_once(self):
        specs = tiny_specs()
        report = ParallelRunner(workers=1).run(specs + specs)
        assert len(report.results) == len(specs)

    def test_store_caches_everything_on_second_run(self, tmp_path):
        specs = tiny_specs()
        path = tmp_path / "s.jsonl"
        first = ParallelRunner(workers=2, store=ResultStore(path)).run(specs)
        assert first.summary()["computed"] == len(specs)
        lines_after_first = path.read_text().count("\n")
        second = ParallelRunner(workers=2, store=ResultStore(path)).run(specs)
        assert second.summary() == {
            "trials": len(specs), "ok": len(specs), "failed": 0,
            "cached": len(specs), "computed": 0,
        }
        assert path.read_text().count("\n") == lines_after_first  # nothing re-written
        assert payload_bytes(first) == payload_bytes(second)

    def test_same_store_object_reused_in_process(self, tmp_path):
        specs = tiny_specs()
        store = ResultStore(tmp_path / "s.jsonl")  # one live object, two runs
        first = ParallelRunner(workers=1, store=store).run(specs)
        second = ParallelRunner(workers=1, store=store).run(specs)
        assert first.computed_count == len(specs) and first.cached_count == 0
        assert second.cached_count == len(specs) and second.computed_count == 0
        assert payload_bytes(first) == payload_bytes(second)

    def test_resume_from_partial_store(self, tmp_path):
        specs = tiny_specs()
        path = tmp_path / "s.jsonl"
        half = specs[: len(specs) // 2]
        ParallelRunner(workers=1, store=ResultStore(path)).run(half)
        resumed = ParallelRunner(workers=2, store=ResultStore(path)).run(specs)
        assert resumed.cached_count == len(half)
        assert resumed.computed_count == len(specs) - len(half)
        fresh = ParallelRunner(workers=1).run(specs)
        assert payload_bytes(resumed) == payload_bytes(fresh)

    def test_failures_are_isolated_and_not_stored(self, tmp_path, monkeypatch):
        import repro.runner.execute as execute

        def boom(spec):
            raise RuntimeError("kaboom")

        monkeypatch.setattr(execute, "_measure", boom)
        path = tmp_path / "s.jsonl"
        specs = tiny_specs()[:2]
        report = ParallelRunner(workers=1, store=ResultStore(path)).run(specs)
        assert len(report.failed) == 2
        assert all(r.status == "error" and "kaboom" in r.error for r in report.failed)
        assert len(ResultStore(path)) == 0  # failures retry on resume

    def test_progress_callback_sees_every_trial(self):
        seen = []
        runner = ParallelRunner(
            workers=1, progress=lambda done, total, r: seen.append((done, total))
        )
        specs = tiny_specs()
        runner.run(specs)
        assert seen == [(i + 1, len(specs)) for i in range(len(specs))]


class TestAggregate:
    @pytest.fixture(scope="class")
    def payloads(self):
        return ParallelRunner(workers=1).run(tiny_specs()).payloads()

    def test_mean_by_groups_sorted(self, payloads):
        means = mean_by(payloads, ["algorithm", "n"])
        # sorted by algorithm name, then *numerically* by n (96 before 128)
        assert list(means) == [
            ("broadcast", 96), ("broadcast", 128),
            ("johansson", 96), ("johansson", 128),
        ]

    def test_series_filters_and_sorts(self, payloads):
        xs, ys = series(payloads, where={"algorithm": "johansson"})
        assert xs == [96, 128]
        assert all(y >= 0 for y in ys)

    def test_fit_rounds(self, payloads):
        fit = fit_rounds(payloads, where={"algorithm": "broadcast"})
        assert fit is not None and fit.best in (
            "constant", "log* n", "log log n", "log^3 log n", "log n"
        )
        assert fit_rounds([], where=None) is None


class TestResultRecord:
    def test_record_round_trip_drops_runtime_flags(self):
        result = run_trial(TrialSpec(family="gnp", n=96, avg_degree=10, seed=0))
        result.cached = True
        rec = result.record()
        assert "cached" not in rec
        back = TrialResult.from_record(rec)
        assert not back.cached
        assert back.payload == result.payload and back.spec == result.spec
