"""E18 — telemetry-plane overhead: disarmed hooks and traced runs.

Two claims ``repro.obs`` makes (DESIGN.md §10):

1. **Disarmed is free.**  The ``span()``/``count()``/``observe()``
   hooks sit on every kernel phase, every apply, every reconcile sweep;
   with the plane disarmed each must cost one global load + ``is
   None`` test.  We measure ns/call in a tight loop and gate it at a
   generous bound (same methodology and ceiling as ``bench_faults``).
2. **Armed tracing is cheap and changes nothing.**  A traced sharded
   run must produce byte-identical colors to the untraced run, and its
   wall-clock overhead is the tracked trajectory — if instrumentation
   creep ever makes tracing expensive, this file is where it shows.

Tracked measurements (→ ``BENCH_obs.json`` at the repo root):

* disarmed ``span()`` / ``count()`` / ``observe()`` ns/call;
* untraced vs traced sharded-run seconds, overhead ratio, span count,
  and the colors-equal verdict.

Quick mode: ``REPRO_BENCH_OBS_N`` shrinks the graph for CI smoke runs.
"""

from __future__ import annotations

import dataclasses
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.config import ColoringConfig
from repro.graphs.families import make_graph
from repro.runner.benchtrack import append_entry
from repro.shard.engine import ShardedColoring

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY = REPO_ROOT / "BENCH_obs.json"

# Generous CI-safe ceiling; the observed cost is tens of ns.
DISARMED_NS_BOUND = 5_000.0


def _disarmed_ns_per_call(hook, calls: int = 200_000) -> float:
    """Median-of-3 timing of one disarmed hook, called with the
    realistic argument shape (kwargs included — building the dict is
    part of the price a site pays)."""
    assert not obs.enabled(), "the obs plane is armed; benchmark invalid"
    samples = []
    for _ in range(3):
        t0 = time.perf_counter()
        for i in range(calls):
            hook()
        samples.append((time.perf_counter() - t0) / calls * 1e9)
    samples.sort()
    return samples[1]


def _sharded_colors(cfg: ColoringConfig, graph) -> tuple[np.ndarray, float]:
    t0 = time.perf_counter()
    result = ShardedColoring(graph, cfg, workers=2).run()
    seconds = time.perf_counter() - t0
    assert result.proper and result.complete
    return result.colors, seconds


@pytest.mark.benchmark(group="E18-obs")
def test_e18_obs_overhead_tracked():
    """The tracked trajectory entry: hook cost + tracing overhead.

    Gates: each disarmed hook under :data:`DISARMED_NS_BOUND` ns, and
    byte-identical colors with tracing on vs off.
    """
    n = int(os.environ.get("REPRO_BENCH_OBS_N", "4000"))

    obs.disable()
    span_ns = _disarmed_ns_per_call(lambda: obs.span("bench.site", shard=0))
    count_ns = _disarmed_ns_per_call(lambda: obs.count("bench_total", kind="x"))
    observe_ns = _disarmed_ns_per_call(lambda: obs.observe("bench_us", 12.5))
    for name, ns in (("span", span_ns), ("count", count_ns),
                     ("observe", observe_ns)):
        assert ns < DISARMED_NS_BOUND, (
            f"disarmed {name}() costs {ns:.0f} ns/call "
            f"(bound {DISARMED_NS_BOUND:.0f})"
        )

    graph = make_graph("geometric", n, 12.0, 7)
    base_cfg = ColoringConfig.practical(seed=7, shard_k=4)

    obs.disable()
    colors_off, seconds_off = _sharded_colors(base_cfg, graph)
    obs.disable()
    colors_on, seconds_on = _sharded_colors(
        dataclasses.replace(base_cfg, obs_trace=True), graph
    )
    spans = obs.drain_spans()
    obs.disable()

    colors_equal = bool(np.array_equal(colors_off, colors_on))
    assert colors_equal, "tracing changed the coloring"
    assert spans, "traced run produced no spans"
    overhead = seconds_on / max(seconds_off, 1e-9)

    entry = {
        "workload": {"family": "geometric", "n": n, "k": 4, "workers": 2,
                     "seed": 7},
        "disarmed_span_ns": round(span_ns, 1),
        "disarmed_count_ns": round(count_ns, 1),
        "disarmed_observe_ns": round(observe_ns, 1),
        "untraced_seconds": round(seconds_off, 4),
        "traced_seconds": round(seconds_on, 4),
        "tracing_overhead_ratio": round(overhead, 3),
        "spans_recorded": len(spans),
        "colors_equal": colors_equal,
    }
    append_entry(TRAJECTORY, entry, label="obs-overhead")

    print("\nE18 telemetry-plane overhead")
    print(f"  disarmed span   : {span_ns:8.1f} ns/call")
    print(f"  disarmed count  : {count_ns:8.1f} ns/call")
    print(f"  disarmed observe: {observe_ns:8.1f} ns/call")
    print(f"  untraced run    : {seconds_off:8.4f} s")
    print(f"  traced run      : {seconds_on:8.4f} s  (×{overhead:.2f}, "
          f"{len(spans)} spans)")
