"""Sparse-dense decomposition (§2.1 of the paper).

* :mod:`repro.decomposition.sparsity` — exact sparsity ζ_v (Definition 2.1)
  via blocked triangle counting.
* :mod:`repro.decomposition.minhash` — BCONGEST similarity sketches
  (b-bit minwise hashing with round/bit accounting).
* :mod:`repro.decomposition.acd` — the ε-almost-clique decomposition
  (Definition 2.2): a centralized exact reference and the distributed
  broadcast protocol in the style of [FGH+23] (Lemma 2.5).
* :mod:`repro.decomposition.validation` — property checker for Def. 2.2
  plus the Lemma 2.4 audit.
"""

from repro.decomposition.sparsity import local_sparsity, triangle_counts
from repro.decomposition.acd import (
    AlmostCliqueDecomposition,
    decompose_exact,
    decompose_distributed,
)
from repro.decomposition.validation import validate_decomposition, DecompositionReport

__all__ = [
    "local_sparsity",
    "triangle_counts",
    "AlmostCliqueDecomposition",
    "decompose_exact",
    "decompose_distributed",
    "validate_decomposition",
    "DecompositionReport",
]
