"""Bit-size codecs for BCONGEST message accounting.

Every broadcast in the simulator carries an explicit size in bits.  The
model only allows ``O(log n)``-bit messages, so the library computes
message sizes from first principles with the codecs here: an identifier
out of ``n`` costs ``ceil(log2 n)`` bits, a color out of ``Δ+1`` costs
``ceil(log2 (Δ+1))`` bits, a bitmap over a range of length ``L`` costs
``L`` bits, and so on.  The paper's protocols are all phrased in terms of
these primitives (e.g. the ``C log n``-bit subpalette bitmaps of
Algorithm 2, the ``O(log log n)``-bit labels of Algorithm 3).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.util.mathx import ceil_log2

__all__ = [
    "bits_for_int",
    "bits_for_color",
    "bits_for_id",
    "bits_for_count",
    "bitmap_bits",
    "pack_bitmap",
    "unpack_bitmap",
    "bits_for_color_list",
    "bits_for_label_list",
]


def bits_for_int(num_values: int) -> int:
    """Bits to encode one value from a universe of ``num_values`` values.

    At least 1 bit even for degenerate universes, so that "a message was
    sent" is never free.
    """
    return max(1, ceil_log2(max(num_values, 1)))


def bits_for_color(delta: int) -> int:
    """Bits for one color in the (Δ+1)-coloring palette ``[Δ+1]``, with one
    extra codepoint reserved for ``⊥`` (uncolored / no proposal)."""
    return bits_for_int(delta + 2)


def bits_for_id(n: int) -> int:
    """Bits for one node identifier out of ``n`` nodes."""
    return bits_for_int(n)


def bits_for_count(max_count: int) -> int:
    """Bits for an integer counter bounded by ``max_count``."""
    return bits_for_int(max_count + 1)


def bitmap_bits(length: int) -> int:
    """A bitmap over ``length`` positions costs ``length`` bits."""
    return max(1, int(length))


def bits_for_color_list(num_colors: int, delta: int) -> int:
    """Bits for an explicit list of ``num_colors`` colors."""
    return max(1, num_colors) * bits_for_color(delta)


def bits_for_label_list(num_labels: int, label_universe: int) -> int:
    """Bits for ``num_labels`` labels drawn from ``[label_universe]``.

    This is the cost model for Algorithm 3 (Relabel), where labels live in
    ``[|S|^2 log n]`` and hence cost ``O(log log n)`` bits each when
    ``|S| = poly(log n)``.
    """
    return max(1, num_labels) * bits_for_int(label_universe)


def pack_bitmap(positions: Iterable[int], length: int) -> np.ndarray:
    """Build a boolean bitmap of ``length`` marking ``positions``.

    Raises ``ValueError`` for out-of-range positions: a protocol that tries
    to address outside its announced range is a bug, not a runtime choice.
    """
    bitmap = np.zeros(length, dtype=bool)
    for pos in positions:
        if not 0 <= pos < length:
            raise ValueError(f"bitmap position {pos} out of range [0, {length})")
        bitmap[pos] = True
    return bitmap


def unpack_bitmap(bitmap: Sequence[bool] | np.ndarray) -> list[int]:
    """Inverse of :func:`pack_bitmap`: the sorted set positions."""
    arr = np.asarray(bitmap, dtype=bool)
    return [int(i) for i in np.flatnonzero(arr)]
