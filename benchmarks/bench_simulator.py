"""E13 — simulator throughput (engineering baseline, not a paper claim).

Wall-clock benchmarks of the substrate primitives so regressions in the
simulator itself are visible: CSR construction, vectorized collectives,
a TryColor round, and a full pipeline run per graph family.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ColoringConfig
from repro.core.algorithm import BroadcastColoring
from repro.core.state import ColoringState
from repro.core.trycolor import palette_sampler, try_color_round
from repro.graphs.generators import clique_blob_graph, gnp_graph
from repro.simulator.network import BroadcastNetwork
from repro.simulator.rng import SeedSequencer


@pytest.mark.benchmark(group="E13-simulator")
def test_e13_network_construction(benchmark):
    g = gnp_graph(20_000, 0.002, seed=1)
    net = benchmark(lambda: BroadcastNetwork(g))
    assert net.n == 20_000


@pytest.mark.benchmark(group="E13-simulator")
def test_e13_neighbor_sum(benchmark):
    net = BroadcastNetwork(gnp_graph(20_000, 0.002, seed=2))
    vals = np.arange(net.n, dtype=np.int64)
    out = benchmark(lambda: net.neighbor_sum(vals))
    assert out.shape == (net.n,)


@pytest.mark.benchmark(group="E13-simulator")
def test_e13_try_color_round(benchmark):
    net = BroadcastNetwork(gnp_graph(10_000, 0.004, seed=3))

    def one_round():
        state = ColoringState(net)
        return try_color_round(
            state, state.uncolored_nodes(), palette_sampler(state), SeedSequencer(1), "b", 0
        )

    colored = benchmark(one_round)
    assert colored > 0


@pytest.mark.benchmark(group="E13-simulator")
def test_e13_full_pipeline_gnp(benchmark):
    cfg = ColoringConfig.practical()
    g = gnp_graph(5_000, 0.01, seed=4)
    res = benchmark.pedantic(
        lambda: BroadcastColoring(g, cfg).run(), rounds=1, iterations=1
    )
    assert res.proper and res.complete


@pytest.mark.benchmark(group="E13-simulator")
def test_e13_full_pipeline_blobs(benchmark):
    cfg = ColoringConfig.practical()
    g = clique_blob_graph(32, 64, 20, 10, seed=5)
    res = benchmark.pedantic(
        lambda: BroadcastColoring(g, cfg).run(), rounds=1, iterations=1
    )
    assert res.proper and res.complete
