"""Multi-shard partitioned coloring: color shard interiors in parallel,
reconcile the cut (DESIGN.md §7).

The control flow of :class:`ShardedColoring.run`:

1. **partition** — split [n] into k shards
   (:func:`repro.shard.partition.partition_nodes`).  Under the default
   ``shard_transport="shm"`` the driver then packs the global CSR, the
   partition index, the cut plan and the colors array into one
   shared-memory arena (:class:`repro.shard.shm.ShmArena`); workers
   attach zero-copy and rebuild their own
   :class:`~repro.simulator.network.ShardView` from the shared buffers
   (:func:`~repro.simulator.network.shard_view_from_csr`) — the pool
   pipe carries a descriptor of a few hundred bytes, never O(n + m)
   arrays.  ``shard_transport="pickle"`` keeps the legacy path: views
   extracted in the driver (batched —
   :func:`repro.shard.partition.build_shard_views`) and pickled to the
   workers.
2. **interior** — each shard's interior subgraph is colored by the full
   existing pipeline (:class:`BroadcastColoring`), one worker per shard on
   a ``ProcessPoolExecutor`` (``workers=1`` runs inline — same results,
   the determinism reference).  No worker ever sees edges beyond its view.
   An interior coloring uses ≤ Δ_i+1 ≤ Δ+1 colors, so the merged global
   coloring is within budget and proper on every *interior* edge by
   construction — only cut edges can be monochromatic.
3. **merge** — interior colors land in the global array (shm workers
   write their disjoint interior slots directly; pickled workers return
   them over the pipe); the per-shard :class:`RoundMetrics` fold into
   the driver's account by parallel composition (max rounds, summed
   traffic — :meth:`RoundMetrics.absorb_parallel`).
4. **reconcile** — shard-locally, via the boundary-exchange protocol
   (:mod:`repro.shard.boundary`): each sweep, every shard with work
   detects monochromatic edges among *its own incident cut edges*,
   yields victims by a symmetric rule, and repairs them against the
   fixed ghost fringe on a halo-sized scratch network; the driver only
   merges the returned ``(node, color)`` deltas and re-checks the cut
   for convergence.  k=1 keeps the original central loop, bit for bit —
   that is the identity gate against the unsharded engine.

The proper-coloring invariant is thus re-established *by protocol*: no
single worker ever holds the whole graph, and the driver only ever
touches the cut.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.config import ColoringConfig
from repro.core.algorithm import BroadcastColoring
from repro.dynamic.engine import (
    conflict_repair,
    conflict_victims,
    monochromatic_edges,
)
from repro.faults import plan as faults
from repro.shard.boundary import CutPlan, repair_boundary
from repro.shard.partition import (
    Partition,
    build_shard_views,
    partition_nodes,
)
from repro.shard.shm import ArenaDescriptor, ShmArena
from repro.simulator.metrics import RoundMetrics
from repro.simulator.network import (
    BroadcastNetwork,
    ShardView,
    shard_view_from_csr,
)
from repro.simulator.rng import SeedSequencer
from repro.util.bitio import bits_for_color

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-unix
    _resource = None


def _peak_rss_mb() -> float:
    """This process's lifetime peak RSS in MiB (0.0 where unavailable).
    In a pool worker this bounds the transport claim: under shm it scales
    with interior + ghost pages actually touched, not with n."""
    if _resource is None:  # pragma: no cover
        return 0.0
    kb = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    return round(kb / 1024.0, 3)

TRANSPORTS = ("shm", "pickle")

__all__ = [
    "ShardedColoring",
    "ShardReport",
    "ShardedResult",
    "ShardWorkerError",
    "TRANSPORTS",
]


class ShardWorkerError(RuntimeError):
    """A shard's interior coloring failed on every allowed attempt and
    graceful degradation is disabled (``shard_inline_fallback=False``):
    the supervisor re-raises instead of silently absorbing the loss.
    Carries the failing shard id and the last underlying failure."""

    def __init__(self, shard: int, attempts: int, cause: str) -> None:
        super().__init__(
            f"shard {shard} failed after {attempts} attempt(s): {cause}"
        )
        self.shard = shard
        self.attempts = attempts
        self.cause = cause


@dataclass
class ShardReport:
    """What one shard worker produced (cost + quality, per shard)."""

    shard: int
    n_interior: int
    m_interior: int
    cut_edges: int
    delta_interior: int
    colors_used: int
    rounds: int
    total_bits: int
    proper: bool
    complete: bool
    seconds: float
    cpu_seconds: float = 0.0
    """CPU time this shard's interior coloring consumed in its process
    (``time.process_time``).  On a host with fewer cores than workers the
    wall ``seconds`` mostly measures time-sharing waits; ``cpu_seconds``
    is what one dedicated machine would pay, and is what the benchmark's
    critical-path speedup is computed from."""
    peak_rss_mb: float = 0.0
    """Worker-process lifetime peak RSS (MiB) at the time the shard
    finished — the footprint evidence for the shm transport.  Like
    ``seconds`` it is an environment measurement, not part of the
    deterministic result."""
    reconcile_sweeps: list = field(default_factory=list)
    """Per-sweep reconciliation rows for this shard (k>1 boundary
    exchange only; the k=1 central loop has no per-shard sweeps).  Each
    row is ``{"sweep", "victims", "halo_nodes", "repair_rounds",
    "seconds"}`` — previously only the totals survived the merge, so a
    slow sweep was invisible.  Surfaced by ``repro shard --verbose``."""

    def as_dict(self) -> dict:
        """JSON-safe flat dict of this shard's interior account (one row
        of the CLI's per-shard table and of benchmark stores)."""
        return {
            "shard": self.shard,
            "n_interior": self.n_interior,
            "m_interior": self.m_interior,
            "cut_edges": self.cut_edges,
            "delta_interior": self.delta_interior,
            "colors_used": self.colors_used,
            "rounds": self.rounds,
            "total_bits": self.total_bits,
            "proper": self.proper,
            "complete": self.complete,
            "seconds": round(self.seconds, 6),
            "cpu_seconds": round(self.cpu_seconds, 6),
            "peak_rss_mb": self.peak_rss_mb,
            "reconcile_sweeps": [dict(row) for row in self.reconcile_sweeps],
        }


@dataclass
class ShardedResult:
    """A full sharded run: merged coloring + per-shard and cut accounts."""

    colors: np.ndarray
    n: int
    k: int
    strategy: str
    delta: int
    proper: bool
    complete: bool
    num_colors_used: int
    shard_sizes: list[int]
    cut_edges: int
    cut_fraction: float
    boundary_nodes: int
    initial_conflicts: int
    """Monochromatic cut edges right after the merge (before any repair)."""
    reconcile_touched: int
    """Nodes whose color changed during cut reconciliation."""
    reconcile_rounds: int
    reconcile_iterations: int
    unresolved_conflicts: int
    rounds_interior: int
    """Parallel-composed interior rounds (max over shards)."""
    rounds_total: int
    total_bits: int
    seconds: float
    transport: str = "shm"
    """Which worker transport produced this run ("shm" / "pickle") —
    results are byte-identical across transports, only the plumbing
    differs."""
    shard_reports: list[ShardReport] = field(default_factory=list)
    phase_seconds: dict[str, float] = field(default_factory=dict)
    faults: dict = field(default_factory=dict)
    """Supervision account (DESIGN.md §9): retries, worker_crashes,
    worker_timeouts, inline_fallbacks and time_lost_s — all zero on a
    fault-free run."""

    @property
    def touched_fraction(self) -> float:
        """Share of all nodes recolored during reconciliation — the
        cheapness-of-the-cut claim: stays near the boundary fraction."""
        return self.reconcile_touched / max(self.n, 1)

    def as_dict(self) -> dict:
        """JSON-safe report: run-level fields plus ``shards`` (one
        :meth:`ShardReport.as_dict` row per shard)."""
        return {
            "n": self.n,
            "k": self.k,
            "strategy": self.strategy,
            "delta": self.delta,
            "proper": self.proper,
            "complete": self.complete,
            "num_colors_used": self.num_colors_used,
            "shard_sizes": list(self.shard_sizes),
            "cut_edges": self.cut_edges,
            "cut_fraction": round(self.cut_fraction, 6),
            "boundary_nodes": self.boundary_nodes,
            "initial_conflicts": self.initial_conflicts,
            "reconcile_touched": self.reconcile_touched,
            "touched_fraction": round(self.touched_fraction, 6),
            "reconcile_rounds": self.reconcile_rounds,
            "reconcile_iterations": self.reconcile_iterations,
            "unresolved_conflicts": self.unresolved_conflicts,
            "rounds_interior": self.rounds_interior,
            "rounds_total": self.rounds_total,
            "total_bits": self.total_bits,
            "seconds": round(self.seconds, 6),
            "transport": self.transport,
            "faults": dict(self.faults),
            "shards": [r.as_dict() for r in self.shard_reports],
        }


def _color_shard(view: ShardView, cfg: ColoringConfig, attempt: int = 1) -> dict:
    """Worker-side pure function: color one shard's interior subgraph.

    Module-level (picklable) so ``ProcessPoolExecutor`` workers can run it;
    the result is a pure function of ``(view, cfg)`` — ``attempt`` only
    feeds the fault-injection context, never the coloring — which is what
    makes pool, inline and *retried* execution byte-identical.  The view's
    ghost frontier is read-only metadata here — interior coloring happens
    strictly on the interior-induced CSR.
    """
    faults.inject("shard.worker", shard=int(view.shard), attempt=int(attempt))
    with obs.span("shard.color", shard=int(view.shard), attempt=int(attempt)):
        return _color_shard_inner(view, cfg, attempt)


def _color_shard_inner(view: ShardView, cfg: ColoringConfig, attempt: int) -> dict:
    """Body of :func:`_color_shard`, separated so the whole interior
    coloring sits inside one ``shard.color`` span."""
    t0 = time.perf_counter()
    c0 = time.process_time()
    if view.n_interior == 0:
        return {
            "shard": view.shard,
            "colors": np.empty(0, dtype=np.int64),
            "metrics": RoundMetrics(),
            "report": ShardReport(
                shard=view.shard, n_interior=0, m_interior=0,
                cut_edges=int(view.cut_edges.shape[0]), delta_interior=0,
                colors_used=0, rounds=0, total_bits=0, proper=True,
                complete=True, seconds=time.perf_counter() - t0,
                cpu_seconds=time.process_time() - c0,
                peak_rss_mb=_peak_rss_mb(),
            ),
        }
    sub = BroadcastNetwork(view.interior_graph())
    # The bandwidth cap is a property of the *global* model: messages must
    # fit O(log n_global) bits no matter which shard sends them.
    sub.bandwidth_bits = cfg.bandwidth_bits(view.n_global)
    result = BroadcastColoring(sub, cfg).run()
    used = result.colors[result.colors >= 0]
    report = ShardReport(
        shard=view.shard,
        n_interior=view.n_interior,
        m_interior=int(sub.m),
        cut_edges=int(view.cut_edges.shape[0]),
        delta_interior=int(sub.delta),
        colors_used=int(np.unique(used).size) if used.size else 0,
        rounds=int(result.rounds_total),
        total_bits=int(result.total_bits),
        proper=bool(result.proper),
        complete=bool(result.complete),
        seconds=time.perf_counter() - t0,
        cpu_seconds=time.process_time() - c0,
        peak_rss_mb=_peak_rss_mb(),
    )
    return {
        "shard": view.shard,
        "colors": result.colors,
        "metrics": sub.metrics,
        "report": report,
    }


def _view_from_arena(arena: ShmArena, shard: int) -> ShardView:
    """Rebuild one shard's :class:`ShardView` from the attached arena —
    the worker-side half of the zero-copy transport.  Touches only the
    shard's member slice plus its CSR rows (O(interior + ghost)); the
    full-n arrays are shared pages that fault in per-slice."""
    a = arena.arrays()
    starts = a["starts"]
    members = a["order"][int(starts[shard]) : int(starts[shard + 1])]
    return shard_view_from_csr(
        int(a["indptr"].size - 1),
        a["indptr"],
        a["indices"],
        members,
        a["assignment"],
        a["local"],
        shard,
    )


def _pool_color_shard(args: tuple) -> dict:
    """``ProcessPoolExecutor`` entry point (single-argument).

    ``args`` is ``(spec, cfg, attempt, plan_payload)``; ``spec`` is a
    pickled :class:`ShardView` under ``shard_transport="pickle"``, or an
    ``(ArenaDescriptor, shard)`` pair under ``"shm"`` — the worker then
    attaches the arena, rebuilds its view zero-copy, and writes its
    interior colors straight into the shared colors array (its slots are
    disjoint from every other shard's), returning ``colors=None`` over
    the pipe.  The fault plan rides along explicitly (as its dict form)
    and is armed inside the worker, so injection works under any
    multiprocessing start method — not just fork inheritance — and
    survives pool re-creation after a hard crash.
    """
    spec, cfg, attempt, plan_payload = args
    if plan_payload is not None:
        faults.arm(faults.FaultPlan.from_dict(plan_payload))
    # Arm tracing from the config (the knob rides the pipe), then drop any
    # span buffer inherited via fork — the driver keeps its own copy; this
    # worker must ship back only the spans *it* produced for this task.
    obs.enable_from_config(cfg)
    obs.drain_spans()
    if isinstance(spec, ShardView):
        out = _color_shard(spec, cfg, attempt=attempt)
        out["spans"] = obs.drain_spans()
        return out
    descriptor, shard = spec
    with ShmArena.attach(descriptor, writeable=("colors",)) as arena:
        view = _view_from_arena(arena, int(shard))
        out = _color_shard(view, cfg, attempt=attempt)
        arena.array("colors")[view.nodes] = out["colors"]
        out["colors"] = None  # already in shared memory
        out["spans"] = obs.drain_spans()
        return out


def _pool_repair_shard(args: tuple) -> dict:
    """Pool entry point for one shard's reconciliation sweep under the
    shm transport: attach read-only, slice the shard's cut edges out of
    the packed :class:`~repro.shard.boundary.CutPlan`, and run the pure
    :func:`~repro.shard.boundary.repair_boundary` kernel.  The returned
    delta is boundary-sized — the only reconciliation bytes that ever
    cross a process boundary."""
    descriptor, shard, extra, num_colors, cfg, seed, sweep, plan_payload = args
    if plan_payload is not None:
        faults.arm(faults.FaultPlan.from_dict(plan_payload))
    obs.enable_from_config(cfg)
    obs.drain_spans()
    with ShmArena.attach(descriptor) as arena:
        a = arena.arrays()
        plan = CutPlan.from_arrays(a)
        out = repair_boundary(
            int(a["indptr"].size - 1),
            a["indptr"],
            a["indices"],
            a["assignment"],
            a["colors"],
            plan.edges_of(int(shard)),
            int(shard),
            extra,
            num_colors,
            cfg,
            seed,
            sweep,
        )
        out["spans"] = obs.drain_spans()
        return out


class ShardedColoring:
    """Partitioned (Δ+1)-coloring: k shard interiors in parallel, then
    cut reconciliation.

    >>> from repro.graphs.generators import gnp_graph
    >>> result = ShardedColoring(gnp_graph(300, 0.05, seed=1), k=4).run()
    >>> assert result.proper and result.complete

    Parameters
    ----------
    graph:
        ``networkx.Graph``, ``(n, edges)`` pair or a ready
        :class:`BroadcastNetwork` (the driver's coordinator copy; workers
        only ever see their :class:`ShardView`).
    config:
        :class:`ColoringConfig`; ``shard_*`` and ``conflict_victim`` knobs
        drive partitioning and reconciliation.
    k / strategy:
        Override the config's ``shard_k`` / ``shard_strategy``.
    workers:
        Process-pool size for the interior phase; ``1`` (default) colors
        shards inline in spec order — identical results, no pool.
    transport:
        Overrides the config's ``shard_transport`` ("shm" zero-copy
        arena / "pickle" legacy views).  Results are byte-identical
        either way; only bytes-on-the-pipe and per-worker RSS differ.
    """

    def __init__(
        self,
        graph,
        config: ColoringConfig | None = None,
        k: int | None = None,
        strategy: str | None = None,
        workers: int = 1,
        transport: str | None = None,
    ):
        self.cfg = config or ColoringConfig.practical()
        self.k = int(k) if k is not None else self.cfg.shard_k
        self.strategy = strategy if strategy is not None else self.cfg.shard_strategy
        self.workers = max(1, int(workers))
        self.transport = (
            transport if transport is not None else self.cfg.shard_transport
        )
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"unknown shard transport {self.transport!r} "
                f"(choose from {TRANSPORTS})"
            )
        if isinstance(graph, BroadcastNetwork):
            self.net = graph
        else:
            self.net = BroadcastNetwork(graph)
        if self.net.bandwidth_bits is None:
            self.net.bandwidth_bits = self.cfg.bandwidth_bits(self.net.n)
        self.seq = SeedSequencer(self.cfg.seed).spawn("shard")
        self._part: Partition | None = None
        self._local: np.ndarray | None = None
        self._views: dict[int, ShardView] = {}

    def _pool(self, max_workers: int) -> ProcessPoolExecutor:
        """A worker pool honoring ``shard_start_method``.  ``"default"``
        inherits the platform's context (fork on linux); ``"spawn"`` is
        the measurement mode — workers start from a bare interpreter, so
        their RSS reflects the shm pages they touch, not the driver's
        copy-on-write inheritance."""
        method = self.cfg.shard_start_method
        if method == "default":
            return ProcessPoolExecutor(max_workers=max_workers)
        import multiprocessing as mp

        return ProcessPoolExecutor(
            max_workers=max_workers, mp_context=mp.get_context(method)
        )

    def _view(self, shard: int) -> ShardView:
        """Driver-side view of one shard, built on demand (inline
        execution and pool-failure fallbacks) and cached."""
        view = self._views.get(shard)
        if view is None:
            if self._local is None:
                self._local = self._part.local_ids()
            view = shard_view_from_csr(
                self.net.n,
                self.net.indptr,
                self.net.indices,
                self._part.members(shard),
                self._part.assignment,
                self._local,
                shard,
            )
            self._views[shard] = view
        return view

    # ------------------------------------------------------------------
    def _shard_config(self, shard: int) -> ColoringConfig:
        """Per-shard coloring config.  k=1 keeps the root config untouched
        so a single-shard run is *bit-identical* to the single-process
        pipeline; k>1 derives independent per-shard seeds (local node ids
        overlap across shards, so sharing the root seed would correlate
        their coin flips)."""
        if self.k == 1:
            return self.cfg
        return self.cfg.with_seed(self.seq.derive_seed("color", shard))

    def run(self) -> ShardedResult:
        """Execute the full partitioned run: partition → pack (arena or
        views) → k interior colorings (pool or inline) → merge →
        shard-local cut reconciliation.  Deterministic in
        ``(graph, config)`` regardless of ``workers`` and transport."""
        cfg, net = self.cfg, self.net
        obs.enable_from_config(cfg)
        obs.count("repro_shard_runs_total")
        metrics = net.metrics
        t0 = time.perf_counter()
        rounds_before = metrics.total_rounds
        bits_before = metrics.total_bits

        # ---- 1. partition --------------------------------------------
        with metrics.time_phase("shard/partition"):
            part = partition_nodes(net, self.k, self.strategy, seed=cfg.seed)
            plan = CutPlan.build(net.undirected_edges(), part.assignment, self.k)
        self._part = part
        self._local = None
        self._views = {}
        cut_edge_count = int(plan.cut.shape[0])
        boundary = plan.boundary
        obs.gauge_set("repro_shard_cut_edges", cut_edge_count, k=self.k)

        # ---- 1b. pack: shared arena (shm) or extracted views ---------
        use_shm = self.transport == "shm" and self.workers > 1 and self.k > 1
        arena: ShmArena | None = None
        try:
            if use_shm:
                with metrics.time_phase("shard/pack"):
                    order, starts = part.index_arrays()
                    local = part.local_ids()
                    self._local = local
                    arrays = {
                        "indptr": net.indptr,
                        "indices": net.indices,
                        "degrees": net.degrees,
                        "assignment": part.assignment,
                        "order": order,
                        "starts": starts,
                        "local": local,
                        "colors": np.full(net.n, -1, dtype=np.int64),
                    }
                    arrays.update(plan.arrays())
                    arena = ShmArena.create(arrays, label=f"k{self.k}")
                    colors = arena.array("colors")
                tasks: list = [(arena.descriptor(), i) for i in range(self.k)]
            else:
                with metrics.time_phase("shard/pack"):
                    views = build_shard_views(net, part)
                self._views = dict(enumerate(views))
                tasks = list(views)
                colors = np.full(net.n, -1, dtype=np.int64)

            # ---- 2. interior (parallel over shards, supervised) ------
            with metrics.time_phase("shard/interior"):
                outs, fault_account = self._run_interiors(tasks)

                # ---- 3. merge ----------------------------------------
                # shm workers already wrote their disjoint interior slots;
                # pickled/inline/fallback outputs scatter here.
                for i, out in enumerate(outs):
                    obs.adopt_spans(out.get("spans"))
                    if out["colors"] is not None:
                        colors[part.members(i)] = out["colors"]
                metrics.absorb_parallel(
                    [out["metrics"] for out in outs], phase="shard/interior"
                )
            shard_reports = [out["report"] for out in outs]
            rounds_interior = max((r.rounds for r in shard_reports), default=0)

            # ---- 4. cut reconciliation (shard-local, DESIGN.md §7) ---
            num_colors = net.delta + 1
            color_bits = bits_for_color(max(net.delta, 1))
            touched = np.zeros(net.n, dtype=bool)
            reconcile_rounds_before = metrics.rounds_in("shard/reconcile")
            with metrics.time_phase("shard/reconcile"):
                if self.k == 1:
                    initial_conflicts, iterations, unresolved, colors = (
                        self._reconcile_central(colors, boundary, num_colors, color_bits, touched)
                    )
                else:
                    initial_conflicts, iterations, unresolved = (
                        self._reconcile_boundary(
                            plan, colors, touched, num_colors, color_bits,
                            arena, fault_account, shard_reports,
                        )
                    )
            reconcile_rounds = (
                metrics.rounds_in("shard/reconcile") - reconcile_rounds_before
            )
            if use_shm:
                colors = np.array(colors, dtype=np.int64, copy=True)
        finally:
            if arena is not None:
                arena.unlink()

        src, dst = net.edge_src, net.indices
        proper = not bool(((colors[src] >= 0) & (colors[src] == colors[dst])).any())
        complete = bool((colors >= 0).all())
        used = colors[colors >= 0]
        return ShardedResult(
            colors=colors,
            n=net.n,
            k=self.k,
            strategy=self.strategy,
            delta=net.delta,
            proper=proper,
            complete=complete,
            num_colors_used=int(np.unique(used).size) if used.size else 0,
            shard_sizes=[int(s) for s in part.sizes()],
            cut_edges=cut_edge_count,
            cut_fraction=cut_edge_count / max(net.m, 1),
            boundary_nodes=int(boundary.size),
            initial_conflicts=initial_conflicts,
            reconcile_touched=int(touched.sum()),
            reconcile_rounds=reconcile_rounds,
            reconcile_iterations=iterations,
            unresolved_conflicts=unresolved,
            rounds_interior=rounds_interior,
            rounds_total=metrics.total_rounds - rounds_before,
            total_bits=metrics.total_bits - bits_before,
            seconds=time.perf_counter() - t0,
            transport=self.transport,
            shard_reports=shard_reports,
            phase_seconds={
                name: float(secs)
                for name, secs in metrics.phase_seconds.items()
                if name.startswith("shard/")
            },
            faults=fault_account,
        )

    # ------------------------------------------------------------------
    # Reconciliation
    # ------------------------------------------------------------------
    def _reconcile_central(
        self,
        colors: np.ndarray,
        boundary: np.ndarray,
        num_colors: int,
        color_bits: int,
        touched: np.ndarray,
    ) -> tuple[int, int, int, np.ndarray]:
        """The original central reconcile loop, kept verbatim for k=1:
        it is the bit-identity gate against the unsharded engine (same
        kernels, same seeds, same round accounting)."""
        cfg, net = self.cfg, self.net
        initial_conflicts = 0
        iterations = 0
        unresolved = 0
        while iterations < cfg.shard_reconcile_max_iters:
            net.account_vector_round(
                int(boundary.size), color_bits, phase="shard/reconcile"
            )
            mono = monochromatic_edges(net, colors)
            unresolved = int(mono[0].size)
            if iterations == 0:
                initial_conflicts = unresolved
            victims = conflict_victims(
                net,
                colors,
                policy=cfg.conflict_victim,
                num_colors=num_colors,
                edges=mono,
            )
            pending = victims | (colors < 0)
            if not pending.any():
                break
            touched |= pending
            colors[victims] = -1
            colors, _, _ = conflict_repair(
                net,
                colors,
                np.flatnonzero(colors < 0),
                num_colors,
                cfg,
                self.seq,
                tag=iterations,
                phase="shard/reconcile",
                mt_label="shard-mt",
            )
            iterations += 1
        if iterations == cfg.shard_reconcile_max_iters:
            # The loop exited on the cap, not on a clean sweep: recount.
            unresolved = int(monochromatic_edges(net, colors)[0].size)
        return initial_conflicts, iterations, unresolved, colors

    def _repair_inline(
        self,
        plan: CutPlan,
        colors: np.ndarray,
        shard: int,
        extra: np.ndarray,
        num_colors: int,
        sweep: int,
    ) -> dict:
        """Driver-side execution of one shard's sweep — the inline twin
        of :func:`_pool_repair_shard` (same pure kernel, direct array
        references instead of an arena attachment)."""
        net = self.net
        return repair_boundary(
            net.n,
            net.indptr,
            net.indices,
            self._part.assignment,
            np.asarray(colors),
            plan.edges_of(shard),
            shard,
            extra,
            num_colors,
            self.cfg,
            self.seq.derive_seed("reconcile", shard),
            sweep,
        )

    def _reconcile_boundary(
        self,
        plan: CutPlan,
        colors: np.ndarray,
        touched: np.ndarray,
        num_colors: int,
        color_bits: int,
        arena: ShmArena | None,
        account: dict,
        shard_reports: list[ShardReport] | None = None,
    ) -> tuple[int, int, int]:
        """The boundary-exchange sweep loop (k>1): shards with work
        repair their own boundary shard-locally (pool under shm,
        otherwise inline — byte-identical either way); the driver merges
        the disjoint deltas and re-checks only the cut.  Pool failures
        degrade to inline execution with faults suppressed — the sweep
        must finish, and the inline kernel is the same pure function.
        Each merged sweep appends a timing row to the owning shard's
        :attr:`ShardReport.reconcile_sweeps`."""
        cfg, net = self.cfg, self.net
        metrics = net.metrics
        cu_idx, cv_idx = plan.cut[:, 0], plan.cut[:, 1]
        assignment = self._part.assignment
        empty = np.empty(0, dtype=np.int64)
        armed = faults.armed_plan()
        plan_payload = armed.as_dict() if armed is not None else None
        timeout = float(cfg.shard_worker_timeout_s) or None
        initial_conflicts = 0
        iterations = 0
        unresolved = 0
        pool: ProcessPoolExecutor | None = None
        try:
            while iterations < cfg.shard_reconcile_max_iters:
                # The exchange: every boundary node's color, one vector
                # round per sweep (under shm the bytes are literally the
                # shared colors pages).
                net.account_vector_round(
                    int(plan.boundary.size), color_bits, phase="shard/reconcile"
                )
                cu, cv = colors[cu_idx], colors[cv_idx]
                mono = (cu >= 0) & (cu == cv)
                unresolved = int(mono.sum())
                obs.gauge_set("repro_shard_unresolved_cut_conflicts", unresolved)
                if iterations == 0:
                    initial_conflicts = unresolved
                uncolored = np.flatnonzero(np.asarray(colors) < 0)
                if unresolved == 0 and uncolored.size == 0:
                    break
                active = np.zeros(self.k, dtype=bool)
                if unresolved:
                    active[
                        np.unique(assignment[plan.cut[mono].reshape(-1)])
                    ] = True
                extras: dict[int, np.ndarray] = {}
                if uncolored.size:
                    own = assignment[uncolored]
                    for s in np.unique(own):
                        extras[int(s)] = uncolored[own == s]
                        active[s] = True
                shards = [int(s) for s in np.flatnonzero(active)]
                outs: list[dict] = []
                # Boundary repair is cut-sized: below the dispatch
                # threshold the driver repairs inline — the pure kernel
                # is byte-identical either way, and pool dispatch
                # (possibly spawning fresh interpreters) costs more than
                # a small sweep's repair itself.
                sweep_work = unresolved + int(uncolored.size)
                use_pool = (
                    arena is not None
                    and self.workers > 1
                    and shards
                    and sweep_work >= cfg.shard_repair_pool_min
                )
                if use_pool:
                    if pool is None:
                        pool = self._pool(min(self.workers, len(shards)))
                    futs = {
                        s: pool.submit(
                            _pool_repair_shard,
                            (
                                arena.descriptor(),
                                s,
                                extras.get(s, empty),
                                num_colors,
                                cfg,
                                self.seq.derive_seed("reconcile", s),
                                iterations,
                                plan_payload,
                            ),
                        )
                        for s in shards
                    }
                    for s, fut in futs.items():
                        t_fail = time.perf_counter()
                        try:
                            outs.append(fut.result(timeout=timeout))
                        except Exception:
                            lost = time.perf_counter() - t_fail
                            account["worker_crashes"] += 1
                            account["time_lost_s"] = round(
                                account["time_lost_s"] + lost, 6
                            )
                            metrics.record_fault("worker_crash", lost)
                            account["inline_fallbacks"] += 1
                            metrics.record_fault("inline_fallback")
                            # A dead/hung worker poisons the pool: rebuild
                            # it lazily on the next sweep.
                            if pool is not None:
                                pool.shutdown(wait=False, cancel_futures=True)
                                pool = None
                            with faults.suppressed():
                                outs.append(
                                    self._repair_inline(
                                        plan, colors, s,
                                        extras.get(s, empty),
                                        num_colors, iterations,
                                    )
                                )
                else:
                    for s in shards:
                        outs.append(
                            self._repair_inline(
                                plan, colors, s, extras.get(s, empty),
                                num_colors, iterations,
                            )
                        )
                # Merge: deltas are disjoint by ownership, so the order
                # of application cannot matter.
                for out in outs:
                    obs.adopt_spans(out.get("spans"))
                    nodes = out["nodes"]
                    if nodes.size:
                        colors[nodes] = out["colors"]
                        touched[nodes] = True
                    if shard_reports is not None:
                        shard_reports[int(out["shard"])].reconcile_sweeps.append(
                            {
                                "sweep": iterations,
                                "victims": int(out["victims"]),
                                "halo_nodes": int(out["halo_nodes"]),
                                "repair_rounds": int(out["repair_rounds"]),
                                "seconds": round(float(out.get("seconds", 0.0)), 6),
                            }
                        )
                metrics.absorb_parallel(
                    [out["metrics"] for out in outs], phase="shard/reconcile"
                )
                obs.count("repro_shard_reconcile_sweeps_total")
                iterations += 1
            if iterations == cfg.shard_reconcile_max_iters:
                cu, cv = colors[cu_idx], colors[cv_idx]
                unresolved = int(((cu >= 0) & (cu == cv)).sum())
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
        return initial_conflicts, iterations, unresolved

    # ------------------------------------------------------------------
    # Interior supervision (DESIGN.md §9)
    # ------------------------------------------------------------------
    def _backoff(self, shard: int, attempt: int) -> float:
        """Capped exponential backoff with deterministic jitter: attempt
        ``a`` of one shard waits ``base · 2^(a-1) · u`` seconds with
        ``u ∈ [0.5, 1.0)`` derived from the run's seed sequencer — two
        crashed shards never retry in lock-step, yet the schedule is a
        pure function of ``(seed, shard, attempt)``."""
        base = max(0.0, float(self.cfg.shard_retry_backoff_s))
        if base == 0.0:
            return 0.0
        jitter = 0.5 + (self.seq.derive_seed("backoff", shard, attempt) % 1000) / 2000.0
        return min(base * (2 ** (attempt - 1)), 30.0) * jitter

    def _fail_or_fallback(
        self, shard: int, cfg_i, attempts: int, cause: str, account: dict
    ) -> dict:
        """Retries exhausted: degrade to inline execution in the driver
        (fault plan suppressed — the work must *succeed*, not re-die),
        or raise :class:`ShardWorkerError` when degradation is off.  The
        driver builds the shard's view on demand — under shm it never
        extracted one up front."""
        if not self.cfg.shard_inline_fallback:
            raise ShardWorkerError(shard, attempts, cause)
        account["inline_fallbacks"] += 1
        self.net.metrics.record_fault("inline_fallback")
        with faults.suppressed():
            return _color_shard(self._view(shard), cfg_i, attempt=attempts + 1)

    def _run_interiors(self, tasks: list) -> tuple[list, dict]:
        """The supervisor loop around the interior phase: submit every
        shard, detect crashes (``BrokenProcessPool``, injected faults),
        enforce the per-shard wall-clock deadline, retry with backoff
        (same derived seed → bit-identical recovery), and degrade to
        inline execution for shards that keep failing.  Returns the
        per-shard outputs in shard order plus the fault account.
        ``tasks`` holds one picklable spec per shard: a
        :class:`ShardView` (pickle transport / inline) or an
        ``(ArenaDescriptor, shard)`` pair (shm)."""
        cfg = self.cfg
        metrics = self.net.metrics
        shard_cfgs = [self._shard_config(i) for i in range(self.k)]
        account = {
            "retries": 0,
            "worker_crashes": 0,
            "worker_timeouts": 0,
            "inline_fallbacks": 0,
            "time_lost_s": 0.0,
        }
        outs: list = [None] * self.k
        max_attempts = 1 + max(0, int(cfg.shard_max_retries))

        if not (self.workers > 1 and self.k > 1):
            # Inline path: same supervision semantics, no pool, no
            # deadline (the driver cannot interrupt itself).
            for i in range(self.k):
                attempt = 1
                while outs[i] is None:
                    t0 = time.perf_counter()
                    try:
                        outs[i] = _color_shard(tasks[i], shard_cfgs[i], attempt=attempt)
                    except Exception as exc:
                        lost = time.perf_counter() - t0
                        account["worker_crashes"] += 1
                        account["time_lost_s"] += lost
                        metrics.record_fault("worker_crash", lost)
                        if attempt >= max_attempts:
                            outs[i] = self._fail_or_fallback(
                                i, shard_cfgs[i], attempt, repr(exc), account
                            )
                            break
                        account["retries"] += 1
                        metrics.record_fault("retry")
                        time.sleep(self._backoff(i, attempt))
                        attempt += 1
            account["time_lost_s"] = round(account["time_lost_s"], 6)
            return outs, account

        plan = faults.armed_plan()
        plan_payload = plan.as_dict() if plan is not None else None
        timeout = float(cfg.shard_worker_timeout_s) or None
        pending = list(range(self.k))
        attempt = {i: 1 for i in pending}
        pool = self._pool(min(self.workers, self.k))
        try:
            while pending:
                futs = {
                    i: pool.submit(
                        _pool_color_shard,
                        (tasks[i], shard_cfgs[i], attempt[i], plan_payload),
                    )
                    for i in pending
                }
                failed: list[tuple[int, str, str]] = []
                pool_broken = False
                for i, fut in futs.items():
                    t0 = time.perf_counter()
                    try:
                        outs[i] = fut.result(timeout=timeout)
                    except FuturesTimeout:
                        fut.cancel()
                        failed.append((i, "worker_timeout", f"no result within {timeout}s"))
                        metrics.record_fault("worker_timeout", time.perf_counter() - t0)
                        account["worker_timeouts"] += 1
                        account["time_lost_s"] += time.perf_counter() - t0
                        pool_broken = True  # a hung worker poisons its slot
                    except BrokenProcessPool as exc:
                        failed.append((i, "worker_crash", repr(exc)))
                        metrics.record_fault("worker_crash", time.perf_counter() - t0)
                        account["worker_crashes"] += 1
                        account["time_lost_s"] += time.perf_counter() - t0
                        pool_broken = True
                    except Exception as exc:  # soft crash inside the worker
                        failed.append((i, "worker_crash", repr(exc)))
                        metrics.record_fault("worker_crash", time.perf_counter() - t0)
                        account["worker_crashes"] += 1
                        account["time_lost_s"] += time.perf_counter() - t0
                pending = []
                if not failed:
                    continue
                if pool_broken:
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = self._pool(min(self.workers, self.k))
                for i, _kind, cause in failed:
                    if attempt[i] >= max_attempts:
                        outs[i] = self._fail_or_fallback(
                            i, shard_cfgs[i], attempt[i], cause, account
                        )
                        continue
                    account["retries"] += 1
                    metrics.record_fault("retry")
                    time.sleep(self._backoff(i, attempt[i]))
                    attempt[i] += 1
                    pending.append(i)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        account["time_lost_s"] = round(account["time_lost_s"], 6)
        return outs, account
