"""Perf trajectories: the ``BENCH_*.json`` artifacts at the repo root.

A *trajectory* is an append-only JSON file recording how the wall-clock
cost of a benchmarked path evolves across commits/runs — the
accountability artifact behind "make a hot path measurably faster"
(ROADMAP): every optimization PR appends an entry with its before/after
numbers, and CI re-measures and uploads the file so regressions are
visible in the artifact history.

Schema::

    {"benchmark": "<name>", "entries": [
        {"label": ..., "recorded_at": "<iso8601>", ...measurements...},
        ...
    ]}

Entries are free-form dicts beyond ``label``/``recorded_at`` — each
benchmark decides what it measures (phase timings, engine names,
speedups).  :func:`append_entry` is atomic enough for single-writer use
(bench processes and CI steps run one at a time).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Mapping

__all__ = ["load_trajectory", "append_entry", "host_info"]


def host_info() -> dict[str, Any]:
    """Where a measurement was taken: cpu count, platform, python, git
    sha.  Stamped into every trajectory entry so numbers from different
    machines/commits are never compared blind.  ``git_sha`` is ``None``
    outside a work tree (e.g. CI artifact replay of an sdist)."""
    sha: str | None = None
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
        if out.returncode == 0:
            sha = out.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        pass
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "git_sha": sha,
    }


def _read(path: Path) -> tuple[dict[str, Any] | None, bool]:
    """(trajectory, corrupt): the parsed file, or (None, True) when the
    file exists but is not a valid trajectory."""
    if not path.exists():
        return None, False
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, OSError):
        return None, True
    if isinstance(data, dict) and isinstance(data.get("entries"), list):
        data.setdefault("benchmark", path.stem)
        return data, False
    return None, True


def load_trajectory(path: str | Path) -> dict[str, Any]:
    """The trajectory at ``path`` ({"benchmark": ..., "entries": []} when
    absent or unreadable — a fresh view, never an error)."""
    p = Path(path)
    data, _ = _read(p)
    return data if data is not None else {"benchmark": p.stem, "entries": []}


def append_entry(
    path: str | Path, entry: Mapping[str, Any], label: str | None = None
) -> dict[str, Any]:
    """Append one timestamped entry to the trajectory at ``path`` and
    write it back.  A corrupt existing file is moved aside to
    ``<name>.corrupt`` (never silently overwritten — the history is the
    point of the artifact) and a fresh trajectory started.  Returns the
    full trajectory."""
    p = Path(path)
    data, corrupt = _read(p)
    if corrupt:
        backup = p.with_name(p.name + ".corrupt")
        i = 2
        while backup.exists():
            backup = p.with_name(f"{p.name}.corrupt-{i}")
            i += 1
        p.replace(backup)
    if data is None:
        data = {"benchmark": p.stem, "entries": []}
    rec: dict[str, Any] = {
        "label": label if label is not None else entry.get("label", "run"),
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "host": host_info(),
    }
    rec.update({k: v for k, v in entry.items() if k != "label"})
    data["entries"].append(rec)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")
    return data
