"""Tests for the expander-walk representative sets (repro.hashing.expander)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ColoringConfig
from repro.core.multitrial import multitrial
from repro.core.state import ColoringState
from repro.graphs.generators import gnp_graph
from repro.hashing.expander import ExpanderWalker, mgg_neighbors, walk_colors
from repro.simulator.network import BroadcastNetwork
from repro.simulator.rng import SeedSequencer


class TestMGGNeighbors:
    def test_degree_eight(self):
        assert len(mgg_neighbors(3, 4, 7)) == 8

    def test_all_in_torus(self):
        for x, y in mgg_neighbors(5, 6, 7):
            assert 0 <= x < 7 and 0 <= y < 7

    def test_origin_neighbors(self):
        nbrs = mgg_neighbors(0, 0, 5)
        # (x±y, y) with y=0 keeps (0,0); (x±(y+1)) moves.
        assert (1, 0) in nbrs and (4, 0) in nbrs
        assert (0, 1) in nbrs and (0, 4) in nbrs

    def test_neighbor_relation_structure(self):
        # Applying the inverse generator gets back: (x+y, y) → x' - y = x.
        m = 11
        x, y = 3, 7
        fwd = mgg_neighbors(x, y, m)[0]  # (x+y, y)
        assert (fwd[0] - fwd[1]) % m == x


class TestWalker:
    def test_deterministic(self):
        w = ExpanderWalker(0, 100)
        assert np.array_equal(w.walk(42, 10), w.walk(42, 10))

    def test_seed_changes_walk(self):
        w = ExpanderWalker(0, 100)
        assert not np.array_equal(w.walk(1, 10), w.walk(2, 10))

    def test_colors_in_interval(self):
        w = ExpanderWalker(20, 50)
        out = w.walk(7, 64)
        assert out.min() >= 20 and out.max() < 50

    def test_length(self):
        assert ExpanderWalker(0, 10).walk(1, 17).size == 17

    def test_empty_requests(self):
        assert walk_colors(1, 0, 0, 10).size == 0
        assert walk_colors(1, 5, 10, 10).size == 0

    def test_invalid_interval_raises(self):
        with pytest.raises(ValueError):
            ExpanderWalker(5, 5)

    def test_walk_mixes(self):
        """A length-k walk visits many distinct colors (no tiny cycles)."""
        w = ExpanderWalker(0, 1000)
        out = w.walk(123, 64)
        assert np.unique(out).size >= 32

    def test_coverage_near_uniform(self):
        """Aggregated over many seeds, visit frequencies are roughly flat
        (the expander's mixing): no color gets more than ~6x the mean."""
        width = 64
        counts = np.zeros(width)
        for seed in range(400):
            out = walk_colors(seed, 8, 0, width)
            np.add.at(counts, out, 1)
        assert counts.min() > 0
        assert counts.max() / counts.mean() < 6.0

    @given(st.integers(0, 2**60), st.integers(1, 40), st.integers(2, 500))
    @settings(max_examples=30, deadline=None)
    def test_walk_property(self, seed, k, width):
        out = walk_colors(seed, k, 0, width)
        assert out.size == k
        assert (out >= 0).all() and (out < width).all()


class TestExpanderMultiTrial:
    def test_multitrial_with_expander_sampler(self):
        cfg = ColoringConfig.practical(multitrial_sampler="expander")
        net = BroadcastNetwork(gnp_graph(300, 0.03, seed=1))
        state = ColoringState(net)
        mask = np.ones(net.n, dtype=bool)
        lo = np.zeros(net.n, dtype=np.int64)
        hi = np.full(net.n, state.num_colors, dtype=np.int64)
        rep = multitrial(state, mask, lo, hi, cfg, SeedSequencer(1), "mt")
        assert rep.remaining == 0
        state.verify()

    def test_full_pipeline_with_expander(self):
        from repro.core.algorithm import BroadcastColoring
        from repro.graphs.generators import clique_blob_graph

        cfg = ColoringConfig.practical(multitrial_sampler="expander", seed=2)
        res = BroadcastColoring(clique_blob_graph(3, 40, 20, 10, seed=2), cfg).run()
        assert res.proper and res.complete

    def test_samplers_agree_on_interface(self):
        """Both samplers fill the same role: k in-interval colors from a
        seed — interchangeable by construction."""
        from repro.core.multitrial import _expand_list

        for sampler in ("prg", "expander"):
            out = _expand_list(99, 12, 5, 30, sampler)
            assert out.size == 12
            assert (out >= 5).all() and (out < 30).all()
