"""Batch coalescing: merge queued :class:`UpdateBatch` objects into one.

Under load the serve worker drains up to ``serve_coalesce_max`` queued
batches and applies them as a single engine batch, paying one
detect/repair cycle instead of k.  The merge must be *topology-exact*:
after applying the coalesced batch, the CSR and the active-node set are
byte-identical to applying the constituents one by one (the property
test in tests/test_serve.py).  Colors may differ — coalescing legally
changes the repair sequence — but the proper/complete/≤ Δ_t+1 invariant
holds either way, because the engine re-establishes it per applied
batch.

The merge is a sequential *replay* with last-op-wins semantics:

* every edge operation lands in a per-edge-key op map (insert / delete;
  a later op on the same key overwrites an earlier one);
* a departure is expanded against the node's adjacency *at that point of
  the replay* — the engine's CSR overlaid with the op map so far — so
  "x departs, then y attaches to x" and "x departs, then x returns with
  new edges" both merge exactly;
* node arrivals/departures keep only each node's final state (a node
  that departs and later re-arrives inside the window merges to a plain
  arrival whose old edges became explicit deletes; sequential
  application would also have cleared its color mid-window, which the
  merged form skips — the documented colors-may-differ case).

The replayed departure expansion also means the merged batch never
relies on the engine's own departure expansion for edges that only exist
inside the merge window (inserted by an earlier constituent batch) —
those are turned into explicit deletes here.

The merge is also *traffic-exact*: op-map keys are cancelled against the
pre-window CSR, so the merged batch carries no operation apply_delta
would ignore (its ``DeltaReport.ignored`` is 0) and announcement
accounting never exceeds the true topology diff.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.dynamic.events import UpdateBatch
from repro.simulator.network import BroadcastNetwork

__all__ = ["coalesce_batches"]

_INS, _DEL = True, False


def coalesce_batches(
    net: BroadcastNetwork, batches: Sequence[UpdateBatch]
) -> UpdateBatch:
    """Merge ``batches`` (in arrival order) into one equivalent batch.

    ``net`` must be the engine's network *before* any of the batches is
    applied — departure expansion consults its CSR.  With a single batch
    this is the identity.
    """
    if not batches:
        return UpdateBatch()
    if len(batches) == 1:
        return batches[0]

    ops: dict[tuple[int, int], bool] = {}
    state: dict[int, str] = {}

    def key(u: int, v: int) -> tuple[int, int]:
        return (u, v) if u < v else (v, u)

    def incident_keys(x: int) -> set[tuple[int, int]]:
        """x's undirected edge keys at this point of the replay: CSR
        adjacency corrected by the op overlay."""
        keys = {key(x, int(nb)) for nb in net.neighbors(x)}
        for k, op in ops.items():
            if x in k:
                if op is _INS:
                    keys.add(k)
                else:
                    keys.discard(k)
        return keys

    for batch in batches:
        # Engine order within a batch: departure expansion + explicit
        # deletes land before inserts; replaying in that order keeps the
        # per-key last-op-wins map faithful to sequential application.
        for x in batch.departures.tolist():
            for k in incident_keys(x):
                ops[k] = _DEL
            state[x] = "dep"
        for u, v in batch.delete_edges.tolist():
            if u != v:
                ops[key(u, v)] = _DEL
        for u, v in batch.insert_edges.tolist():
            if u != v:
                ops[key(u, v)] = _INS
        for x in batch.arrivals.tolist():
            state[x] = "arr"

    # Cancel no-ops against the pre-window CSR before building the merged
    # batch: an insert of an edge the engine already holds (delete→
    # reinsert inside the window) and a delete of an edge it never held
    # (insert→delete inside the window) would be ignored by apply_delta —
    # but only *after* being charged as announcement traffic, inflating
    # add_bulk_rounds accounting relative to sequential replay.
    def in_csr(k: tuple[int, int]) -> bool:
        u, v = k
        lo, hi = int(net.indptr[u]), int(net.indptr[u + 1])
        j = int(np.searchsorted(net.indices[lo:hi], v))
        return j < hi - lo and int(net.indices[lo + j]) == v

    return UpdateBatch(
        insert_edges=sorted(
            k for k, op in ops.items() if op is _INS and not in_csr(k)
        ),
        delete_edges=sorted(
            k for k, op in ops.items() if op is _DEL and in_csr(k)
        ),
        arrivals=sorted(x for x, s in state.items() if s == "arr"),
        departures=sorted(x for x, s in state.items() if s == "dep"),
    )
