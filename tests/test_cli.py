"""Tests for the CLI (python -m repro ...)."""

import json

import pytest

from repro.cli import build_parser, main, make_graph
from repro.simulator.network import BroadcastNetwork


class TestMakeGraph:
    @pytest.mark.parametrize(
        "family", ["gnp", "blobs", "geometric", "hardmix", "planted"]
    )
    def test_families_produce_valid_graphs(self, family):
        g = make_graph(family, 300, 24.0, seed=1)
        net = BroadcastNetwork(g)
        assert net.n >= 200
        assert net.m > 0

    def test_unknown_family_raises(self):
        with pytest.raises(ValueError):
            make_graph("nope", 100, 10.0, 0)

    def test_deterministic(self):
        import numpy as np

        a = make_graph("gnp", 200, 20.0, seed=3)[1]
        b = make_graph("gnp", 200, 20.0, seed=3)[1]
        assert np.array_equal(a, b)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_color_defaults(self):
        args = build_parser().parse_args(["color"])
        assert args.family == "gnp"
        assert args.n == 2000

    def test_sweep_args(self):
        args = build_parser().parse_args(
            ["sweep", "--min-exp", "8", "--max-exp", "9", "--seeds", "1"]
        )
        assert args.min_exp == 8 and args.max_exp == 9

    def test_typoed_family_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["color", "--family", "bogus"])
        assert exc.value.code == 2  # argparse usage error, not a traceback
        assert "invalid family" in capsys.readouterr().err

    def test_edgelist_family_passes_parser(self):
        args = build_parser().parse_args(["color", "--family", "edgelist:x.txt"])
        assert args.family == "edgelist:x.txt"

    def test_churn_parser_accepts_churn_and_static_families(self):
        assert build_parser().parse_args(["churn"]).family == "gnp-churn"
        args = build_parser().parse_args(["churn", "--family", "geometric"])
        assert args.family == "geometric"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["churn", "--family", "bogus"])


class TestCommands:
    def test_color_runs_and_succeeds(self, capsys):
        rc = main(["color", "--n", "300", "--avg-degree", "20", "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "rounds_total" in out

    def test_color_json_output(self, capsys):
        rc = main(["color", "--n", "200", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["proper"] and data["complete"]

    def test_color_paper_constants(self, capsys):
        rc = main(["color", "--n", "200", "--paper-constants", "--json"])
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["complete"]

    def test_compare(self, capsys):
        rc = main(
            ["compare", "--family", "blobs", "--n", "256", "--avg-degree", "32",
             "--seeds", "2", "--json"]
        )
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["runs"]) == 2
        assert data["mean_johansson"] > 0

    def test_decompose(self, capsys):
        rc = main(["decompose", "--cliques", "3", "--size", "40", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["cliques_found"] == 3
        assert data["validator"]["ok"]

    def test_sweep(self, capsys):
        rc = main(
            ["sweep", "--family", "gnp", "--avg-degree", "16",
             "--min-exp", "8", "--max-exp", "9", "--seeds", "1", "--json"]
        )
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["rows"]) == 2
        assert "fit_ours" in data


SWEEP_ARGS = ["sweep", "--family", "gnp", "--avg-degree", "12",
              "--min-exp", "7", "--max-exp", "8", "--seeds", "1", "--json"]


class TestRunnerBackedCommands:
    """compare/sweep/bench now execute through repro.runner; the CLI
    contract is that worker count and caching never change the output."""

    def test_sweep_workers_byte_identical(self, capsys):
        assert main(SWEEP_ARGS + ["--workers", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(SWEEP_ARGS + ["--workers", "4"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel
        assert json.loads(serial)["trials"]["computed"] == 4

    def test_sweep_out_store_resumes(self, capsys, tmp_path):
        store = str(tmp_path / "sweep.jsonl")
        assert main(SWEEP_ARGS + ["--workers", "2", "--out", store]) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["trials"]["cached"] == 0
        assert main(SWEEP_ARGS + ["--workers", "2", "--out", store]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["trials"]["computed"] == 0
        assert second["trials"]["cached"] == second["trials"]["trials"]
        assert first["rows"] == second["rows"]

    def test_sweep_no_resume_recomputes(self, capsys, tmp_path):
        store = str(tmp_path / "sweep.jsonl")
        assert main(SWEEP_ARGS + ["--out", store]) == 0
        capsys.readouterr()
        assert main(SWEEP_ARGS + ["--out", store, "--no-resume"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["trials"]["cached"] == 0

    def test_compare_json_through_runner(self, capsys):
        rc = main(["compare", "--family", "gnp", "--n", "128", "--avg-degree",
                   "10", "--seeds", "2", "--workers", "2", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert [r["seed"] for r in data["runs"]] == [0, 1]
        assert data["trials"] == {"trials": 6, "ok": 6, "failed": 0,
                                  "cached": 0, "computed": 6}

    def test_bench_json_spec_file(self, capsys, tmp_path):
        specfile = tmp_path / "m.json"
        specfile.write_text(json.dumps({"matrix": {
            "family": "gnp", "n": [96, 128], "avg_degree": 10, "seeds": 1,
            "algorithm": ["broadcast", "johansson"],
        }}))
        rc = main(["bench", str(specfile), "--workers", "2", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["trials"]["ok"] == 4
        assert len(data["rows"]) == 4
        assert "gnp/broadcast" in data["fits"]
        assert data["summary"]["rounds"]["count"] == 4

    def test_bench_toml_spec_file(self, capsys, tmp_path):
        specfile = tmp_path / "m.toml"
        specfile.write_text(
            '[matrix]\nfamily = "gnp"\nn = 96\navg_degree = 10\nseeds = 1\n'
        )
        rc = main(["bench", str(specfile), "--json"])
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["trials"]["ok"] == 1

    def test_bench_missing_file_exits(self):
        with pytest.raises(SystemExit):
            main(["bench", "/nonexistent/specs.toml", "--json"])

    def test_progress_lines_on_stderr(self, capsys):
        assert main(SWEEP_ARGS + ["--progress"]) == 0
        err = capsys.readouterr().err
        assert "[4/4]" in err
