"""Incremental recoloring: maintain a (Δ_t+1)-coloring under churn.

The control loop per :class:`~repro.dynamic.events.UpdateBatch`
(DESIGN.md §6):

1. **delta** — departures expand to their incident edges; the whole batch
   lands in one :meth:`BroadcastNetwork.apply_delta` sorted merge, with
   announcement rounds/bits charged to ``dynamic/delta``.
2. **detect** — vectorized conflict detection on the new CSR: the larger
   endpoint of every monochromatic edge loses its color, as does any node
   whose color fell out of the new palette [Δ_t+1] (Δ shrank).  Changed
   neighborhoods re-sync with one color broadcast from touched nodes.
3. **repair** — the conflict set + arrivals re-run the *existing* batched
   kernels as subroutines: MultiTrial (seed broadcasts, geometric try
   growth) when the set is large enough to warrant it, then TryColor
   rounds from true palettes until proper.  The fringe — colored
   neighbors of the conflict set — participates as listeners only: its
   colors constrain palettes but never move, which is what keeps
   recolored-nodes-per-batch small.
4. **fallback** — when the conflicted fraction of active nodes crosses
   ``cfg.dynamic_fallback_fraction`` (or a repair stalls), drop the
   maintained coloring and re-run the full pipeline on the current graph
   — the recolor-from-scratch baseline, available per batch.

Invariant after every batch (pinned by tests/test_dynamic.py): the
maintained coloring is proper, complete on active nodes, and uses at
most Δ_t+1 colors.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro import obs
from repro.config import ColoringConfig
from repro.core.algorithm import BroadcastColoring
from repro.core.multitrial import multitrial
from repro.core.state import ColoringState
from repro.core.trycolor import palette_sampler, try_color_round
from repro.dynamic.events import ChurnSchedule, UpdateBatch
from repro.simulator.network import BroadcastNetwork
from repro.simulator.rng import SeedSequencer
from repro.util.bitio import bits_for_color

__all__ = [
    "DynamicColoring",
    "BatchReport",
    "DynamicResult",
    "conflict_victims",
    "conflict_repair",
    "monochromatic_edges",
    "VICTIM_POLICIES",
]

VICTIM_POLICIES = ("id", "slack")


def monochromatic_edges(
    net: BroadcastNetwork, colors: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """The ``(hi, lo)`` endpoint arrays of every monochromatic undirected
    edge under ``colors`` (``hi > lo``, each edge once) — the single
    definition of "conflict" every detector and counter derives from."""
    src, dst = net.edge_src, net.indices
    mono = (colors[src] >= 0) & (colors[src] == colors[dst]) & (dst < src)
    return src[mono], dst[mono]


def _palette_sizes(
    net: BroadcastNetwork,
    colors: np.ndarray,
    num_colors: int,
    only: np.ndarray | None = None,
) -> np.ndarray:
    """|Ψ(v)| under palette ``[num_colors]`` — the standalone form of
    :meth:`ColoringState.palette_sizes`, tolerant of out-of-range colors
    (a neighbor colored beyond the palette forbids nothing inside it,
    which matters mid-detect when Δ just shrank).  ``only`` (bool mask)
    restricts the work to the listed nodes' neighborhoods; entries
    outside it are meaningless."""
    src = net.edge_src
    dst_colors = colors[net.indices]
    ok = (dst_colors >= 0) & (dst_colors < num_colors)
    if only is not None:
        ok &= only[src]
    if not ok.any():
        return np.full(net.n, num_colors, dtype=np.int64)
    pairs = src[ok].astype(np.int64) * (num_colors + 1) + dst_colors[ok]
    uniq = np.unique(pairs)
    distinct = np.bincount(uniq // (num_colors + 1), minlength=net.n)
    return num_colors - distinct.astype(np.int64)


def conflict_victims(
    net: BroadcastNetwork,
    colors: np.ndarray,
    policy: str = "id",
    num_colors: int | None = None,
    edges: tuple[np.ndarray, np.ndarray] | None = None,
) -> np.ndarray:
    """Bool mask selecting one endpoint of every monochromatic edge — the
    node that loses its color and re-runs the repair kernel.

    ``policy`` (the ``conflict_victim`` config knob):

    * ``"id"`` — the larger-ID endpoint, the original rule.
    * ``"slack"`` — the endpoint with the *larger* palette: it has the
      most free colors, so it re-colors in the fewest tries, while the
      endpoint with smaller palette slack keeps its color (ROADMAP's
      smarter-victim item; ties fall back to the larger ID).

    ``edges`` passes a precomputed :func:`monochromatic_edges` result in,
    for callers that also need the conflict count (one edge scan, not two).
    """
    if policy not in VICTIM_POLICIES:
        raise ValueError(
            f"unknown conflict_victim policy {policy!r} (choose from "
            f"{VICTIM_POLICIES})"
        )
    hi, lo = edges if edges is not None else monochromatic_edges(net, colors)
    out = np.zeros(net.n, dtype=bool)
    if not hi.size:
        return out
    if policy == "id":
        out[hi] = True
        return out
    if num_colors is None:
        num_colors = net.delta + 1
    # Palette sizes only for the conflict endpoints' neighborhoods — the
    # conflict set is tiny next to the graph, so don't pay O(m log m).
    endpoints = np.zeros(net.n, dtype=bool)
    endpoints[hi] = True
    endpoints[lo] = True
    pal = _palette_sizes(net, colors, num_colors, only=endpoints)
    pick_hi = pal[hi] >= pal[lo]
    out[hi[pick_hi]] = True
    out[lo[~pick_hi]] = True
    return out


def conflict_repair(
    net: BroadcastNetwork,
    colors: np.ndarray,
    repair_set: np.ndarray,
    num_colors: int,
    cfg: ColoringConfig,
    seq: SeedSequencer,
    tag: object = 0,
    phase: str = "repair",
    mt_label: str = "repair-mt",
) -> tuple[np.ndarray, bool, int]:
    """The batched conflict-repair kernel shared by the dynamic engine and
    the shard reconciler: re-color ``repair_set`` (uncolored node ids)
    against the fixed fringe by re-running the existing kernels —
    MultiTrial on ``[0, num_colors)`` when the set is large enough
    (``dynamic_repair_*`` knobs), then TryColor rounds from true palettes.

    Returns ``(colors, fully_colored, trycolor_rounds)``; the input
    ``colors`` array is never mutated.  The fringe — colored neighbors of
    the repair set — participates as listeners only: its colors constrain
    palettes but never move.
    """
    repair_set = np.asarray(repair_set, dtype=np.int64)
    if repair_set.size == 0:
        return colors, True, 0
    state = ColoringState(net, num_colors=num_colors)
    state.colors = colors.copy()
    if (
        cfg.dynamic_repair_use_multitrial
        and repair_set.size >= cfg.dynamic_repair_multitrial_min
    ):
        mask = np.zeros(net.n, dtype=bool)
        mask[repair_set] = True
        lo = np.zeros(net.n, dtype=np.int64)
        hi = np.full(net.n, num_colors, dtype=np.int64)
        multitrial(
            state,
            mask,
            lo,
            hi,
            cfg,
            seq.spawn(mt_label, tag),
            phase=phase,
        )
    rounds = 0
    sampler = palette_sampler(state)
    while rounds < cfg.max_cleanup_rounds:
        pending = repair_set[state.colors[repair_set] < 0]
        if not pending.size:
            break
        try_color_round(
            state,
            pending,
            sampler,
            seq,
            phase=phase,
            round_tag=(tag, rounds),
        )
        rounds += 1
    done = bool((state.colors[repair_set] >= 0).all())
    return state.colors, done, rounds


@dataclass
class BatchReport:
    """Everything one batch produced (quality + cost, per ISSUE E14)."""

    index: int
    mode: str  # "repair" | "fallback"
    fallback_reason: str | None
    conflicts: int
    """Nodes whose color was invalidated by the delta (mono edges +
    out-of-palette); arrivals are counted separately."""
    arrivals: int
    departures: int
    edges_added: int
    edges_removed: int
    recolored: int
    active: int
    delta: int
    colors_used: int
    rounds: int
    total_bits: int
    proper: bool
    complete: bool
    seconds: float

    @property
    def conflict_fraction(self) -> float:
        """Conflicted share of active nodes — what the fallback
        threshold (``dynamic_fallback_fraction``) is compared against."""
        return self.conflicts / max(self.active, 1)

    @property
    def recolored_fraction(self) -> float:
        """Share of active nodes that changed color this batch — the
        paper's locality claim is that this stays near the churn rate."""
        return self.recolored / max(self.active, 1)

    def as_dict(self) -> dict:
        """JSON-safe flat dict of this report (CLI ``--json`` rows and
        the serve protocol's ``batch_report`` frames carry exactly this)."""
        return {
            "index": self.index,
            "mode": self.mode,
            "fallback_reason": self.fallback_reason,
            "conflicts": self.conflicts,
            "conflict_fraction": round(self.conflict_fraction, 6),
            "arrivals": self.arrivals,
            "departures": self.departures,
            "edges_added": self.edges_added,
            "edges_removed": self.edges_removed,
            "recolored": self.recolored,
            "recolored_fraction": round(self.recolored_fraction, 6),
            "active": self.active,
            "delta": self.delta,
            "colors_used": self.colors_used,
            "rounds": self.rounds,
            "total_bits": self.total_bits,
            "proper": self.proper,
            "complete": self.complete,
            "seconds": round(self.seconds, 6),
        }


@dataclass
class DynamicResult:
    """A full churn run: the initial coloring plus one report per batch."""

    n: int
    initial_rounds: int
    initial_seconds: float
    reports: list[BatchReport] = field(default_factory=list)

    def summary(self) -> dict:
        """Aggregate the per-batch reports into the run-level verdict:
        invariants held everywhere (``proper_all``/``complete_all``/
        ``colors_within_budget``), how local the maintenance was (mean/
        max recolored fraction), and the total round/bit cost."""
        reps = self.reports
        rec = [r.recolored_fraction for r in reps] or [0.0]
        con = [r.conflict_fraction for r in reps] or [0.0]
        return {
            "batches": len(reps),
            "fallbacks": sum(1 for r in reps if r.mode == "fallback"),
            "mean_conflict_fraction": float(np.mean(con)),
            "mean_recolored_fraction": float(np.mean(rec)),
            "max_recolored_fraction": float(np.max(rec)),
            "mean_repair_rounds": float(np.mean([r.rounds for r in reps] or [0])),
            "total_rounds": int(sum(r.rounds for r in reps)),
            "total_bits": int(sum(r.total_bits for r in reps)),
            "proper_all": bool(all(r.proper for r in reps)),
            "complete_all": bool(all(r.complete for r in reps)),
            "colors_within_budget": bool(
                all(r.colors_used <= r.delta + 1 for r in reps)
            ),
            "initial_rounds": self.initial_rounds,
        }


class DynamicColoring:
    """Maintains a proper (Δ_t+1)-coloring across update batches.

    >>> from repro.graphs.families import make_churn
    >>> sched = make_churn("gnp-churn", 500, 12.0, seed=3, batches=4)
    >>> result = DynamicColoring(sched.initial).run(sched)
    >>> assert result.summary()["proper_all"]

    Parameters
    ----------
    graph:
        The initial ``(n, edges)`` pair (or a :class:`ChurnSchedule`,
        whose initial graph is taken).  The node universe is fixed at n.
    config:
        :class:`ColoringConfig`; the ``dynamic_*`` knobs drive the
        repair-vs-fallback policy.
    initial_colors:
        Warm-start path: when given, the engine *adopts* this coloring
        instead of running the full pipeline on the initial graph.  Used
        by :func:`repro.serve.snapshot.restore_engine` (crash recovery /
        warm restarts) and by ``repro serve`` when the initial coloring
        comes from :class:`~repro.shard.ShardedColoring`.  The caller
        vouches that the coloring is proper and complete on ``active``
        nodes — the usual post-batch invariant; ``initial_rounds`` /
        ``initial_seconds`` are reported as 0 (the cost was paid
        elsewhere).
    active:
        Active-node mask to adopt alongside ``initial_colors`` (default:
        all nodes active).  Only meaningful on the warm-start path.
    batch_index:
        The timestep to resume at (default 0).  Per-batch seed streams
        are a pure function of ``(config.seed, batch_index)``, so a
        restored engine replays the exact color decisions the
        uninterrupted engine would have made from this point on — the
        restore ≡ never-crashed property tests/test_serve.py pins.
    """

    def __init__(
        self,
        graph,
        config: ColoringConfig | None = None,
        *,
        initial_colors: np.ndarray | None = None,
        active: np.ndarray | None = None,
        batch_index: int = 0,
    ):
        if isinstance(graph, ChurnSchedule):
            graph = graph.initial
        self.cfg = config or ColoringConfig.practical()
        if isinstance(graph, BroadcastNetwork):
            self.net = graph
        else:
            self.net = BroadcastNetwork(graph)
        self.net.bandwidth_bits = self.cfg.bandwidth_bits(self.net.n)
        self.seq = SeedSequencer(self.cfg.seed).spawn("dynamic")
        self.active = np.ones(self.net.n, dtype=bool)
        self._batch_index = int(batch_index)

        if initial_colors is not None:
            colors = np.asarray(initial_colors, dtype=np.int64).copy()
            if colors.shape != (self.net.n,):
                raise ValueError(
                    f"initial_colors shape {colors.shape} != ({self.net.n},)"
                )
            self.colors = colors
            if active is not None:
                adopted = np.asarray(active, dtype=bool).copy()
                if adopted.shape != (self.net.n,):
                    raise ValueError(
                        f"active shape {adopted.shape} != ({self.net.n},)"
                    )
                self.active = adopted
            self.initial_rounds = 0
            self.initial_seconds = 0.0
            return

        t0 = time.perf_counter()
        rounds0 = self.net.metrics.total_rounds
        result = BroadcastColoring(self.net, self.cfg).run()
        self.colors = result.colors.copy()
        self.initial_rounds = self.net.metrics.total_rounds - rounds0
        self.initial_seconds = time.perf_counter() - t0

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Size of the (fixed) node universe [n]."""
        return self.net.n

    @property
    def batch_index(self) -> int:
        """The next timestep to apply — equivalently, how many batches
        this engine has already absorbed (snapshots persist it so a
        restored engine resumes the same seed streams)."""
        return self._batch_index

    def colors_used(self) -> int:
        """Number of distinct colors assigned to active nodes (the
        quantity bounded by Δ_t+1 after every batch)."""
        used = self.colors[self.active & (self.colors >= 0)]
        return int(np.unique(used).size) if used.size else 0

    def is_proper(self) -> bool:
        """True when no edge of the *current* topology is monochromatic."""
        src, dst = self.net.edge_src, self.net.indices
        c = self.colors
        return not bool(((c[src] >= 0) & (c[src] == c[dst])).any())

    def is_complete(self) -> bool:
        """True when every active node holds a color."""
        return bool((self.colors[self.active] >= 0).all())

    # ------------------------------------------------------------------
    def apply_batch(self, batch: UpdateBatch) -> BatchReport:
        """Apply one update batch and restore the coloring invariant."""
        cfg, net = self.cfg, self.net
        obs.enable_from_config(cfg)
        metrics = net.metrics
        t = self._batch_index
        self._batch_index += 1
        batch_span = obs.start_span("dynamic.apply_batch", index=t)
        t0 = time.perf_counter()
        rounds_before = metrics.total_rounds
        bits_before = metrics.total_bits
        batch.validate(net.n)

        # ---- 1. delta merge (departures expand to incident edges) ----
        deletions = batch.delete_edges
        dep_incident = np.empty((0, 2), dtype=np.int64)
        if batch.departures.size:
            dep_mask = np.zeros(net.n, dtype=bool)
            dep_mask[batch.departures] = True
            und = net.undirected_edges()
            dep_incident = und[dep_mask[und[:, 0]] | dep_mask[und[:, 1]]]
            deletions = np.concatenate([deletions.reshape(-1, 2), dep_incident])
        with metrics.time_phase("dynamic/delta"):
            delta_rep = net.apply_delta(
                batch.insert_edges,
                deletions,
                phase="dynamic/delta",
                silent_nodes=batch.departures,
            )
        self.active[batch.departures] = False
        self.colors[batch.departures] = -1
        self.active[batch.arrivals] = True
        num_colors = net.delta + 1

        # ---- 2. conflict detection on the new CSR --------------------
        with metrics.time_phase("dynamic/detect"):
            c = self.colors
            conflict = self._detect_conflicts(batch, num_colors)
            c[conflict] = -1
            # Touched *live* nodes re-broadcast their color so every
            # changed neighborhood agrees on the post-delta state: one
            # round.  Departed nodes are powered down and stay silent —
            # their neighbors learn the loss from the delta announcements.
            touched = np.zeros(net.n, dtype=bool)
            for arr in (batch.insert_edges, batch.delete_edges, dep_incident):
                if arr.size:
                    touched[arr.reshape(-1)] = True
            touched[batch.arrivals] = True
            touched[batch.departures] = False
            net.account_vector_round(
                int(touched.sum()),
                bits_for_color(max(net.delta, 1)),
                phase="dynamic/detect",
            )
        conflicts = int(conflict.sum())

        # ---- 3/4. repair or fallback ---------------------------------
        repair_set = np.flatnonzero(self.active & (self.colors < 0))
        frac = conflicts / max(int(self.active.sum()), 1)
        mode, reason = "repair", None
        if frac > cfg.dynamic_fallback_fraction:
            mode, reason = "fallback", "fraction"
        else:
            done = self._repair(repair_set, num_colors, t)
            if not done:
                mode, reason = "fallback", "repair-stalled"
        if mode == "fallback":
            self._full_recolor(t)

        recolored = (
            int(self.active.sum()) if mode == "fallback" else int(repair_set.size)
        )
        obs.end_span(batch_span)
        obs.count("repro_dynamic_batches_total", mode=mode)
        obs.observe("repro_dynamic_batch_us", (time.perf_counter() - t0) * 1e6)
        return BatchReport(
            index=t,
            mode=mode,
            fallback_reason=reason,
            conflicts=conflicts,
            arrivals=int(batch.arrivals.size),
            departures=int(batch.departures.size),
            edges_added=delta_rep.edges_added,
            edges_removed=delta_rep.edges_removed,
            recolored=recolored,
            active=int(self.active.sum()),
            delta=net.delta,
            colors_used=self.colors_used(),
            rounds=metrics.total_rounds - rounds_before,
            total_bits=metrics.total_bits - bits_before,
            proper=self.is_proper(),
            complete=self.is_complete(),
            seconds=time.perf_counter() - t0,
        )

    def _detect_conflicts(self, batch: UpdateBatch, num_colors: int) -> np.ndarray:
        """Bool mask of nodes whose color the delta invalidated: one
        victim per monochromatic edge of the new CSR, plus every active
        node whose color fell out of the shrunken palette.  Does not
        mutate ``self.colors`` — the caller clears the victims.

        Overridable seam: :class:`~repro.shard.dynamic.ShardedDynamicColoring`
        replaces the full edge scan with a delta-routed check over the
        batch's inserted edges (the only edges that can become
        monochromatic while the pre-batch invariant holds)."""
        c = self.colors
        conflict = conflict_victims(
            self.net, c, policy=self.cfg.conflict_victim, num_colors=num_colors
        )
        conflict |= self.active & (c >= num_colors)
        return conflict

    def _repair(self, repair_set: np.ndarray, num_colors: int, t: int) -> bool:
        """Local repair: the shared :func:`conflict_repair` kernel on the
        conflict set only.  Returns False when the TryColor mop-up hit the
        round cap (the caller then falls back)."""
        if repair_set.size == 0:
            return True
        with self.net.metrics.time_phase("dynamic/repair"):
            self.colors, done, _ = conflict_repair(
                self.net,
                self.colors,
                repair_set,
                num_colors,
                self.cfg,
                self.seq,
                tag=t,
                phase="dynamic/repair",
                mt_label="dyn-mt",
            )
        return done

    def _full_recolor(self, t: int) -> None:
        """Recolor-from-scratch on the current topology (the fallback and
        the baseline bench_dynamic compares repair against).  Inactive
        nodes are isolated by construction; their pipeline colors are
        discarded so they stay dark."""
        with self.net.metrics.time_phase("dynamic/fallback"):
            cfg = self.cfg.with_seed(self.seq.derive_seed("fallback", t))
            result = BroadcastColoring(self.net, cfg).run()
            colors = result.colors.copy()
            colors[~self.active] = -1
            self.colors = colors

    # ------------------------------------------------------------------
    def run(self, batches: ChurnSchedule | Iterable[UpdateBatch]) -> DynamicResult:
        """Apply every batch in sequence; returns the per-batch reports.

        When handed a full :class:`ChurnSchedule`, the schedule's initial
        graph must be the one this engine was built on (the usual call
        pattern is ``DynamicColoring(sched).run(sched)``).
        """
        result = DynamicResult(
            n=self.n,
            initial_rounds=self.initial_rounds,
            initial_seconds=self.initial_seconds,
        )
        for batch in batches:
            result.reports.append(self.apply_batch(batch))
        return result
