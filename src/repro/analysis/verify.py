"""Coloring verification oracles — the ground truth every experiment and
property test trusts."""

from __future__ import annotations

import numpy as np

from repro.simulator.network import BroadcastNetwork

__all__ = ["verify_coloring", "assert_proper_coloring", "coloring_summary"]


def verify_coloring(
    net: BroadcastNetwork, colors: np.ndarray, num_colors: int | None = None
) -> dict:
    """Full audit: propriety, completeness, palette bound.

    Returns a dict with `proper`, `complete`, `within_palette`,
    `monochromatic_edges`, `colors_used`.
    """
    colors = np.asarray(colors, dtype=np.int64)
    if colors.size != net.n:
        raise ValueError("colors array has wrong length")
    num_colors = num_colors if num_colors is not None else net.delta + 1
    src, dst = net.edge_src, net.indices
    mono = (colors[src] >= 0) & (colors[src] == colors[dst])
    used = colors[colors >= 0]
    return {
        "proper": not bool(mono.any()),
        "complete": bool((colors >= 0).all()),
        "within_palette": bool((used < num_colors).all()) if used.size else True,
        # each undirected monochromatic edge appears twice in CSR
        "monochromatic_edges": int(mono.sum()) // 2,
        "colors_used": int(np.unique(used).size) if used.size else 0,
    }


def assert_proper_coloring(
    net: BroadcastNetwork, colors: np.ndarray, num_colors: int | None = None
) -> None:
    """Raise AssertionError with a readable message on any violation."""
    audit = verify_coloring(net, colors, num_colors)
    assert audit["proper"], f"{audit['monochromatic_edges']} monochromatic edges"
    assert audit["complete"], "coloring incomplete"
    assert audit["within_palette"], "color outside [num_colors]"


def coloring_summary(net: BroadcastNetwork, colors: np.ndarray) -> dict:
    """Color-count statistics for reporting."""
    audit = verify_coloring(net, colors)
    audit["delta_plus_one"] = net.delta + 1
    audit["n"] = net.n
    return audit
