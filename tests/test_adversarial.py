"""Adversarial-condition tests.

Lemma 3.5 explicitly claims the SCT bound holds "even if the random bits
outside of K are chosen adversarially"; the model enforces bandwidth and
memory limits that protocols must not be able to cheat.  These tests put
hostile inputs against those guarantees.
"""

import numpy as np
import pytest

from repro.config import ColoringConfig
from repro.core.cliques import compute_clique_info
from repro.core.sct import synchronized_color_trial
from repro.core.state import ColoringState, ImproperColoring
from repro.decomposition.acd import AlmostCliqueDecomposition
from repro.graphs.generators import clique_blob_graph, complete_graph
from repro.simulator.messages import Broadcast
from repro.simulator.network import BandwidthExceeded, BroadcastNetwork
from repro.simulator.rng import SeedSequencer


class TestAdversarialSCT:
    """Lemma 3.5's adversarial clause: external colors chosen to hurt."""

    def _setup(self, seed=0):
        cfg = ColoringConfig.practical(x_full_factor=0.02, seed=seed)
        # One clique of 48 + 48 external attackers, one per member.
        size = 48
        edges = [(i, j) for i in range(size) for j in range(i + 1, size)]
        edges += [(i, size + i) for i in range(size)]  # pendant attackers
        net = BroadcastNetwork((2 * size, edges), bandwidth_bits=cfg.bandwidth_bits(96))
        labels = np.concatenate([np.zeros(size, dtype=np.int64), np.full(size, -1)])
        acd = AlmostCliqueDecomposition(labels=labels, eps=cfg.eps)
        state = ColoringState(net)
        info = compute_clique_info(net, acd, cfg, num_colors=state.num_colors)
        return cfg, net, state, info, size

    def test_adversarial_external_colors_bounded_damage(self):
        """The adversary colors every attacker with the clique-palette color
        its victim is most likely to receive.  Per Lemma 3.5 the trial
        survives: each external neighbor kills at most its own victim, so
        leftovers stay ≤ e_K·|K| / Δ-ish — here ≤ the number of attackers,
        and in practice far less because π is random."""
        cfg, net, state, info, size = self._setup()
        # Adversary: attacker i takes color i (trying to shadow the i-th
        # palette color, a worst-case-flavored strategy).
        attackers = np.arange(size, 2 * size)
        state.adopt(attackers, np.arange(size) % state.num_colors)
        rep = synchronized_color_trial(state, info, {}, cfg, SeedSequencer(1))
        leftover = sum(rep.leftover_by_clique.values())
        assert leftover <= size // 2  # adversary can't break the trial
        state.verify()

    def test_adversarial_colors_never_break_propriety(self):
        cfg, net, state, info, size = self._setup(seed=3)
        attackers = np.arange(size, 2 * size)
        # All attackers pick THE SAME low color — maximal shadowing of one
        # palette slot.
        state.adopt(attackers, np.zeros(size, dtype=np.int64))
        synchronized_color_trial(state, info, {}, cfg, SeedSequencer(3))
        state.verify()

    def test_adversary_cannot_starve_multiple_victims_per_attacker(self):
        """Each attacker is adjacent to one member: total damage is bounded
        by the number of attackers across any adversarial choice (tried on
        several strategies)."""
        for strategy in ("mirror", "same", "shifted"):
            cfg, net, state, info, size = self._setup(seed=5)
            attackers = np.arange(size, 2 * size)
            if strategy == "mirror":
                cols = np.arange(size) % state.num_colors
            elif strategy == "same":
                cols = np.full(size, 7 % state.num_colors)
            else:
                cols = (np.arange(size) + 13) % state.num_colors
            state.adopt(attackers, cols.astype(np.int64))
            rep = synchronized_color_trial(state, info, {}, cfg, SeedSequencer(7))
            assert sum(rep.leftover_by_clique.values()) <= size


class TestModelEnforcement:
    def test_oversized_broadcast_rejected(self):
        net = BroadcastNetwork((2, [(0, 1)]), bandwidth_bits=16)
        with pytest.raises(BandwidthExceeded):
            net.broadcast_round({0: Broadcast(payload="cheat", bits=17)})

    def test_oversized_vector_round_rejected(self):
        net = BroadcastNetwork((4, [(0, 1)]), bandwidth_bits=16)
        with pytest.raises(BandwidthExceeded):
            net.account_vector_round(4, 1000)

    def test_state_rejects_hostile_batch(self):
        net = BroadcastNetwork(complete_graph(4))
        state = ColoringState(net)
        # A "protocol bug" proposing the same color on an edge must not
        # silently corrupt the coloring.
        with pytest.raises(ImproperColoring):
            state.adopt(np.array([0, 1]), np.array([2, 2]))
        assert state.num_uncolored() == 4

    def test_pipeline_survives_degenerate_decomposition(self):
        """Feeding a *wrong* (all-one-clique) decomposition: the pipeline's
        phases degrade but the output contract (proper + complete) holds —
        the cleanup is the safety net, and its rounds are visible."""
        g = clique_blob_graph(2, 30, 10, 5, seed=1)
        n = g[0]
        hostile = AlmostCliqueDecomposition(
            labels=np.zeros(n, dtype=np.int64), eps=0.1
        )
        from repro.core.algorithm import BroadcastColoring

        res = BroadcastColoring(g, decomposition=hostile).run()
        assert res.proper and res.complete

    def test_pipeline_survives_all_sparse_decomposition(self):
        g = clique_blob_graph(2, 30, 10, 5, seed=2)
        n = g[0]
        hostile = AlmostCliqueDecomposition(
            labels=np.full(n, -1, dtype=np.int64), eps=0.1
        )
        from repro.core.algorithm import BroadcastColoring

        res = BroadcastColoring(g, decomposition=hostile).run()
        assert res.proper and res.complete
