"""E1 — the headline (Theorem 1): round complexity vs the O(log n) baseline.

Paper claim: the broadcast algorithm runs in O(log³ log n) rounds —
O(log* n) when Δ ∈ Ω(log³ n) — while the best previous broadcast-based
algorithm (Johansson's randomized trial coloring) needs Θ(log n).

Measured here: rounds (excluding the reported-separately cleanup) for both
algorithms on two families — clique blobs (tight palettes: the hard case
that forces the baseline into its Θ(log n) regime) and G(n, p) — as n
sweeps over an order of magnitude with Δ held near-constant.  The *shape*
comparison (growth_fit) is the reproduction target: the baseline should
fit "log n" best; ours should fit one of the flat/iterated-log shapes.
"""

from __future__ import annotations

import numpy as np
import pytest

from _common import matrix_payloads, print_table, ratio
from repro.analysis.fitting import growth_fit
from repro.baselines.johansson import johansson_coloring
from repro.config import ColoringConfig
from repro.core.algorithm import BroadcastColoring
from repro.graphs.generators import clique_blob_graph, gnp_graph
from repro.runner import mean_by

NS_BLOBS = [256, 512, 1024, 2048, 4096, 8192]
CLIQUE_SIZE = 64
SEEDS = [1, 2, 3]


def blob_graph(n: int, seed: int):
    return clique_blob_graph(
        max(1, n // CLIQUE_SIZE),
        CLIQUE_SIZE,
        anti_edges_per_clique=40,
        external_edges_per_clique=12,
        seed=seed,
    )


def run_ours(graph, seed: int) -> int:
    cfg = ColoringConfig.practical(seed=seed)
    res = BroadcastColoring(graph, cfg).run()
    assert res.proper and res.complete
    return res.rounds_algorithm


def run_baseline(graph, seed: int) -> int:
    res = johansson_coloring(graph, seed=seed)
    assert res.proper and res.complete
    return res.rounds


@pytest.mark.benchmark(group="E1-round-complexity")
def test_e1_quick_runner_matrix(benchmark):
    """CI smoke: the smallest corner of the E1 grid, driven end-to-end
    through the repro.runner matrix path the full campaigns use (the
    large-n version lives in benchmarks/specs/round_complexity.toml)."""
    matrix = {
        "family": "blobs",
        "n": [256, 512],
        "avg_degree": 48,
        "seed": SEEDS[:2],
        "algorithm": ["broadcast", "johansson"],
    }
    payloads = benchmark.pedantic(
        lambda: matrix_payloads(matrix), rounds=1, iterations=1
    )
    assert len(payloads) == 8 and all(p["proper"] for p in payloads)
    means = mean_by(payloads, ["algorithm", "n"])
    print_table(
        "E1 quick (runner matrix): mean rounds",
        ["algorithm", "n", "rounds"],
        [(a, n, f"{v:.1f}") for (a, n), v in means.items()],
    )
    # Both sizes measured for both algorithms, and the baseline actually
    # does work (≥ 1 round) — the shape claims need the full sweep.
    assert all(v >= 1 for v in means.values())


@pytest.mark.benchmark(group="E1-round-complexity")
def test_e1_blobs_ours_vs_johansson(benchmark):
    ours_series, base_series = [], []
    rows = []
    for n in NS_BLOBS:
        ours = np.mean([run_ours(blob_graph(n, s), s) for s in SEEDS])
        base = np.mean([run_baseline(blob_graph(n, s), s) for s in SEEDS])
        ours_series.append(ours)
        base_series.append(base)
        rows.append((n, f"{ours:.1f}", f"{base:.1f}", f"{ratio(base, ours):.2f}x"))
    print_table(
        "E1 clique blobs: rounds vs n (Δ ≈ 64 fixed)",
        ["n", "ours (alg rounds)", "johansson", "baseline/ours"],
        rows,
    )
    fit_ours = growth_fit(NS_BLOBS, ours_series)
    fit_base = growth_fit(NS_BLOBS, base_series)
    print(f"shape fit — ours: {fit_ours.best}; baseline: {fit_base.best}")

    # Shape claims: baseline grows with log n; ours is (near-)flat.
    assert fit_base.rmse["log n"] <= fit_base.rmse["constant"]
    assert fit_ours.best in ("constant", "log* n", "log log n", "log^3 log n")
    # Growth-factor comparison across the sweep.
    base_growth = base_series[-1] - base_series[0]
    ours_growth = ours_series[-1] - ours_series[0]
    assert base_growth >= ours_growth - 2

    benchmark.pedantic(
        lambda: run_ours(blob_graph(1024, 1), 1), rounds=1, iterations=1
    )
    benchmark.extra_info["ours_series"] = ours_series
    benchmark.extra_info["baseline_series"] = base_series


@pytest.mark.benchmark(group="E1-round-complexity")
def test_e1_gnp_sweep(benchmark):
    rows = []
    ours_series, base_series, ns = [], [], []
    for n in [512, 1024, 2048, 4096, 8192]:
        p = 48.0 / n  # hold expected degree at ~48
        ours = np.mean([run_ours(gnp_graph(n, p, seed=s), s) for s in SEEDS])
        base = np.mean([run_baseline(gnp_graph(n, p, seed=s), s) for s in SEEDS])
        ns.append(n)
        ours_series.append(ours)
        base_series.append(base)
        rows.append((n, f"{ours:.1f}", f"{base:.1f}"))
    print_table("E1 G(n, 48/n): rounds vs n", ["n", "ours", "johansson"], rows)
    # gnp is easy for both (big palettes); ours must not *lose* the shape
    # race: its growth over the sweep stays within the baseline's + slack.
    assert (ours_series[-1] - ours_series[0]) <= (base_series[-1] - base_series[0]) + 4
    benchmark.pedantic(lambda: run_ours(gnp_graph(1024, 48 / 1024, seed=1), 1), rounds=1, iterations=1)


@pytest.mark.benchmark(group="E1-round-complexity")
def test_e1_delta_above_polylog_flat(benchmark):
    """Theorem 1's second clause: for Δ ∈ Ω(log³ n) the round count is
    O(log* n) — i.e. flat across the n sweep (log* is constant ≤ 5 for any
    feasible n).  The workload honors the clause by scaling the clique
    size (≈ Δ) with log n, keeping Δ/(C log n) — the bucket capacity every
    §4 protocol is paced by — constant.  (At *fixed* Δ and growing n the
    claim's precondition fails and rounds creep up; that regime is what
    the first two benches cover.)"""
    rows = []
    series = []
    ns = []
    for n in NS_BLOBS:
        size = 8 * int(np.ceil(np.log2(n)))
        num = max(1, n // size)
        vals = []
        for s in SEEDS:
            g = clique_blob_graph(
                num, size, anti_edges_per_clique=size // 2,
                external_edges_per_clique=size // 5, seed=s,
            )
            vals.append(run_ours(g, s))
        ns.append(n)
        series.append(np.mean(vals))
        rows.append((n, size, f"{np.mean(vals):.1f}", int(np.max(vals))))
    print_table(
        "E1 flatness check (Δ scaled with log n — the Ω(log³ n) regime)",
        ["n", "clique size", "mean rounds", "max rounds"],
        rows,
    )
    spread = max(series) - min(series)
    assert spread <= 12, f"rounds should be near-flat across the sweep, spread={spread}"
    fit = growth_fit(ns, series)
    print(f"shape fit: {fit.best}")
    benchmark.pedantic(lambda: run_ours(blob_graph(512, 2), 2), rounds=1, iterations=1)
