"""Partial colorings, palettes, uncolored degrees and slack (§2, §2.2).

:class:`ColoringState` is the mutable heart of the pipeline.  It maintains
the paper's invariants as hard assertions:

* **monotonicity** — once ``C(v)`` is fixed it never changes (§2,
  "monotone sequence of colorings");
* **propriety** — :meth:`adopt` refuses any batch that would put the same
  color on two adjacent nodes (either against already-colored neighbors or
  within the adopting batch itself).

Everything is vectorized over the network's CSR arrays; palettes are
materialized per node on demand (the palette of Definition 2.10 is the
complement of the colored neighborhood).
"""

from __future__ import annotations

import numpy as np

from repro.simulator.network import BroadcastNetwork

__all__ = ["ColoringState", "ImproperColoring"]

UNCOLORED = -1


class ImproperColoring(AssertionError):
    """Raised when an adoption batch would violate propriety."""


class ColoringState:
    """A partial (Δ+1)-coloring of the network's graph.

    Parameters
    ----------
    net:
        The communication graph.
    num_colors:
        Palette size; defaults to Δ+1 (the problem's palette ``[Δ+1]``).
    """

    def __init__(self, net: BroadcastNetwork, num_colors: int | None = None):
        self.net = net
        self.n = net.n
        self.delta = net.delta
        self.num_colors = int(num_colors) if num_colors is not None else self.delta + 1
        if self.num_colors < 1:
            self.num_colors = 1
        self.colors = np.full(self.n, UNCOLORED, dtype=np.int64)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def uncolored_mask(self) -> np.ndarray:
        return self.colors < 0

    @property
    def colored_mask(self) -> np.ndarray:
        return self.colors >= 0

    def uncolored_nodes(self) -> np.ndarray:
        return np.flatnonzero(self.colors < 0)

    def num_uncolored(self) -> int:
        return int((self.colors < 0).sum())

    def uncolored_degrees(self) -> np.ndarray:
        """d̂(v): number of uncolored neighbors, for every node."""
        return self.net.subgraph_degrees(self.colors < 0)

    def neighbor_color_set(self, v: int) -> set[int]:
        """Colors currently used in N(v)."""
        cols = self.colors[self.net.neighbors(v)]
        return set(int(c) for c in cols[cols >= 0])

    def palette(self, v: int) -> np.ndarray:
        """Ψ(v) (Definition 2.10): colors of [num_colors] unused in N(v)."""
        used = np.zeros(self.num_colors, dtype=bool)
        cols = self.colors[self.net.neighbors(v)]
        cols = cols[(cols >= 0) & (cols < self.num_colors)]
        used[cols] = True
        return np.flatnonzero(~used).astype(np.int64)

    def palette_sizes(self) -> np.ndarray:
        """|Ψ(v)| for every node, vectorized: num_colors − #distinct colors
        in the neighborhood."""
        distinct = np.zeros(self.n, dtype=np.int64)
        src = self.net.edge_src
        dst_colors = self.colors[self.net.indices]
        ok = dst_colors >= 0
        if ok.any():
            # Count distinct (src, color) pairs via sorting.
            pairs = src[ok].astype(np.int64) * (self.num_colors + 1) + dst_colors[ok]
            uniq = np.unique(pairs)
            np.add.at(distinct, (uniq // (self.num_colors + 1)).astype(np.int64), 1)
        return self.num_colors - distinct

    def slack(self) -> np.ndarray:
        """s(v) = |Ψ(v)| − d̂(v) (Definition 2.11), for every node."""
        return self.palette_sizes() - self.uncolored_degrees()

    def count_colors_used(self) -> int:
        used = self.colors[self.colors >= 0]
        return int(np.unique(used).size) if used.size else 0

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def adopt(self, nodes: np.ndarray, new_colors: np.ndarray) -> None:
        """Color ``nodes[i]`` with ``new_colors[i]``; all-or-nothing with
        full validation (monotonicity, range, propriety)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        new_colors = np.asarray(new_colors, dtype=np.int64)
        if nodes.size == 0:
            return
        if nodes.size != new_colors.size:
            raise ValueError("nodes/new_colors length mismatch")
        if np.unique(nodes).size != nodes.size:
            raise ImproperColoring("duplicate nodes in adoption batch")
        if (self.colors[nodes] >= 0).any():
            raise ImproperColoring("monotonicity violation: recoloring a node")
        if ((new_colors < 0) | (new_colors >= self.num_colors)).any():
            raise ImproperColoring("color out of palette range")
        proposal = self.colors.copy()
        proposal[nodes] = new_colors
        # Edge-wise propriety check on the would-be coloring, restricted to
        # edges touching the batch.
        touched = np.zeros(self.n, dtype=bool)
        touched[nodes] = True
        src, dst = self.net.edge_src, self.net.indices
        rel = touched[src]
        bad = (
            rel
            & (proposal[src] >= 0)
            & (proposal[src] == proposal[dst])
        )
        if bad.any():
            k = int(np.flatnonzero(bad)[0])
            raise ImproperColoring(
                f"edge ({src[k]}, {dst[k]}) would be monochromatic "
                f"(color {proposal[src[k]]})"
            )
        self.colors = proposal

    # ------------------------------------------------------------------
    # Global checks
    # ------------------------------------------------------------------
    def is_proper(self) -> bool:
        """No monochromatic edge among colored endpoints."""
        src, dst = self.net.edge_src, self.net.indices
        c = self.colors
        bad = (c[src] >= 0) & (c[src] == c[dst])
        return not bool(bad.any())

    def is_complete(self) -> bool:
        return bool((self.colors >= 0).all())

    def verify(self) -> None:
        """Assert the full (Δ+1)-coloring contract."""
        if not self.is_proper():
            raise ImproperColoring("coloring is not proper")
        if (self.colors >= self.num_colors).any():
            raise ImproperColoring("color out of range")
