"""Relabel (Algorithm 3): O(log log n)-bit labels unique within a set.

Permutations of poly(log n)-sized node sets must fit into O(log n)-bit
messages; with Θ(log n)-bit node IDs they do not.  Relabel fixes this:
every node of S samples x = ⌈C log n / log log n⌉ candidate labels from
[|S|²·log n] (each label costs O(log log n) bits when |S| = poly log n),
collisions per candidate index j are detected by common neighbors (S sits
inside a 2-hop-connected set), and the smallest collision-free index wins.

Lemma 4.3: success w.h.p. in O(1) rounds.  On the (measurable) failure
event the implementation falls back to rank-by-ID labels and flags it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import ColoringConfig
from repro.simulator.network import BroadcastNetwork
from repro.simulator.rng import SeedSequencer
from repro.util.bitio import bits_for_int
from repro.util.mathx import poly_log

__all__ = ["RelabelResult", "relabel"]


@dataclass
class RelabelResult:
    nodes: np.ndarray  # the set S
    labels: np.ndarray  # new labels, unique within S
    label_universe: int  # labels live in [label_universe]
    succeeded: bool  # False = fell back to rank labels
    chosen_index: int  # which candidate index j won (-1 on fallback)
    rounds: int

    @property
    def label_bits(self) -> int:
        return bits_for_int(self.label_universe)


def relabel(
    net: BroadcastNetwork,
    nodes: np.ndarray,
    cfg: ColoringConfig,
    seq: SeedSequencer,
    phase: str = "sct/relabel",
    tag: object = 0,
    account: bool = True,
) -> RelabelResult:
    """Run Algorithm 3 on the set ``nodes`` (inside a 2-hop-connected T).

    Rounds: one batch for the x candidate labels, one for the collision
    bitmaps.  ``account=False`` skips metric charging — used when many
    disjoint buckets run Relabel *in parallel* (Algorithm 4/5 step 3) and
    the caller charges the shared rounds once.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    s = nodes.size
    n = net.n
    if s == 0:
        return RelabelResult(
            nodes=nodes,
            labels=np.empty(0, dtype=np.int64),
            label_universe=1,
            succeeded=True,
            chosen_index=0,
            rounds=0,
        )

    # x = ⌈C log n / log log n⌉ candidate indices.
    loglog = max(np.log2(max(np.log2(max(n, 4)), 2.0)), 1.0)
    x = max(1, int(np.ceil(cfg.log_threshold(n) / loglog)))
    universe = max(2, int(s * s * max(np.log2(max(n, 2)), 1.0)))

    rng = seq.stream("relabel", phase, tag)
    candidates = rng.integers(0, universe, size=(s, x))

    chosen = -1
    for j in range(x):
        if np.unique(candidates[:, j]).size == s:
            chosen = j
            break

    # Rounds: step 1 broadcasts x labels of bits_for_int(universe) bits
    # each; step 2 broadcasts an x-bit collision map (detection by common
    # neighbors — S is 2-hop connected, so every colliding pair is seen).
    label_bits = bits_for_int(universe)
    per_round_labels = max(1, (net.bandwidth_bits or x * label_bits) // label_bits)
    rounds_step1 = int(np.ceil(x / per_round_labels))
    if account:
        for _ in range(rounds_step1):
            net.account_vector_round(
                s, min(x, per_round_labels) * label_bits, phase=phase
            )
        net.account_vector_round(s, x, phase=phase)
    rounds = rounds_step1 + 1

    if chosen >= 0:
        labels = candidates[:, chosen].astype(np.int64)
        return RelabelResult(
            nodes=nodes,
            labels=labels,
            label_universe=universe,
            succeeded=True,
            chosen_index=chosen,
            rounds=rounds,
        )
    # Fallback (measurably rare, per Lemma 4.3): rank within sorted IDs.
    order = np.argsort(nodes)
    labels = np.empty(s, dtype=np.int64)
    labels[order] = np.arange(s)
    return RelabelResult(
        nodes=nodes,
        labels=labels,
        label_universe=max(s, 2),
        succeeded=False,
        chosen_index=-1,
        rounds=rounds,
    )
