"""Tests for the workload generators (repro.graphs.generators)."""

import numpy as np
import pytest

from repro.graphs.generators import (
    clique_blob_graph,
    complete_graph,
    empty_graph,
    geometric_graph,
    gnp_graph,
    hard_mix_graph,
    planted_acd_graph,
    random_regular_graph,
    ring_graph,
    star_graph,
)
from repro.simulator.network import BroadcastNetwork


class TestBasicShapes:
    def test_empty_graph(self):
        n, e = empty_graph(5)
        assert n == 5 and e.shape == (0, 2)

    def test_complete_graph(self):
        n, e = complete_graph(6)
        assert n == 6 and e.shape[0] == 15

    def test_ring(self):
        n, e = ring_graph(10)
        net = BroadcastNetwork((n, e))
        assert (net.degrees == 2).all()

    def test_ring_tiny(self):
        n, e = ring_graph(2)
        assert e.shape[0] == 0

    def test_star(self):
        n, e = star_graph(7)
        net = BroadcastNetwork((n, e))
        assert net.degree(0) == 6
        assert net.degree(3) == 1


class TestGnp:
    def test_determinism(self):
        a = gnp_graph(50, 0.2, seed=1)[1]
        b = gnp_graph(50, 0.2, seed=1)[1]
        assert np.array_equal(a, b)

    def test_seed_changes_graph(self):
        a = gnp_graph(50, 0.2, seed=1)[1]
        b = gnp_graph(50, 0.2, seed=2)[1]
        assert not np.array_equal(a, b)

    def test_p_zero_empty(self):
        assert gnp_graph(20, 0.0, seed=0)[1].shape[0] == 0

    def test_p_one_complete(self):
        n, e = gnp_graph(10, 1.0, seed=0)
        assert e.shape[0] == 45

    def test_edge_count_concentrates(self):
        n, e = gnp_graph(200, 0.1, seed=3)
        expected = 0.1 * 200 * 199 / 2
        assert abs(e.shape[0] - expected) < 0.25 * expected

    def test_large_n_blocked_path(self):
        # Exercise the row-block sampling branch.
        n, e = gnp_graph(4000, 0.001, seed=4)
        assert n == 4000
        assert e.shape[0] > 0
        assert e.max() < 4000


class TestRandomRegular:
    def test_degree_bounded(self):
        n, e = random_regular_graph(100, 6, seed=1)
        net = BroadcastNetwork((n, e))
        assert net.delta <= 6

    def test_odd_product_fixed(self):
        # n*d odd → generator bumps d.
        n, e = random_regular_graph(5, 3, seed=0)
        assert n == 5

    def test_d_too_large_raises(self):
        with pytest.raises(ValueError):
            random_regular_graph(4, 5, seed=0)


class TestCliqueBlobs:
    def test_sizes(self):
        n, e = clique_blob_graph(3, 10, seed=0)
        assert n == 30

    def test_pure_cliques(self):
        n, e = clique_blob_graph(2, 5, 0, 0, seed=0)
        net = BroadcastNetwork((n, e))
        # Each node sees exactly its 4 clique-mates.
        assert (net.degrees == 4).all()

    def test_anti_edges_removed(self):
        full = clique_blob_graph(1, 10, 0, 0, seed=0)[1].shape[0]
        holed = clique_blob_graph(1, 10, 5, 0, seed=0)[1].shape[0]
        assert holed == full - 5

    def test_external_edges_added(self):
        n, e = clique_blob_graph(2, 6, 0, 3, seed=0)
        inside = 2 * 15
        assert e.shape[0] >= inside + 3

    def test_determinism(self):
        a = clique_blob_graph(2, 8, 3, 2, seed=5)[1]
        b = clique_blob_graph(2, 8, 3, 2, seed=5)[1]
        assert np.array_equal(a, b)


class TestPlantedACD:
    def test_ground_truth_block_structure(self):
        eps = 0.1
        n, e = planted_acd_graph(3, 30, eps, sparse_nodes=20, seed=1)
        assert n == 3 * 30 + 20
        net = BroadcastNetwork((n, e))
        # Dense nodes have most neighbors in their own block.
        for v in (0, 35, 70):
            block = v // 30
            nbrs = net.neighbors(v)
            inside = ((nbrs >= block * 30) & (nbrs < (block + 1) * 30)).sum()
            assert inside >= 0.8 * nbrs.size

    def test_sparse_periphery_isolated_from_dense(self):
        n, e = planted_acd_graph(2, 20, 0.1, sparse_nodes=30, seed=2)
        dense_n = 40
        cross = [(u, v) for u, v in e if (u < dense_n) != (v < dense_n)]
        assert cross == []

    def test_degree_discipline_for_2b(self):
        # Internal degree of members must dominate (1-eps)*Δ.
        eps = 0.1
        n, e = planted_acd_graph(4, 50, eps, seed=3)
        net = BroadcastNetwork((n, e))
        threshold = (1 - eps) * net.delta
        labels = np.arange(n) // 50
        for v in range(0, n, 7):
            nbrs = net.neighbors(v)
            inside = (labels[nbrs] == labels[v]).sum()
            assert inside >= threshold


class TestGeometric:
    def test_radius_respected(self):
        n, e = geometric_graph(80, 0.2, seed=1)
        assert n == 80
        # Regenerate points to verify distances.
        rng = np.random.default_rng(1)
        pts = rng.random((80, 2))
        for u, v in e:
            d = np.hypot(*(pts[u] - pts[v]))
            assert d <= 0.2 + 1e-9

    def test_zero_radius_empty(self):
        n, e = geometric_graph(30, 0.0, seed=1)
        assert e.shape[0] == 0

    def test_determinism(self):
        a = geometric_graph(40, 0.15, seed=9)[1]
        b = geometric_graph(40, 0.15, seed=9)[1]
        assert np.array_equal(a, b)


class TestHardMix:
    def test_total_size(self):
        n, e = hard_mix_graph(2, 10, 50, 0.05, 5, seed=0)
        assert n == 20 + 50

    def test_has_bridges(self):
        n, e = hard_mix_graph(2, 10, 50, 0.05, 5, seed=0)
        bridges = [(u, v) for u, v in e if (u < 20) != (v < 20)]
        assert len(bridges) >= 1

    def test_valid_edge_range(self):
        n, e = hard_mix_graph(3, 8, 30, 0.1, 10, seed=2)
        assert e.min() >= 0 and e.max() < n
