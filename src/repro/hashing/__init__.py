"""Pseudorandomness substrate: seed-expansion PRGs and integer hash
families.

This package implements the bandwidth-saving devices the paper leans on:

* representative sets (Lemma 2.14 / [HN23]): a node broadcasts one short
  seed, every neighbor deterministically expands the same pseudorandom
  color list — :mod:`repro.hashing.prg`;
* shared hash functions for similarity sketches (the ACD of Lemma 2.5 /
  [FGH+23]) and for Relabel's label sampling — :mod:`repro.hashing.fingerprints`.
"""

from repro.hashing.prg import expand_colors, expand_indices, RepresentativeSampler
from repro.hashing.fingerprints import (
    hash_u64,
    hash_array_u64,
    minwise_fingerprints,
    pack_fingerprints,
    packed_words_per_node,
)

__all__ = [
    "expand_colors",
    "expand_indices",
    "RepresentativeSampler",
    "hash_u64",
    "hash_array_u64",
    "minwise_fingerprints",
    "pack_fingerprints",
    "packed_words_per_node",
]
