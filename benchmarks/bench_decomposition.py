"""E3 — the almost-clique decomposition (Lemma 2.5).

Paper claim: an ε-almost-clique decomposition is computable in O(ε⁻⁴)
BCONGEST rounds w.h.p.  Measured: (a) validator-clean output across
planted workloads and seeds; (b) sketch rounds growing as the sample
budget (∝ ε⁻⁴ for fixed accuracy) grows; (c) exact-vs-distributed
agreement.
"""

from __future__ import annotations

import numpy as np
import pytest

from _common import print_table
from repro.config import ColoringConfig
from repro.decomposition.acd import decompose_distributed, decompose_exact
from repro.decomposition.validation import validate_decomposition
from repro.graphs.generators import planted_acd_graph
from repro.simulator.network import BroadcastNetwork


def planted_net(cfg, num=8, size=56, sparse=150, seed=0):
    g = planted_acd_graph(num, size, cfg.eps, sparse_nodes=sparse, seed=seed)
    return BroadcastNetwork(g, bandwidth_bits=cfg.bandwidth_bits(g[0]))


@pytest.mark.benchmark(group="E3-decomposition")
def test_e3_validator_clean_across_seeds(benchmark):
    cfg = ColoringConfig.practical()
    rows = []
    ok_count = 0
    for seed in range(5):
        net = planted_net(cfg, seed=seed)
        acd = decompose_distributed(net, cfg)
        rep = validate_decomposition(net, acd)
        ok_count += rep.ok
        rows.append(
            (seed, acd.num_cliques, rep.sparse_count, acd.rounds_used, rep.ok)
        )
    print_table(
        "E3 distributed ACD on planted graphs (8 cliques ground truth)",
        ["seed", "cliques", "sparse", "rounds", "valid"],
        rows,
    )
    assert ok_count == 5
    benchmark.pedantic(
        lambda: decompose_distributed(planted_net(cfg, seed=9), cfg),
        rounds=1,
        iterations=1,
    )


@pytest.mark.benchmark(group="E3-decomposition")
def test_e3_rounds_scale_with_sample_budget(benchmark):
    """Rounds ∝ samples/(bandwidth/b): the ε⁻⁴ dependence enters through
    the sample budget needed for ±Θ(ε) similarity accuracy."""
    rows = []
    prev_rounds = 0
    for eps_label, samples in [("0.2", 64), ("0.1", 256), ("0.05", 1024)]:
        cfg = ColoringConfig.practical(acd_minhash_samples=samples)
        net = planted_net(cfg, num=4, size=48, sparse=50, seed=1)
        acd = decompose_distributed(net, cfg)
        sketch_rounds = net.metrics.rounds_in("acd/sketch")
        rows.append((eps_label, samples, sketch_rounds, acd.rounds_used))
        assert sketch_rounds >= prev_rounds
        prev_rounds = sketch_rounds
    print_table(
        "E3 sketch rounds vs sample budget (the O(ε⁻⁴) knob)",
        ["target eps", "samples", "sketch rounds", "total ACD rounds"],
        rows,
    )
    cfg = ColoringConfig.practical()
    benchmark.pedantic(
        lambda: decompose_distributed(planted_net(cfg, num=4, size=48, seed=2), cfg),
        rounds=1,
        iterations=1,
    )


@pytest.mark.benchmark(group="E3-decomposition")
def test_e3_distributed_matches_exact(benchmark):
    cfg = ColoringConfig.practical()
    rows = []
    for seed in range(3):
        net = planted_net(cfg, seed=10 + seed)
        exact = decompose_exact(net, cfg)
        dist = decompose_distributed(net, cfg)
        agree = True
        if dist.num_cliques == exact.num_cliques:
            for c in range(dist.num_cliques):
                if np.unique(exact.labels[dist.members(c)]).size != 1:
                    agree = False
        else:
            agree = False
        rows.append((10 + seed, exact.num_cliques, dist.num_cliques, agree))
        assert agree
    print_table(
        "E3 exact vs distributed agreement",
        ["seed", "exact cliques", "distributed cliques", "same partition"],
        rows,
    )
    net = planted_net(cfg, seed=20)
    benchmark.pedantic(lambda: decompose_exact(net, cfg), rounds=1, iterations=1)
