"""Tests for the pseudorandomness substrate (repro.hashing)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.fingerprints import (
    hash_array_u64,
    hash_u64,
    minwise_fingerprints,
    refresh_minwise_fingerprints,
)
from repro.hashing.prg import RepresentativeSampler, expand_colors, expand_indices
from repro.simulator.network import BroadcastNetwork
from repro.graphs.generators import complete_graph


class TestSplitmix:
    def test_scalar_deterministic(self):
        assert hash_u64(42, salt=1) == hash_u64(42, salt=1)

    def test_salt_matters(self):
        assert hash_u64(42, salt=1) != hash_u64(42, salt=2)

    def test_vector_matches_scalar(self):
        vals = np.array([0, 1, 7, 123456], dtype=np.int64)
        out = hash_array_u64(vals, salt=3)
        for v, h in zip(vals, out):
            assert int(h) == hash_u64(int(v), salt=3)

    def test_range_is_64bit(self):
        h = hash_array_u64(np.arange(100), salt=0)
        assert h.dtype == np.uint64

    def test_avalanche_rough(self):
        # Adjacent inputs should differ in ~half the bits on average.
        h = hash_array_u64(np.arange(1000), salt=0)
        diffs = np.bitwise_xor(h[:-1], h[1:])
        popcounts = np.array([bin(int(d)).count("1") for d in diffs])
        assert 24 < popcounts.mean() < 40


class TestExpand:
    def test_deterministic(self):
        assert np.array_equal(expand_indices(9, 10, 100), expand_indices(9, 10, 100))

    def test_seed_matters(self):
        assert not np.array_equal(expand_indices(9, 20, 100), expand_indices(10, 20, 100))

    def test_within_universe(self):
        out = expand_indices(5, 50, 7)
        assert out.min() >= 0 and out.max() < 7

    def test_empty_cases(self):
        assert expand_indices(1, 0, 10).size == 0
        assert expand_indices(1, 5, 0).size == 0
        assert expand_colors(1, 5, []).size == 0

    def test_expand_colors_maps_through_list(self):
        colors = np.array([10, 20, 30])
        out = expand_colors(3, 8, colors)
        assert set(out.tolist()) <= {10, 20, 30}

    @given(st.integers(0, 2**62), st.integers(1, 64), st.integers(1, 1000))
    @settings(max_examples=30, deadline=None)
    def test_length_property(self, seed, k, universe):
        assert expand_indices(seed, k, universe).size == k

    def test_sampler_roundtrip(self):
        rng = np.random.default_rng(0)
        s = RepresentativeSampler(rng)
        seed = s.draw_seed()
        a = s.expand(seed, 5, [1, 2, 3])
        b = RepresentativeSampler.expand(seed, 5, [1, 2, 3])
        assert np.array_equal(a, b)


class TestMinwise:
    def test_identical_neighborhoods_identical_fingerprints(self):
        # In a clique all closed neighborhoods coincide.
        net = BroadcastNetwork(complete_graph(8))
        fps = minwise_fingerprints(net.indptr, net.indices, net.n, 16, bits=4, salt=0)
        assert (fps == fps[:, :1]).all()

    def test_disjoint_neighborhoods_mostly_differ(self):
        # Two disjoint cliques: collision rate ≈ 2^-b.
        edges = [(i, j) for i in range(6) for j in range(i + 1, 6)]
        edges += [(i, j) for i in range(6, 12) for j in range(i + 1, 12)]
        net = BroadcastNetwork((12, edges))
        fps = minwise_fingerprints(net.indptr, net.indices, net.n, 256, bits=4, salt=1)
        rate = (fps[:, 0] == fps[:, 6]).mean()
        assert rate < 0.25  # 2^-4 = 0.0625 plus noise

    def test_shape_and_dtype(self):
        net = BroadcastNetwork((4, [(0, 1)]))
        fps = minwise_fingerprints(net.indptr, net.indices, net.n, 10, bits=2)
        assert fps.shape == (10, 4)
        assert fps.dtype == np.uint16

    def test_bits_bound_respected(self):
        net = BroadcastNetwork((4, [(0, 1), (2, 3)]))
        fps = minwise_fingerprints(net.indptr, net.indices, net.n, 30, bits=3)
        assert fps.max() < 8

    def test_invalid_bits_raises(self):
        import pytest

        net = BroadcastNetwork((2, [(0, 1)]))
        with pytest.raises(ValueError):
            minwise_fingerprints(net.indptr, net.indices, net.n, 4, bits=0)

    def test_batched_matches_naive_per_sample(self):
        """The chunk-batched kernel must equal the definition: per sample,
        fingerprint[v] = (min over N[v] of the 32-bit hash) & mask."""
        net = BroadcastNetwork((9, [(0, 1), (1, 2), (3, 4), (4, 5), (0, 5), (7, 8)]))
        T, bits, salt = 37, 3, 5
        got = minwise_fingerprints(net.indptr, net.indices, net.n, T, bits, salt=salt)
        ids = np.arange(net.n, dtype=np.int64)
        for j in range(T):
            h = (hash_array_u64(ids, salt=salt * T + j) >> np.uint64(32)).astype(
                np.uint32
            )
            for v in range(net.n):
                closed = np.append(net.neighbors(v), v)
                expect = int(h[closed].min()) & ((1 << bits) - 1)
                assert int(got[j, v]) == expect

    def test_isolated_node_fingerprint_is_own_hash(self):
        net = BroadcastNetwork((3, [(0, 1)]))
        fps = minwise_fingerprints(net.indptr, net.indices, net.n, 8, bits=4, salt=2)
        ids = np.arange(3, dtype=np.int64)
        for j in range(8):
            h = (hash_array_u64(ids, salt=2 * 8 + j) >> np.uint64(32)).astype(np.uint32)
            assert int(fps[j, 2]) == int(h[2]) & 0xF


class TestRefresh:
    """refresh_minwise_fingerprints: the delta-aware sketch maintenance
    kernel must be byte-identical to a full recompute on the refreshed
    columns and must not touch any other column."""

    @given(st.integers(0, 2**31), st.integers(2, 40), st.integers(1, 24))
    @settings(max_examples=40, deadline=None)
    def test_refresh_matches_full_recompute(self, seed, n, samples):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(0, 3 * n))
        edges = rng.integers(0, n, size=(m, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        net = BroadcastNetwork((n, edges))
        bits = int(rng.integers(1, 17))
        salt = int(rng.integers(0, 2**30))
        fresh = minwise_fingerprints(
            net.indptr, net.indices, net.n, samples, bits, salt=salt
        )
        # Corrupt a random subset of columns, refresh exactly those, and
        # demand the corruption is fully healed while the rest is intact.
        k = int(rng.integers(0, n + 1))
        nodes = rng.choice(n, size=k, replace=False)
        stale = fresh.copy()
        stale[:, nodes] ^= 1
        out = refresh_minwise_fingerprints(
            net.indptr, net.indices, net.n, samples, bits, salt, stale, nodes
        )
        assert out is stale  # in-place, returned for chaining
        assert np.array_equal(stale, fresh)

    def test_refresh_validates(self):
        import pytest

        net = BroadcastNetwork((4, [(0, 1)]))
        fps = minwise_fingerprints(net.indptr, net.indices, 4, 5, 3, salt=0)
        with pytest.raises(ValueError):
            refresh_minwise_fingerprints(
                net.indptr, net.indices, 4, 5, 3, 0, fps, np.array([4])
            )
        with pytest.raises(ValueError):
            refresh_minwise_fingerprints(
                net.indptr, net.indices, 4, 6, 3, 0, fps, np.array([0])
            )
